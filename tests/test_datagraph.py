"""Unit tests for :mod:`repro.graph.datagraph`."""

import pytest

from repro.exceptions import GraphError, UnknownLabelError, UnknownNodeError
from repro.graph.datagraph import ROOT_LABEL, VALUE_LABEL, DataGraph


def test_new_graph_has_root():
    g = DataGraph()
    assert g.num_nodes == 1
    assert g.root == 0
    assert g.label(g.root) == ROOT_LABEL
    assert g.num_edges == 0


def test_add_node_assigns_dense_ids():
    g = DataGraph()
    assert g.add_node("a") == 1
    assert g.add_node("b") == 2
    assert g.add_node("a") == 3
    assert g.num_nodes == 4


def test_labels_are_interned():
    g = DataGraph()
    a1 = g.add_node("a")
    a2 = g.add_node("a")
    assert g.label_ids[a1] == g.label_ids[a2]
    assert g.num_labels == 2  # ROOT and a


def test_add_nodes_bulk():
    g = DataGraph()
    ids = g.add_nodes(["x", "y", "z"])
    assert ids == [1, 2, 3]
    assert [g.label(i) for i in ids] == ["x", "y", "z"]


def test_add_edge_and_adjacency():
    g = DataGraph()
    a, b = g.add_node("a"), g.add_node("b")
    g.add_edge(g.root, a)
    g.add_edge(a, b)
    assert g.children[a] == [b]
    assert g.parents[b] == [a]
    assert g.has_edge(a, b)
    assert not g.has_edge(b, a)
    assert g.num_edges == 2


def test_duplicate_edge_rejected():
    g = DataGraph()
    a = g.add_node("a")
    g.add_edge(g.root, a)
    with pytest.raises(GraphError):
        g.add_edge(g.root, a)


def test_add_edge_if_absent():
    g = DataGraph()
    a = g.add_node("a")
    assert g.add_edge_if_absent(g.root, a) is True
    assert g.add_edge_if_absent(g.root, a) is False
    assert g.num_edges == 1


def test_self_loop_allowed():
    g = DataGraph()
    a = g.add_node("a")
    g.add_edge(a, a)
    assert g.has_edge(a, a)
    assert g.in_degree(a) == 1
    assert g.out_degree(a) == 1


def test_unknown_node_errors():
    g = DataGraph()
    with pytest.raises(UnknownNodeError):
        g.add_edge(0, 5)
    with pytest.raises(UnknownNodeError):
        g.label(99)
    with pytest.raises(UnknownNodeError):
        g.out_degree(-1)


def test_unknown_label_errors():
    g = DataGraph()
    with pytest.raises(UnknownLabelError):
        g.label_id("nope")
    with pytest.raises(UnknownLabelError):
        g.label_name(42)


def test_nodes_with_label():
    g = DataGraph()
    a1, _b, a2 = g.add_node("a"), g.add_node("b"), g.add_node("a")
    assert g.nodes_with_label("a") == [a1, a2]
    assert g.nodes_with_label("missing") == []


def test_edges_iteration():
    g = DataGraph()
    a, b = g.add_node("a"), g.add_node("b")
    g.add_edge(g.root, a)
    g.add_edge(a, b)
    assert sorted(g.edges()) == [(0, a), (a, b)]


def test_degrees():
    g = DataGraph()
    a, b, c = g.add_nodes(["a", "b", "c"])
    g.add_edge(g.root, a)
    g.add_edge(g.root, b)
    g.add_edge(a, c)
    g.add_edge(b, c)
    assert g.out_degree(g.root) == 2
    assert g.in_degree(c) == 2


def test_copy_is_independent():
    g = DataGraph()
    a = g.add_node("a")
    g.add_edge(g.root, a)
    clone = g.copy()
    clone.add_node("b")
    clone.add_edge(a, 2)
    assert g.num_nodes == 2
    assert clone.num_nodes == 3
    assert not g.has_edge(a, 2) if g.has_node(2) else True
    assert g.num_edges == 1
    assert clone.num_edges == 2


def test_copy_preserves_labels_and_edges():
    g = DataGraph()
    a, b = g.add_node("x"), g.add_node("y")
    g.add_edge(g.root, a)
    g.add_edge(a, b)
    clone = g.copy()
    assert list(clone.edges()) == list(g.edges())
    assert [clone.label(i) for i in clone.nodes()] == [
        g.label(i) for i in g.nodes()
    ]


def test_graft_copies_subgraph_under_root():
    g = DataGraph()
    a = g.add_node("a")
    g.add_edge(g.root, a)

    h = DataGraph()
    x = h.add_node("x")
    y = h.add_node("y")
    h.add_edge(h.root, x)
    h.add_edge(x, y)

    mapping = g.graft(h)
    assert mapping[h.root] == g.root
    assert g.label(mapping[x]) == "x"
    assert g.has_edge(g.root, mapping[x])
    assert g.has_edge(mapping[x], mapping[y])
    assert g.num_nodes == 4


def test_graft_rejects_edge_into_foreign_root():
    g = DataGraph()
    h = DataGraph()
    x = h.add_node("x")
    h.add_edge(h.root, x)
    h.add_edge(x, h.root)  # back edge into the root
    with pytest.raises(GraphError):
        g.graft(h)


def test_repr_and_len():
    g = DataGraph()
    g.add_node("a")
    assert len(g) == 2
    assert "nodes=2" in repr(g)


def test_value_label_constant():
    g = DataGraph()
    v = g.add_node(VALUE_LABEL)
    assert g.label(v) == "VALUE"
