"""Unit tests for :mod:`repro.paths.lexer`."""

import pytest

from repro.exceptions import PathSyntaxError
from repro.paths.lexer import TokenKind, tokenize


def kinds(text):
    return [t.kind.name for t in tokenize(text)]


def test_basic_tokens():
    assert kinds("a.b|c") == ["LABEL", "DOT", "LABEL", "PIPE", "LABEL", "EOF"]


def test_star_and_qmark():
    assert kinds("a*b?") == ["LABEL", "STAR", "LABEL", "QMARK", "EOF"]


def test_parens():
    assert kinds("(a)") == ["LPAREN", "LABEL", "RPAREN", "EOF"]


def test_wildcard_vs_label_with_underscore():
    tokens = tokenize("_ _x x_")
    assert [t.kind for t in tokens[:3]] == [
        TokenKind.WILDCARD,
        TokenKind.LABEL,
        TokenKind.LABEL,
    ]
    assert tokens[1].text == "_x"
    assert tokens[2].text == "x_"


def test_slash_forms():
    assert kinds("//a/b") == ["DSLASH", "LABEL", "SLASH", "LABEL", "EOF"]


def test_label_characters():
    tokens = tokenize("open_auction ns:tag data-set x9")
    assert [t.text for t in tokens[:-1]] == [
        "open_auction",
        "ns:tag",
        "data-set",
        "x9",
    ]


def test_whitespace_skipped():
    assert kinds("  a .  b ") == ["LABEL", "DOT", "LABEL", "EOF"]


def test_positions_recorded():
    tokens = tokenize("ab.cd")
    assert tokens[0].position == 0
    assert tokens[1].position == 2
    assert tokens[2].position == 3


def test_bad_character_raises_with_position():
    with pytest.raises(PathSyntaxError) as info:
        tokenize("a.$b")
    assert info.value.position == 2


def test_empty_input_gives_only_eof():
    assert kinds("") == ["EOF"]
