"""Unit tests for :mod:`repro.paths.nfa`.

The property test compares NFA membership with a brute-force language
oracle that enumerates short words directly from the AST.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paths.ast import (
    AnyLabel,
    Concat,
    Label,
    Optional_,
    PathExpr,
    Star,
    Union_,
)
from repro.paths.nfa import compile_nfa
from repro.paths.parser import parse_path_expression


ALPHABET = ["a", "b", "c"]


def accepts(text: str, word: list[str]) -> bool:
    expr, _ = parse_path_expression(text)
    return compile_nfa(expr).accepts(word)


def test_single_label():
    assert accepts("a", ["a"])
    assert not accepts("a", ["b"])
    assert not accepts("a", [])
    assert not accepts("a", ["a", "a"])


def test_concat():
    assert accepts("a.b", ["a", "b"])
    assert not accepts("a.b", ["a"])
    assert not accepts("a.b", ["b", "a"])


def test_union():
    assert accepts("a|b", ["a"])
    assert accepts("a|b", ["b"])
    assert not accepts("a|b", ["c"])


def test_optional():
    assert accepts("a.b?", ["a"])
    assert accepts("a.b?", ["a", "b"])
    assert not accepts("a.b?", ["a", "b", "b"])


def test_star():
    assert accepts("a*", [])
    assert accepts("a*", ["a"] * 5)
    assert not accepts("a*", ["a", "b"])


def test_wildcard():
    assert accepts("_", ["anything"])
    assert accepts("a._.c", ["a", "zz", "c"])
    assert not accepts("a._.c", ["a", "c"])


def test_descendant_sugar():
    assert accepts("a//b", ["a", "b"])
    assert accepts("a//b", ["a", "x", "y", "b"])
    assert not accepts("a//b", ["a"])


def test_paper_optional_wildcard_example():
    # movieDB.(_)?.movie matches with or without an intermediate label.
    assert accepts("movieDB._?.movie", ["movieDB", "movie"])
    assert accepts("movieDB._?.movie", ["movieDB", "director", "movie"])
    assert not accepts("movieDB._?.movie", ["movieDB", "x", "y", "movie"])


def test_accepts_empty_flag():
    expr, _ = parse_path_expression("a*")
    assert compile_nfa(expr).accepts_empty
    expr, _ = parse_path_expression("a")
    assert not compile_nfa(expr).accepts_empty


def test_bind_drops_unknown_labels():
    expr, _ = parse_path_expression("a|zzz")
    nfa = compile_nfa(expr)
    bound = nfa.bind({"a": 0})
    assert bound.is_accepting(bound.step(frozenset({bound.start}), 0))


def test_bind_wildcard_matches_any_id():
    expr, _ = parse_path_expression("_")
    bound = compile_nfa(expr).bind({"a": 0, "b": 1})
    assert bound.is_accepting(bound.step(frozenset({bound.start}), 1))


# ----------------------------------------------------------------------
# Property: NFA membership equals a brute-force language oracle.
# ----------------------------------------------------------------------


def language_contains(expr: PathExpr, word: tuple[str, ...]) -> bool:
    """Brute-force membership from the AST semantics."""
    if isinstance(expr, Label):
        return len(word) == 1 and word[0] == expr.name
    if isinstance(expr, AnyLabel):
        return len(word) == 1
    if isinstance(expr, Concat):
        return any(
            language_contains(expr.left, word[:i])
            and language_contains(expr.right, word[i:])
            for i in range(len(word) + 1)
        )
    if isinstance(expr, Union_):
        return language_contains(expr.left, word) or language_contains(
            expr.right, word
        )
    if isinstance(expr, Optional_):
        return not word or language_contains(expr.inner, word)
    if isinstance(expr, Star):
        if not word:
            return True
        return any(
            language_contains(expr.inner, word[:i])
            and language_contains(expr, word[i:])
            for i in range(1, len(word) + 1)
        )
    raise TypeError(expr)


@st.composite
def path_exprs(draw, depth: int = 3) -> PathExpr:
    if depth == 0:
        return draw(
            st.one_of(
                st.sampled_from([Label(l) for l in ALPHABET]),
                st.just(AnyLabel()),
            )
        )
    branch = draw(st.integers(0, 5))
    if branch <= 1:
        return draw(path_exprs(depth=0))
    inner = draw(path_exprs(depth=depth - 1))
    if branch == 2:
        return Concat(inner, draw(path_exprs(depth=depth - 1)))
    if branch == 3:
        return Union_(inner, draw(path_exprs(depth=depth - 1)))
    if branch == 4:
        return Optional_(inner)
    return Star(inner)


@given(
    path_exprs(),
    st.lists(st.sampled_from(ALPHABET), max_size=4),
)
@settings(max_examples=200, deadline=None)
def test_nfa_matches_language_oracle(expr, word):
    nfa = compile_nfa(expr)
    assert nfa.accepts(word) == language_contains(expr, tuple(word))
