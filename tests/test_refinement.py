"""Tests for :mod:`repro.partition.refinement`.

The property tests compare every refinement against the brute-force
pairwise oracle from Definition 2 — the definitional ground truth.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_full_bisim, brute_force_kbisim, small_graphs
from repro.graph.builder import graph_from_edges
from repro.partition.refinement import (
    bisim_partition,
    kbisim_partition,
    label_partition,
    leveled_partition,
    refine_once,
)


def two_x_graph():
    """Two x nodes distinguishable only at distance 1."""
    return graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )


def test_label_partition_groups_by_label():
    g = two_x_graph()
    p = label_partition(g)
    assert p.num_blocks == 4  # ROOT, a, b, x
    assert p.same_block(3, 4)


def test_kbisim_zero_is_label_partition():
    g = two_x_graph()
    assert kbisim_partition(g, 0) == label_partition(g)


def test_kbisim_one_splits_by_parent_labels():
    g = two_x_graph()
    p = kbisim_partition(g, 1)
    assert not p.same_block(3, 4)


def test_kbisim_negative_rejected():
    with pytest.raises(ValueError):
        kbisim_partition(two_x_graph(), -1)


def test_paper_figure1_movie_bisimilarity(movie_graph):
    # "nodes 7 and 10 (movie) are bisimilar, while nodes 7 and 9 are not"
    g = movie_graph.graph
    p, _rounds = bisim_partition(g)
    m1 = movie_graph.id_of("m1")
    m2 = movie_graph.id_of("m2")
    m3 = movie_graph.id_of("m3")
    # m1 and m2 both sit under director+actor; m3 only under an actor.
    assert p.same_block(m1, m2)
    assert not p.same_block(m1, m3)


def test_refine_once_monotone():
    g = two_x_graph()
    p0 = label_partition(g)
    p1 = refine_once(g, p0)
    assert p1.refines(p0)
    assert p1.num_blocks >= p0.num_blocks


def test_refine_once_rejects_wrong_participating_length():
    # A short (or long) participating vector used to silently freeze a
    # suffix of the node set; it must be an error instead.
    g = two_x_graph()
    p0 = label_partition(g)
    with pytest.raises(ValueError):
        refine_once(g, p0, [True])
    with pytest.raises(ValueError):
        refine_once(g, p0, [True] * (g.num_nodes + 1))


def test_refine_once_with_frozen_nodes():
    g = two_x_graph()
    p0 = label_partition(g)
    frozen = [False] * g.num_nodes  # nobody participates: no change
    assert refine_once(g, p0, frozen) == p0
    participating = [True] * g.num_nodes
    assert refine_once(g, p0, participating) == refine_once(g, p0)


def test_bisim_reaches_fixpoint():
    g = two_x_graph()
    p, rounds = bisim_partition(g)
    assert rounds >= 1
    assert refine_once(g, p) == p


def test_leveled_uniform_equals_kbisim():
    g = two_x_graph()
    for k in range(3):
        levels = [k] * g.num_nodes
        assert leveled_partition(g, levels) == kbisim_partition(g, k)


def test_leveled_zero_everywhere_is_label_split():
    g = two_x_graph()
    assert leveled_partition(g, [0] * g.num_nodes) == label_partition(g)


def test_leveled_validates_input():
    g = two_x_graph()
    with pytest.raises(ValueError):
        leveled_partition(g, [0])
    with pytest.raises(ValueError):
        leveled_partition(g, [-1] * g.num_nodes)


def test_leveled_partial_freeze():
    # Only the x nodes require level 1: they split, everything else stays
    # grouped by label.
    g = two_x_graph()
    levels = [1 if g.label(n) == "x" else 0 for n in g.nodes()]
    p = leveled_partition(g, levels)
    assert not p.same_block(3, 4)
    assert p.num_blocks == 5


@given(small_graphs(), st.integers(0, 3))
@settings(max_examples=80, deadline=None)
def test_kbisim_matches_brute_force(graph, k):
    assert kbisim_partition(graph, k) == brute_force_kbisim(graph, k)


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_full_bisim_matches_brute_force(graph):
    partition, _rounds = bisim_partition(graph)
    assert partition == brute_force_full_bisim(graph)


@given(small_graphs(), st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_kbisim_chain_refines(graph, k):
    coarser = kbisim_partition(graph, k - 1)
    finer = kbisim_partition(graph, k)
    assert finer.refines(coarser)


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_leveled_blocks_are_homogeneous_at_their_level(graph):
    # Per-label requirements (label id mod 3), adjusted by the broadcast
    # (Algorithm 1) so the parent constraint holds; every block of the
    # leveled partition must then sit inside the brute-force class of its
    # level — the "honest k" guarantee the D(k)-index relies on.  Without
    # the broadcast this is FALSE: frozen coarse parents would let
    # non-k-bisimilar nodes share a block, which is exactly why the
    # broadcast algorithm exists.
    from repro.core.broadcast import broadcast_for_graph

    initial = {
        label_id: label_id % 3 for label_id in range(graph.num_labels)
    }
    levels_by_label = broadcast_for_graph(graph, graph.num_labels, initial)
    levels = [levels_by_label[graph.label_ids[n]] for n in graph.nodes()]
    partition = leveled_partition(graph, levels)
    max_level = max(levels, default=0)
    oracles = {k: brute_force_kbisim(graph, k) for k in range(max_level + 1)}
    for members in partition.blocks:
        level = levels[members[0]]
        oracle = oracles[level]
        first = oracle.block_of[members[0]]
        assert all(oracle.block_of[m] == first for m in members)
