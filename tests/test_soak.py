"""Deterministic randomized soak test over the whole stack.

A long seeded sequence of mixed operations (queries, edge additions,
edge removals, document inserts, promotes, demotes) against a
mid-size dataset, with exactness re-verified against the data graph
after every phase and all invariants re-checked.  This is the "does the
system as a whole stay correct under sustained churn" test the unit
tests cannot give.
"""

import random

import pytest

from repro.bench.harness import sample_reference_edges
from repro.core.dindex import DKIndex
from repro.core.updates import dk_remove_edge
from repro.datasets.nasa import generate_nasa
from repro.datasets.xmark import generate_xmark
from repro.paths.evaluator import evaluate_on_data_graph
from repro.workload.generator import WorkloadConfig, generate_test_paths
from repro.workload.mining import coverage_requirements


@pytest.mark.parametrize(
    "builder, seed",
    [(generate_xmark, 1), (generate_nasa, 2)],
    ids=["xmark", "nasa"],
)
def test_sustained_churn_stays_exact(builder, seed):
    rng = random.Random(seed)
    document = builder(scale=0.1, seed=seed)
    graph = document.graph
    load = generate_test_paths(graph, WorkloadConfig(count=25), seed=seed + 1)
    dk = DKIndex.from_query_load(graph, list(load))
    queries = list(load)

    def verify(sample: int = 8) -> None:
        dk.check_invariants()
        for query in queries[:sample]:
            assert dk.evaluate(query) == evaluate_on_data_graph(
                dk.graph, query
            ), f"divergence on {query}"

    verify()

    # Phase 1: a stream of edge additions.
    added = sample_reference_edges(
        dk.graph, document.reference_pairs, 30, rng
    )
    for src, dst in added:
        dk.add_edge(src, dst)
    verify()

    # Phase 2: remove a third of them again.
    for src, dst in added[::3]:
        dk_remove_edge(dk.graph, dk.index, src, dst)
    verify()

    # Phase 3: insert a smaller second document.
    newcomer = builder(scale=0.03, seed=seed + 7)
    dk.add_subgraph(newcomer.graph)
    verify()

    # Phase 4: promote back to standing requirements.
    dk.promote()
    verify()
    for query in queries[:8]:
        # After promotion the standing load must be index-only again.
        from repro.paths.cost import CostCounter

        counter = CostCounter()
        dk.evaluate(query, counter)
        assert counter.validated_queries == 0

    # Phase 5: demote to median-coverage requirements and keep going.
    dk.demote(coverage_requirements(load, coverage=0.5))
    verify()

    # Phase 6: a second burst of additions on the *grown* graph.
    more = sample_reference_edges(
        dk.graph, document.reference_pairs, 15, rng
    )
    for src, dst in more:
        dk.add_edge(src, dst)
    verify(sample=12)
