"""Unit tests for :mod:`repro.core.broadcast` (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import small_graphs
from repro.core.broadcast import (
    broadcast_for_graph,
    broadcast_levels,
    label_parent_graph,
)
from repro.graph.builder import graph_from_edges


def chain_parent_labels():
    # label graph c <- b <- a (parent adjacency by child).
    return [set(), {0}, {1}]


def test_paper_example_parent_reset():
    # "if the local similarities of n_i and n_j ... are 0 and 2, the
    # local similarity of n_i should be reset to 1."
    levels = broadcast_levels([set(), {0}], {1: 2})
    assert levels == [1, 2]


def test_chain_propagation():
    assert broadcast_levels(chain_parent_labels(), {2: 3}) == [1, 2, 3]


def test_default_zero_for_unqueried_labels():
    assert broadcast_levels(chain_parent_labels(), {}) == [0, 0, 0]


def test_max_of_initial_and_broadcast():
    # b already requires 5; c's requirement of 2 must not lower it.
    levels = broadcast_levels(chain_parent_labels(), {1: 5, 2: 2})
    assert levels[1] == 5
    assert levels[0] == 4  # raised by b's 5


def test_self_loop_label():
    # A label that is its own parent: requirement k forces itself >= k-1,
    # which is already satisfied; no infinite loop.
    levels = broadcast_levels([{0}], {0: 3})
    assert levels == [3]


def test_cycle_between_labels():
    # a <-> b cycle with b requiring 4: a >= 3, which pushes b >= 2 (already 4).
    levels = broadcast_levels([{1}, {0}], {1: 4})
    assert levels == [3, 4]


def test_negative_requirement_rejected():
    with pytest.raises(ValueError):
        broadcast_levels([set()], {0: -1})


def test_unknown_label_rejected():
    with pytest.raises(ValueError):
        broadcast_levels([set()], {5: 1})


def test_label_parent_graph():
    g = graph_from_edges(["a", "b", "b"], [(0, 1), (1, 2), (0, 3)])
    parents = label_parent_graph(g, g.num_labels)
    a, b = g.label_id("a"), g.label_id("b")
    root = g.label_id("ROOT")
    assert parents[b] == {a, root}
    assert parents[a] == {root}
    assert parents[root] == set()


@given(small_graphs(), st.dictionaries(st.integers(0, 3), st.integers(0, 4)))
@settings(max_examples=80, deadline=None)
def test_broadcast_postconditions(graph, raw_requirements):
    initial = {
        label: req
        for label, req in raw_requirements.items()
        if label < graph.num_labels
    }
    levels = broadcast_for_graph(graph, graph.num_labels, initial)
    # 1. Broadcast never lowers a requirement.
    for label, req in initial.items():
        assert levels[label] >= req
    # 2. The structural constraint holds on every label edge.
    parents = label_parent_graph(graph, graph.num_labels)
    for child in range(graph.num_labels):
        for parent in parents[child]:
            assert levels[parent] >= levels[child] - 1
    # 3. Minimality: no level exceeds what some chain of constraints
    #    forces (each level is either an initial requirement or one less
    #    than some child's level).
    for label, level in enumerate(levels):
        if level == 0:
            continue
        children_of = [
            c for c in range(graph.num_labels) if label in parents[c]
        ]
        forced = max(
            [initial.get(label, 0)]
            + [levels[c] - 1 for c in children_of]
        )
        assert level == forced
