"""Tests for the :class:`repro.engine.Database` facade."""

import io

import pytest

from repro.engine import Database
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import make_query
from repro.paths.twig import evaluate_twig, parse_twig

LIBRARY_XML = (
    "<library>"
    '<book id="b1"><title>TAOCP</title><author><name>K</name></author></book>'
    '<book id="b2"><title>SICP</title><cites idref="b1"/></book>'
    "</library>"
)


def test_from_xml_and_linear_query():
    db = Database.from_xml(LIBRARY_XML)
    result = db.query("book.title")
    assert result == evaluate_on_data_graph(db.graph, make_query("book.title"))
    assert db.statistics.queries == 1


def test_twig_query_routing():
    db = Database.from_xml(LIBRARY_XML)
    result = db.query("book[author]/title")
    truth = evaluate_twig(db.graph, parse_twig("book[author]/title"))
    assert result == truth
    assert db.statistics.twig_queries == 1


def test_query_object_passthrough():
    db = Database.from_xml(LIBRARY_XML)
    assert db.query(make_query("book.title")) == db.query("book.title")
    assert db.query(parse_twig("book[author]/title")) is not None


def test_bad_query_type_rejected():
    db = Database.from_xml(LIBRARY_XML)
    with pytest.raises(TypeError):
        db.query(42)


def test_insert_document_and_requery():
    db = Database.from_xml(LIBRARY_XML)
    before = len(db.query("book.title"))
    db.insert_document("<library><book><title>New</title></book></library>")
    db.check()
    after = len(db.query("book.title"))
    assert after == before + 1
    assert db.statistics.documents_inserted == 1


def test_add_and_remove_reference():
    db = Database.from_xml(LIBRARY_XML)
    books = db.graph.nodes_with_label("book")
    titles = db.graph.nodes_with_label("title")
    db.add_reference(books[0], books[1])
    db.check()
    assert db.query("book.book.title")  # the new path exists
    db.remove_reference(books[0], books[1])
    db.check()
    result = db.query("book.book.title")
    truth = evaluate_on_data_graph(db.graph, make_query("book.book.title"))
    assert result == truth
    assert db.statistics.edges_added == 1
    assert db.statistics.edges_removed == 1
    assert titles  # silence unused warning


def test_mutations_invalidate_fb_index():
    db = Database.from_xml(LIBRARY_XML)
    db.query("book[author]/title")  # builds the F&B index
    db.insert_document(
        "<library><book><title>X</title><author><name>a</name></author></book></library>"
    )
    # The twig answer must reflect the new document.
    result = db.query("book[author]/title")
    truth = evaluate_twig(db.graph, parse_twig("book[author]/title"))
    assert result == truth


def test_auto_tuning_learns_long_queries():
    from repro.core.tuner import TunerConfig

    db = Database.from_xml(
        LIBRARY_XML,
        tuner_config=TunerConfig(window=30, min_queries=4, check_every=4),
    )
    for _ in range(12):
        db.query("library.book.author.name")
    assert db.statistics.tuning_actions >= 1
    assert db.index.requirements.get("name", 0) >= 3


def test_retune_explicit():
    db = Database.from_xml(LIBRARY_XML, auto_tune=False)
    db.retune({"title": 2})
    assert db.index.requirements.get("title") == 2
    db.check()


def test_statistics_format_and_repr():
    db = Database.from_xml(LIBRARY_XML)
    db.query("book.title")
    assert "queries: 1" in db.statistics.format()
    assert "Database(" in repr(db)


def test_labels_of():
    db = Database.from_xml(LIBRARY_XML)
    result = db.query("book.title")
    assert set(db.labels_of(result)) == {"title"}


def test_save_and_load_roundtrip(tmp_path):
    db = Database.from_xml(LIBRARY_XML, auto_tune=False)
    db.retune({"title": 2})
    path = tmp_path / "db.json"
    db.save(path)
    restored = Database.load(path, auto_tune=False)
    restored.check()
    assert restored.query("book.title") == db.query("book.title")
    assert restored.index.requirements == db.index.requirements


def test_save_load_stream():
    db = Database.from_xml(LIBRARY_XML, auto_tune=False)
    buffer = io.StringIO()
    db.save(buffer)
    buffer.seek(0)
    restored = Database.load(buffer, auto_tune=False)
    assert restored.graph.num_nodes == db.graph.num_nodes


def test_empty_database():
    db = Database()
    assert db.query("anything") == set()
    db.insert_document("<doc><a/></doc>")
    assert db.query("a") != set()
