"""Tests for the per-function effect summaries and their fixpoint."""

import json
from textwrap import dedent

from repro.analysis.flow import analyze_sources
from repro.analysis.flow.effects import export_effects


def analysis_of(**modules):
    return analyze_sources(
        {
            name.replace("__", "."): dedent(source)
            for name, source in modules.items()
        }
    )


def categories(analysis, qualname):
    summary = analysis.summaries[qualname]
    return {effect.category for effect in summary.iter_effects()}


def state_sources(analysis, qualname):
    summary = analysis.summaries[qualname]
    return {
        (effect.category, effect.source)
        for effect in summary.state_effects()
    }


# ------------------------- local effects --------------------------------


def test_param_state_write_detected():
    analysis = analysis_of(
        m="""
        def erode(index, node: int) -> None:
            index.k[node] -= 1
        """
    )
    assert ("similarity", "param") in state_sources(analysis, "m.erode")


def test_mutating_method_on_state_attr_detected():
    analysis = analysis_of(
        m="""
        def grow(index, node: int) -> None:
            index.extents[0].append(node)
        """
    )
    assert ("extents", "param") in state_sources(analysis, "m.grow")


def test_fresh_local_writes_are_not_effects():
    analysis = analysis_of(
        m="""
        class IndexGraph:
            def __init__(self) -> None:
                self.extents = []
                self.k = {}

        def build() -> IndexGraph:
            index = IndexGraph()
            index.extents.append([1])
            index.k[0] = 2
            return index
        """
    )
    assert state_sources(analysis, "m.build") == set()


def test_global_and_ambient_effects():
    analysis = analysis_of(
        m="""
        COUNT = 0

        def bump() -> None:
            global COUNT
            COUNT += 1

        def dump(path: str) -> None:
            with open(path, "w") as handle:
                handle.write("x")

        def log(path: str) -> None:
            with open(path, "a") as handle:
                handle.write("x")
        """
    )
    assert "global-write" in categories(analysis, "m.bump")
    assert "open-truncate" in categories(analysis, "m.dump")
    assert "open-append" in categories(analysis, "m.log")
    assert "open-truncate" not in categories(analysis, "m.log")


def test_shared_container_mutation_in_closure():
    analysis = analysis_of(
        m="""
        def collect() -> list:
            seen = []
            worker = lambda item: seen.append(item)
            return seen
        """
    )
    lambda_name = next(q for q in analysis.summaries if "<lambda@" in q)
    assert "container-write" in categories(analysis, lambda_name)


# ------------------------- propagation ----------------------------------


def test_effects_propagate_to_callers_with_chain():
    analysis = analysis_of(
        m="""
        def write(index) -> None:
            index.k[0] = 1

        def outer(index) -> None:
            write(index)
        """
    )
    assert ("similarity", "param") in state_sources(analysis, "m.outer")
    effect = next(iter(analysis.summaries["m.outer"].state_effects()))
    assert effect.chain == ("m.write",)


def test_fresh_arguments_launder_param_effects():
    analysis = analysis_of(
        m="""
        class IndexGraph:
            def __init__(self) -> None:
                self.k = {}

        def write(index) -> None:
            index.k[0] = 1

        def build() -> IndexGraph:
            index = IndexGraph()
            write(index)
            return index

        def passthrough(index) -> None:
            write(index)
        """
    )
    assert state_sources(analysis, "m.build") == set()
    assert ("similarity", "param") in state_sources(analysis, "m.passthrough")


def test_constructor_self_writes_never_escape():
    analysis = analysis_of(
        m="""
        class IndexGraph:
            def __init__(self, graph) -> None:
                self.k = {}
                self.k[0] = 1

        def build(graph) -> IndexGraph:
            return IndexGraph(graph)
        """
    )
    # __init__ writes self.k (param-rooted), but every resolved edge to
    # __init__ constructs a fresh receiver — the caller sees nothing.
    assert state_sources(analysis, "m.build") == set()


def test_rerooting_across_two_levels():
    analysis = analysis_of(
        m="""
        def inner(target) -> None:
            target.extents[0].append(1)

        def middle(index) -> None:
            inner(index)

        def outer(index) -> None:
            middle(index)
        """
    )
    effect = next(iter(analysis.summaries["m.outer"].state_effects()))
    assert effect.source == "param"
    assert effect.root == "index"
    assert effect.chain == ("m.middle", "m.inner")


def test_returns_fresh_fixpoint_through_wrappers():
    analysis = analysis_of(
        m="""
        class C:
            def __init__(self) -> None:
                self.k = {}

        def make() -> C:
            return C()

        def wrap() -> C:
            return make()

        def mutate_wrapped() -> None:
            obj = wrap()
            obj.k[0] = 1
        """
    )
    assert analysis.summaries["m.make"].returns_fresh is True
    assert analysis.summaries["m.wrap"].returns_fresh is True
    assert state_sources(analysis, "m.mutate_wrapped") == set()


# ------------------------- alias returns --------------------------------


def test_returns_alias_detected_and_propagated():
    analysis = analysis_of(
        m="""
        def lookup(index, label: str) -> set:
            return index.extents[0]

        def serve(index, label: str) -> set:
            return lookup(index, label)

        def safe(index, label: str) -> set:
            return set(index.extents[0])
        """
    )
    assert analysis.summaries["m.lookup"].returns_alias is not None
    propagated = analysis.summaries["m.serve"].returns_alias
    assert propagated is not None
    assert propagated.chain == ("m.lookup",)
    assert analysis.summaries["m.safe"].returns_alias is None


def test_alias_through_named_local():
    analysis = analysis_of(
        m="""
        def peek(index) -> list:
            block = index.extents[2]
            return block
        """
    )
    assert analysis.summaries["m.peek"].returns_alias is not None


def test_fresh_alias_is_no_alias():
    analysis = analysis_of(
        m="""
        class IndexGraph:
            def __init__(self) -> None:
                self.extents = []

        def build() -> list:
            index = IndexGraph()
            return index.extents
        """
    )
    assert analysis.summaries["m.build"].returns_alias is None


# ------------------------- artifact -------------------------------------


def test_export_effects_is_deterministic_and_scoped():
    modules = {
        "repro.fake.mod": dedent(
            """
            def write(index) -> None:
                index.k[0] = 1
            """
        ),
        "tests.helper": dedent(
            """
            def t(index) -> None:
                index.k[0] = 1
            """
        ),
    }
    analysis = analyze_sources(modules)
    document = export_effects(analysis)
    assert document["version"] == 1
    assert "repro.fake.mod.write" in document["functions"]
    # non-repro modules are excluded so the artifact doesn't churn
    assert not any(q.startswith("tests.") for q in document["functions"])
    again = export_effects(analyze_sources(modules))
    assert json.dumps(document, sort_keys=True) == json.dumps(
        again, sort_keys=True
    )
    record = document["functions"]["repro.fake.mod.write"]
    assert record["effects"] == [
        {"category": "similarity", "source": "param", "witness_module": "repro.fake.mod"}
    ]
