"""Tests for :mod:`repro.workload.queryload`."""

import pytest

from repro.exceptions import WorkloadError
from repro.paths.query import make_query
from repro.workload.queryload import QueryLoad


def test_add_and_weight():
    load = QueryLoad()
    q = make_query("a.b")
    load.add(q)
    load.add(q, weight=2)
    assert load.weight(q) == 3
    assert load.weight(make_query("x")) == 0


def test_constructor_counts_duplicates():
    load = QueryLoad([make_query("a.b"), make_query("a.b"), make_query("c")])
    assert load.num_distinct == 2
    assert load.total_weight == 3
    assert len(load) == 2


def test_nonpositive_weight_rejected():
    load = QueryLoad()
    with pytest.raises(WorkloadError):
        load.add(make_query("a"), weight=0)


def test_iteration_and_items():
    load = QueryLoad([make_query("a"), make_query("b"), make_query("a")])
    assert list(load) == [make_query("a"), make_query("b")]
    assert dict(load.items())[make_query("a")] == 2


def test_expanded_multiplicity():
    load = QueryLoad([make_query("a"), make_query("a"), make_query("b")])
    assert sorted(q.to_text() for q in load.expanded()) == ["//a", "//a", "//b"]


def test_label_path_queries_filters_regex():
    load = QueryLoad([make_query("a.b"), make_query("a|b")])
    assert load.label_path_queries() == [make_query("a.b")]


def test_by_target_label():
    load = QueryLoad([make_query("a.t"), make_query("b.t"), make_query("x")])
    groups = load.by_target_label()
    assert set(groups) == {"t", "x"}
    assert len(groups["t"]) == 2


def test_merge():
    left = QueryLoad([make_query("a")])
    right = QueryLoad([make_query("a"), make_query("b")])
    merged = left.merge(right)
    assert merged.weight(make_query("a")) == 2
    assert merged.weight(make_query("b")) == 1
    assert left.weight(make_query("a")) == 1  # inputs untouched


def test_length_histogram():
    load = QueryLoad([make_query("a"), make_query("a.b"), make_query("c.d")])
    assert load.length_histogram() == {1: 1, 2: 2}
