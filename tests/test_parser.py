"""Unit tests for :mod:`repro.paths.parser` and the AST."""

import pytest

from repro.exceptions import PathSyntaxError
from repro.paths.ast import (
    AnyLabel,
    Concat,
    Label,
    Optional_,
    Star,
    Union_,
    concat_all,
    label_sequence,
)
from repro.paths.parser import parse_path_expression


def parse(text):
    expr, _anchored = parse_path_expression(text)
    return expr


def test_single_label():
    assert parse("movie") == Label("movie")


def test_concat_left_associative():
    assert parse("a.b.c") == Concat(Concat(Label("a"), Label("b")), Label("c"))


def test_slash_as_separator():
    assert parse("a/b") == parse("a.b")


def test_union_lower_precedence_than_concat():
    assert parse("a.b|c") == Union_(Concat(Label("a"), Label("b")), Label("c"))


def test_parens_override():
    assert parse("a.(b|c)") == Concat(Label("a"), Union_(Label("b"), Label("c")))


def test_star_and_optional_postfix():
    assert parse("a*") == Star(Label("a"))
    assert parse("a?") == Optional_(Label("a"))
    assert parse("a*?") == Optional_(Star(Label("a")))


def test_wildcard():
    assert parse("_") == AnyLabel()
    assert parse("_*") == Star(AnyLabel())


def test_descendant_axis_desugars():
    assert parse("a//b") == Concat(
        Label("a"), Concat(Star(AnyLabel()), Label("b"))
    )


def test_leading_dslash_is_unanchored():
    _expr, anchored = parse_path_expression("//a.b")
    assert anchored is False


def test_plain_expression_is_unanchored_per_paper():
    _expr, anchored = parse_path_expression("director.movie.title")
    assert anchored is False


def test_leading_slash_anchors():
    _expr, anchored = parse_path_expression("/movieDB.movie")
    assert anchored is True


def test_paper_example_expression_parses():
    # movieDB.(_)?.movie.actor.name from Section 3.
    expr = parse("movieDB.(_)?.movie.actor.name")
    assert expr.min_length() == 4
    assert expr.max_length() == 5


def test_missing_dot_is_an_error():
    with pytest.raises(PathSyntaxError):
        parse("a b")


def test_unbalanced_paren_is_an_error():
    with pytest.raises(PathSyntaxError):
        parse("(a.b")


def test_trailing_junk_is_an_error():
    with pytest.raises(PathSyntaxError):
        parse("a)")


def test_empty_input_is_an_error():
    with pytest.raises(PathSyntaxError):
        parse("")


def test_lengths():
    assert parse("a.b").min_length() == 2
    assert parse("a.b").max_length() == 2
    assert parse("a?").min_length() == 0
    assert parse("a*").max_length() is None
    assert parse("a|b.c").min_length() == 1
    assert parse("a|b.c").max_length() == 2


def test_is_finite():
    assert parse("a.(b|c)?").is_finite()
    assert not parse("a.b*").is_finite()


def test_labels_iteration():
    assert sorted(parse("a.(b|c)*._").labels()) == ["a", "b", "c"]


def test_to_text_roundtrips():
    for text in ["a.b.c", "a|b", "(a|b).c", "a*", "a?", "_.a", "a.(b|c)?",
                 "(a.b)*", "(a.b)?", "(a.b)*.c", "a.(b.c)*"]:
        expr = parse(text)
        assert parse(expr.to_text()) == expr


def test_to_text_postfix_over_concat_regression():
    # Star(Concat(a, b)) must render as (a.b)*, not a.b* — the latter
    # reparses as Concat(a, Star(b)).
    expr = Star(Concat(Label("a"), Label("b")))
    assert expr.to_text() == "(a.b)*"
    assert parse(expr.to_text()) == expr
    opt = Optional_(Concat(Label("a"), Label("b")))
    assert parse(opt.to_text()) == opt


def test_to_text_roundtrips_random_asts():
    # Reparsing may re-associate concatenation (a.(b.c) vs (a.b).c), so
    # the round-trip contract is *semantic*: the reparsed expression
    # must render stably and accept exactly the same words.
    import itertools

    from hypothesis import given, settings

    from repro.paths.nfa import compile_nfa
    from test_nfa import ALPHABET, path_exprs

    @given(path_exprs())
    @settings(max_examples=250, deadline=None)
    def run(expr):
        text = expr.to_text()
        reparsed = parse(text)
        assert reparsed.to_text() == text  # rendering is a fixpoint
        original_nfa = compile_nfa(expr)
        reparsed_nfa = compile_nfa(reparsed)
        for length in range(4):
            for word in itertools.product(ALPHABET, repeat=length):
                assert original_nfa.accepts(list(word)) == reparsed_nfa.accepts(
                    list(word)
                ), (text, word)

    run()


def test_label_sequence_plain_chain():
    assert label_sequence(parse("a.b.c")) == ["a", "b", "c"]
    assert label_sequence(parse("a.b*")) is None
    assert label_sequence(parse("a|b")) is None
    assert label_sequence(parse("_.a")) is None


def test_concat_all():
    assert concat_all([Label("a"), Label("b")]) == Concat(Label("a"), Label("b"))
    with pytest.raises(ValueError):
        concat_all([])
