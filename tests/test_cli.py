"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_generate_and_stats(tmp_path, capsys):
    out = tmp_path / "g.json"
    code = main(["generate", "xmark", "--out", str(out), "--scale", "0.03"])
    assert code == 0
    assert out.exists()
    assert "wrote" in capsys.readouterr().out

    code = main(["stats", str(out)])
    assert code == 0
    assert "nodes:" in capsys.readouterr().out


def test_query_command(tmp_path, capsys):
    out = tmp_path / "g.json"
    main(["generate", "xmark", "--out", str(out), "--scale", "0.03"])
    code = main(["query", str(out), "item.name"])
    assert code == 0
    output = capsys.readouterr().out
    assert "index size:" in output
    assert "matches" in output


def test_query_command_with_k(tmp_path, capsys):
    out = tmp_path / "g.json"
    main(["generate", "xmark", "--out", str(out), "--scale", "0.03"])
    code = main(["query", str(out), "person.name", "--k", "2"])
    assert code == 0


def test_bench_command_small_scale(capsys):
    code = main(["bench", "fig4", "--scale", "0.03"])
    assert code == 0
    output = capsys.readouterr().out
    assert "[FIG4]" in output
    assert "D(k)" in output


def test_stats_missing_file_is_clean_error(tmp_path, capsys):
    # A nonexistent path raises OSError which is not a ReproError; the
    # CLI wraps only library errors, so use a corrupt file instead.
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "nope"}')
    code = main(["stats", str(bad)])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_twig_command(tmp_path, capsys):
    out = tmp_path / "g.json"
    main(["generate", "xmark", "--out", str(out), "--scale", "0.03"])
    code = main(["twig", str(out), "item[incategory]/name"])
    assert code == 0
    output = capsys.readouterr().out
    assert "F&B index:" in output
    assert "matches" in output


def test_dot_command(tmp_path, capsys):
    out = tmp_path / "g.json"
    main(["generate", "xmark", "--out", str(out), "--scale", "0.03"])
    code = main(["dot", str(out), "--index"])
    assert code == 0
    assert "digraph" in capsys.readouterr().out


def test_dot_command_size_guard(tmp_path, capsys):
    out = tmp_path / "g.json"
    main(["generate", "xmark", "--out", str(out), "--scale", "0.03"])
    with pytest.raises(ValueError):
        main(["dot", str(out), "--max-nodes", "3"])


def test_conformance_command(capsys):
    code = main(["conformance", "xmark", "--scale", "0.03"])
    assert code == 0
    assert "conforms" in capsys.readouterr().out


def test_explain_command(tmp_path, capsys):
    out = tmp_path / "g.json"
    main(["generate", "xmark", "--out", str(out), "--scale", "0.03"])
    code = main(["explain", str(out), "item.name"])
    assert code == 0
    assert "sound" in capsys.readouterr().out
    code = main(["explain", str(out), "site.regions.africa.item.name", "--k", "0"])
    assert code == 0
    assert "VALIDATES" in capsys.readouterr().out


def test_conformance_command_dblp(capsys):
    code = main(["conformance", "dblp", "--scale", "0.05"])
    assert code == 0
    assert "conforms" in capsys.readouterr().out


def test_bad_query_syntax_is_clean_error(tmp_path, capsys):
    out = tmp_path / "g.json"
    main(["generate", "xmark", "--out", str(out), "--scale", "0.03"])
    code = main(["query", str(out), "item..name"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_checkpoint_init_roll_and_recover(tmp_path, capsys):
    from repro.core.dindex import DKIndex
    from repro.graph.builder import graph_from_edges
    from repro.indexes.serialize import load_dk_index, save_dk_index

    graph = graph_from_edges(
        ["db", "m", "t", "a", "m", "t"], [(0, 1), (1, 2), (1, 3), (0, 4), (4, 5)]
    )
    dk = DKIndex.build(graph, {"t": 1})
    saved = tmp_path / "index.json"
    save_dk_index(dk, saved)
    store = tmp_path / "store"

    assert main(["checkpoint", str(store), "--init", str(saved)]) == 0
    assert "generation 1" in capsys.readouterr().out
    assert main(["checkpoint", str(store)]) == 0
    assert "generation 2" in capsys.readouterr().out

    out = tmp_path / "recovered.json"
    assert main(["recover", str(store), "--out", str(out)]) == 0
    output = capsys.readouterr().out
    assert "recovered via" in output
    restored = load_dk_index(out)
    assert restored.graph.num_edges == dk.graph.num_edges


def test_recover_unrecoverable_store_exits_nonzero(tmp_path, capsys):
    store = tmp_path / "store"
    store.mkdir()
    (store / "snapshot-0000001.json").write_text("garbage", encoding="utf-8")
    assert main(["recover", str(store)]) == 1
    assert "UNRECOVERED" in capsys.readouterr().out


def test_bench_recovery_writes_report(tmp_path, capsys):
    import json

    out = tmp_path / "BENCH_recovery.json"
    code = main(
        ["bench", "recovery", "--scale", "0.05", "--repeats", "1",
         "--edges", "3", "--datasets", "xmark", "--out", str(out)]
    )
    assert code == 0
    report = json.loads(out.read_text(encoding="utf-8"))
    assert report["schema"] == "dkindex-bench-recovery/1"
    assert {row["arm"] for row in report["results"]} == {"recover", "rebuild"}
    assert "[RECOVERY]" in capsys.readouterr().out


def test_chaos_no_durability_flag(capsys):
    code = main(["chaos", "--seed", "1", "--no-durability"])
    assert code == 0
    output = capsys.readouterr().out
    assert "durability crash matrix" not in output


def test_bench_bogus_scale_is_clean_error(capsys):
    # Regression: an unknown scale token used to escape as a raw
    # ValueError traceback from float(); it must be a clean CLI error.
    code = main(["bench", "fig4", "--scale", "bogus"])
    assert code == 1
    err = capsys.readouterr().err
    assert "error:" in err
    assert "bogus" in err
    assert "small" in err  # the message names the valid tokens


def test_bench_named_scale_accepted(capsys):
    # Named scales (small/medium/large) work on every bench experiment,
    # not just the refinement harness that introduced them.
    code = main(["bench", "fig4", "--scale", "small"])
    assert code == 0
    assert "[FIG4]" in capsys.readouterr().out


def test_bench_outofcore_writes_report(tmp_path, capsys):
    import json

    out = tmp_path / "BENCH_outofcore.json"
    code = main(
        ["bench", "outofcore", "--scale", "0.05", "--budget-ratio", "0.25",
         "--page-bytes", "4096", "--out", str(out)]
    )
    assert code == 0
    report = json.loads(out.read_text(encoding="utf-8"))
    assert report["schema"] == "dkindex-bench-outofcore/1"
    assert report["summary"]["partition_identical"] is True
    assert report["budget_bytes"] <= max(4096, report["footprint_bytes"] // 4)
    phases = report["phases"]
    assert set(phases) >= {
        "columnar_in_memory", "page_out", "external_build", "query_sweep"
    }
    assert phases["external_build"]["pool"]["misses"] > 0
    output = capsys.readouterr().out
    assert "[OUTOFCORE]" in output
    assert "partition identical" in output


def test_bench_outofcore_bogus_scale_is_clean_error(capsys):
    code = main(["bench", "outofcore", "--scale", "huge"])
    assert code == 1
    assert "error:" in capsys.readouterr().err
