"""Tests for :mod:`repro.maintenance.store` — the durability subsystem.

The contract under test: every persistence path is crash-atomic (a
crash leaves the old file or the new one, never a hybrid), every saved
byte is covered by an integrity check (any single-byte flip is a typed
error, never a silently different index), and the checkpoint store's
recovery ladder turns whatever a crash or bit-rot left behind into a
deep-audited index — flagging, never hiding, any committed operation
it could not get back.
"""

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dindex import DKIndex
from repro.exceptions import (
    CheckpointError,
    InjectedFaultError,
    JournalError,
    RecoveryError,
    SerializationError,
)
from repro.graph.builder import graph_from_edges
from repro.graph.serialize import load_graph, save_graph
from repro.indexes.evaluation import evaluate_on_index
from repro.indexes.serialize import index_to_dict, load_dk_index, save_dk_index
from repro.maintenance.chaos import run_durability_suite
from repro.maintenance.faults import inject_faults
from repro.maintenance.journal import UpdateJournal, _encode_line, scan_journal
from repro.maintenance.pipeline import UpdatePipeline
from repro.maintenance.store import (
    CURRENT_NAME,
    TMP_SUFFIX,
    CheckpointStore,
    atomic_write_document,
    atomic_write_text,
    journal_name,
    read_document,
    seal,
    snapshot_name,
    unseal,
)
from repro.paths.query import make_query


def small_dk():
    """A compact store with shared labels and a multi-node extent."""
    graph = graph_from_edges(
        ["db", "m", "t", "a", "m", "t", "a", "m", "x", "t"],
        [
            (0, 1), (1, 2), (1, 3),
            (0, 4), (4, 5), (4, 6),
            (0, 7), (7, 8), (7, 9), (7, 10),
            (7, 2),
        ],
    )
    return DKIndex.build(graph, {"t": 2, "x": 3})


def answers(dk):
    """Index answers for a battery of label paths."""
    return {
        text: evaluate_on_index(dk.index, make_query(text))
        for text in ("t", "m.t", "db.m", "db.m.t", "db.m.a", "m.x")
    }


def flip_byte(path: Path, offset: int, mask: int = 0x01) -> None:
    raw = bytearray(path.read_bytes())
    raw[offset % len(raw)] ^= mask
    path.write_bytes(bytes(raw))


# ------------------------- atomic writes -------------------------------


def test_atomic_write_replaces_and_leaves_no_temp(tmp_path):
    target = tmp_path / "doc.txt"
    atomic_write_text(target, "old")
    atomic_write_text(target, "new content")
    assert target.read_text(encoding="utf-8") == "new content"
    assert list(tmp_path.glob(f"*{TMP_SUFFIX}")) == []


@pytest.mark.parametrize("point", ["store.torn_write", "store.partial_rename"])
def test_crash_before_rename_preserves_old_content(tmp_path, point):
    target = tmp_path / "doc.txt"
    atomic_write_text(target, "old")
    with pytest.raises(InjectedFaultError):
        with inject_faults(point):
            atomic_write_text(target, "new content")
    assert target.read_text(encoding="utf-8") == "old"


def test_missing_fsync_crash_leaves_detectable_half_write(tmp_path):
    target = tmp_path / "doc.json"
    document = {"format": "x", "payload": list(range(40))}
    with pytest.raises(InjectedFaultError):
        with inject_faults("store.missing_fsync"):
            atomic_write_document(target, document)
    text = seal(json.dumps(document))
    assert target.read_text(encoding="utf-8") == text[: len(text) // 2]
    with pytest.raises(SerializationError):
        read_document(target)


# ------------------------- sealed documents ----------------------------


def test_seal_unseal_roundtrip():
    body = json.dumps({"a": 1})
    text = seal(body)
    recovered, sealed = unseal(text)
    assert recovered == body
    assert sealed


def test_unseal_passes_legacy_text_through():
    legacy = '{"format": "repro-datagraph"}\n'
    recovered, sealed = unseal(legacy)
    assert recovered == legacy
    assert not sealed


def test_read_document_verifies_the_seal(tmp_path):
    target = tmp_path / "doc.json"
    atomic_write_document(target, {"format": "x", "value": 7})
    assert read_document(target)["value"] == 7
    flip_byte(target, 12)
    with pytest.raises(SerializationError):
        read_document(target)


def test_read_document_accepts_unsealed_legacy_files(tmp_path):
    target = tmp_path / "legacy.json"
    target.write_text(json.dumps({"format": "x", "value": 3}), encoding="utf-8")
    assert read_document(target)["value"] == 3


def test_unsupported_seal_version_rejected(tmp_path):
    body = json.dumps({"a": 1})
    footer = json.dumps(
        {"format": "repro-seal", "version": 99, "algorithm": "sha256", "digest": "0"}
    )
    target = tmp_path / "doc.json"
    target.write_text(body + "\n" + footer + "\n", encoding="utf-8")
    with pytest.raises(SerializationError):
        read_document(target)


def test_legacy_unsealed_index_and_graph_still_load(tmp_path):
    dk = small_dk()
    index_path = tmp_path / "index.json"
    index_path.write_text(
        json.dumps(
            index_to_dict(
                dk.index, embed_graph=True, requirements=dict(dk.requirements)
            )
        ),
        encoding="utf-8",
    )
    restored = load_dk_index(index_path)
    assert answers(restored) == answers(dk)

    from repro.graph.serialize import graph_to_dict

    graph_path = tmp_path / "graph.json"
    graph_path.write_text(json.dumps(graph_to_dict(dk.graph)), encoding="utf-8")
    assert load_graph(graph_path).num_edges == dk.graph.num_edges


# ------------------------- bit-flip properties -------------------------


@pytest.fixture(scope="module")
def sealed_artifacts(tmp_path_factory):
    """One saved index file and one saved graph file, sealed."""
    base = tmp_path_factory.mktemp("sealed")
    dk = small_dk()
    index_path = base / "index.json"
    save_dk_index(dk, index_path)
    graph_path = base / "graph.json"
    save_graph(dk.graph, graph_path)
    return {"index": index_path, "graph": graph_path}


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_any_single_byte_flip_in_sealed_file_is_typed_error(
    sealed_artifacts, data
):
    kind = data.draw(st.sampled_from(["index", "graph"]))
    pristine = sealed_artifacts[kind].read_bytes()
    offset = data.draw(st.integers(min_value=0, max_value=len(pristine) - 1))
    mask = data.draw(st.sampled_from([0x01, 0x08, 0x80]))
    raw = bytearray(pristine)
    raw[offset] ^= mask
    loader = load_dk_index if kind == "index" else load_graph
    with tempfile.TemporaryDirectory() as scratch:
        damaged = Path(scratch) / "damaged.json"
        damaged.write_bytes(bytes(raw))
        with pytest.raises(SerializationError):
            loader(damaged)


@pytest.fixture(scope="module")
def journal_fixture(tmp_path_factory):
    """A v2 journal with a base and three committed operations."""
    base = tmp_path_factory.mktemp("journal")
    dk = small_dk()
    path = base / "ops.jsonl"
    journal = UpdateJournal.open(path, dk)
    for src, dst in ((2, 9), (3, 5), (6, 8)):
        seq = journal.begin("add_edge", {"src": src, "dst": dst})
        journal.commit(seq)
    pristine = list(UpdateJournal(path).entries())
    committed = scan_journal(path).committed_ops
    return path, pristine, committed


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_journal_byte_flip_never_silently_changes_replay(journal_fixture, data):
    path, pristine_entries, pristine_ops = journal_fixture
    raw = bytearray(path.read_bytes())
    offset = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    mask = data.draw(st.sampled_from([0x01, 0x08, 0x80]))
    raw[offset] ^= mask
    with tempfile.TemporaryDirectory() as scratch:
        damaged = Path(scratch) / "ops.jsonl"
        damaged.write_bytes(bytes(raw))
        # The strict reader: a typed error, or a prefix of the pristine
        # entries — a flipped trailing newline is indistinguishable from
        # a torn append, which readers tolerate by stopping before it.
        try:
            survived = list(UpdateJournal(damaged).entries())
        except JournalError:
            pass
        else:
            assert survived == pristine_entries[: len(survived)]
        # The forgiving reader never raises, and what it offers for
        # replay is always a prefix of the true committed history.
        scan = scan_journal(damaged)
        assert scan.committed_ops == pristine_ops[: len(scan.committed_ops)]
        if scan.committed_ops != pristine_ops:
            assert scan.damaged or scan.notes


def test_legacy_v1_journal_replays(tmp_path):
    dk = small_dk()
    document = index_to_dict(
        dk.index, embed_graph=True, requirements=dict(dk.requirements)
    )
    path = tmp_path / "v1.jsonl"
    lines = [
        {"type": "base", "seq": 0, "index": document},
        {"type": "begin", "seq": 1, "op": "add_edge", "args": {"src": 2, "dst": 9}},
        {"type": "commit", "seq": 1},
    ]
    path.write_text(
        "".join(json.dumps(record) + "\n" for record in lines), encoding="utf-8"
    )
    replayed = UpdateJournal(path).replay()
    from repro.core.updates import dk_add_edge

    dk_add_edge(dk.graph, dk.index, 2, 9)
    assert answers(replayed) == answers(dk)


def test_mixed_framing_v1_base_v2_appends(tmp_path):
    dk = small_dk()
    document = index_to_dict(
        dk.index, embed_graph=True, requirements=dict(dk.requirements)
    )
    path = tmp_path / "mixed.jsonl"
    path.write_text(
        json.dumps({"type": "base", "seq": 0, "index": document}) + "\n",
        encoding="utf-8",
    )
    journal = UpdateJournal(path)  # a new release appending to an old file
    seq = journal.begin("add_edge", {"src": 2, "dst": 9})
    journal.commit(seq)
    scan = scan_journal(path)
    assert scan.committed_ops == [(1, "add_edge", {"src": 2, "dst": 9})]
    assert not scan.damaged


# ------------------------- checkpoint store ----------------------------


def make_checkpointed_store(tmp_path, ops_per_generation=(2, 2)):
    """A store with one generation per entry of ``ops_per_generation``,
    each generation's journal holding that many committed edge adds."""
    dk = small_dk()
    edges = iter(((2, 9), (3, 5), (6, 8), (9, 4), (10, 1), (5, 7)))
    store = CheckpointStore.create(tmp_path / "store", dk)
    pipeline = UpdatePipeline(dk, store.maintenance_config(audit="deep"))
    for round_number, count in enumerate(ops_per_generation):
        if round_number:
            store.checkpoint(dk, pipeline)
        for _ in range(count):
            pipeline.add_edge(*next(edges))
    return store, dk


def test_create_refuses_an_existing_store(tmp_path):
    store, dk = make_checkpointed_store(tmp_path, (1,))
    with pytest.raises(CheckpointError):
        CheckpointStore.create(store.directory, dk)


def test_retain_must_leave_the_ladder_rungs():
    with pytest.raises(CheckpointError):
        CheckpointStore("anywhere", retain=0)


def test_checkpoint_rotates_prunes_and_repoints(tmp_path):
    dk = small_dk()
    store = CheckpointStore.create(tmp_path / "store", dk, retain=2)
    pruned = []
    for _ in range(4):
        info = store.checkpoint(dk)
        pruned.extend(info.pruned)
    assert store.generations() == [3, 4, 5]
    assert pruned == [1, 2]
    assert read_document(store.directory / CURRENT_NAME)["generation"] == 5
    assert store.journal_path.name == journal_name(5)


def test_recover_clean_store_replays_the_live_journal(tmp_path):
    store, dk = make_checkpointed_store(tmp_path, (2, 2))
    report = CheckpointStore(store.directory).recover()
    assert report.recovered
    assert report.strategy == "snapshot-2+replay"
    assert report.replayed == 2
    assert not report.data_loss
    assert report.dk is not None and answers(report.dk) == answers(dk)
    assert "recovered via" in report.format()


def test_recover_empty_directory_is_a_typed_error(tmp_path):
    with pytest.raises(RecoveryError):
        CheckpointStore(tmp_path / "nothing").recover()


def test_recover_sweeps_inflight_temp_files(tmp_path):
    store, _dk = make_checkpointed_store(tmp_path, (1,))
    leftover = store.directory / (snapshot_name(2) + TMP_SUFFIX)
    leftover.write_text("half a snapsh", encoding="utf-8")
    report = CheckpointStore(store.directory).recover()
    assert report.recovered
    assert not leftover.exists()
    assert any("temp file" in issue for issue in report.issues)


def test_recover_with_corrupt_current_pointer_trusts_the_scan(tmp_path):
    store, dk = make_checkpointed_store(tmp_path, (1, 1))
    flip_byte(store.directory / CURRENT_NAME, 5)
    report = CheckpointStore(store.directory).recover()
    assert report.recovered
    assert report.generation == 2
    statuses = {a.name: a.status for a in report.artifacts}
    assert statuses[CURRENT_NAME] == "corrupt"


def test_corrupt_snapshot_falls_back_to_the_journal_base(tmp_path):
    store, dk = make_checkpointed_store(tmp_path, (2, 2))
    flip_byte(store.directory / snapshot_name(2), 40)
    report = CheckpointStore(store.directory).recover()
    assert report.recovered
    assert report.strategy == "journal-base-2+replay"
    assert report.replayed == 2
    assert not report.data_loss
    assert answers(report.dk) == answers(dk)
    statuses = {a.name: a.status for a in report.artifacts}
    assert statuses[snapshot_name(2)] == "corrupt"


def test_older_generation_rung_chains_every_later_journal(tmp_path):
    store, dk = make_checkpointed_store(tmp_path, (2, 2))
    # Destroy generation 2's snapshot and its journal base: recovery
    # must climb down to generation 1 and replay both journals in order.
    flip_byte(store.directory / snapshot_name(2), 40)
    journal = store.directory / journal_name(2)
    lines = journal.read_text(encoding="utf-8").splitlines(keepends=True)
    lines[0] = "deadbeef" + lines[0][8:]
    journal.write_text("".join(lines), encoding="utf-8")
    report = CheckpointStore(store.directory).recover()
    assert report.recovered
    assert report.strategy == "snapshot-1+replay"
    assert report.replayed == 4
    # A destroyed base line is redundant with the snapshot chain — the
    # operation records behind it were all rescued, so no loss.
    assert not report.data_loss
    assert answers(report.dk) == answers(dk)


def test_audit_failing_snapshot_falls_through_to_rebuild(tmp_path):
    store, dk = make_checkpointed_store(tmp_path, (2,))
    # Reseal the snapshot with one child block's k inflated past its
    # parent's bound: it parses and loads, but the deep audit must
    # reject the Definition-3 violation, pushing recovery to the
    # Algorithm-2 rebuild rung.
    path = store.directory / snapshot_name(1)
    body, sealed = unseal(path.read_text(encoding="utf-8"))
    assert sealed
    document = json.loads(body)
    # Block of data node 6 — one the replayed edge operations never
    # touch, so the bogus k survives replay and reaches the audit.
    document["k"][document["node_of"][6]] += 7
    path.write_text(seal(json.dumps(document)), encoding="utf-8")
    report = CheckpointStore(store.directory).recover()
    assert report.recovered
    assert report.strategy == "rebuild-1+replay"
    assert report.replayed == 2
    assert answers(report.dk) == answers(dk)
    assert any(not rung.succeeded for rung in report.rungs)


def test_destroyed_operation_record_recovers_point_in_time(tmp_path):
    store, dk_oracle = make_checkpointed_store(tmp_path, (3,))
    journal = store.directory / journal_name(1)
    lines = journal.read_text(encoding="utf-8").splitlines(keepends=True)
    # Line 4 is the begin of seq 2; destroying it loses seq 2 and 3.
    lines[3] = "deadbeef" + lines[3][8:]
    journal.write_text("".join(lines), encoding="utf-8")
    report = CheckpointStore(store.directory).recover()
    assert report.recovered
    assert report.replayed == 1
    assert report.data_loss
    assert "WITH DATA LOSS" in report.format()
    # The recovered state is the consistent point after seq 1 alone.
    dk = small_dk()
    from repro.core.updates import dk_add_edge

    dk_add_edge(dk.graph, dk.index, 2, 9)
    assert answers(report.dk) == answers(dk)


def test_crash_mid_ladder_then_rerun_recovers(tmp_path):
    store, dk = make_checkpointed_store(tmp_path, (1, 1))
    with pytest.raises(InjectedFaultError):
        with inject_faults("recover.mid_ladder"):
            CheckpointStore(store.directory).recover()
    report = CheckpointStore(store.directory).recover()
    assert report.recovered and answers(report.dk) == answers(dk)


def test_durability_suite_is_clean(tmp_path):
    report = run_durability_suite(seed=0, work_dir=tmp_path / "chaos")
    assert report.ok, report.format()
    assert "durability crash matrix" in report.format()
