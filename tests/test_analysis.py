"""Tests for the repro.analysis invariant linter.

Each rule gets at least one positive fixture (a violation the rule must
flag) and one negative fixture (the sanctioned idiom it must not flag);
plus engine-level tests: module-name derivation, suppression comments,
parse-error reporting, rule selection and baseline round-trips.
"""

import ast
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis import (
    Baseline,
    BaselineError,
    LintEngine,
    all_rules,
    get_rules,
    load_baseline,
    module_name_for,
    write_baseline,
)
from repro.analysis.engine import PARSE_ERROR_RULE_ID, Rule
from repro.analysis.rules import (
    AtomicPersistenceRule,
    CostAccountingRule,
    ExtentOwnershipRule,
    FrozenSetattrRule,
    QuadraticMembershipRule,
    SeededRandomRule,
    SimilarityOwnershipRule,
    TypedDefsRule,
)
from repro.exceptions import ReproError


def lint(rule, source, module):
    """Findings of one rule over dedented source attributed to ``module``."""
    engine = LintEngine([rule()])
    return engine.check_source(dedent(source), path="fixture.py", module=module)


# ------------------------- DK101 extent-mutation ------------------------


def test_extent_mutation_flagged_outside_owners():
    source = """
    def corrupt(index, node):
        index.extents[node].append(99)
        index.node_of[0] = 1
    """
    findings = lint(ExtentOwnershipRule, source, "repro.indexes.evaluation")
    assert len(findings) == 2
    assert all(f.rule_id == "DK101" for f in findings)
    assert "extents" in findings[0].message
    assert "node_of" in findings[1].message


def test_extent_mutation_allowed_in_owner_modules():
    source = """
    def refine(index, node):
        index.extents[node].append(99)
    """
    for owner in ("repro.partition.refine", "repro.core.updates",
                  "repro.indexes.base"):
        assert lint(ExtentOwnershipRule, source, owner) == []


def test_extent_mutation_self_owned_class_exempt():
    source = """
    class Summary:
        def _append_node(self, extent):
            self.extents.append(extent)
    """
    assert lint(ExtentOwnershipRule, source, "repro.indexes.dataguide") == []


def test_extent_read_access_not_flagged():
    source = """
    def sizes(index):
        return [len(extent) for extent in index.extents]
    """
    assert lint(ExtentOwnershipRule, source, "repro.indexes.diagnostics") == []


# ------------------------- DK102 cost-counter-fork ----------------------


def test_fresh_cost_counter_flagged_in_evaluation_layer():
    source = """
    def evaluate(index, query):
        counter = CostCounter()
        return counter
    """
    findings = lint(CostAccountingRule, source, "repro.indexes.evaluation")
    assert [f.rule_id for f in findings] == ["DK102"]


def test_boundary_fallback_idiom_not_flagged():
    source = """
    def evaluate(index, query, counter=None):
        counter = counter if counter is not None else CostCounter()
        other = counter or CostCounter()
        return counter, other
    """
    assert lint(CostAccountingRule, source, "repro.paths.evaluator") == []


def test_cost_counter_free_outside_evaluation_layers():
    source = """
    def harness():
        return CostCounter()
    """
    assert lint(CostAccountingRule, source, "repro.bench.harness") == []


# ------------------------- DK103 frozen-setattr -------------------------


def test_foreign_frozen_setattr_flagged_everywhere():
    source = """
    def mutate(finding):
        object.__setattr__(finding, "line", 0)
    """
    for module in ("repro.core.tuner", "tests.test_foo", "scripts.tool"):
        findings = lint(FrozenSetattrRule, source, module)
        assert [f.rule_id for f in findings] == ["DK103"]


def test_self_setattr_in_defining_class_allowed():
    source = """
    class Config:
        def __post_init__(self):
            object.__setattr__(self, "cache", {})
    """
    assert lint(FrozenSetattrRule, source, "repro.core.tuner") == []


# ------------------------- DK104 unseeded-random ------------------------


def test_global_random_singleton_flagged_in_bench():
    source = """
    import random

    def sample(items):
        random.shuffle(items)
        return random.choice(items), random.Random()
    """
    findings = lint(SeededRandomRule, source, "repro.bench.harness")
    assert len(findings) == 3
    assert {f.rule_id for f in findings} == {"DK104"}


def test_seeded_rng_not_flagged():
    source = """
    import random

    def sample(items, seed):
        rng = random.Random(seed)
        rng.shuffle(items)
        return rng.choice(items)
    """
    assert lint(SeededRandomRule, source, "repro.workload.generator") == []


def test_unseeded_random_allowed_outside_bench_layers():
    source = """
    import random

    def jitter():
        return random.random()
    """
    assert lint(SeededRandomRule, source, "repro.core.tuner") == []


# ---------------------- DK105 quadratic-membership ----------------------


def test_list_membership_in_loop_flagged():
    source = """
    def overlap(items: list[int], big: list[int]) -> int:
        count = 0
        for item in items:
            if item in big:
                count += 1
        return count
    """
    findings = lint(QuadraticMembershipRule, source, "repro.indexes.evaluation")
    assert [f.rule_id for f in findings] == ["DK105"]
    assert "big" in findings[0].message


def test_extent_subscript_membership_in_loop_flagged():
    source = """
    def member(index, nodes, block: int) -> bool:
        return any(node in index.extents[block] for node in nodes)
    """
    findings = lint(QuadraticMembershipRule, source, "repro.indexes.evaluation")
    assert [f.rule_id for f in findings] == ["DK105"]


def test_hoisted_set_not_flagged():
    source = """
    def overlap(items: list[int], big: list[int]) -> int:
        fast = set(big)
        count = 0
        for item in items:
            if item in fast:
                count += 1
        return count
    """
    assert lint(QuadraticMembershipRule, source, "repro.partition.blocks") == []


def test_membership_outside_loop_not_flagged():
    source = """
    def contains(items: list[int], needle: int) -> bool:
        return needle in items
    """
    assert lint(QuadraticMembershipRule, source, "repro.indexes.base") == []


def test_for_iterable_evaluated_once_not_flagged():
    # The iterable expression of a `for` runs once, not per iteration.
    source = """
    def check(big: list[int], needle: int) -> None:
        for flag in [needle in big]:
            print(flag)
    """
    assert lint(QuadraticMembershipRule, source, "repro.indexes.base") == []


def test_rebound_name_is_not_provably_a_list():
    source = """
    def overlap(items: list[int], big: list[int]) -> int:
        big = set(big)
        count = 0
        for item in items:
            if item in big:
                count += 1
        return count
    """
    assert lint(QuadraticMembershipRule, source, "repro.indexes.base") == []


# ------------------------- DK106 untyped-def ----------------------------


def test_untyped_def_flagged_in_repro():
    source = """
    def helper(value, *rest):
        return value
    """
    findings = lint(TypedDefsRule, source, "repro.core.promote")
    assert [f.rule_id for f in findings] == ["DK106"]
    message = findings[0].message
    assert "`value`" in message and "*rest" in message
    assert "return type" in message


def test_fully_annotated_def_not_flagged():
    source = """
    class Thing:
        def method(self, value: int, *rest: str, flag: bool = False) -> int:
            return value
    """
    assert lint(TypedDefsRule, source, "repro.core.promote") == []


def test_untyped_defs_fine_outside_repro():
    source = """
    def helper(value):
        return value
    """
    assert lint(TypedDefsRule, source, "tests.test_helper") == []


# ------------------------- engine behaviour -----------------------------


def test_module_name_for_src_layout():
    assert module_name_for(Path("src/repro/core/updates.py")) == "repro.core.updates"
    assert module_name_for(Path("src/repro/analysis/__init__.py")) == "repro.analysis"
    assert module_name_for(Path("tests/test_cli.py")) == "tests.test_cli"
    assert module_name_for(Path("/root/repo/src/repro/cli.py")) == "repro.cli"


def test_syntax_error_becomes_parse_finding():
    engine = LintEngine(all_rules())
    findings = engine.check_source("def broken(:\n", path="bad.py")
    assert [f.rule_id for f in findings] == [PARSE_ERROR_RULE_ID]
    assert findings[0].path == "bad.py"


def test_line_suppression_honoured():
    source = dedent("""
    def mutate(finding):
        object.__setattr__(finding, "line", 0)  # lint: disable=DK103
    """)
    engine = LintEngine([FrozenSetattrRule()])
    assert engine.check_source(source, module="repro.x") == []


def test_suppression_by_rule_name_and_all():
    by_name = dedent("""
    def mutate(finding):
        object.__setattr__(finding, "line", 0)  # lint: disable=frozen-setattr
    """)
    engine = LintEngine([FrozenSetattrRule()])
    assert engine.check_source(by_name, module="repro.x") == []
    whole_file = dedent("""
    # lint: disable-file=all
    def mutate(finding):
        object.__setattr__(finding, "line", 0)
    """)
    assert engine.check_source(whole_file, module="repro.x") == []


def test_unrelated_suppression_does_not_hide_finding():
    source = dedent("""
    def mutate(finding):
        object.__setattr__(finding, "line", 0)  # lint: disable=DK104
    """)
    engine = LintEngine([FrozenSetattrRule()])
    findings = engine.check_source(source, module="repro.x")
    assert [f.rule_id for f in findings] == ["DK103"]


def test_run_over_directory_counts_files_and_suppressions(tmp_path):
    package = tmp_path / "src" / "repro" / "demo"
    package.mkdir(parents=True)
    (package / "clean.py").write_text(
        "def ok() -> int:\n    return 1\n", encoding="utf-8"
    )
    (package / "dirty.py").write_text(
        dedent("""
        def mutate(finding) -> None:
            object.__setattr__(finding, "line", 0)
            object.__setattr__(finding, "col", 0)  # lint: disable=DK103
        """),
        encoding="utf-8",
    )
    engine = LintEngine([FrozenSetattrRule(), TypedDefsRule()])
    report = engine.run([tmp_path])
    assert report.files_checked == 2
    assert report.suppressed == 1
    # one DK103 (line 3) + one DK106 (unannotated `finding` parameter)
    assert sorted(f.rule_id for f in report.findings) == ["DK103", "DK106"]
    assert not report.ok
    assert "2 file(s)" in report.format_text()


def test_get_rules_select_ignore_and_unknown():
    assert [r.rule_id for r in get_rules(select=["DK103"])] == ["DK103"]
    assert [r.rule_id for r in get_rules(select=["frozen-setattr"])] == ["DK103"]
    remaining = {r.rule_id for r in get_rules(ignore=["DK106"])}
    assert "DK106" not in remaining and "DK101" in remaining
    with pytest.raises(ReproError):
        get_rules(select=["DK999"])


# ------------------------- baselines ------------------------------------


def dirty_findings(tmp_path):
    source = dedent("""
    def mutate(finding) -> None:
        object.__setattr__(finding, "line", 0)
    """)
    path = tmp_path / "dirty.py"
    path.write_text(source, encoding="utf-8")
    engine = LintEngine([FrozenSetattrRule()])
    return engine.run([path]).findings


def test_baseline_roundtrip_and_filter(tmp_path):
    findings = dirty_findings(tmp_path)
    assert findings
    baseline_path = tmp_path / "baseline.json"
    baseline = write_baseline(baseline_path, findings)
    assert len(baseline) == len(findings)

    reloaded = load_baseline(baseline_path)
    assert reloaded.entries == baseline.entries
    new, matched = reloaded.filter(findings)
    assert new == [] and matched == len(findings)

    # The same finding twice only gets absorbed once per baselined count.
    new, matched = reloaded.filter(findings + findings)
    assert matched == len(findings) and len(new) == len(findings)


def test_baseline_survives_line_drift(tmp_path):
    findings = dirty_findings(tmp_path)
    baseline = Baseline.from_findings(findings)
    drifted = [
        type(f)(
            path=f.path, line=f.line + 40, column=f.column,
            rule_id=f.rule_id, rule_name=f.rule_name,
            message=f.message, snippet=f.snippet,
        )
        for f in findings
    ]
    new, matched = baseline.filter(drifted)
    assert new == [] and matched == len(findings)


def test_missing_baseline_is_empty(tmp_path):
    assert len(load_baseline(tmp_path / "nope.json")) == 0


def test_malformed_baselines_rejected():
    with pytest.raises(BaselineError):
        Baseline.from_json("not json")
    with pytest.raises(BaselineError):
        Baseline.from_json('{"version": 99, "findings": []}')
    with pytest.raises(BaselineError):
        Baseline.from_json('{"version": 1, "findings": {}}')
    with pytest.raises(BaselineError):
        Baseline.from_json('{"version": 1, "findings": [{"rule": "DK103"}]}')


# ------------------------- CLI ------------------------------------------


def test_cli_lint_reports_and_baselines(tmp_path, capsys):
    from repro.cli import main

    dirty = tmp_path / "src" / "repro" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text(
        "def mutate(finding) -> None:\n"
        '    object.__setattr__(finding, "line", 0)\n',
        encoding="utf-8",
    )
    baseline = tmp_path / "baseline.json"

    code = main(["lint", str(dirty), "--baseline", str(baseline)])
    output = capsys.readouterr().out
    assert code == 1
    assert "DK103" in output and "finding(s)" in output

    assert main(["lint", str(dirty), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    capsys.readouterr()
    code = main(["lint", str(dirty), "--baseline", str(baseline)])
    output = capsys.readouterr().out
    assert code == 0
    assert "baselined" in output


def test_cli_lint_json_and_rule_selection(tmp_path, capsys):
    import json

    from repro.cli import main

    dirty = tmp_path / "src" / "repro" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text("def untyped(x):\n    return x\n", encoding="utf-8")
    baseline = str(tmp_path / "baseline.json")

    code = main(["lint", str(dirty), "--baseline", baseline, "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["rule_id"] == "DK106"

    assert main(["lint", str(dirty), "--baseline", baseline,
                 "--ignore", "DK106"]) == 0
    capsys.readouterr()
    assert main(["lint", "--list-rules"]) == 0
    listing = capsys.readouterr().out
    assert "DK101" in listing and "quadratic-membership" in listing
    assert main(["lint", "--select", "DK999"]) == 1


def test_repo_ships_lint_clean():
    """The acceptance criterion: src/ and tests/ are clean, no baseline."""
    repo = Path(__file__).resolve().parent.parent
    engine = LintEngine(all_rules())
    report = engine.run([repo / "src", repo / "tests"])
    assert report.ok, report.format_text()
    committed = load_baseline(repo / "lint-baseline.json")
    assert len(committed) == 0


# ------------------------- DK107 similarity-assignment ------------------


def test_similarity_assignment_flagged_outside_owners():
    source = """
    def corrupt(index, node):
        index.k[node] = 0
    """
    findings = lint(SimilarityOwnershipRule, source, "repro.indexes.evaluation")
    assert len(findings) == 1
    assert findings[0].rule_id == "DK107"
    assert "assign_similarity" in findings[0].message


def test_similarity_augmented_assignment_flagged():
    source = """
    def bump(index, node):
        index.k[node] += 10
    """
    findings = lint(SimilarityOwnershipRule, source, "repro.engine")
    assert len(findings) == 1


def test_similarity_mutating_method_flagged():
    source = """
    def grow(index):
        index.k.append(0)
    """
    findings = lint(SimilarityOwnershipRule, source, "repro.bench.update")
    assert len(findings) == 1


def test_similarity_assignment_allowed_in_owner_modules():
    source = """
    def lower(index, node, value):
        index.k[node] = value
    """
    for owner in ("repro.core.updates", "repro.maintenance.transaction",
                  "repro.maintenance.faults"):
        assert lint(SimilarityOwnershipRule, source, owner) == []


def test_similarity_self_owned_class_exempt():
    source = """
    class IndexGraph:
        def add_node(self, label_id, k):
            self.k.append(k)
    """
    assert lint(SimilarityOwnershipRule, source, "repro.indexes.base") == []


def test_similarity_read_access_not_flagged():
    source = """
    def histogram(index):
        return sorted(index.k)
    """
    assert lint(SimilarityOwnershipRule, source, "repro.indexes.metrics") == []


# ------------------------- DK108 atomic-persistence ---------------------


def test_truncating_open_flagged_in_persistence_modules():
    source = """
    import json

    def save(document, path):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
    """
    for module in ("repro.indexes.serialize", "repro.maintenance.journal"):
        findings = lint(AtomicPersistenceRule, source, module)
        assert len(findings) == 1
        assert findings[0].rule_id == "DK108"
        assert "atomic_write" in findings[0].message


def test_truncating_mode_keyword_and_exclusive_create_flagged():
    source = """
    def save(path, other):
        open(path, mode="w+")
        open(other, "xb")
    """
    findings = lint(AtomicPersistenceRule, source, "repro.graph.serialize")
    assert len(findings) == 2


def test_append_and_read_opens_allowed():
    source = """
    def touch(path):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("x")
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
        open(path)
    """
    assert lint(AtomicPersistenceRule, source, "repro.maintenance.journal") == []


def test_atomic_writer_module_owns_its_truncating_write():
    source = """
    def atomic_write_text(path, text):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    """
    assert lint(AtomicPersistenceRule, source, "repro.maintenance.store") == []


def test_truncating_open_fine_outside_persistence_modules():
    source = """
    def dump(path, text):
        with open(path, "w") as handle:
            handle.write(text)
    """
    assert lint(AtomicPersistenceRule, source, "repro.bench.reporting") == []


# ------------------------- baseline staleness ---------------------------


def test_stale_entries_reported_and_pruned(tmp_path):
    findings = dirty_findings(tmp_path)
    baseline = Baseline.from_findings(findings + findings)  # count of 2
    stale = baseline.stale_entries(findings)
    assert len(stale) == 1
    rule, _path, _snippet, excess = stale[0]
    assert rule == "DK103" and excess == 1

    capped = baseline.pruned(findings)
    assert capped.stale_entries(findings) == []
    new, matched = capped.filter(findings)
    assert new == [] and matched == len(findings)

    # Fully fixed: every entry is stale, the pruned copy is empty.
    emptied = baseline.pruned([])
    assert len(emptied) == 0


def test_cli_reports_and_prunes_stale_baseline(tmp_path, capsys):
    from repro.cli import main

    dirty = tmp_path / "src" / "repro" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text(
        "def mutate(finding: object) -> None:\n"
        '    object.__setattr__(finding, "line", 0)\n',
        encoding="utf-8",
    )
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(dirty), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    capsys.readouterr()

    # Fix the violation; the baselined entry is now stale.
    dirty.write_text("def mutate() -> None:\n    return None\n",
                     encoding="utf-8")
    assert main(["lint", str(dirty), "--baseline", str(baseline)]) == 0
    output = capsys.readouterr().out
    assert "1 stale entry" in output
    assert "--prune-baseline" in output

    assert main(["lint", str(dirty), "--baseline", str(baseline),
                 "--prune-baseline"]) == 0
    output = capsys.readouterr().out
    assert "pruned 1 stale entry" in output
    assert len(load_baseline(baseline)) == 0

    # Once pruned, the note disappears.
    assert main(["lint", str(dirty), "--baseline", str(baseline)]) == 0
    assert "stale" not in capsys.readouterr().out


# ------------------------- dk: ignore directives ------------------------


def test_dk_ignore_is_line_scoped():
    source = dedent("""
    def mutate(finding):
        object.__setattr__(finding, "line", 0)  # dk: ignore[DK103]
        object.__setattr__(finding, "col", 1)
    """)
    engine = LintEngine([FrozenSetattrRule()])
    findings = engine.check_source(source, module="repro.x")
    assert [f.line for f in findings] == [4]


class _DecoratorAnchoredRule(Rule):
    """Toy rule anchoring its finding at a decorator expression."""

    rule_id = "DK903"
    name = "decorated-def"
    description = "flags every decorator (test helper)"

    def check(self, context):
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in node.decorator_list:
                    yield self.finding(context, decorator, "decorated")


def test_dk_ignore_on_def_line_covers_decorator_findings():
    engine = LintEngine([_DecoratorAnchoredRule()])
    bare = dedent("""
    @property
    def width(self):
        return 3
    """)
    assert len(engine.check_source(bare, module="repro.x")) == 1

    covered = dedent("""
    @property
    def width(self):  # dk: ignore[DK903]
        return 3
    """)
    assert engine.check_source(covered, module="repro.x") == []

    # A multi-line decorator call is covered end to end.
    spanning = dedent("""
    @some.registry(
        name="width",
    )
    def width(self):  # dk: ignore[decorated-def]
        return 3
    """)
    assert engine.check_source(spanning, module="repro.x") == []

    # The alias only spans that def's decorators, not its body.
    unrelated = dedent("""
    @property
    def width(self):  # dk: ignore[DK903]
        @property
        def inner(self):
            return 3
        return inner
    """)
    findings = engine.check_source(unrelated, module="repro.x")
    assert len(findings) == 1  # the inner decorator still fires
