"""Equivalence of the worklist engine, its parallel path, and the legacy
signature refinement.

The worklist engine must be *partition-identical* to the legacy
full-rehash loop — not just at the fixpoint but round for round, because
the D(k) construction freezes nodes against the intermediate rounds.
These tests drive all three paths — plus the columnar CSR engine, whose
deeper suite lives in ``test_columnar_engine.py`` — over the graph
families where the worklist bookkeeping can go wrong: trees, DAGs with
shared subtrees (many-parent nodes exercise the sorted-dedup
signatures) and cyclic IDREF-style graphs (dirt must propagate around
cycles).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import small_graphs
import repro.partition.engine as engine_module
from repro.core.broadcast import broadcast_for_graph
from repro.graph.datagraph import DataGraph
from repro.partition.engine import RefinementEngine, resolve_jobs
from repro.partition.refinement import (
    bisim_partition,
    kbisim_partition,
    label_partition,
    leveled_partition,
    refine_once,
    resolve_engine,
)

# ----------------------------------------------------------------------
# Seeded graph families
# ----------------------------------------------------------------------


def dag_with_shared_subtrees(seed, size=220, labels="abcdef"):
    """A DAG where many nodes have several parents (shared subtrees)."""
    rng = random.Random(seed)
    g = DataGraph()
    created = []
    for position in range(size):
        node = g.add_node(rng.choice(labels))
        if not created or rng.random() < 0.08:
            parent = g.root
        else:
            parent = created[rng.randrange(len(created))]
        g.add_edge_if_absent(parent, node)
        created.append(node)
    # Extra forward edges only (earlier -> later node ids keeps it acyclic),
    # so subtrees end up shared between multiple parents.
    for _ in range(size):
        a = rng.randrange(len(created))
        b = rng.randrange(len(created))
        if a == b:
            continue
        g.add_edge_if_absent(created[min(a, b)], created[max(a, b)])
    return g


def cyclic_idref_graph(seed, size=220, labels="abcde"):
    """A document tree plus random IDREF-style edges (cycles allowed)."""
    rng = random.Random(seed)
    g = DataGraph()
    created = []
    for position in range(size):
        node = g.add_node(rng.choice(labels))
        if not created or rng.random() < 0.1:
            parent = g.root
        else:
            parent = created[rng.randrange(len(created))]
        g.add_edge_if_absent(parent, node)
        created.append(node)
    for _ in range(size):
        src = created[rng.randrange(len(created))]
        dst = created[rng.randrange(len(created))]
        if src != dst:
            g.add_edge_if_absent(src, dst)  # any direction: cycles happen
    return g


def broadcast_levels(graph):
    """Label-derived levels adjusted by Algorithm 1 (valid D(k) input)."""
    initial = {
        label_id: label_id % 3 for label_id in range(graph.num_labels)
    }
    by_label = broadcast_for_graph(graph, graph.num_labels, initial)
    return [by_label[graph.label_ids[node]] for node in graph.nodes()]


def assert_engines_agree(graph, jobs=None):
    """All drivers produce equal partitions under every engine."""
    for k in (0, 1, 2, 4):
        legacy_k = kbisim_partition(graph, k, engine="legacy")
        assert kbisim_partition(
            graph, k, engine="worklist", jobs=jobs
        ) == legacy_k
        assert kbisim_partition(
            graph, k, engine="columnar", jobs=jobs
        ) == legacy_k
        assert kbisim_partition(
            graph, k, engine="external", jobs=jobs
        ) == legacy_k
    worklist, worklist_rounds = bisim_partition(
        graph, engine="worklist", jobs=jobs
    )
    columnar, columnar_rounds = bisim_partition(
        graph, engine="columnar", jobs=jobs
    )
    external, external_rounds = bisim_partition(
        graph, engine="external", jobs=jobs
    )
    legacy, legacy_rounds = bisim_partition(graph, engine="legacy")
    assert worklist == legacy == columnar == external
    assert worklist_rounds == legacy_rounds == columnar_rounds
    assert external_rounds == legacy_rounds
    levels = broadcast_levels(graph)
    legacy_leveled = leveled_partition(graph, levels, engine="legacy")
    assert leveled_partition(
        graph, levels, engine="worklist", jobs=jobs
    ) == legacy_leveled
    assert leveled_partition(
        graph, levels, engine="columnar", jobs=jobs
    ) == legacy_leveled
    assert leveled_partition(
        graph, levels, engine="external", jobs=jobs
    ) == legacy_leveled


# ----------------------------------------------------------------------
# Hypothesis: random small graphs, every driver
# ----------------------------------------------------------------------


@given(small_graphs(), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_worklist_kbisim_matches_legacy(graph, k):
    assert kbisim_partition(graph, k, engine="worklist") == kbisim_partition(
        graph, k, engine="legacy"
    )


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_worklist_fixpoint_matches_legacy(graph):
    worklist, worklist_rounds = bisim_partition(graph, engine="worklist")
    legacy, legacy_rounds = bisim_partition(graph, engine="legacy")
    assert worklist == legacy
    assert worklist_rounds == legacy_rounds


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_worklist_leveled_matches_legacy(graph):
    levels = broadcast_levels(graph)
    assert leveled_partition(graph, levels, engine="worklist") == (
        leveled_partition(graph, levels, engine="legacy")
    )


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_engine_rounds_match_legacy_round_for_round(graph):
    # The changing rounds of the engine equal the changing rounds of the
    # legacy loop, in order — the per-round identity the D(k) freezing
    # semantics rely on.
    legacy_rounds = []
    partition = label_partition(graph)
    while True:
        refined = refine_once(graph, partition)
        if refined.num_blocks == partition.num_blocks:
            break
        legacy_rounds.append(refined)
        partition = refined
    engine_rounds = list(RefinementEngine(graph).refine_rounds())
    assert len(engine_rounds) == len(legacy_rounds)
    for ours, theirs in zip(engine_rounds, legacy_rounds):
        assert ours == theirs


# ----------------------------------------------------------------------
# Seeded families: shared-subtree DAGs and cyclic IDREF graphs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_engines_agree_on_shared_subtree_dags(seed):
    assert_engines_agree(dag_with_shared_subtrees(seed))


@pytest.mark.parametrize("seed", range(5))
def test_engines_agree_on_cyclic_idref_graphs(seed):
    assert_engines_agree(cyclic_idref_graph(seed))


@pytest.mark.parametrize("seed", [0, 3])
def test_parallel_path_is_serial_identical(seed, monkeypatch):
    # Force the fork pool even on tiny rounds, then require bit-for-bit
    # agreement with the serial worklist AND the legacy engine.
    monkeypatch.setattr(engine_module, "PARALLEL_NODE_THRESHOLD", 0)
    graph = cyclic_idref_graph(seed, size=120)
    assert_engines_agree(graph, jobs=2)
    dag = dag_with_shared_subtrees(seed, size=120)
    assert_engines_agree(dag, jobs=2)


# ----------------------------------------------------------------------
# Engine selection plumbing
# ----------------------------------------------------------------------


def test_unknown_engine_rejected():
    g = cyclic_idref_graph(0, size=10)
    with pytest.raises(ValueError):
        kbisim_partition(g, 1, engine="quantum")


def test_resolve_engine_env_override(monkeypatch):
    monkeypatch.delenv("DKINDEX_ENGINE", raising=False)
    assert resolve_engine("auto") == "worklist"
    monkeypatch.setenv("DKINDEX_ENGINE", "legacy")
    assert resolve_engine("auto") == "legacy"
    assert resolve_engine("worklist") == "worklist"  # explicit beats env
    monkeypatch.setenv("DKINDEX_ENGINE", "columnar")
    assert resolve_engine("auto") == "columnar"
    monkeypatch.setenv("DKINDEX_ENGINE", "external")
    assert resolve_engine("auto") == "external"
    monkeypatch.setenv("DKINDEX_ENGINE", "bogus")
    with pytest.raises(ValueError):
        resolve_engine("auto")


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.delenv("DKINDEX_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    monkeypatch.setenv("DKINDEX_JOBS", "4")
    assert resolve_jobs(None) == 4
    assert resolve_jobs(2) == 2  # explicit beats env
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-1) >= 1
    monkeypatch.setenv("DKINDEX_JOBS", "many")
    with pytest.raises(ValueError):
        resolve_jobs(None)


def test_engine_validates_inputs():
    g = cyclic_idref_graph(0, size=10)
    with pytest.raises(ValueError):
        kbisim_partition(g, -1, engine="worklist")
    with pytest.raises(ValueError):
        leveled_partition(g, [0], engine="worklist")
    with pytest.raises(ValueError):
        leveled_partition(g, [-1] * g.num_nodes, engine="worklist")


def test_leveled_all_zero_levels_is_label_partition():
    g = cyclic_idref_graph(1, size=40)
    levels = [0] * g.num_nodes
    assert leveled_partition(g, levels, engine="worklist") == (
        label_partition(g)
    )
