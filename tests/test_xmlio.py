"""Unit tests for :mod:`repro.graph.xmlio`."""

import pytest

from repro.exceptions import GraphError
from repro.graph.xmlio import XmlOptions, graph_to_xml, parse_xml


NO_VALUES = XmlOptions(keep_values=False)


def test_elements_become_labeled_nodes():
    g = parse_xml("<db><movie><title>Heat</title></movie></db>", NO_VALUES)
    assert g.nodes_with_label("db") == [1]
    assert g.nodes_with_label("movie") == [2]
    assert g.nodes_with_label("title") == [3]
    assert g.has_edge(1, 2) and g.has_edge(2, 3)


def test_text_becomes_value_node():
    g = parse_xml("<db><t>x</t></db>")
    values = g.nodes_with_label("VALUE")
    assert len(values) == 1
    t = g.nodes_with_label("t")[0]
    assert g.has_edge(t, values[0])


def test_tail_text_becomes_value_node():
    g = parse_xml("<db><a/>tail</db>")
    values = g.nodes_with_label("VALUE")
    db = g.nodes_with_label("db")[0]
    assert len(values) == 1
    assert g.has_edge(db, values[0])


def test_whitespace_only_text_ignored():
    g = parse_xml("<db>\n  <a/>\n</db>")
    assert g.nodes_with_label("VALUE") == []


def test_attributes_become_child_nodes():
    g = parse_xml('<db><m year="1995"/></db>', NO_VALUES)
    year = g.nodes_with_label("year")
    assert len(year) == 1
    m = g.nodes_with_label("m")[0]
    assert g.has_edge(m, year[0])


def test_attribute_values_get_value_nodes():
    g = parse_xml('<db><m year="1995"/></db>')
    year = g.nodes_with_label("year")[0]
    assert any(g.label(c) == "VALUE" for c in g.children[year])


def test_idref_creates_reference_edge():
    g = parse_xml('<db><m id="m1"/><ref idref="m1"/></db>', NO_VALUES)
    m = g.nodes_with_label("m")[0]
    ref = g.nodes_with_label("ref")[0]
    assert g.has_edge(ref, m)


def test_idrefs_creates_multiple_edges():
    g = parse_xml(
        '<db><m id="m1"/><m id="m2"/><ref idrefs="m1 m2"/></db>', NO_VALUES
    )
    ref = g.nodes_with_label("ref")[0]
    assert len(g.children[ref]) == 2


def test_duplicate_id_rejected():
    with pytest.raises(GraphError):
        parse_xml('<db><a id="x"/><b id="x"/></db>')


def test_dangling_idref_dropped_by_default():
    g = parse_xml('<db><ref idref="missing"/></db>', NO_VALUES)
    ref = g.nodes_with_label("ref")[0]
    assert g.children[ref] == []


def test_dangling_idref_strict():
    options = XmlOptions(keep_values=False, strict_refs=True)
    with pytest.raises(GraphError):
        parse_xml('<db><ref idref="missing"/></db>', options)


def test_namespace_prefixes_stripped():
    g = parse_xml('<db xmlns:x="urn:x"><x:item/></db>', NO_VALUES)
    assert g.nodes_with_label("item") != []


def test_forward_reference_resolves():
    g = parse_xml('<db><ref idref="late"/><m id="late"/></db>', NO_VALUES)
    ref = g.nodes_with_label("ref")[0]
    m = g.nodes_with_label("m")[0]
    assert g.has_edge(ref, m)


def test_keep_attributes_false():
    options = XmlOptions(keep_values=False, keep_attributes=False)
    g = parse_xml('<db><m year="1995"/></db>', options)
    assert not g.has_label("year")


def test_roundtrip_through_xml():
    original = parse_xml(
        '<db><m id="m1"><t/></m><ref idref="m1"/></db>', NO_VALUES
    )
    text = graph_to_xml(original)
    reparsed = parse_xml(text, NO_VALUES)
    assert reparsed.num_nodes == original.num_nodes
    assert reparsed.num_edges == original.num_edges
    assert sorted(
        (reparsed.label(s), reparsed.label(d)) for s, d in reparsed.edges()
    ) == sorted((original.label(s), original.label(d)) for s, d in original.edges())


def test_roundtrip_random_graphs_isomorphic():
    from hypothesis import given, settings

    from conftest import small_graphs
    from repro.partition.refinement import bisim_partition

    @given(small_graphs(max_nodes=10, labels="abc"))
    @settings(max_examples=60, deadline=None)
    def run(graph):
        text = graph_to_xml(graph)
        reparsed = parse_xml(text, NO_VALUES)
        # Graphs whose root has several tree children render inside a
        # synthetic <document> wrapper element: one extra node and the
        # root edges re-routed through it.
        wrapped = text.startswith("<document>")
        wrapper_nodes = 1 if wrapped else 0
        assert reparsed.num_nodes == graph.num_nodes + wrapper_nodes
        if not wrapped:
            assert reparsed.num_edges == graph.num_edges
            assert sorted(
                (graph.label(s), graph.label(d)) for s, d in graph.edges()
            ) == sorted(
                (reparsed.label(s), reparsed.label(d))
                for s, d in reparsed.edges()
            )
            # Same bisimulation structure: a strong isomorphism proxy.
            assert (
                bisim_partition(graph)[0].num_blocks
                == bisim_partition(reparsed)[0].num_blocks
            )

    run()


def test_graph_to_xml_rejects_unreachable():
    from repro.graph.datagraph import DataGraph

    g = DataGraph()
    g.add_node("orphan")  # never connected
    with pytest.raises(GraphError):
        graph_to_xml(g)
