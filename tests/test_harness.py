"""Tests for :mod:`repro.bench.harness` (tiny scale)."""

import random

import pytest

from repro.bench.harness import (
    ExperimentConfig,
    load_dataset,
    sample_reference_edges,
    workload_average_cost,
)
from repro.datasets.xmark import generate_xmark
from repro.exceptions import DatasetError

TINY = ExperimentConfig(scale=0.03, num_queries=15, num_update_edges=10)


def test_load_dataset_builds_bundle():
    bundle = load_dataset("xmark", TINY)
    assert bundle.name == "xmark"
    assert bundle.load.total_weight == 15
    assert bundle.requirements
    assert len(bundle.update_edges) <= 10
    assert bundle.graph.num_nodes > 100


def test_load_dataset_cached():
    one = load_dataset("xmark", TINY)
    two = load_dataset("xmark", TINY)
    assert one is two


def test_load_dataset_unknown_name():
    with pytest.raises(DatasetError):
        load_dataset("enron", TINY)


def test_fresh_graph_is_a_copy():
    bundle = load_dataset("xmark", TINY)
    fresh = bundle.fresh_graph()
    assert fresh is not bundle.graph
    fresh.add_node("scratch")
    assert fresh.num_nodes == bundle.graph.num_nodes + 1


def test_fresh_dk_builds_over_copy():
    bundle = load_dataset("xmark", TINY)
    dk = bundle.fresh_dk()
    assert dk.graph is not bundle.graph
    dk.check_invariants()


def test_sample_reference_edges_protocol():
    doc = generate_xmark(scale=0.03, seed=0)
    rng = random.Random(1)
    edges = sample_reference_edges(doc.graph, doc.reference_pairs, 10, rng)
    assert len(edges) == 10
    assert len(set(edges)) == 10
    label_pairs = {
        (doc.graph.label(src), doc.graph.label(dst)) for src, dst in edges
    }
    assert label_pairs <= set(doc.reference_pairs)
    for src, dst in edges:
        assert not doc.graph.has_edge(src, dst)


def test_sample_reference_edges_requires_pairs():
    doc = generate_xmark(scale=0.03, seed=0)
    with pytest.raises(DatasetError):
        sample_reference_edges(doc.graph, [], 5, random.Random(0))


def test_workload_average_cost_zero_validation_for_tuned_dk():
    bundle = load_dataset("xmark", TINY)
    dk = bundle.fresh_dk(bundle.graph)
    cost, validated = workload_average_cost(dk.index, bundle.load)
    assert cost > 0
    assert validated == 0.0


def test_config_scaled_copy():
    assert TINY.scaled(0.5).scale == 0.5
    assert TINY.scale == 0.03
