"""Smoke tests for the experiment runners at tiny scale.

These re-assert the paper's qualitative shapes end-to-end at a scale
small enough for the unit-test suite; the benchmark suite re-runs them
at full scale.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    run_demote,
    run_eval_after_updates,
    run_eval_before_updates,
    run_promote,
    run_subgraph,
    run_update_table,
)
from repro.bench.harness import ExperimentConfig

TINY = ExperimentConfig(scale=0.06, num_queries=20, num_update_edges=10)


def points_by_name(result):
    return {p.name: p for p in result.points}


@pytest.mark.parametrize("dataset", ["xmark", "nasa"])
def test_eval_before_updates_shape(dataset):
    result = run_eval_before_updates(dataset, TINY)
    by = points_by_name(result)
    assert set(by) == {"A(0)", "A(1)", "A(2)", "A(3)", "A(4)", "D(k)"}
    # A(k) sizes grow with k; costs shrink with k.
    sizes = [by[f"A({k})"].index_size for k in range(5)]
    assert sizes == sorted(sizes)
    assert by["A(0)"].avg_cost >= by["A(4)"].avg_cost
    # D(k) is tuned: never validates.
    assert by["D(k)"].validation_fraction == 0.0


def test_update_table_contains_all_indexes():
    result = run_update_table("xmark", TINY)
    by = points_by_name(result)
    assert set(by) == {"A(1)", "A(2)", "A(3)", "A(4)", "D(k)"}
    assert "Table 1" in result.extra_lines[0]


def test_eval_after_updates_dk_size_constant():
    before = run_eval_before_updates("xmark", TINY)
    after = run_eval_after_updates("xmark", TINY)
    assert (
        points_by_name(after)["D(k)"].index_size
        == points_by_name(before)["D(k)"].index_size
    )


def test_promote_experiment_recovers():
    result = run_promote("xmark", TINY)
    by = points_by_name(result)
    assert by["D(k) promoted"].avg_cost <= by["D(k) updated"].avg_cost
    assert by["D(k) promoted"].validation_fraction == 0.0


def test_demote_experiment_shrinks():
    result = run_demote("xmark", TINY)
    by = points_by_name(result)
    assert by["D(k) demoted"].index_size <= by["D(k) exact reqs"].index_size


def test_subgraph_experiment_matches_rebuild():
    result = run_subgraph("xmark", TINY)
    by = points_by_name(result)
    assert (
        by["D(k) incremental"].index_size == by["D(k) rebuilt"].index_size
    )


def test_registry_covers_all_paper_artefacts():
    assert {"fig4", "fig5", "table1", "fig6", "fig7"} <= set(EXPERIMENTS)
    assert {"promote", "demote", "subgraph", "construct",
            "precision", "twig", "drift"} <= set(EXPERIMENTS)
    for runner, datasets in EXPERIMENTS.values():
        assert callable(runner)
        assert set(datasets) <= {"xmark", "nasa", "dblp"}


def test_precision_experiment_shape():
    from repro.bench.experiments import run_precision

    result = run_precision("xmark", TINY)
    by = points_by_name(result)
    assert by["D(k)"].avg_cost == pytest.approx(1.0)  # perfect raw precision
    precisions = [by[f"A({k})"].avg_cost for k in range(5)]
    assert all(a <= b + 1e-9 for a, b in zip(precisions, precisions[1:]))


def test_twig_experiment_shape():
    from repro.bench.experiments import run_twig

    result = run_twig("nasa", TINY)
    by = points_by_name(result)
    assert by["F&B"].avg_cost <= by["data graph"].avg_cost
    assert by["F&B"].index_size >= by["1-index (size ref)"].index_size


def test_drift_experiment_shape():
    from repro.bench.experiments import run_drift

    result = run_drift("xmark", TINY)
    by = points_by_name(result)
    assert by["adaptive long"].avg_cost <= by["static long"].avg_cost


def test_dataguide_experiment_shape():
    from repro.bench.experiments import run_dataguide

    result = run_dataguide("xmark", TINY)
    by = points_by_name(result)
    assert by["1-index"].index_size < by["data graph"].index_size
    assert "strong DataGuide" in by


def test_results_render():
    result = run_eval_before_updates("xmark", TINY)
    text = result.render()
    assert "A(0)" in text and "D(k)" in text
