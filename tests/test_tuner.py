"""Tests for :mod:`repro.core.tuner` (adaptive promote/demote policy)."""

from repro.core.dindex import DKIndex
from repro.core.tuner import AdaptiveTuner, TunerConfig
from repro.graph.builder import graph_from_edges
from repro.paths.cost import CostCounter
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import make_query


def chain_graph():
    labels = ["a", "b", "c", "d", "t"]
    edges = [(i, i + 1) for i in range(5)]
    edges += [(0, 5), (1, 5)]  # extra t parents so t needs refining
    return graph_from_edges(labels, edges)


def test_tuner_promotes_on_long_query_arrival():
    g = chain_graph()
    dk = DKIndex.build(g, {})
    tuner = AdaptiveTuner(
        dk, TunerConfig(window=50, min_queries=5, check_every=5)
    )
    long_query = make_query("a.b.c.d.t")
    actions = [tuner.observe(long_query) for _ in range(10)]
    taken = [a for a in actions if a]
    assert taken, "tuner should promote for the new long query"
    assert "t" in taken[0].promoted
    counter = CostCounter()
    assert dk.evaluate(long_query, counter) == evaluate_on_data_graph(
        g, long_query
    )
    assert counter.validated_queries == 0


def test_tuner_demotes_when_long_queries_leave():
    g = chain_graph()
    dk = DKIndex.build(g, {"t": 4})
    tuner = AdaptiveTuner(
        dk, TunerConfig(window=20, min_queries=5, check_every=5, demote_slack=2)
    )
    short_query = make_query("d.t")
    size_before = dk.size
    for _ in range(30):
        tuner.observe(short_query)
    assert dk.requirements.get("t", 0) < 4
    assert dk.size <= size_before


def test_tuner_hysteresis_blocks_small_demotions():
    g = chain_graph()
    dk = DKIndex.build(g, {"t": 2})
    tuner = AdaptiveTuner(
        dk, TunerConfig(window=20, min_queries=5, check_every=5, demote_slack=3)
    )
    for _ in range(30):
        tuner.observe(make_query("d.t"))  # would mine t: 1 (drop of 1 < 3)
    assert dk.requirements.get("t") == 2  # unchanged


def test_tuner_respects_min_queries():
    g = chain_graph()
    dk = DKIndex.build(g, {})
    tuner = AdaptiveTuner(
        dk, TunerConfig(window=50, min_queries=100, check_every=1)
    )
    assert tuner.observe(make_query("a.b.c.d.t")) is None


def test_tuner_answers_stay_exact_throughout():
    g = chain_graph()
    dk = DKIndex.build(g, {})
    tuner = AdaptiveTuner(dk, TunerConfig(window=30, min_queries=4, check_every=4))
    stream = (
        [make_query("b.c")] * 10
        + [make_query("a.b.c.d.t")] * 10
        + [make_query("c.d")] * 10
    )
    for query in stream:
        assert dk.evaluate(query) == evaluate_on_data_graph(g, query)
        tuner.observe(query)
        dk.check_invariants()
    assert tuner.actions  # it did adapt along the way


def test_window_load_reflects_recent_queries():
    g = chain_graph()
    dk = DKIndex.build(g, {})
    tuner = AdaptiveTuner(dk, TunerConfig(window=3))
    for text in ("a.b", "b.c", "c.d", "d.t"):
        tuner.observe(make_query(text))
    load = tuner.window_load()
    assert load.total_weight == 3  # window evicted the oldest
    assert load.weight(make_query("a.b")) == 0
