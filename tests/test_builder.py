"""Unit tests for :mod:`repro.graph.builder`."""

import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder, graph_from_edges


def test_named_nodes_and_edges():
    b = GraphBuilder()
    b.node("m", "movie", parent="root")
    b.node("t", "title", parent="m")
    g = b.graph
    assert g.label(b.id_of("t")) == "title"
    assert g.has_edge(b.id_of("m"), b.id_of("t"))


def test_duplicate_name_rejected():
    b = GraphBuilder()
    b.node("m", "movie", parent="root")
    with pytest.raises(GraphError):
        b.node("m", "movie")


def test_unknown_name_rejected():
    b = GraphBuilder()
    with pytest.raises(GraphError):
        b.id_of("missing")
    with pytest.raises(GraphError):
        b.node("x", "a", parent="missing")


def test_explicit_edge():
    b = GraphBuilder()
    b.node("a", "a", parent="root")
    b.node("b", "b", parent="root")
    b.edge("a", "b")
    assert b.graph.has_edge(b.id_of("a"), b.id_of("b"))


def test_tree_spec():
    b = GraphBuilder()
    root_name = b.tree({"movie": ["title", {"actor": ["name"]}]})
    g = b.graph
    assert root_name == "movie"
    assert sorted(set(g.label_names())) == ["ROOT", "actor", "movie", "name", "title"]
    movie = b.id_of("movie")
    assert g.has_edge(g.root, movie)
    assert g.has_edge(b.id_of("actor"), b.id_of("name"))


def test_tree_fresh_names_for_repeats():
    b = GraphBuilder()
    first = b.tree({"movie": ["title"]})
    second = b.tree({"movie": ["title"]})
    assert first != second
    assert b.graph.nodes_with_label("movie") == [
        b.id_of(first), b.id_of(second)
    ]


def test_tree_rejects_multikey_mapping():
    b = GraphBuilder()
    with pytest.raises(GraphError):
        b.tree({"a": [], "b": []})


def test_graph_from_edges():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2)])
    assert g.num_nodes == 3
    assert g.label(1) == "a"
    assert g.label(2) == "b"
    assert g.has_edge(1, 2)


def test_graph_from_edges_empty():
    g = graph_from_edges([], [])
    assert g.num_nodes == 1
