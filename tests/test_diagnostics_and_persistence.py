"""Tests for diagnostics auditing, workload persistence and CSV output."""

import io
import random

import pytest
from hypothesis import given, settings

from conftest import small_graphs
from repro.bench.reporting import ExperimentResult, SeriesPoint
from repro.core.dindex import DKIndex
from repro.core.updates import dk_add_edge
from repro.exceptions import SerializationError
from repro.graph.builder import graph_from_edges
from repro.indexes.akindex import build_ak_index
from repro.indexes.diagnostics import audit_similarities
from repro.indexes.oneindex import build_1index
from repro.paths.query import make_query
from repro.paths.twig import parse_twig
from repro.workload.queryload import QueryLoad
from repro.workload.serialize import (
    load_from_dict,
    load_query_load,
    load_to_dict,
    save_query_load,
)


# ------------------------- audit_similarities --------------------------


def two_x_graph():
    return graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )


def test_audit_clean_on_fresh_indexes():
    g = two_x_graph()
    for index in (build_ak_index(g, 0), build_ak_index(g, 3), build_1index(g)):
        report = audit_similarities(index)
        assert report.ok, report.format()
        assert report.nodes_checked > 0
        assert "clean" in report.format()


def test_audit_detects_overstated_k():
    g = two_x_graph()
    index = build_ak_index(g, 0)
    index.k[index.node_of[3]] = 2  # the {x, x} extent is only 0-consistent
    report = audit_similarities(index)
    assert not report.ok
    finding = report.findings[0]
    assert finding.label == "x"
    assert finding.assigned_k == 2
    assert "x" in str(finding)
    assert "claims" in report.format()


def test_audit_clean_after_update_stream():
    g = two_x_graph()
    dk = DKIndex.build(g, {"x": 2})
    dk_add_edge(g, dk.index, 3, 4)  # x -> x reference
    dk_add_edge(g, dk.index, 1, 4)
    report = audit_similarities(dk.index)
    assert report.ok, report.format()


def test_audit_skips_on_path_budget():
    # A dense cyclic blob exceeds a tiny path budget -> skipped, not hung.
    g = graph_from_edges(
        ["a", "a", "a"],
        [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 1), (1, 3), (2, 1)],
    )
    index = build_ak_index(g, 3)
    report = audit_similarities(index, max_paths=3)
    assert report.nodes_skipped >= 1


@given(small_graphs(max_nodes=8))
@settings(max_examples=50, deadline=None)
def test_audit_clean_on_random_dk(graph):
    dk = DKIndex.build(
        graph, {graph.label_name(i): 2 for i in range(graph.num_labels)}
    )
    assert audit_similarities(dk.index, max_paths=50_000).ok


# ------------------------- workload persistence ------------------------


def sample_load():
    load = QueryLoad()
    load.add(make_query("a.b"), 3)
    load.add(make_query("/site.regions"), 1)
    load.add(make_query("a.(b|c)*"), 2)
    load.add(parse_twig("m[a]/t"), 4)
    return load


def test_query_load_roundtrip_stream():
    load = sample_load()
    buffer = io.StringIO()
    save_query_load(load, buffer)
    buffer.seek(0)
    restored = load_query_load(buffer)
    assert restored.total_weight == load.total_weight
    assert restored.num_distinct == load.num_distinct
    assert restored.weight(make_query("a.b")) == 3


def test_query_load_roundtrip_file(tmp_path):
    path = tmp_path / "load.json"
    save_query_load(sample_load(), path)
    restored = load_query_load(path)
    assert restored.total_weight == 10


def test_query_load_twig_prefix_roundtrips():
    load = QueryLoad()
    load.add(parse_twig("a[b]/c"), 2)
    data = load_to_dict(load)
    assert data["queries"][0][0].startswith("twig:")
    restored = load_from_dict(data)
    restored_query = next(iter(restored))
    assert restored_query.to_text() == parse_twig("a[b]/c").to_text()
    assert restored.weight(restored_query) == 2


def test_query_load_rejects_corruption():
    with pytest.raises(SerializationError):
        load_from_dict({"format": "nope"})
    with pytest.raises(SerializationError):
        load_from_dict(
            {"format": "repro-queryload", "version": 1, "queries": [["a"]]}
        )
    with pytest.raises(SerializationError):
        load_from_dict(
            {"format": "repro-queryload", "version": 2, "queries": []}
        )
    with pytest.raises(SerializationError):
        load_from_dict([1])


def test_mined_requirements_survive_roundtrip():
    from repro.workload.mining import exact_requirements

    load = sample_load()
    buffer = io.StringIO()
    save_query_load(load, buffer)
    buffer.seek(0)
    assert exact_requirements(load_query_load(buffer)) == exact_requirements(load)


# ------------------------- CSV output -----------------------------------


def test_experiment_result_to_csv():
    result = ExperimentResult("FIG4", "demo")
    result.points.append(SeriesPoint("A(0)", 72, 1921.14, 1.0))
    result.points.append(SeriesPoint("D(k)", 692, 67.4, 0.0, note="a, b"))
    csv = result.to_csv()
    lines = csv.splitlines()
    assert lines[0] == "index,size,avg_cost,validated,note"
    assert lines[1] == "A(0),72,1921.1,1.00,"
    assert lines[2] == "D(k),692,67.4,0.00,a; b"  # comma sanitised


def test_cli_bench_csv(capsys):
    from repro.cli import main

    code = main(["bench", "fig4", "--scale", "0.03", "--csv"])
    assert code == 0
    output = capsys.readouterr().out
    assert "# FIG4 xmark" in output
    assert "index,size,avg_cost,validated,note" in output
