"""Tests for :mod:`repro.partition.paige_tarjan`.

The decisive property: Paige–Tarjan must produce *exactly* the same
partition as both the signature-hash fixpoint and the brute-force
pairwise oracle, on every random graph we can throw at it.
"""

from hypothesis import given, settings

from conftest import brute_force_full_bisim, small_graphs
from repro.graph.builder import graph_from_edges
from repro.graph.datagraph import DataGraph
from repro.indexes.oneindex import build_1index
from repro.partition.paige_tarjan import paige_tarjan_bisim
from repro.partition.refinement import bisim_partition


def test_trivial_graph():
    g = DataGraph()
    p = paige_tarjan_bisim(g)
    assert p.num_blocks == 1


def test_two_x_graph():
    g = graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )
    p = paige_tarjan_bisim(g)
    assert p.num_blocks == 5
    assert not p.same_block(3, 4)


def test_bisimilar_nodes_stay_together():
    # Two x nodes with identical incoming structure must share a block.
    g = graph_from_edges(
        ["a", "x", "x"], [(0, 1), (1, 2), (1, 3)]
    )
    p = paige_tarjan_bisim(g)
    assert p.same_block(2, 3)


def test_cycle_handling():
    g = graph_from_edges(
        ["a", "b", "a", "b"],
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 1)],
    )
    assert paige_tarjan_bisim(g) == bisim_partition(g)[0]


def test_self_loop():
    g = graph_from_edges(["a", "a"], [(0, 1), (1, 1), (0, 2)])
    assert paige_tarjan_bisim(g) == bisim_partition(g)[0]


def test_deep_chain_splits_fully():
    labels = ["x"] * 6
    edges = [(i, i + 1) for i in range(6)]
    g = graph_from_edges(labels, edges)
    p = paige_tarjan_bisim(g)
    # Every chain position has distinct incoming paths.
    assert p.num_blocks == 7


def test_wide_graph_with_shared_children():
    g = graph_from_edges(
        ["a", "b", "c", "d"],
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4)],
    )
    assert paige_tarjan_bisim(g) == bisim_partition(g)[0]


def test_build_1index_method_equivalence():
    g = graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )
    fix = build_1index(g, method="fixpoint")
    pt = build_1index(g, method="paige-tarjan")
    assert fix.to_partition() == pt.to_partition()


def test_build_1index_unknown_method():
    import pytest

    g = graph_from_edges(["a"], [(0, 1)])
    with pytest.raises(ValueError):
        build_1index(g, method="quantum")


def test_on_dataset_sample():
    from repro.datasets.xmark import generate_xmark

    g = generate_xmark(scale=0.03, seed=5).graph
    assert paige_tarjan_bisim(g) == bisim_partition(g)[0]


@given(small_graphs(max_nodes=12, labels="abcd", extra_edge_factor=2))
@settings(max_examples=200, deadline=None)
def test_paige_tarjan_matches_fixpoint_and_oracle(graph):
    pt = paige_tarjan_bisim(graph)
    fixpoint, _rounds = bisim_partition(graph)
    assert pt == fixpoint
    assert pt == brute_force_full_bisim(graph)
