"""Tests for the interprocedural rule pack DK109–DK112.

Each rule gets a deliberately planted violation that the per-file
DK101–DK108 pass provably misses (asserted in the same test), the
sanctioned fix pattern it must not flag, and the repo-wide gate: the
shipped source tree is deep-clean and analyzes in well under the CI
budget.
"""

from textwrap import dedent

import pytest

from repro.analysis import LintEngine, all_rules
from repro.analysis.flow import (
    all_deep_rules,
    analyze_sources,
    get_deep_rules,
    run_deep,
    run_deep_rules,
)
from repro.cli import main
from repro.exceptions import ReproError


def deep_findings(modules, rules=None):
    sources = {
        name: dedent(source) for name, source in modules.items()
    }
    analysis = analyze_sources(sources)
    report = run_deep_rules(analysis, rules)
    return report


def shallow_findings(modules):
    engine = LintEngine(all_rules())
    found = []
    for name, source in modules.items():
        path = name.replace(".", "/") + ".py"
        found.extend(
            engine.check_source(dedent(source), path=path, module=name)
        )
    return found


# ------------------------- DK109 fork safety ----------------------------

FORK_UNSAFE = {
    "repro.partition.parallel": """
    from multiprocessing import Pool

    SEEN: list = []

    def _worker(chunk: list) -> list:
        SEEN.append(chunk)
        return chunk

    def refine(chunks: list) -> list:
        with Pool(2) as pool:
            return pool.map(_worker, chunks)
    """
}

FORK_SAFE = {
    "repro.partition.parallel": """
    from multiprocessing import Pool

    def _worker(chunk: list) -> list:
        return sorted(chunk)

    def refine(chunks: list) -> list:
        with Pool(2) as pool:
            return pool.map(_worker, chunks)
    """
}


def test_dk109_flags_fork_unsafe_worker():
    report = deep_findings(FORK_UNSAFE)
    assert [f.rule_id for f in report.findings] == ["DK109"]
    finding = report.findings[0]
    assert "_worker" in finding.message
    assert "SEEN" in finding.message


def test_dk109_fork_unsafe_closure():
    report = deep_findings(
        {
            "repro.partition.parallel": """
            from multiprocessing import Pool

            def refine(chunks: list) -> list:
                seen: list = []
                with Pool(2) as pool:
                    pool.map(lambda chunk: seen.append(chunk), chunks)
                return seen
            """
        }
    )
    assert [f.rule_id for f in report.findings] == ["DK109"]
    assert "shared container `seen`" in report.findings[0].message


def test_dk109_violation_invisible_to_per_file_pass():
    assert shallow_findings(FORK_UNSAFE) == []


def test_dk109_pure_worker_clean():
    assert deep_findings(FORK_SAFE).findings == []


def test_dk109_recognizes_columnar_shm_dispatch_site():
    # The columnar engine dispatches through a pool stored on the
    # instance (`self._pool.map(...)`) with all buffers shipped via
    # shared memory, not pickling.  DK109 must still see the dispatch
    # site, resolve the worker, and find it pure (it only reads the
    # inherited segments and returns keys).
    from pathlib import Path

    import repro.partition.columnar as columnar_module

    source = Path(columnar_module.__file__).read_text(encoding="utf-8")
    analysis = analyze_sources({"repro.partition.columnar": source})
    sites = analysis.program.dispatch_sites
    workers = {site.worker for site in sites}
    assert any(
        worker.endswith("._columnar_signature_chunk") for worker in workers
    ), f"shm dispatch site not recognized; saw {workers!r}"
    assert all(site.kind == "pool" for site in sites)
    report = run_deep_rules(analysis, get_deep_rules(select=["DK109"]))
    assert report.findings == []


# ------------------------- DK110 transaction coverage -------------------

UNJOURNALED = {
    "repro.maintenance.sneaky": """
    def erode(index: object, node: int) -> None:
        index.k[node] -= 1

    def weaken(index: object) -> None:
        erode(index, 0)
    """
}

JOURNALED = {
    "repro.maintenance.sneaky": """
    def erode(index: object, node: int) -> None:
        index.k[node] -= 1

    def weaken(graph: object, index: object) -> None:
        with UpdateTransaction(graph, index):
            erode(index, 0)
    """
}


def test_dk110_flags_unjournaled_mutation():
    report = deep_findings(UNJOURNALED)
    assert [f.rule_id for f in report.findings] == ["DK110"]
    assert "index.k" in report.findings[0].message
    assert "UpdateTransaction" in report.findings[0].message


def test_dk110_violation_invisible_to_per_file_pass():
    # repro.maintenance is an owner module for DK101/DK107, so the
    # per-file pass deliberately allows the mutation — only the deep
    # pass sees it is reachable outside any transaction.
    assert shallow_findings(UNJOURNALED) == []


def test_dk110_covered_caller_protects_callee():
    assert deep_findings(JOURNALED).findings == []


def test_dk110_fresh_index_is_laundered():
    report = deep_findings(
        {
            "repro.maintenance.replay": """
            class IndexGraph:
                def __init__(self) -> None:
                    self.k: dict = {}

            def rebuild() -> IndexGraph:
                index = IndexGraph()
                index.k[0] = 1
                return index
            """
        }
    )
    # rebuild writes only to an index it just constructed — nothing any
    # concurrent reader could observe — and __init__'s receiver writes
    # are the constructor's own business.  No transaction required.
    assert report.findings == []


def test_dk110_exempt_modules_not_flagged():
    report = deep_findings(
        {
            "repro.maintenance.faults": """
            def corrupt(index, victim: int) -> None:
                index.k[victim] += 10
            """
        }
    )
    assert report.findings == []


# ------------------------- DK111 alias escape ---------------------------

ALIAS_ESCAPE = {
    "repro.indexes.evaluation": """
    def _lookup(index: object, label: int) -> set:
        return index.extents[label]

    def serve(index: object, label: int) -> set:
        return _lookup(index, label)
    """
}

ALIAS_COPIED = {
    "repro.indexes.evaluation": """
    def _lookup(index: object, label: int) -> set:
        return set(index.extents[label])

    def serve(index: object, label: int) -> set:
        return _lookup(index, label)
    """
}


def test_dk111_flags_escaped_alias():
    report = deep_findings(ALIAS_ESCAPE)
    assert report.findings
    assert all(f.rule_id == "DK111" for f in report.findings)
    flagged = {f.message.split("`")[1] for f in report.findings}
    assert "_lookup" in flagged  # the origin is flagged
    assert any("serve" in f.message for f in report.findings)  # and the escape


def test_dk111_violation_invisible_to_per_file_pass():
    # DK101 polices writes; a returned read reference is invisible to
    # the per-file pass.
    assert shallow_findings(ALIAS_ESCAPE) == []


def test_dk111_copies_are_clean():
    assert deep_findings(ALIAS_COPIED).findings == []


def test_dk111_out_of_scope_module_not_flagged():
    report = deep_findings(
        {
            "repro.indexes.base": """
            def raw_extent(index, label: int) -> set:
                return index.extents[label]
            """
        }
    )
    assert report.findings == []  # the owner hands out views by design


# ------------------------- DK112 durability discipline ------------------

NON_ATOMIC = {
    "repro.graph.rawio": """
    def dump_text(payload: str, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(payload)
    """,
    "repro.graph.serialize": """
    from repro.graph.rawio import dump_text

    def save_graph(graph: object, path: str) -> None:
        dump_text("data", path)
    """,
}

ATOMIC = {
    "repro.maintenance.store": """
    def atomic_write_text(path: str, payload: str) -> None:
        with open(path + ".tmp", "w") as handle:
            handle.write(payload)
    """,
    "repro.graph.serialize": """
    from repro.maintenance.store import atomic_write_text

    def save_graph(graph: object, path: str) -> None:
        atomic_write_text(path, "data")
    """,
}


def test_dk112_flags_non_atomic_write_through_helper():
    report = deep_findings(NON_ATOMIC)
    assert [f.rule_id for f in report.findings] == ["DK112"]
    finding = report.findings[0]
    assert finding.path.endswith("repro/graph/serialize.py")
    assert "dump_text" in finding.message
    assert "atomic_write_text" in finding.message


def test_dk112_violation_invisible_to_per_file_pass():
    # DK108 only sees open() calls lexically inside persistence
    # modules; the helper lives outside its scope.
    assert shallow_findings(NON_ATOMIC) == []


def test_dk112_atomic_writer_path_is_clean():
    assert deep_findings(ATOMIC).findings == []


# ------------------------- suppression + selection ----------------------


def test_deep_findings_honour_dk_ignore_directive():
    report = deep_findings(
        {
            "repro.maintenance.sneaky": """
            def erode(index, node: int) -> None:
                index.k[node] -= 1  # dk: ignore[DK110]
            """
        }
    )
    assert report.findings == []
    assert report.suppressed == 1


def test_get_deep_rules_selection_and_validation():
    assert {rule.rule_id for rule in all_deep_rules()} == {
        "DK109", "DK110", "DK111", "DK112",
    }
    only = get_deep_rules(select=["DK110"])
    assert [rule.rule_id for rule in only] == ["DK110"]
    named = get_deep_rules(select=["fork-unsafe-worker"])
    assert [rule.rule_id for rule in named] == ["DK109"]
    without = get_deep_rules(ignore=["DK111"])
    assert "DK111" not in {rule.rule_id for rule in without}
    with pytest.raises(ReproError):
        get_deep_rules(select=["DK999"])
    # per-file tokens pass through when declared known
    mixed = get_deep_rules(select=["DK101", "DK110"], extra_known={"DK101"})
    assert [rule.rule_id for rule in mixed] == ["DK110"]


# ------------------------- repo gate + bench guard ----------------------


def test_repository_source_tree_is_deep_clean():
    report, analysis = run_deep(["src"])
    assert report.findings == [], "\n".join(
        finding.format() for finding in report.findings
    )
    assert report.stats.functions > 500
    assert report.stats.call_edges > 800
    # Bench guard: the CI gate runs this on every push; if the deep
    # pass rots past the budget the gate gets deleted, not the rot.
    assert report.stats.duration_seconds < 30.0


def test_cli_deep_lint_reports_stats_and_artifact(tmp_path, capsys):
    effects = tmp_path / "analysis-effects.json"
    baseline = tmp_path / "baseline.json"
    code = main(
        [
            "lint", "src", "--deep",
            "--baseline", str(baseline),
            "--effects-out", str(effects),
        ]
    )
    output = capsys.readouterr().out
    assert code == 0
    assert "deep analysis:" in output
    assert "call edge(s)" in output
    assert effects.exists()


def test_cli_effects_out_requires_deep(capsys):
    code = main(["lint", "src", "--effects-out", "x.json"])
    assert code == 1
    assert "--effects-out requires --deep" in capsys.readouterr().err
