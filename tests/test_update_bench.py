"""Tests for the update-pipeline benchmark harness and its CLI."""

import json
from pathlib import Path

import pytest

from repro.bench.update import (
    MODES,
    SCHEMA,
    UpdateBenchConfig,
    _edge_stream,
    format_report,
    run_update_bench,
    write_report,
)
from repro.cli import main
from repro.datasets.xmark import generate_xmark
from repro.exceptions import DatasetError

TINY = UpdateBenchConfig(scale="0.05", repeats=1, edges=5, datasets=("xmark",))


def test_report_structure_and_overheads():
    report = run_update_bench(TINY)
    assert report["schema"] == SCHEMA
    assert report["config"]["scale_factor"] == 0.05
    results = report["results"]
    assert [row["mode"] for row in results] == list(MODES)
    for row in results:
        assert row["dataset"] == "xmark"
        assert row["edges"] == 5
        assert row["median_s"] >= 0.0
        assert len(row["times_s"]) == 1
    entry = report["overheads"]["xmark"]
    assert set(entry) >= {"legacy_s", "off_s", "fast_s", "deep_s"}
    assert "fast_over_off" in entry
    assert "fast vs off" in format_report(report)


def test_edge_stream_deterministic_and_fresh():
    graph = generate_xmark(scale=0.05, seed=0).graph
    edges = _edge_stream(graph, 20, seed=3)
    assert edges == _edge_stream(graph, 20, seed=3)
    assert len(edges) == len(set(edges)) == 20
    assert all(not graph.has_edge(src, dst) for src, dst in edges)


def test_unknown_dataset_and_scale_rejected():
    with pytest.raises(DatasetError):
        run_update_bench(
            UpdateBenchConfig(scale="0.05", repeats=1, datasets=("enron",))
        )
    with pytest.raises(DatasetError):
        UpdateBenchConfig(scale="galactic").scale_factor


def test_write_report_round_trips(tmp_path):
    report = run_update_bench(TINY)
    out = tmp_path / "BENCH_updates.json"
    write_report(report, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["schema"] == SCHEMA
    assert loaded["datasets"]["xmark"]["nodes"] > 0


def test_cli_bench_update(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = main(
        [
            "bench", "update",
            "--scale", "0.05",
            "--repeats", "1",
            "--edges", "5",
            "--datasets", "xmark",
            "--out", str(out),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "fast vs off" in captured
    loaded = json.loads(out.read_text())
    assert loaded["config"]["edges"] == 5


def test_committed_baseline_meets_the_overhead_bar():
    """The acceptance criterion: the committed ``BENCH_updates.json`` was
    produced at scale small and records a fast-audit overhead <= 25%."""
    path = Path(__file__).resolve().parent.parent / "BENCH_updates.json"
    report = json.loads(path.read_text())
    assert report["schema"] == SCHEMA
    assert report["config"]["scale"] == "small"
    assert report["config"]["edges"] >= 100
    for dataset, entry in report["overheads"].items():
        assert entry["fast_over_off"] <= 0.25, (dataset, entry)
