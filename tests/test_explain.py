"""Tests for :mod:`repro.indexes.explain` (EXPLAIN)."""

import pytest

from repro.core.dindex import DKIndex
from repro.engine import Database
from repro.graph.builder import graph_from_edges
from repro.indexes.akindex import build_ak_index
from repro.indexes.explain import explain
from repro.indexes.labelsplit import build_labelsplit_index
from repro.indexes.oneindex import build_1index
from repro.paths.query import make_query


def two_x_graph():
    return graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )


def test_sound_query_explained():
    g = two_x_graph()
    report = explain(build_ak_index(g, 1), make_query("a.x"))
    assert report.fully_indexed
    assert report.required_k == 1
    assert len(report.terminals) == 1
    assert report.terminals[0].sound
    assert report.result_size == 1
    assert report.suggestion == ""


def test_validating_query_explained_with_hint():
    g = two_x_graph()
    report = explain(build_labelsplit_index(g), make_query("a.x"))
    assert not report.fully_indexed
    assert not report.terminals[0].sound
    assert report.candidates_validated > 0
    assert "promote" in report.suggestion
    assert "x" in report.suggestion
    assert "1" in report.suggestion


def test_explanation_matches_actual_evaluation():
    g = two_x_graph()
    index = build_labelsplit_index(g)
    query = make_query("a.x")
    from repro.indexes.evaluation import evaluate_on_index

    report = explain(index, query)
    assert report.result_size == len(evaluate_on_index(index, query))


def test_anchored_query_requires_extra_level():
    g = two_x_graph()
    report = explain(build_ak_index(g, 1), make_query("/a"))
    assert report.required_k == 1


def test_unbounded_regex_hint():
    g = graph_from_edges(["a", "a"], [(0, 1), (1, 2), (2, 1)])
    report = explain(build_labelsplit_index(g), make_query("a.a*"))
    assert report.required_k is None
    assert "unbounded" in report.suggestion


def test_finite_regex_required_k():
    g = two_x_graph()
    report = explain(build_1index(g), make_query("a.x?"))
    assert report.required_k == 1
    assert report.fully_indexed  # 1-index never validates finite regexes


def test_format_output():
    g = two_x_graph()
    text = explain(build_labelsplit_index(g), make_query("a.x")).format()
    assert "query: //a.x" in text
    assert "VALIDATES" in text
    assert "hint:" in text
    sound_text = explain(build_1index(g), make_query("a.x")).format()
    assert "k=∞" in sound_text
    assert "sound" in sound_text


def test_dkindex_and_database_facades():
    g = two_x_graph()
    dk = DKIndex.build(g, {"x": 1})
    report = dk.explain(make_query("a.x"))
    assert report.fully_indexed

    db = Database.from_xml("<db><m><t>x</t></m></db>", auto_tune=False)
    report = db.explain("m.t")
    assert report.query_text == "//m.t"
    with pytest.raises(ValueError):
        db.explain("m[t]/t")


def test_unknown_query_type_rejected():
    g = two_x_graph()
    with pytest.raises(TypeError):
        explain(build_1index(g), object())


def test_promotion_hint_is_actionable():
    # Follow the hint and the query becomes index-only.
    g = two_x_graph()
    dk = DKIndex.build(g, {})
    query = make_query("a.x")
    report = dk.explain(query)
    assert not report.fully_indexed
    dk.promote({label: report.required_k for label in ("x",)})
    after = dk.explain(query)
    assert after.fully_indexed
