"""Tests for :mod:`repro.workload.generator` (the Section 6.1 protocol)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import small_graphs
from repro.datasets.xmark import generate_xmark
from repro.exceptions import WorkloadError
from repro.graph.builder import graph_from_edges
from repro.paths.evaluator import evaluate_on_data_graph
from repro.workload.generator import WorkloadConfig, generate_test_paths


def deep_graph():
    labels = ["a", "b", "c", "d", "e", "f"]
    edges = [(i, i + 1) for i in range(6)]
    edges += [(0, 2), (1, 3), (2, 4)]
    return graph_from_edges(labels, edges)


def test_config_validation():
    with pytest.raises(WorkloadError):
        WorkloadConfig(count=0)
    with pytest.raises(WorkloadError):
        WorkloadConfig(min_length=3, max_length=2)
    with pytest.raises(WorkloadError):
        WorkloadConfig(long_path_fraction=2.0)


def test_generates_requested_total_weight():
    g = deep_graph()
    load = generate_test_paths(g, WorkloadConfig(count=30), seed=0)
    assert load.total_weight == 30


def test_lengths_within_bounds():
    g = deep_graph()
    load = generate_test_paths(g, WorkloadConfig(count=30), seed=0)
    for query in load:
        assert 2 <= query.length <= 5


def test_paths_exclude_root_and_value():
    doc = generate_xmark(scale=0.05, seed=1)
    load = generate_test_paths(doc.graph, WorkloadConfig(count=20), seed=2)
    for query in load:
        assert "ROOT" not in query.labels
        assert "VALUE" not in query.labels


def test_queries_are_unanchored():
    g = deep_graph()
    load = generate_test_paths(g, WorkloadConfig(count=10), seed=0)
    assert all(not q.anchored for q in load)


def test_deterministic_for_seed():
    g = deep_graph()
    one = generate_test_paths(g, WorkloadConfig(count=20), seed=7)
    two = generate_test_paths(g, WorkloadConfig(count=20), seed=7)
    assert dict(one.items()) == dict(two.items())
    other = generate_test_paths(g, WorkloadConfig(count=20), seed=8)
    assert dict(one.items()) != dict(other.items())


def test_generated_paths_have_nonempty_results():
    # Walk-derived paths exist in the graph, so plain (non-branched)
    # queries must match; branched ones must at least be valid label
    # sequences.  We assert the strong property for the whole load on a
    # rich graph: every query has a non-empty answer.
    doc = generate_xmark(scale=0.05, seed=1)
    load = generate_test_paths(doc.graph, WorkloadConfig(count=25), seed=3)
    nonempty = sum(
        1 for q in load if evaluate_on_data_graph(doc.graph, q)
    )
    assert nonempty == len(list(load))


def test_shallow_graph_falls_back():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2)])
    load = generate_test_paths(g, WorkloadConfig(count=5), seed=0)
    assert load.total_weight >= 1
    assert all(q.length <= 2 for q in load)


def test_empty_graph_raises():
    g = graph_from_edges([], [])
    with pytest.raises(WorkloadError):
        generate_test_paths(g, WorkloadConfig(count=5), seed=0)


def test_rng_instance_overrides_seed():
    g = deep_graph()
    rng = random.Random(123)
    one = generate_test_paths(g, WorkloadConfig(count=10), rng=rng)
    rng = random.Random(123)
    two = generate_test_paths(g, WorkloadConfig(count=10), rng=rng)
    assert dict(one.items()) == dict(two.items())


@given(small_graphs(max_nodes=12, labels="abcd"), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_generator_total_weight_on_random_graphs(graph, seed):
    if graph.num_nodes < 2:
        return
    config = WorkloadConfig(count=10, max_attempts_factor=50)
    try:
        load = generate_test_paths(graph, config, seed=seed)
    except WorkloadError:
        return  # graphs with only excluded labels are fine to reject
    assert 1 <= load.total_weight <= 10
    for query in load:
        assert 1 <= query.length <= config.max_length
