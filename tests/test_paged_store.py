"""The out-of-core paged store: pool policy, durability, corruption.

Covers the three layers of ``repro.storage``:

- :class:`PagedBufferPool` in isolation (LRU order, byte budget,
  pin/unpin, dirty write-back, counters) against a dict-backed loader;
- :class:`PagedStore` round-trips, copy-on-write checkpoint
  generations, point-in-time opens, pruning/GC and corruption
  detection (flipped page bytes, truncated pages, bad manifests);
- :class:`PagedCSRGraph` against the in-memory frozen view it pages
  out, plus :class:`SpillRuns` merge ordering.
"""

import random
import tempfile
from array import array
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PagedStoreError, SerializationError
from repro.graph.datagraph import DataGraph
from repro.storage.paged import (
    PagedBufferPool,
    PagedCSRGraph,
    PagedStore,
    PoolStats,
    _scan_generations,
    resolve_page_bytes,
    resolve_pool_budget,
)
from repro.storage.spill import SpillRuns

# ----------------------------------------------------------------------
# The pool in isolation
# ----------------------------------------------------------------------


def make_pool(budget_pages=2, page_entries=4):
    """A pool over a dict of pages; returns (pool, backing, load_log)."""
    backing = {
        ("buf", index): array("q", range(index * 10, index * 10 + page_entries))
        for index in range(8)
    }
    loads = []

    def loader(key):
        loads.append(key)
        return array("q", backing[key])  # copy: backing is the "disk"

    def writer(key, page):
        backing[key] = array("q", page)

    pool = PagedBufferPool(budget_pages * page_entries * 8, loader, writer)
    return pool, backing, loads


def test_pool_hits_and_misses_counted():
    pool, _, loads = make_pool()
    assert pool.get(("buf", 0))[0] == 0
    assert pool.get(("buf", 0))[0] == 0  # second read is a hit
    assert pool.stats.misses == 1
    assert pool.stats.hits == 1
    assert loads == [("buf", 0)]
    assert pool.stats.hit_rate == 0.5


def test_pool_evicts_least_recently_used():
    pool, _, loads = make_pool(budget_pages=2)
    pool.get(("buf", 0))
    pool.get(("buf", 1))
    pool.get(("buf", 0))  # touch 0: page 1 becomes the LRU victim
    pool.get(("buf", 2))  # forces one eviction
    assert pool.stats.evictions == 1
    assert pool.is_resident(("buf", 0))
    assert not pool.is_resident(("buf", 1))
    assert pool.is_resident(("buf", 2))


def test_pool_pinned_pages_survive_pressure():
    pool, _, _ = make_pool(budget_pages=1)
    pool.pin(("buf", 0))
    pool.get(("buf", 1))
    pool.get(("buf", 2))
    # The pinned page is never the victim, even under a 1-page budget.
    assert pool.is_resident(("buf", 0))
    pool.unpin(("buf", 0))
    pool.get(("buf", 3))
    assert not pool.is_resident(("buf", 0))
    with pytest.raises(PagedStoreError):
        pool.unpin(("buf", 0))


def test_pool_dirty_write_back_on_eviction():
    pool, backing, _ = make_pool(budget_pages=1)
    page = pool.get(("buf", 0))
    page[0] = -42
    pool.mark_dirty(("buf", 0))
    pool.get(("buf", 1))  # evicts page 0, which must write back first
    assert backing[("buf", 0)][0] == -42
    assert pool.stats.write_backs == 1
    assert pool.stats.evictions == 1


def test_pool_flush_keeps_pages_resident():
    pool, backing, _ = make_pool()
    page = pool.get(("buf", 0))
    page[1] = 77
    pool.mark_dirty(("buf", 0))
    assert pool.flush() == 1
    assert backing[("buf", 0)][1] == 77
    assert pool.is_resident(("buf", 0))
    assert pool.dirty_pages == 0
    assert pool.flush() == 0  # idempotent


def test_pool_mark_dirty_requires_residency():
    pool, _, _ = make_pool()
    with pytest.raises(PagedStoreError):
        pool.mark_dirty(("buf", 5))


def test_read_only_pool_refuses_dirty_eviction():
    backing = {("b", 0): array("q", [1]), ("b", 1): array("q", [2])}
    pool = PagedBufferPool(8, lambda key: array("q", backing[key]))
    pool.get(("b", 0))
    pool.mark_dirty(("b", 0))
    with pytest.raises(PagedStoreError):
        pool.get(("b", 1))  # eviction of the dirty page has no writer


def test_pool_drop_protects_dirty_pages():
    pool, _, _ = make_pool()
    pool.get(("buf", 0))
    pool.mark_dirty(("buf", 0))
    with pytest.raises(PagedStoreError):
        pool.drop()
    pool.drop(discard_dirty=True)
    assert pool.cached_pages == 0


# ----------------------------------------------------------------------
# Store round-trips and durability
# ----------------------------------------------------------------------


def test_store_round_trip_across_page_boundaries(tmp_path):
    values = list(range(1000))
    store = PagedStore.create(
        tmp_path / "s", {"v": values}, page_bytes=64, budget_bytes=256
    )
    buf = store.buffer("v")
    assert len(buf) == 1000
    assert buf[0] == 0 and buf[999] == 999 and buf[-1] == 999
    assert list(buf[250:270]) == values[250:270]  # spans pages
    assert list(buf) == values
    assert store.stats.evictions > 0  # the budget really was enforced
    store.close()


def test_store_rejects_double_create_and_unknown_buffer(tmp_path):
    store = PagedStore.create(tmp_path / "s", {"v": [1, 2, 3]})
    with pytest.raises(PagedStoreError):
        PagedStore.create(tmp_path / "s", {"v": [4]})
    with pytest.raises(PagedStoreError):
        store.buffer("missing")
    with pytest.raises(PagedStoreError):
        store.read_element("v", 3)
    store.close()


def test_checkpoint_is_copy_on_write(tmp_path):
    store = PagedStore.create(
        tmp_path / "s", {"v": range(100)}, page_bytes=64
    )
    files_before = sorted(p.name for p in (tmp_path / "s" / "pages").iterdir())
    store.write_element("v", 3, -3)
    generation = store.checkpoint()
    assert generation == 2
    files_after = sorted(p.name for p in (tmp_path / "s" / "pages").iterdir())
    # Exactly one fresh page: the dirty one.  Unchanged pages are shared
    # with generation 1, not rewritten.
    assert len(files_after) == len(files_before) + 1
    assert set(files_before) < set(files_after)
    store.close()


def test_point_in_time_open_of_prior_generation(tmp_path):
    store = PagedStore.create(tmp_path / "s", {"v": range(50)}, page_bytes=64)
    store.write_element("v", 10, 111)
    store.checkpoint()
    store.write_element("v", 10, 222)
    store.checkpoint()
    store.close()

    assert PagedStore.open(tmp_path / "s").read_element("v", 10) == 222
    assert (
        PagedStore.open(tmp_path / "s", generation=2).read_element("v", 10)
        == 111
    )
    assert (
        PagedStore.open(tmp_path / "s", generation=1).read_element("v", 10)
        == 10
    )
    with pytest.raises(PagedStoreError):
        PagedStore.open(tmp_path / "s", generation=99)


def test_prune_drops_old_generations_and_orphan_pages(tmp_path):
    store = PagedStore.create(
        tmp_path / "s", {"v": range(64)}, page_bytes=64, retain=1
    )
    for round_number in range(4):
        store.write_element("v", 0, round_number)
        store.checkpoint()
    store.close()
    manifests = sorted(
        p.name for p in (tmp_path / "s").glob("manifest-*.json")
    )
    assert len(manifests) == 2  # newest + 1 retained
    # Every surviving page file is referenced by a surviving manifest:
    # the superseded copy-on-write pages were garbage collected.
    reopened = PagedStore.open(tmp_path / "s", generation=5)
    assert reopened.read_element("v", 0) == 3
    reopened.close()


def test_uncheckpointed_mutation_is_not_durable(tmp_path):
    store = PagedStore.create(tmp_path / "s", {"v": range(10)})
    store.write_element("v", 0, 999)
    with pytest.raises(PagedStoreError):
        store.close()  # refuses to silently drop the dirty page
    store.close(discard_dirty=True)
    assert PagedStore.open(tmp_path / "s").read_element("v", 0) == 0


def test_context_manager_discards_dirty_on_error(tmp_path):
    with pytest.raises(RuntimeError):
        with PagedStore.create(tmp_path / "s", {"v": range(10)}) as store:
            store.write_element("v", 0, 5)
            raise RuntimeError("boom")
    # The original error surfaced (not a dirty-page complaint) and the
    # store is intact at its last checkpoint.
    assert PagedStore.open(tmp_path / "s").read_element("v", 0) == 0


# ----------------------------------------------------------------------
# Corruption detection
# ----------------------------------------------------------------------


def _first_page(tmp_path):
    return sorted((tmp_path / "s" / "pages").iterdir())[0]


def test_flipped_page_bit_fails_digest(tmp_path):
    PagedStore.create(tmp_path / "s", {"v": range(32)}, page_bytes=64).close()
    page = _first_page(tmp_path)
    raw = bytearray(page.read_bytes())
    raw[0] ^= 0x40
    page.write_bytes(bytes(raw))
    store = PagedStore.open(tmp_path / "s")
    with pytest.raises(PagedStoreError, match="digest"):
        store.read_element("v", 0)


def test_truncated_page_detected(tmp_path):
    PagedStore.create(tmp_path / "s", {"v": range(32)}, page_bytes=64).close()
    page = _first_page(tmp_path)
    page.write_bytes(page.read_bytes()[:-8])
    store = PagedStore.open(tmp_path / "s")
    with pytest.raises(PagedStoreError):
        store.read_element("v", 0)


def test_corrupt_newest_manifest_falls_back_to_prior(tmp_path):
    store = PagedStore.create(tmp_path / "s", {"v": range(16)})
    store.write_element("v", 0, 1)
    store.checkpoint()
    store.close()
    newest = tmp_path / "s" / "manifest-0000002.json"
    newest.write_text(newest.read_text()[:-40], encoding="utf-8")
    recovered = PagedStore.open(tmp_path / "s")
    assert recovered.generation == 1
    assert recovered.read_element("v", 0) == 0
    recovered.close()


def test_missing_directory_and_empty_store_rejected(tmp_path):
    with pytest.raises(PagedStoreError):
        PagedStore.open(tmp_path / "nope")
    (tmp_path / "empty").mkdir()
    with pytest.raises(PagedStoreError):
        PagedStore.open(tmp_path / "empty")
    with pytest.raises(PagedStoreError):
        PagedStore.create(tmp_path / "s", {})


def test_knob_resolution(monkeypatch):
    monkeypatch.delenv("DKINDEX_PAGE_BYTES", raising=False)
    monkeypatch.delenv("DKINDEX_POOL_BUDGET", raising=False)
    assert resolve_page_bytes(None) == 16384
    assert resolve_page_bytes(64) == 64
    monkeypatch.setenv("DKINDEX_PAGE_BYTES", "4096")
    assert resolve_page_bytes(None) == 4096
    monkeypatch.setenv("DKINDEX_POOL_BUDGET", "1024")
    assert resolve_pool_budget(None) == 1024
    assert resolve_pool_budget(0) == 0
    with pytest.raises(PagedStoreError):
        resolve_page_bytes(100)  # not a multiple of 8
    with pytest.raises(PagedStoreError):
        resolve_pool_budget(-1)
    monkeypatch.setenv("DKINDEX_PAGE_BYTES", "tiny")
    with pytest.raises(PagedStoreError):
        resolve_page_bytes(None)


def test_paged_store_error_is_a_serialization_error(tmp_path):
    # Callers guarding load paths with `except SerializationError` must
    # keep working when the path leads into a paged store.
    with pytest.raises(SerializationError):
        PagedStore.open(tmp_path / "nope")


# ----------------------------------------------------------------------
# Paged CSR snapshots
# ----------------------------------------------------------------------


def seeded_graph(seed=0, size=150):
    rng = random.Random(seed)
    g = DataGraph()
    created = [0]
    for _ in range(size):
        node = g.add_node(rng.choice("abcd"))
        g.add_edge(created[rng.randrange(len(created))], node)
        created.append(node)
    for _ in range(size // 2):
        a, b = rng.sample(created, 2)
        g.add_edge_if_absent(a, b)
    return g


def test_paged_csr_matches_frozen_view(tmp_path):
    graph = seeded_graph()
    view = graph.freeze()
    paged = PagedCSRGraph.create(
        tmp_path / "csr", graph, page_bytes=128, budget_bytes=512
    )
    assert paged.num_nodes == view.num_nodes
    assert paged.num_edges == view.num_edges
    assert paged.label_names() == graph.label_names()
    for node in range(view.num_nodes):
        assert paged.children(node) == view.children(node)
        assert paged.parents(node) == view.parents(node)
    assert paged.stats.evictions > 0  # the tiny budget forced real paging
    rebuilt = paged.to_csr()
    rebuilt.check_invariants()
    assert rebuilt.label_ids == view.label_ids
    assert rebuilt.child_targets == view.child_targets
    paged.close()


def test_paged_csr_reopen_and_to_datagraph(tmp_path):
    graph = seeded_graph(seed=3, size=60)
    PagedCSRGraph.create(tmp_path / "csr", graph, page_bytes=128).close()
    reopened = PagedCSRGraph.open(tmp_path / "csr", budget_bytes=256)
    back = reopened.to_datagraph()
    assert back.num_nodes == graph.num_nodes
    assert back.num_edges == graph.num_edges
    assert sorted(back.edges()) == sorted(graph.edges())
    reopened.close()


def test_paged_csr_preserves_seal(tmp_path):
    graph = seeded_graph(seed=5, size=30)
    graph.freeze(mode="seal")
    PagedCSRGraph.create(tmp_path / "csr", graph).close()
    reopened = PagedCSRGraph.open(tmp_path / "csr")
    assert reopened.sealed
    back = reopened.to_datagraph()
    assert back.sealed
    reopened.close()


def test_paged_csr_rejects_non_csr_store(tmp_path):
    PagedStore.create(tmp_path / "s", {"v": [1, 2, 3]}).close()
    with pytest.raises(PagedStoreError, match="lacks CSR buffers"):
        PagedCSRGraph.open(tmp_path / "s")


# ----------------------------------------------------------------------
# Spill runs
# ----------------------------------------------------------------------


def test_spill_runs_merge_in_position_order():
    rng = random.Random(11)
    positions = list(range(300))
    rng.shuffle(positions)
    with SpillRuns(budget_bytes=128) as runs:
        for position in positions:
            runs.add(position, position.to_bytes(8, "big"))
        assert runs.runs_spilled > 1  # the budget forced real spills
        merged = list(runs.merged())
    assert [p for p, _ in merged] == list(range(300))
    assert all(
        int.from_bytes(payload, "big") == position
        for position, payload in merged
    )


def test_spill_runs_all_in_memory_when_under_budget():
    with SpillRuns(budget_bytes=1 << 20) as runs:
        runs.add(2, b"c")
        runs.add(0, b"a")
        runs.add(1, b"b")
        assert runs.runs_spilled == 0
        assert [p for p, _ in runs.merged()] == [0, 1, 2]


def test_spill_runs_rejects_misuse():
    runs = SpillRuns()
    with pytest.raises(PagedStoreError):
        runs.add(-1, b"x")
    runs.close()
    with pytest.raises(PagedStoreError):
        runs.add(0, b"x")


# ----------------------------------------------------------------------
# Generation lifecycle and pool counters (robustness satellites)
# ----------------------------------------------------------------------


def test_open_pruned_generation_names_survivors(tmp_path):
    store = PagedStore.create(tmp_path / "s", {"v": range(16)}, retain=1)
    for value in (1, 2, 3):
        store.write_element("v", 0, value)
        store.checkpoint()
    store.close()
    # retain=1 keeps generations {3, 4}; generation 1 was pruned.
    with pytest.raises(PagedStoreError, match="pruned") as excinfo:
        PagedStore.open(tmp_path / "s", generation=1)
    message = str(excinfo.value)
    assert "generation 1" in message
    assert "surviving generations: 3, 4" in message


def test_open_unreadable_pinned_generation_names_it(tmp_path):
    store = PagedStore.create(tmp_path / "s", {"v": range(16)})
    store.write_element("v", 0, 5)
    store.checkpoint()
    store.close()
    manifest = tmp_path / "s" / "manifest-0000001.json"
    manifest.write_text(manifest.read_text(encoding="utf-8")[:-40], "utf-8")
    with pytest.raises(
        PagedStoreError, match="present but unreadable"
    ) as excinfo:
        PagedStore.open(tmp_path / "s", generation=1)
    assert "surviving generations: 2" in str(excinfo.value)


def test_pool_stats_idle_hit_rate_and_retry_counters():
    stats = PoolStats()
    assert stats.accesses == 0
    assert stats.hit_rate == 1.0  # no lookups yet: not a 0/0 crash
    payload = stats.as_dict()
    assert payload["hit_rate"] == 1.0
    assert payload["retries"] == 0
    assert payload["give_ups"] == 0
    stats.retries = 3
    stats.give_ups = 1
    delta = stats.delta(PoolStats(retries=1))
    assert delta.retries == 2 and delta.give_ups == 1


@settings(deadline=None, max_examples=40)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("write"),
                st.integers(min_value=0, max_value=31),
                st.integers(min_value=-5, max_value=5),
            ),
            st.tuples(st.just("checkpoint")),
        ),
        max_size=12,
    )
)
def test_retained_generations_stay_fully_readable(ops):
    """No checkpoint/prune/GC sweep may drop a page a manifest needs.

    Whatever interleaving of mutation and checkpoint runs, every
    generation still on disk afterwards — including after the crash-
    orphan sweep that ``close(discard_dirty=True)`` leaves behind —
    must open and read back in full.
    """
    with tempfile.TemporaryDirectory(prefix="dk-gc-prop-") as tmp:
        base = Path(tmp) / "s"
        store = PagedStore.create(
            base, {"v": range(32)}, page_bytes=64, retain=2
        )
        for op in ops:
            if op[0] == "write":
                _, position, delta = op
                store.write_element(
                    "v", position, store.read_element("v", position) + delta
                )
            else:
                store.checkpoint()
        store.close(discard_dirty=True)
        survivors = _scan_generations(base)
        assert survivors
        for generation in survivors:
            with PagedStore.open(base, generation=generation) as snap:
                values = snap.read_slice("v", 0, snap.length("v"))
                assert len(values) == 32
