"""Tests for the extension features: edge removal, DOT export, metrics."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import (
    extent_is_homogeneous,
    extent_paths_consistent,
    label_requirements,
    random_label_path,
    small_graphs,
)
from repro.core.construction import build_dk_index
from repro.core.dindex import check_dk_constraint
from repro.core.updates import dk_add_edge, dk_remove_edge
from repro.exceptions import GraphError, UnknownNodeError, UpdateError
from repro.graph.builder import graph_from_edges
from repro.graph.visualize import data_graph_to_dot, index_graph_to_dot
from repro.indexes.akindex import build_ak_index
from repro.indexes.evaluation import evaluate_on_index
from repro.indexes.labelsplit import build_labelsplit_index
from repro.indexes.metrics import index_metrics, load_precision, query_precision
from repro.indexes.oneindex import build_1index
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import LabelPathQuery, make_query
from repro.workload.queryload import QueryLoad


# ------------------------- DataGraph.remove_edge -----------------------


def test_remove_edge_basic():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2), (0, 2)])
    g.remove_edge(0, 2)
    assert not g.has_edge(0, 2)
    assert g.num_edges == 2
    assert 0 not in g.parents[2]


def test_remove_missing_edge_rejected():
    g = graph_from_edges(["a"], [(0, 1)])
    with pytest.raises(GraphError):
        g.remove_edge(1, 0)


# ------------------------- dk_remove_edge ------------------------------


def test_dk_remove_edge_keeps_exactness():
    g = graph_from_edges(
        ["a", "b", "t", "t"], [(0, 1), (0, 2), (1, 3), (2, 4), (1, 4)]
    )
    index, _ = build_dk_index(g, {"t": 2})
    report = dk_remove_edge(g, index, 1, 4)
    assert not g.has_edge(1, 4)
    index.check_invariants()
    check_dk_constraint(index)
    assert report.lowered  # similarity eroded
    q = make_query("a.t")
    assert evaluate_on_index(index, q) == evaluate_on_data_graph(g, q)


def test_dk_remove_edge_drops_dead_index_edge():
    g = graph_from_edges(["a", "t"], [(0, 1), (1, 2)])
    index, _ = build_dk_index(g, {"t": 1})
    a_block, t_block = index.node_of[1], index.node_of[2]
    dk_remove_edge(g, index, 1, 2)
    assert t_block not in index.children[a_block]


def test_dk_remove_edge_keeps_live_index_edge():
    # Two a->t data edges cross the same index edge; removing one keeps it.
    g = graph_from_edges(["a", "a", "t"], [(0, 1), (0, 2), (1, 3), (2, 3)])
    index = build_labelsplit_index(g)
    a_block, t_block = index.node_of[1], index.node_of[3]
    dk_remove_edge(g, index, 1, 3)
    assert t_block in index.children[a_block]
    index.check_invariants()


def test_dk_remove_edge_rejects_missing():
    g = graph_from_edges(["a", "t"], [(0, 1), (1, 2)])
    index, _ = build_dk_index(g, {})
    with pytest.raises(UpdateError):
        dk_remove_edge(g, index, 2, 1)


def test_dk_remove_edge_rejects_unknown_endpoints():
    g = graph_from_edges(["a", "t"], [(0, 1), (1, 2)])
    index, _ = build_dk_index(g, {})
    with pytest.raises(UnknownNodeError):
        dk_remove_edge(g, index, 1, 42)
    with pytest.raises(UnknownNodeError):
        dk_remove_edge(g, index, -3, 1)
    newcomer = g.add_node("z")  # known to the graph, not to the index
    with pytest.raises(UnknownNodeError):
        dk_remove_edge(g, index, 1, newcomer)


def test_dk_remove_edge_rejects_foreign_index():
    g = graph_from_edges(["a", "t"], [(0, 1), (1, 2)])
    other = graph_from_edges(["a", "t"], [(0, 1), (1, 2)])
    index, _ = build_dk_index(other, {})
    with pytest.raises(UpdateError):
        dk_remove_edge(g, index, 1, 2)


def test_dk_remove_edge_failure_leaves_state_untouched():
    g = graph_from_edges(["a", "t", "t"], [(0, 1), (1, 2), (1, 3)])
    index, _ = build_dk_index(g, {"t": 2})
    before_edges = g.num_edges
    before_k = list(index.k)
    with pytest.raises(UpdateError):
        dk_remove_edge(g, index, 2, 3)  # no such data edge
    assert g.num_edges == before_edges
    assert list(index.k) == before_k


@given(small_graphs(max_nodes=9), label_requirements(), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_dk_add_then_remove_stays_exact_and_honest(graph, requirements, seed):
    rng = random.Random(seed)
    index, _ = build_dk_index(graph, requirements)
    nodes = list(graph.nodes())
    added = []
    for _ in range(3):
        src, dst = rng.choice(nodes), rng.choice(nodes)
        if src == dst or graph.has_edge(src, dst) or dst == graph.root:
            continue
        dk_add_edge(graph, index, src, dst)
        added.append((src, dst))
    for src, dst in added[:2]:
        dk_remove_edge(graph, index, src, dst)
    index.check_invariants()
    check_dk_constraint(index)
    for node in range(index.num_nodes):
        assert extent_paths_consistent(graph, index.extents[node], index.k[node])
    labels = random_label_path(graph, rng)
    query = LabelPathQuery(anchored=False, labels=tuple(labels))
    assert evaluate_on_index(index, query) == evaluate_on_data_graph(graph, query)


# ------------------------- DOT export ----------------------------------


def test_data_graph_to_dot_contains_nodes_and_edges():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2)])
    dot = data_graph_to_dot(g, highlight=[2])
    assert dot.startswith("digraph data")
    assert "n1 -> n2" in dot
    assert "fillcolor" in dot  # the highlight


def test_data_graph_to_dot_size_guard():
    g = graph_from_edges(["a"] * 20, [(0, i + 1) for i in range(20)])
    with pytest.raises(ValueError):
        data_graph_to_dot(g, max_nodes=5)


def test_index_graph_to_dot():
    g = graph_from_edges(["a", "b", "b"], [(0, 1), (1, 2), (1, 3)])
    index, _ = build_dk_index(g, {"b": 1})
    dot = index_graph_to_dot(index)
    assert "digraph index" in dot
    assert "|ext|=2" in dot
    assert "k=1" in dot


def test_index_graph_to_dot_unbounded_k():
    g = graph_from_edges(["a"], [(0, 1)])
    dot = index_graph_to_dot(build_1index(g))
    assert "k=∞" in dot


def test_dot_escapes_quotes():
    g = graph_from_edges(['we"ird'], [(0, 1)])
    dot = data_graph_to_dot(g)
    assert '\\"' in dot


# ------------------------- metrics -------------------------------------


def test_index_metrics_shape():
    g = graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )
    metrics = index_metrics(build_ak_index(g, 0))
    assert metrics.index_nodes == 4
    assert metrics.data_nodes == 5
    assert metrics.compression == pytest.approx(5 / 4)
    assert metrics.max_extent == 2
    assert metrics.singleton_extents == 3
    assert metrics.k_histogram == {0: 4}


def test_metrics_compression_shrinks_with_k():
    g = graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )
    coarse = index_metrics(build_ak_index(g, 0))
    fine = index_metrics(build_ak_index(g, 2))
    assert fine.compression <= coarse.compression


def test_query_precision_bounds_and_exactness():
    g = graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )
    coarse = build_labelsplit_index(g)
    fine = build_ak_index(g, 1)
    q = make_query("a.x")
    assert query_precision(coarse, q) == 0.5  # raw answer {3, 4}, exact {3}
    assert query_precision(fine, q) == 1.0
    assert query_precision(fine, make_query("zzz")) == 1.0  # empty raw


def test_load_precision_weighted():
    g = graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )
    coarse = build_labelsplit_index(g)
    load = QueryLoad()
    load.add(make_query("a.x"), weight=1)   # precision 0.5
    load.add(make_query("x"), weight=1)     # precision 1.0
    assert load_precision(coarse, load) == pytest.approx(0.75)
    assert load_precision(coarse, QueryLoad()) == 1.0
