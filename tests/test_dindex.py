"""Tests for the :class:`repro.core.dindex.DKIndex` facade."""

import pytest

from repro.core.dindex import DKIndex, check_dk_constraint
from repro.exceptions import IndexInvariantError
from repro.graph.builder import graph_from_edges
from repro.graph.xmlio import parse_xml
from repro.paths.cost import CostCounter
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import make_query


def movie_xml_graph():
    return parse_xml(
        "<movieDB>"
        "<director><name>m</name><movie><title>H</title></movie></director>"
        "<director><name>s</name><movie><title>J</title></movie></director>"
        "<actor><name>a</name></actor>"
        "</movieDB>"
    )


def test_build_and_query():
    g = movie_xml_graph()
    dk = DKIndex.build(g, {"title": 2})
    dk.check_invariants()
    q = make_query("director.movie.title")
    assert dk.evaluate(q) == evaluate_on_data_graph(g, q)


def test_from_query_load_mines_requirements():
    g = movie_xml_graph()
    queries = [make_query("director.movie.title"), make_query("movie.title")]
    dk = DKIndex.from_query_load(g, queries)
    assert dk.requirements == {"title": 2}
    counter = CostCounter()
    dk.evaluate(queries[0], counter)
    assert counter.validated_queries == 0


def test_size_and_stats():
    g = movie_xml_graph()
    dk = DKIndex.build(g, {"title": 2})
    stats = dk.stats()
    assert stats.index_nodes == dk.size
    assert stats.data_nodes == g.num_nodes
    assert stats.max_k >= 2
    assert "index nodes" in stats.format()
    assert "DKIndex" in repr(dk)


def test_add_edge_keeps_exactness():
    g = movie_xml_graph()
    dk = DKIndex.build(g, {"title": 2})
    actors = g.nodes_with_label("actor")
    movies = g.nodes_with_label("movie")
    dk.add_edge(actors[0], movies[0])
    dk.check_invariants()
    q = make_query("actor.movie.title")
    assert dk.evaluate(q) == evaluate_on_data_graph(dk.graph, q)


def test_add_subgraph_merges_documents():
    g = movie_xml_graph()
    dk = DKIndex.build(g, {"title": 2})
    h = parse_xml("<movieDB><director><movie><title>X</title></movie></director></movieDB>")
    mapping = dk.add_subgraph(h)
    dk.check_invariants()
    assert dk.graph.label(mapping[1]) == "movieDB"
    q = make_query("director.movie.title")
    assert dk.evaluate(q) == evaluate_on_data_graph(dk.graph, q)


def test_promote_merges_new_requirements():
    g = movie_xml_graph()
    dk = DKIndex.build(g, {"title": 1})
    dk.promote({"name": 2})
    assert dk.requirements == {"title": 1, "name": 2}
    counter = CostCounter()
    dk.evaluate(make_query("movieDB.director.name"), counter)
    assert counter.validated_queries == 0


def test_demote_shrinks_and_replaces_requirements():
    g = movie_xml_graph()
    dk = DKIndex.build(g, {"title": 3})
    before = dk.size
    removed = dk.demote({"title": 0})
    assert removed >= 0
    assert dk.size <= before
    assert dk.requirements == {"title": 0}
    dk.check_invariants()


def test_check_dk_constraint_detects_violation():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2)])
    dk = DKIndex.build(g, {"b": 1})
    dk.index.k[dk.index.node_of[2]] = 5  # corrupt
    with pytest.raises(IndexInvariantError):
        check_dk_constraint(dk.index)


def test_evaluate_validate_false_is_superset():
    g = movie_xml_graph()
    dk = DKIndex.build(g, {})
    q = make_query("director.movie.title")
    raw = dk.evaluate(q, validate=False)
    exact = dk.evaluate(q)
    assert exact <= raw
