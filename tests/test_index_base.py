"""Unit tests for :mod:`repro.indexes.base` (IndexGraph)."""

import pytest
from hypothesis import given, settings

from conftest import small_graphs
from repro.exceptions import IndexInvariantError
from repro.graph.builder import graph_from_edges
from repro.indexes.base import IndexGraph
from repro.partition.blocks import Partition
from repro.partition.refinement import label_partition


def two_x_graph():
    return graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )


def build(graph, k=0):
    return IndexGraph.from_partition(graph, label_partition(graph), k)


def test_from_partition_basic():
    g = two_x_graph()
    idx = build(g)
    assert idx.num_nodes == 4
    assert idx.num_edges == 4  # ROOT->a, ROOT->b, a->x, b->x
    idx.check_invariants()


def test_index_edges_are_quotient_edges():
    g = two_x_graph()
    idx = build(g)
    x_block = idx.node_of[3]
    a_block, b_block = idx.node_of[1], idx.node_of[2]
    assert x_block in idx.children[a_block]
    assert x_block in idx.children[b_block]


def test_extents_and_node_of_consistent():
    g = two_x_graph()
    idx = build(g)
    for node in range(idx.num_nodes):
        for member in idx.extents[node]:
            assert idx.node_of[member] == node


def test_per_block_k_values():
    g = two_x_graph()
    idx = IndexGraph.from_partition(g, label_partition(g), [0, 1, 2, 3])
    assert idx.k == [0, 1, 2, 3]
    with pytest.raises(IndexInvariantError):
        IndexGraph.from_partition(g, label_partition(g), [0, 1])


def test_rejects_label_mixed_blocks():
    g = two_x_graph()
    bad = Partition([0] * g.num_nodes)
    with pytest.raises(IndexInvariantError):
        IndexGraph.from_partition(g, bad, 0)


def test_label_lookup():
    g = two_x_graph()
    idx = build(g)
    xs = idx.nodes_with_label("x")
    assert len(xs) == 1
    assert idx.label(next(iter(xs))) == "x"
    assert idx.nodes_with_label("missing") == set()


def test_root_index_node():
    g = two_x_graph()
    idx = build(g)
    assert idx.node_of[g.root] == idx.root_index_node
    assert idx.label(idx.root_index_node) == "ROOT"


def test_add_remove_index_edge():
    g = two_x_graph()
    idx = build(g)
    a_block = idx.node_of[1]
    root_block = idx.root_index_node
    assert idx.add_index_edge(a_block, root_block) is True
    assert idx.add_index_edge(a_block, root_block) is False
    idx.remove_index_edge(a_block, root_block)
    assert root_block not in idx.children[a_block]


def test_split_node_rewires_edges():
    g = two_x_graph()
    idx = build(g)
    x_block = idx.node_of[3]
    ids = idx.split_node(x_block, [[3], [4]])
    assert len(ids) == 2
    assert idx.node_of[3] == ids[0]
    assert idx.node_of[4] == ids[1]
    # Edges now separate: a -> piece(3), b -> piece(4).
    a_block, b_block = idx.node_of[1], idx.node_of[2]
    assert idx.children[a_block] == {ids[0]}
    assert idx.children[b_block] == {ids[1]}
    idx.check_invariants()


def test_split_node_single_part_is_noop():
    g = two_x_graph()
    idx = build(g)
    x_block = idx.node_of[3]
    assert idx.split_node(x_block, [[3, 4]]) == [x_block]
    idx.check_invariants()


def test_split_node_validates_partition():
    g = two_x_graph()
    idx = build(g)
    x_block = idx.node_of[3]
    with pytest.raises(IndexInvariantError):
        idx.split_node(x_block, [[3], [3, 4]])
    with pytest.raises(IndexInvariantError):
        idx.split_node(x_block, [[3], []])


def test_split_inherits_label_and_k():
    g = two_x_graph()
    idx = IndexGraph.from_partition(g, label_partition(g), 2)
    x_block = idx.node_of[3]
    ids = idx.split_node(x_block, [[3], [4]])
    for piece in ids:
        assert idx.label(piece) == "x"
        assert idx.k[piece] == 2


def test_check_invariants_detects_missing_edge():
    g = two_x_graph()
    idx = build(g)
    a_block = idx.node_of[1]
    x_block = idx.node_of[3]
    idx.remove_index_edge(a_block, x_block)
    with pytest.raises(IndexInvariantError):
        idx.check_invariants()


def test_extent_result_union():
    g = two_x_graph()
    idx = build(g)
    xs = idx.nodes_with_label("x")
    assert idx.extent_result(xs) == {3, 4}


def test_to_partition_roundtrip():
    g = two_x_graph()
    idx = build(g)
    assert idx.to_partition() == label_partition(g)


@given(small_graphs())
@settings(max_examples=50, deadline=None)
def test_invariants_hold_for_random_graphs(graph):
    idx = build(graph)
    idx.check_invariants()
    assert sum(len(e) for e in idx.extents) == graph.num_nodes
