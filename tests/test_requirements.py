"""Tests for :mod:`repro.core.requirements` and :mod:`repro.workload.mining`."""

import pytest

from repro.core.requirements import (
    merge_requirements,
    required_similarity,
    requirements_from_queries,
)
from repro.exceptions import WorkloadError
from repro.paths.query import make_query
from repro.workload.mining import (
    coverage_requirements,
    exact_requirements,
    requirement_gain,
)
from repro.workload.queryload import QueryLoad


def test_required_similarity_label_path():
    assert required_similarity(make_query("a.b.t")) == ("t", 2)
    assert required_similarity(make_query("/a.t")) == ("t", 2)  # +1 anchored
    assert required_similarity(make_query("t")) == ("t", 0)
    assert required_similarity(make_query("a|b")) is None


def test_requirements_take_max_per_label():
    load = [make_query("b.t"), make_query("a.b.c.t"), make_query("a.b")]
    assert requirements_from_queries(load) == {"t": 3, "b": 1}


def test_requirements_from_finite_regex():
    reqs = requirements_from_queries([make_query("a.b?.t")])
    # max length 3 -> requirement 2 on every mentioned label.
    assert reqs == {"a": 2, "b": 2, "t": 2}


def test_requirements_ignore_unbounded_regex():
    assert requirements_from_queries([make_query("a*.t")]) == {}


def test_merge_requirements():
    assert merge_requirements({"a": 1, "b": 3}, {"b": 1, "c": 2}) == {
        "a": 1,
        "b": 3,
        "c": 2,
    }


def test_exact_requirements_from_load():
    load = QueryLoad([make_query("a.b.t"), make_query("b.t")])
    assert exact_requirements(load) == {"t": 2}


def test_coverage_requirements_quantile():
    load = QueryLoad()
    for _ in range(99):
        load.add(make_query("b.t"))
    load.add(make_query("a.a.a.a.t"))
    assert coverage_requirements(load, coverage=0.95) == {"t": 1}
    assert coverage_requirements(load, coverage=1.0) == {"t": 4}


def test_coverage_requirements_validates_range():
    load = QueryLoad([make_query("a.b")])
    with pytest.raises(WorkloadError):
        coverage_requirements(load, coverage=0.0)
    with pytest.raises(WorkloadError):
        coverage_requirements(load, coverage=1.5)


def test_coverage_requirements_weighted():
    load = QueryLoad()
    load.add(make_query("b.t"), weight=9)
    load.add(make_query("a.b.t"), weight=1)
    assert coverage_requirements(load, coverage=0.9) == {"t": 1}
    assert coverage_requirements(load, coverage=0.91) == {"t": 2}


def test_requirement_gain_split():
    raise_map, lower_map = requirement_gain(
        {"a": 1, "b": 2, "c": 3}, {"a": 2, "b": 1, "d": 1}
    )
    assert raise_map == {"a": 2, "d": 1}
    assert lower_map == {"b": 1, "c": 0}
