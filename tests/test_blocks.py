"""Unit tests for :mod:`repro.partition.blocks`."""

import pytest

from repro.exceptions import IndexInvariantError
from repro.partition.blocks import Partition, blocks_as_sets, intersect


def test_from_keys_groups_equal_keys():
    p = Partition.from_keys(["x", "y", "x", "z", "y"])
    assert p.block_of == [0, 1, 0, 2, 1]
    assert p.blocks == [[0, 2], [1, 4], [3]]


def test_constructor_validates_density():
    with pytest.raises(IndexInvariantError):
        Partition([0, 2])  # block 1 missing
    with pytest.raises(IndexInvariantError):
        Partition([-1])


def test_sizes():
    p = Partition.from_keys(["a", "a", "b"])
    assert p.num_nodes == 3
    assert p.num_blocks == 2
    assert len(p) == 2


def test_equality_ignores_block_ids():
    left = Partition([0, 1, 0])
    right = Partition([1, 0, 1])
    assert left == right
    assert hash(left) == hash(right)
    assert left != Partition([0, 0, 0])


def test_equality_different_sizes():
    assert Partition([0]) != Partition([0, 0])


def test_relabel_canonical():
    p = Partition([2, 0, 2, 1])
    assert p.relabel_canonical() == [0, 1, 0, 2]


def test_refines():
    coarse = Partition.from_keys(["a", "a", "b", "b"])
    fine = Partition.from_keys(["a", "x", "b", "y"])
    assert fine.refines(coarse)
    assert not coarse.refines(fine)
    assert coarse.refines(coarse)


def test_refines_size_mismatch():
    assert not Partition([0]).refines(Partition([0, 0]))


def test_same_block():
    p = Partition.from_keys(["a", "b", "a"])
    assert p.same_block(0, 2)
    assert not p.same_block(0, 1)


def test_intersect():
    left = Partition.from_keys(["a", "a", "b", "b"])
    right = Partition.from_keys(["x", "y", "x", "y"])
    both = intersect(left, right)
    assert both.num_blocks == 4
    assert both.refines(left)
    assert both.refines(right)


def test_intersect_size_mismatch():
    with pytest.raises(IndexInvariantError):
        intersect(Partition([0]), Partition([0, 0]))


def test_blocks_as_sets():
    p = Partition.from_keys(["a", "b", "a"])
    assert blocks_as_sets(p) == [frozenset({0, 2}), frozenset({1})]


def test_trusted_skips_validation_but_matches_init():
    block_of = [0, 1, 0, 2]
    blocks = [[0, 2], [1], [3]]
    fast = Partition.trusted(block_of, blocks)
    assert fast == Partition([0, 1, 0, 2])
    assert fast.block_of is block_of
    assert fast.blocks is blocks


def test_from_keys_uses_fast_path_consistently():
    # from_keys builds both maps in one pass; the result must be exactly
    # what the validating constructor would produce.
    keys = ["x", "y", "x", "z", "y", "x"]
    p = Partition.from_keys(keys)
    assert p.block_of == Partition(p.block_of).block_of
    assert p.blocks == Partition(p.block_of).blocks


def test_split_blocks_first_group_keeps_id():
    p = Partition.from_keys(["a", "a", "a", "b"])
    split = p.split_blocks({0: [[0, 2], [1]]})
    assert split.block_of == [0, 2, 0, 1]
    assert split.blocks == [[0, 2], [3], [1]]
    # the untouched block's member list is reused, not rebuilt
    assert split.blocks[1] is p.blocks[1]
    # the receiver is unchanged
    assert p.block_of == [0, 0, 0, 1]


def test_split_blocks_multiway_and_refines():
    p = Partition.from_keys(["a"] * 6)
    split = p.split_blocks({0: [[1, 4], [0, 3], [2, 5]]})
    assert split.num_blocks == 3
    assert split.refines(p)
    assert sorted(map(sorted, split.blocks)) == [[0, 3], [1, 4], [2, 5]]


def test_split_blocks_validates():
    p = Partition.from_keys(["a", "a", "b"])
    with pytest.raises(IndexInvariantError):
        p.split_blocks({5: [[0]]})  # no such block
    with pytest.raises(IndexInvariantError):
        p.split_blocks({0: [[0], []]})  # empty group
    with pytest.raises(IndexInvariantError):
        p.split_blocks({0: [[0, 2]]})  # node 2 is in block 1
    with pytest.raises(IndexInvariantError):
        p.split_blocks({0: [[0]]})  # does not cover member 1
