"""Unit tests for :mod:`repro.partition.blocks`."""

import pytest

from repro.exceptions import IndexInvariantError
from repro.partition.blocks import Partition, blocks_as_sets, intersect


def test_from_keys_groups_equal_keys():
    p = Partition.from_keys(["x", "y", "x", "z", "y"])
    assert p.block_of == [0, 1, 0, 2, 1]
    assert p.blocks == [[0, 2], [1, 4], [3]]


def test_constructor_validates_density():
    with pytest.raises(IndexInvariantError):
        Partition([0, 2])  # block 1 missing
    with pytest.raises(IndexInvariantError):
        Partition([-1])


def test_sizes():
    p = Partition.from_keys(["a", "a", "b"])
    assert p.num_nodes == 3
    assert p.num_blocks == 2
    assert len(p) == 2


def test_equality_ignores_block_ids():
    left = Partition([0, 1, 0])
    right = Partition([1, 0, 1])
    assert left == right
    assert hash(left) == hash(right)
    assert left != Partition([0, 0, 0])


def test_equality_different_sizes():
    assert Partition([0]) != Partition([0, 0])


def test_relabel_canonical():
    p = Partition([2, 0, 2, 1])
    assert p.relabel_canonical() == [0, 1, 0, 2]


def test_refines():
    coarse = Partition.from_keys(["a", "a", "b", "b"])
    fine = Partition.from_keys(["a", "x", "b", "y"])
    assert fine.refines(coarse)
    assert not coarse.refines(fine)
    assert coarse.refines(coarse)


def test_refines_size_mismatch():
    assert not Partition([0]).refines(Partition([0, 0]))


def test_same_block():
    p = Partition.from_keys(["a", "b", "a"])
    assert p.same_block(0, 2)
    assert not p.same_block(0, 1)


def test_intersect():
    left = Partition.from_keys(["a", "a", "b", "b"])
    right = Partition.from_keys(["x", "y", "x", "y"])
    both = intersect(left, right)
    assert both.num_blocks == 4
    assert both.refines(left)
    assert both.refines(right)


def test_intersect_size_mismatch():
    with pytest.raises(IndexInvariantError):
        intersect(Partition([0]), Partition([0, 0]))


def test_blocks_as_sets():
    p = Partition.from_keys(["a", "b", "a"])
    assert blocks_as_sets(p) == [frozenset({0, 2}), frozenset({1})]
