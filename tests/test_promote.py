"""Tests for :mod:`repro.core.promote` (Algorithm 6 + demoting)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import (
    extent_is_homogeneous,
    extent_paths_consistent,
    label_requirements,
    random_label_path,
    small_graphs,
)
from repro.core.construction import build_dk_index
from repro.core.dindex import check_dk_constraint
from repro.core.promote import demote_index, promote_nodes, promote_requirements
from repro.core.updates import dk_add_edge
from repro.exceptions import UpdateError
from repro.graph.builder import graph_from_edges
from repro.indexes.evaluation import evaluate_on_index
from repro.paths.cost import CostCounter
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import LabelPathQuery, make_query


def two_x_graph():
    return graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )


def test_promote_splits_to_requested_level():
    g = two_x_graph()
    index, _ = build_dk_index(g, {})  # label split, all k = 0
    x_block = next(iter(index.nodes_with_label("x")))
    report = promote_nodes(g, index, {x_block: 1})
    assert report.index_nodes_split >= 1
    assert len(index.nodes_with_label("x")) == 2
    index.check_invariants()
    check_dk_constraint(index)


def test_promote_noop_when_already_high():
    g = two_x_graph()
    index, _ = build_dk_index(g, {"x": 2})
    size = index.num_nodes
    report = promote_nodes(g, index, {next(iter(index.nodes_with_label("x"))): 1})
    assert report.index_nodes_split == 0
    assert index.num_nodes == size


def test_promote_requirements_matches_fresh_build():
    g = two_x_graph()
    index, _ = build_dk_index(g, {})
    promote_requirements(g, index, {"x": 2})
    fresh, _ = build_dk_index(g, {"x": 2})
    assert index.to_partition() == fresh.to_partition()
    # Promoted ks meet the broadcast levels.
    assert all(
        index.k[n] >= fresh.k[m]
        for n in range(index.num_nodes)
        for m in [fresh.node_of[index.extents[n][0]]]
    )


def test_promote_rejects_foreign_graph():
    g = two_x_graph()
    other = two_x_graph()
    index, _ = build_dk_index(other, {})
    with pytest.raises(UpdateError):
        promote_nodes(g, index, {0: 1})


def test_promote_rejects_negative_target():
    g = two_x_graph()
    index, _ = build_dk_index(g, {})
    with pytest.raises(ValueError):
        promote_nodes(g, index, {0: -1})


def test_promote_handles_cycles():
    # a self-referential pair: promotion through the cycle terminates
    # and produces honest similarities.
    g = graph_from_edges(
        ["a", "a", "b"], [(0, 1), (1, 2), (2, 1), (1, 3), (2, 3)]
    )
    index, _ = build_dk_index(g, {})
    promote_requirements(g, index, {"b": 3})
    index.check_invariants()
    check_dk_constraint(index)
    for node in range(index.num_nodes):
        assert extent_is_homogeneous(g, index.extents[node], index.k[node])


def test_promote_after_updates_restores_soundness():
    g = graph_from_edges(
        ["q", "x1", "x2", "x3"],
        [(0, 1), (0, 2), (2, 3), (3, 4)],
    )
    index, _ = build_dk_index(g, {"x3": 3})
    dk_add_edge(g, index, 1, 2)
    counter = CostCounter()
    query = make_query("q.x1.x2.x3")
    assert evaluate_on_index(index, query, counter) == evaluate_on_data_graph(
        g, query
    )
    assert counter.validated_queries == 1  # erosion forces validation

    promote_requirements(g, index, {"x3": 3})
    index.check_invariants()
    check_dk_constraint(index)
    counter = CostCounter()
    assert evaluate_on_index(index, query, counter) == evaluate_on_data_graph(
        g, query
    )
    assert counter.validated_queries == 0  # soundness restored


# ------------------------- demoting -----------------------------------


def test_demote_merges_back_to_lower_requirements():
    g = two_x_graph()
    index, _ = build_dk_index(g, {"x": 2})
    coarse = demote_index(index, {})
    fresh, _ = build_dk_index(g, {})
    assert coarse.to_partition() == fresh.to_partition()
    assert coarse.num_nodes == fresh.num_nodes
    coarse.check_invariants()
    check_dk_constraint(coarse)


def test_demote_leaves_input_untouched():
    g = two_x_graph()
    index, _ = build_dk_index(g, {"x": 2})
    size = index.num_nodes
    demote_index(index, {})
    assert index.num_nodes == size


@given(small_graphs(), label_requirements(max_k=2), label_requirements(max_k=2))
@settings(max_examples=60, deadline=None)
def test_demote_to_lower_requirements_equals_fresh_build(graph, high, low):
    # Make `low` pointwise <= `high` so demoting is truly a demotion.
    merged_high = dict(low)
    merged_high.update(
        {label: max(high.get(label, 0), low.get(label, 0)) for label in high}
    )
    index, _ = build_dk_index(graph, merged_high)
    demoted = demote_index(index, low)
    fresh, _ = build_dk_index(graph, low)
    assert demoted.to_partition() == fresh.to_partition()
    demoted.check_invariants()
    check_dk_constraint(demoted)


@given(small_graphs(max_nodes=8), label_requirements(max_k=3), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_promote_requirements_exact_and_honest(graph, requirements, seed):
    index, _ = build_dk_index(graph, {})
    promote_requirements(graph, index, requirements)
    index.check_invariants()
    check_dk_constraint(index)
    for node in range(index.num_nodes):
        assert extent_is_homogeneous(graph, index.extents[node], index.k[node])
    fresh, _ = build_dk_index(graph, requirements)
    assert index.to_partition() == fresh.to_partition()
    rng = random.Random(seed)
    labels = random_label_path(graph, rng)
    query = LabelPathQuery(anchored=False, labels=tuple(labels))
    assert evaluate_on_index(index, query) == evaluate_on_data_graph(graph, query)


@given(small_graphs(max_nodes=8), label_requirements(max_k=3), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_promote_after_random_updates_is_honest(graph, requirements, seed):
    rng = random.Random(seed)
    index, _ = build_dk_index(graph, requirements)
    nodes = list(graph.nodes())
    for _ in range(3):
        src, dst = rng.choice(nodes), rng.choice(nodes)
        if src == dst or graph.has_edge(src, dst) or dst == graph.root:
            continue
        dk_add_edge(graph, index, src, dst)
    promote_requirements(graph, index, requirements)
    index.check_invariants()
    check_dk_constraint(index)
    # After updates only the weak label-path invariant is guaranteed
    # (promotion splits against blocks that themselves only satisfy it).
    for node in range(index.num_nodes):
        assert extent_paths_consistent(graph, index.extents[node], index.k[node])
    labels = random_label_path(graph, rng)
    query = LabelPathQuery(anchored=False, labels=tuple(labels))
    assert evaluate_on_index(index, query) == evaluate_on_data_graph(graph, query)
