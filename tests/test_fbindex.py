"""Tests for :mod:`repro.indexes.fbindex` (F&B-index + twig evaluation)."""

from hypothesis import given, settings

from conftest import small_graphs
from repro.graph.builder import graph_from_edges
from repro.indexes.base import IndexGraph
from repro.indexes.fbindex import build_fb_index, evaluate_twig_on_fb, fb_partition
from repro.indexes.oneindex import build_1index
from repro.paths.cost import CostCounter
from repro.paths.twig import evaluate_twig, parse_twig
from test_twig import brute_force_twig, twig_queries


def actor_graph():
    """Two movies identical for incoming paths; only one has an actor."""
    return graph_from_edges(
        ["m", "m", "t", "t", "a"],
        [(0, 1), (0, 2), (1, 3), (2, 4), (2, 5)],
    )


def test_fb_splits_where_1index_does_not():
    g = actor_graph()
    one = build_1index(g)
    fb = build_fb_index(g)
    assert len(one.nodes_with_label("m")) == 1
    assert len(fb.nodes_with_label("m")) == 2
    fb.check_invariants()


def test_fb_refines_1index():
    g = actor_graph()
    fb = build_fb_index(g)
    one = build_1index(g)
    assert fb.to_partition().refines(one.to_partition())


def test_fb_partition_is_stable_both_ways():
    g = actor_graph()
    partition, rounds = fb_partition(g)
    assert rounds >= 1
    block_of = partition.block_of
    # Forward and backward signature stability.
    for adjacency in (g.parents, g.children):
        for members in partition.blocks:
            first = frozenset(block_of[n] for n in adjacency[members[0]])
            for member in members[1:]:
                assert frozenset(block_of[n] for n in adjacency[member]) == first


def test_twig_on_fb_is_exact():
    g = actor_graph()
    fb = build_fb_index(g)
    for text in ("m[a]/t", "m/t", "m[t]/a", "/m[a]/t", "m[a][t]/t"):
        query = parse_twig(text)
        assert evaluate_twig_on_fb(fb, query) == evaluate_twig(g, query), text


def test_twig_on_1index_can_be_wrong_without_fb():
    # Evaluating a branching query naively over the 1-index quotient
    # merges the two movies and over-reports — the reason F&B exists.
    g = actor_graph()
    one = build_1index(g)
    query = parse_twig("m[a]/t")
    naive = evaluate_twig_on_fb(one, query)  # same machinery, wrong index
    exact = evaluate_twig(g, query)
    assert naive > exact  # strictly over-approximates here


def test_twig_on_fb_counts_index_visits():
    g = actor_graph()
    fb = build_fb_index(g)
    counter = CostCounter()
    evaluate_twig_on_fb(fb, parse_twig("m[a]/t"), counter)
    assert counter.index_nodes_visited > 0
    assert counter.data_nodes_visited == 0


def test_fb_size_at_least_1index_on_datasets():
    from repro.datasets.xmark import generate_xmark

    g = generate_xmark(scale=0.04, seed=2).graph
    fb = build_fb_index(g)
    one = build_1index(g)
    assert fb.num_nodes >= one.num_nodes
    fb.check_invariants()


@given(small_graphs(max_nodes=8))
@settings(max_examples=60, deadline=None)
def test_fb_index_invariants_random(graph):
    fb = build_fb_index(graph)
    fb.check_invariants()
    one = build_1index(graph)
    assert fb.to_partition().refines(one.to_partition())


@given(small_graphs(max_nodes=7), twig_queries())
@settings(max_examples=120, deadline=None)
def test_twig_on_fb_matches_oracle_random(graph, query):
    fb = build_fb_index(graph)
    assert evaluate_twig_on_fb(fb, query) == brute_force_twig(graph, query)
