"""Tests for the refinement-engine benchmark harness and its CLI."""

import json

import pytest

from repro.bench.refine import (
    SCHEMA,
    RefineBenchConfig,
    format_report,
    run_refine_bench,
    synthetic_requirements,
    write_report,
)
from repro.cli import main
from repro.datasets.xmark import generate_xmark
from repro.exceptions import DatasetError

TINY = RefineBenchConfig(scale="0.05", repeats=1, datasets=("xmark",))


def test_report_structure_and_speedups():
    report = run_refine_bench(TINY)
    assert report["schema"] == SCHEMA
    assert report["config"]["scale_factor"] == 0.05
    results = report["results"]
    # 4 scenarios x 2 serial engines, no parallel rows when jobs <= 1.
    assert len(results) == 8
    scenarios = {row["scenario"] for row in results}
    assert scenarios == {
        "ak_sweep",
        "oneindex_fixpoint",
        "dk_build",
        "table1_reindex",
    }
    assert {row["engine"] for row in results} == {"legacy", "worklist"}
    for row in results:
        assert len(row["times_s"]) == 1
        assert row["median_s"] >= 0.0
    speedups = report["speedups"]
    assert set(speedups) == {f"xmark/{name}" for name in scenarios}
    for entry in speedups.values():
        assert entry["speedup"] == pytest.approx(
            entry["legacy_s"] / entry["worklist_s"]
        )


def test_parallel_rows_added_when_jobs_given():
    report = run_refine_bench(
        RefineBenchConfig(scale="0.05", repeats=1, jobs=2, datasets=("xmark",))
    )
    engines = {row["engine"] for row in report["results"]}
    assert engines == {"legacy", "worklist", "worklist-parallel"}
    # Speedups always compare the serial engines.
    assert set(report["speedups"]) == {
        "xmark/ak_sweep",
        "xmark/oneindex_fixpoint",
        "xmark/dk_build",
        "xmark/table1_reindex",
    }


def test_write_report_round_trips(tmp_path):
    report = run_refine_bench(TINY)
    out = tmp_path / "BENCH_refinement.json"
    write_report(report, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["schema"] == SCHEMA
    assert loaded["datasets"]["xmark"]["nodes"] > 0
    assert "speedup" in format_report(report)


def test_named_and_numeric_scales():
    assert RefineBenchConfig(scale="small").scale_factor == 0.2
    assert RefineBenchConfig(scale="0.4").scale_factor == 0.4
    with pytest.raises(DatasetError):
        RefineBenchConfig(scale="galactic").scale_factor


def test_unknown_dataset_rejected():
    with pytest.raises(DatasetError):
        run_refine_bench(
            RefineBenchConfig(scale="0.05", repeats=1, datasets=("enron",))
        )


def test_synthetic_requirements_deterministic_and_varied():
    graph = generate_xmark(scale=0.05, seed=0).graph
    requirements = synthetic_requirements(graph)
    assert requirements == synthetic_requirements(graph)
    assert "ROOT" not in requirements and "VALUE" not in requirements
    assert set(requirements.values()) <= {1, 2, 3}
    assert len(set(requirements.values())) > 1


def test_cli_bench_refine(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = main(
        [
            "bench", "refine",
            "--scale", "0.05",
            "--repeats", "1",
            "--datasets", "xmark",
            "--out", str(out),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "speedup" in captured
    assert str(out) in captured
    loaded = json.loads(out.read_text())
    assert loaded["schema"] == SCHEMA
    assert loaded["config"]["repeats"] == 1


def test_cli_bench_refine_bad_scale_is_clean_error(tmp_path, capsys):
    code = main(
        [
            "bench", "refine",
            "--scale", "galactic",
            "--out", str(tmp_path / "bench.json"),
        ]
    )
    assert code == 1
    assert "error:" in capsys.readouterr().err
