"""Tests for the refinement-engine benchmark harness and its CLI."""

import json

import pytest

from repro.bench.refine import (
    SCHEMA,
    RefineBenchConfig,
    format_report,
    run_refine_bench,
    synthetic_requirements,
    write_report,
)
from repro.cli import main
from repro.datasets.xmark import generate_xmark
from repro.exceptions import DatasetError

TINY = RefineBenchConfig(scale="0.05", repeats=1, datasets=("xmark",))

SCENARIOS = {"ak_sweep", "oneindex_fixpoint", "dk_build", "table1_reindex"}


def test_report_structure_and_speedups():
    report = run_refine_bench(TINY)
    assert report["schema"] == SCHEMA
    assert report["config"]["scale_axis"] == {"0.05": 0.05}
    results = report["results"]
    # 4 scenarios x 3 serial engines x 1 scale; no parallel rows when
    # jobs resolves to serial.
    assert len(results) == 12
    assert {row["scenario"] for row in results} == SCENARIOS
    assert {row["engine"] for row in results} == {
        "legacy",
        "worklist",
        "columnar",
    }
    for row in results:
        assert len(row["times_s"]) == 1
        assert row["median_s"] >= 0.0
        assert row["scale"] == "0.05"
        assert row["peak_kb"] > 0.0
        # The raw CLI default (0) must never leak into a row.
        assert row["jobs"] == 1
    speedups = report["speedups"]
    assert set(speedups) == {f"xmark/{name}@0.05" for name in SCENARIOS}
    for entry in speedups.values():
        assert entry["speedup"] == pytest.approx(
            entry["legacy_s"] / entry["worklist_s"]
        )
        assert entry["columnar_vs_worklist"] == pytest.approx(
            entry["worklist_s"] / entry["columnar_s"]
        )


def test_scale_axis_produces_one_row_set_per_scale():
    report = run_refine_bench(
        RefineBenchConfig(
            scale="0.05,0.08", repeats=1, datasets=("xmark",)
        )
    )
    results = report["results"]
    assert len(results) == 24  # 4 scenarios x 3 engines x 2 scales
    assert {row["scale"] for row in results} == {"0.05", "0.08"}
    assert set(report["datasets"]) == {"xmark@0.05", "xmark@0.08"}
    assert set(report["speedups"]) == {
        f"xmark/{name}@{scale}"
        for name in SCENARIOS
        for scale in ("0.05", "0.08")
    }


def test_parallel_rows_added_when_jobs_given():
    report = run_refine_bench(
        RefineBenchConfig(scale="0.05", repeats=1, jobs=2, datasets=("xmark",))
    )
    engines = {row["engine"] for row in report["results"]}
    assert engines == {
        "legacy",
        "worklist",
        "columnar",
        "worklist-parallel",
        "columnar-parallel",
    }
    for row in report["results"]:
        assert row["jobs"] == (2 if row["engine"].endswith("-parallel") else 1)
    assert report["config"]["jobs"] == 2
    # Speedups always compare the serial engines.
    assert set(report["speedups"]) == {
        f"xmark/{name}@0.05" for name in SCENARIOS
    }


def test_write_report_round_trips(tmp_path):
    report = run_refine_bench(TINY)
    out = tmp_path / "BENCH_refinement.json"
    write_report(report, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["schema"] == SCHEMA
    assert loaded["datasets"]["xmark@0.05"]["nodes"] > 0
    assert "col/wl" in format_report(report)


def test_named_numeric_and_mixed_scale_axes():
    assert RefineBenchConfig(scale="small").scale_axis == (("small", 0.2),)
    assert RefineBenchConfig(scale="0.4").scale_axis == (("0.4", 0.4),)
    assert RefineBenchConfig(scale="small,medium").scale_axis == (
        ("small", 0.2),
        ("medium", 0.6),
    )
    assert RefineBenchConfig(scale="small, 0.3").scale_axis == (
        ("small", 0.2),
        ("0.3", 0.3),
    )
    with pytest.raises(DatasetError):
        RefineBenchConfig(scale="galactic").scale_axis
    with pytest.raises(DatasetError):
        RefineBenchConfig(scale=",").scale_axis


def test_unknown_dataset_rejected():
    with pytest.raises(DatasetError):
        run_refine_bench(
            RefineBenchConfig(scale="0.05", repeats=1, datasets=("enron",))
        )


def test_synthetic_requirements_deterministic_and_varied():
    graph = generate_xmark(scale=0.05, seed=0).graph
    requirements = synthetic_requirements(graph)
    assert requirements == synthetic_requirements(graph)
    assert "ROOT" not in requirements and "VALUE" not in requirements
    assert set(requirements.values()) <= {1, 2, 3}
    assert len(set(requirements.values())) > 1


def test_cli_bench_refine(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = main(
        [
            "bench", "refine",
            "--scale", "0.05",
            "--repeats", "1",
            "--datasets", "xmark",
            "--out", str(out),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "col/wl" in captured
    assert str(out) in captured
    loaded = json.loads(out.read_text())
    assert loaded["schema"] == SCHEMA
    assert loaded["config"]["repeats"] == 1


def test_cli_bench_refine_bad_scale_is_clean_error(tmp_path, capsys):
    code = main(
        [
            "bench", "refine",
            "--scale", "galactic",
            "--out", str(tmp_path / "bench.json"),
        ]
    )
    assert code == 1
    assert "error:" in capsys.readouterr().err
