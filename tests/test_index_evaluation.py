"""Tests for index-graph evaluation, validation, safety and soundness.

The decisive properties (Section 3's safety/soundness and Section 4's
Theorem 1 consequences):

- *safety*: the raw (unvalidated) index answer contains the data answer,
  for every index and every query;
- *exactness with validation*: index + validation equals the data answer;
- *soundness within k*: an A(k)-index never validates queries of at most
  k edges, and the D(k) terminal rule never lets a false positive
  through.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_label_path, small_graphs
from repro.core.construction import build_dk_index
from repro.graph.builder import graph_from_edges
from repro.indexes.akindex import build_ak_index
from repro.indexes.evaluation import evaluate_on_index, match_index_nodes
from repro.indexes.labelsplit import build_labelsplit_index
from repro.indexes.oneindex import build_1index
from repro.paths.cost import CostCounter
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import LabelPathQuery, make_query


def two_x_graph():
    return graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )


def test_sound_query_answers_from_index_alone():
    g = two_x_graph()
    idx = build_ak_index(g, 1)
    counter = CostCounter()
    result = evaluate_on_index(idx, make_query("a.x"), counter)
    assert result == {3}
    assert counter.data_nodes_visited == 0
    assert counter.validated_queries == 0


def test_short_query_on_coarse_index_validates():
    # On A(0) the x extent is {3, 4}; "a.x" (1 edge) needs k >= 1.
    g = two_x_graph()
    idx = build_labelsplit_index(g)
    counter = CostCounter()
    result = evaluate_on_index(idx, make_query("a.x"), counter)
    assert result == {3}
    assert counter.validated_queries == 1
    assert counter.data_nodes_visited > 0


def test_unvalidated_answer_is_safe_superset():
    g = two_x_graph()
    idx = build_labelsplit_index(g)
    raw = evaluate_on_index(idx, make_query("a.x"), validate=False)
    assert raw == {3, 4}  # safe but unsound


def test_single_label_unanchored_never_validates():
    g = two_x_graph()
    idx = build_labelsplit_index(g)
    counter = CostCounter()
    assert evaluate_on_index(idx, make_query("x"), counter) == {3, 4}
    assert counter.validated_queries == 0


def test_anchored_needs_one_more_level():
    # /a is anchored: on A(0) even a single label validates (the match
    # must start at a child of the root); on A(1) it is sound.
    g = graph_from_edges(["a", "a"], [(0, 1), (1, 2)])
    coarse = build_labelsplit_index(g)
    counter = CostCounter()
    assert evaluate_on_index(coarse, make_query("/a"), counter) == {1}
    assert counter.validated_queries == 1
    fine = build_ak_index(g, 1)
    counter = CostCounter()
    assert evaluate_on_index(fine, make_query("/a"), counter) == {1}
    assert counter.validated_queries == 0


def test_match_index_nodes():
    g = two_x_graph()
    idx = build_ak_index(g, 1)
    terminals = match_index_nodes(idx, make_query("a.x"))
    assert len(terminals) == 1
    assert idx.extents[next(iter(terminals))] == [3]


def test_unknown_label_query_is_empty():
    g = two_x_graph()
    idx = build_ak_index(g, 1)
    assert evaluate_on_index(idx, make_query("zzz.x")) == set()
    assert match_index_nodes(idx, make_query("zzz")) == set()


def test_regex_on_index_exact_with_validation():
    g = graph_from_edges(
        ["a", "b", "c", "x"],
        [(0, 1), (1, 2), (2, 3), (3, 4), (1, 4)],
    )
    for index in (build_labelsplit_index(g), build_ak_index(g, 2), build_1index(g)):
        for text in ("a.(b.c)?._", "a//x", "b|c", "_._"):
            query = make_query(text)
            got = evaluate_on_index(index, query)
            want = evaluate_on_data_graph(g, query)
            assert got == want, (text, type(index))


def test_regex_sound_on_1index_without_validation():
    g = two_x_graph()
    idx = build_1index(g)
    counter = CostCounter()
    result = evaluate_on_index(idx, make_query("a.x"), counter)
    assert result == {3}
    assert counter.data_nodes_visited == 0


def test_index_cost_much_smaller_than_data_scan():
    g = two_x_graph()
    idx = build_ak_index(g, 1)
    index_counter = CostCounter()
    evaluate_on_index(idx, make_query("a.x"), index_counter)
    data_counter = CostCounter()
    evaluate_on_data_graph(g, make_query("a.x"), data_counter)
    assert index_counter.total < data_counter.total


# ----------------------------------------------------------------------
# Properties over random graphs, indexes and queries
# ----------------------------------------------------------------------


@given(small_graphs(), st.integers(0, 3), st.integers(0, 10_000))
@settings(max_examples=120, deadline=None)
def test_ak_index_safe_and_exact(graph, k, seed):
    rng = random.Random(seed)
    labels = random_label_path(graph, rng)
    index = build_ak_index(graph, k)
    for anchored in (False, True):
        query = LabelPathQuery(anchored=anchored, labels=tuple(labels))
        want = evaluate_on_data_graph(graph, query)
        raw = evaluate_on_index(index, query, validate=False)
        assert want <= raw, "safety violated"
        got = evaluate_on_index(index, query)
        assert got == want, "validated answer differs from ground truth"


@given(small_graphs(), st.integers(0, 10_000))
@settings(max_examples=80, deadline=None)
def test_ak_never_validates_within_k(graph, seed):
    rng = random.Random(seed)
    labels = random_label_path(graph, rng)
    k = len(labels) - 1
    index = build_ak_index(graph, k)
    counter = CostCounter()
    evaluate_on_index(
        index, LabelPathQuery(anchored=False, labels=tuple(labels)), counter
    )
    assert counter.validated_queries == 0
    assert counter.data_nodes_visited == 0


@given(small_graphs(), st.integers(0, 10_000))
@settings(max_examples=80, deadline=None)
def test_dk_index_exact_for_random_requirements(graph, seed):
    rng = random.Random(seed)
    labels = random_label_path(graph, rng)
    requirements = {
        graph.label_name(i): rng.randint(0, 2) for i in range(graph.num_labels)
    }
    index, _levels = build_dk_index(graph, requirements)
    index.check_invariants()
    query = LabelPathQuery(anchored=False, labels=tuple(labels))
    assert evaluate_on_index(index, query) == evaluate_on_data_graph(graph, query)
