"""Tests for :mod:`repro.core.updates` (Algorithms 3, 4, 5 + A(k) baseline).

The central correctness property of the paper's edge-addition update:
after any sequence of random edge additions, the D(k)-index (a) keeps
its structural invariants, (b) keeps every assigned ``k`` *honest* in
the sense Theorem 1 needs — every extent member has the same incoming
label-path sets up to length k (strictly weaker than k-bisimilarity,
which edge additions do NOT preserve; see DESIGN.md §5) — and therefore
(c) still answers every query exactly (with validation where needed).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import (
    extent_is_homogeneous,
    extent_paths_consistent,
    label_requirements,
    random_label_path,
    small_graphs,
)
from repro.core.construction import build_dk_index
from repro.core.dindex import check_dk_constraint
from repro.core.updates import (
    ak_propagate_add_edge,
    dk_add_edge,
    dk_add_edges,
    dk_add_subgraph,
    enforce_dk_constraint,
    update_local_similarity,
)
from repro.exceptions import (
    IndexInvariantError,
    UnknownNodeError,
    UpdateError,
)
from repro.graph.builder import graph_from_edges
from repro.indexes.akindex import build_ak_index
from repro.indexes.evaluation import evaluate_on_index
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import LabelPathQuery


def figure3_graph():
    """The spirit of Figure 3: chain with a C/D/E tail and two c nodes."""
    return graph_from_edges(
        ["a", "b", "c", "c", "d", "e"],
        [(0, 1), (1, 2), (0, 3), (2, 4), (3, 4), (4, 5), (5, 6)],
    )


# ------------------------- Algorithm 4 --------------------------------


def test_update_local_similarity_bounded():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    for src in range(index.num_nodes):
        for dst in range(index.num_nodes):
            k_new = update_local_similarity(index, src, dst)
            assert 0 <= k_new <= min(index.k[src] + 1, index.k[dst])


def test_update_local_similarity_keeps_k_when_paths_match():
    # Figure 3's point: adding another c -> d edge where d already has a
    # c parent keeps d's similarity at >= 1.
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    c_nodes = sorted(index.nodes_with_label("c"))
    d_node = next(iter(index.nodes_with_label("d")))
    k_new = update_local_similarity(index, c_nodes[0], d_node)
    assert k_new >= 1


def test_update_local_similarity_zero_for_novel_parent_label():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    e_node = next(iter(index.nodes_with_label("e")))
    a_node = next(iter(index.nodes_with_label("a")))
    # e's only parent label is d; an edge from a brings a new label path.
    assert update_local_similarity(index, a_node, e_node) == 0


# ------------------------- Algorithm 5 --------------------------------


def test_dk_add_edge_updates_graph_and_index():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    report = dk_add_edge(g, index, 1, 6)  # a -> e
    assert g.has_edge(1, 6)
    assert report.new_index_edge
    index.check_invariants()
    check_dk_constraint(index)
    assert index.k[report.target] == report.new_k


def test_dk_add_edge_rejects_duplicates():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    dk_add_edge(g, index, 1, 6)
    with pytest.raises(UpdateError):
        dk_add_edge(g, index, 1, 6)


def test_dk_add_edge_rejects_foreign_index():
    g = figure3_graph()
    other = figure3_graph()
    index, _ = build_dk_index(other, {"e": 3})
    with pytest.raises(UpdateError):
        dk_add_edge(g, index, 1, 6)


def test_dk_add_edge_never_raises_similarity():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    before = list(index.k)
    dk_add_edge(g, index, 1, 6)
    assert all(after <= prior for after, prior in zip(index.k, before))


def test_dk_add_edge_extents_unchanged():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    size_before = index.num_nodes
    partition_before = index.to_partition()
    dk_add_edge(g, index, 1, 6)
    assert index.num_nodes == size_before
    assert index.to_partition() == partition_before


def test_lowering_propagates_with_distance():
    # Chain x1 -> x2 -> x3 all requiring 3: new edge into x1 lowers the
    # whole chain with +1 per step.
    g = graph_from_edges(
        ["q", "x1", "x2", "x3"],
        [(0, 1), (0, 2), (2, 3), (3, 4)],
    )
    index, _ = build_dk_index(g, {"x3": 3})
    report = dk_add_edge(g, index, 1, 2)  # q -> x1
    k1 = index.k[index.node_of[2]]
    k2 = index.k[index.node_of[3]]
    k3 = index.k[index.node_of[4]]
    assert k2 <= k1 + 1
    assert k3 <= k2 + 1
    check_dk_constraint(index)


# ------------------------- A(k) propagate baseline ---------------------


def test_ak_propagate_a0_only_adds_edge():
    g = figure3_graph()
    index = build_ak_index(g, 0)
    size = index.num_nodes
    report = ak_propagate_add_edge(g, index, 1, 6, 0)
    assert index.num_nodes == size
    assert report.data_nodes_touched == 0
    index.check_invariants()


def test_ak_propagate_splits_target():
    g = figure3_graph()
    index = build_ak_index(g, 2)
    report = ak_propagate_add_edge(g, index, 1, 5, 2)  # a -> d
    index.check_invariants()
    assert report.data_nodes_touched > 0 or report.index_nodes_split >= 0


def test_ak_propagate_rejects_duplicate_edge():
    g = figure3_graph()
    index = build_ak_index(g, 2)
    ak_propagate_add_edge(g, index, 1, 6, 2)
    with pytest.raises(UpdateError):
        ak_propagate_add_edge(g, index, 1, 6, 2)


def test_ak_propagate_rejects_negative_k():
    g = figure3_graph()
    index = build_ak_index(g, 1)
    with pytest.raises(ValueError):
        ak_propagate_add_edge(g, index, 1, 6, -1)


@given(small_graphs(max_nodes=8), st.integers(1, 3), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_ak_propagate_stays_safe_and_exact(graph, k, seed):
    rng = random.Random(seed)
    index = build_ak_index(graph, k)
    nodes = list(graph.nodes())
    for _ in range(3):
        src, dst = rng.choice(nodes), rng.choice(nodes)
        if src == dst or graph.has_edge(src, dst) or dst == graph.root:
            continue
        ak_propagate_add_edge(graph, index, src, dst, k)
    index.check_invariants()
    labels = random_label_path(graph, rng)
    query = LabelPathQuery(anchored=False, labels=tuple(labels))
    want = evaluate_on_data_graph(graph, query)
    raw = evaluate_on_index(index, query, validate=False)
    assert want <= raw  # safety always
    got = evaluate_on_index(index, query)
    assert got == want  # exact with validation


# ------------------------- the big D(k) update property ----------------


@given(
    small_graphs(max_nodes=9),
    label_requirements(),
    st.integers(0, 10_000),
)
@settings(max_examples=100, deadline=None)
def test_dk_edge_additions_keep_everything_exact(graph, requirements, seed):
    rng = random.Random(seed)
    index, _levels = build_dk_index(graph, requirements)
    nodes = list(graph.nodes())
    added = 0
    while added < 4:
        src, dst = rng.choice(nodes), rng.choice(nodes)
        if src == dst or graph.has_edge(src, dst) or dst == graph.root:
            added += 1  # count attempts to guarantee termination
            continue
        dk_add_edge(graph, index, src, dst)
        added += 1

    index.check_invariants()
    check_dk_constraint(index)
    # Honest k in the *updated* graph — the weak (all-or-none label-path)
    # invariant, which is what Algorithm 4 preserves and Theorem 1 needs;
    # full k-bisimilarity is NOT maintained by edge additions (see
    # DESIGN.md §5, found by this very test's strong predecessor).
    for node in range(index.num_nodes):
        assert extent_paths_consistent(
            graph, index.extents[node], index.k[node]
        ), f"extent of node {node} is not path-consistent at {index.k[node]}"
    # Exact answers.
    labels = random_label_path(graph, rng)
    query = LabelPathQuery(anchored=False, labels=tuple(labels))
    assert evaluate_on_index(index, query) == evaluate_on_data_graph(graph, query)


def test_dk_add_edges_batch_equals_sequential():
    from repro.core.updates import dk_add_edges

    g1, g2 = figure3_graph(), figure3_graph()
    index1, _ = build_dk_index(g1, {"e": 3})
    index2, _ = build_dk_index(g2, {"e": 3})
    batch = [(1, 6), (3, 5)]
    reports = dk_add_edges(g1, index1, batch)
    for src, dst in batch:
        dk_add_edge(g2, index2, src, dst)
    assert len(reports) == 2
    assert index1.k == index2.k
    assert index1.to_partition() == index2.to_partition()
    index1.check_invariants()


# ------------------------- Algorithm 3 (subgraph) ----------------------


def test_subgraph_addition_equals_rebuild():
    g = figure3_graph()
    requirements = {"e": 2, "d": 1}
    index, _ = build_dk_index(g, requirements)
    h = graph_from_edges(["a", "b", "c"], [(0, 1), (1, 2), (2, 3)])
    new_index, mapping = dk_add_subgraph(g, index, h, requirements)
    new_index.check_invariants()
    check_dk_constraint(new_index)
    rebuilt, _ = build_dk_index(g, requirements)  # g already grew
    assert new_index.to_partition() == rebuilt.to_partition()
    assert mapping[0] == g.root
    assert g.label(mapping[1]) == "a"


@given(
    small_graphs(max_nodes=7),
    small_graphs(max_nodes=5),
    label_requirements(),
    st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_subgraph_addition_random(graph, subgraph, requirements, seed):
    from repro.core.broadcast import broadcast_for_graph
    from repro.core.construction import resolve_requirements

    index, old_levels = build_dk_index(graph, requirements)
    new_index, _mapping = dk_add_subgraph(graph, index, subgraph, requirements)
    new_index.check_invariants()
    check_dk_constraint(new_index)

    # Theorem 2 equality holds under the paper's same-schema assumption:
    # the combined broadcast must agree with the original one on the
    # original labels (otherwise the incremental result is a sound
    # refinement that needs a promote to match the rebuild).
    combined_levels = broadcast_for_graph(
        graph, graph.num_labels, resolve_requirements(graph, requirements)
    )
    if combined_levels[: len(old_levels)] == old_levels:
        rebuilt, _ = build_dk_index(graph, requirements)
        assert new_index.to_partition() == rebuilt.to_partition()
        assert new_index.num_nodes == rebuilt.num_nodes

    # Regardless of schema drift: honest ks and exact answers.
    for node in range(new_index.num_nodes):
        assert extent_is_homogeneous(
            graph, new_index.extents[node], new_index.k[node]
        )
    rng = random.Random(seed)
    labels = random_label_path(graph, rng)
    query = LabelPathQuery(anchored=False, labels=tuple(labels))
    assert evaluate_on_index(new_index, query) == evaluate_on_data_graph(
        graph, query
    )


# ------------------- endpoint validation + constraint guards -----------


def test_dk_add_edge_rejects_unknown_endpoints():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    before_edges = g.num_edges
    with pytest.raises(UnknownNodeError):
        dk_add_edge(g, index, 1, 99)
    with pytest.raises(UnknownNodeError):
        dk_add_edge(g, index, -1, 2)
    assert g.num_edges == before_edges


def test_dk_add_edge_rejects_node_outside_index():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    newcomer = g.add_node("z")  # graph grew; the index never saw it
    with pytest.raises(UnknownNodeError):
        dk_add_edge(g, index, 1, newcomer)


def test_dk_add_edges_bad_batch_is_a_no_op():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    before_edges = g.num_edges
    before_k = list(index.k)
    # Edge (1, 6) is valid but must not be applied: the batch also
    # contains an unknown endpoint and fails validation up front.
    with pytest.raises(UnknownNodeError):
        dk_add_edges(g, index, [(1, 6), (2, 99)])
    assert g.num_edges == before_edges
    assert not g.has_edge(1, 6)
    assert list(index.k) == before_k


def test_dk_add_edges_rejects_duplicates_within_batch():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    with pytest.raises(UpdateError):
        dk_add_edges(g, index, [(1, 6), (1, 6)])
    with pytest.raises(UpdateError):
        dk_add_edges(g, index, [(0, 1)])  # already in the graph
    assert not g.has_edge(1, 6)


def test_check_dk_constraint_accepts_fresh_and_flags_corrupt():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    check_dk_constraint(index)  # fresh build satisfies Definition 3
    e_node = next(iter(index.nodes_with_label("e")))
    index.k[e_node] += 5
    with pytest.raises(IndexInvariantError):
        check_dk_constraint(index)


def test_enforce_dk_constraint_is_idempotent():
    g = figure3_graph()
    index, _ = build_dk_index(g, {"e": 3})
    assert enforce_dk_constraint(index) == 0  # valid index: nothing to do
    e_node = next(iter(index.nodes_with_label("e")))
    index.k[e_node] += 5
    assert enforce_dk_constraint(index) >= 1
    check_dk_constraint(index)
    assert enforce_dk_constraint(index) == 0


@settings(max_examples=30, deadline=None)
@given(
    graph=small_graphs(),
    requirements=label_requirements(),
    bumps=st.lists(
        st.tuples(st.integers(min_value=0, max_value=50),
                  st.integers(min_value=1, max_value=6)),
        max_size=4,
    ),
)
def test_enforce_restores_definition3_after_any_corruption(
    graph, requirements, bumps
):
    """Property: whatever upward corruption hits the similarity vector,
    ``enforce_dk_constraint`` returns the index to Definition 3, and a
    repeated call confirms the fixpoint."""
    index, _ = build_dk_index(graph, requirements)
    check_dk_constraint(index)  # any freshly built index satisfies it
    for position, bump in bumps:
        index.k[position % index.num_nodes] += bump
    enforce_dk_constraint(index)
    check_dk_constraint(index)
    assert enforce_dk_constraint(index) == 0
    # Lowering never broke the structural invariants either.
    index.check_invariants()
