"""Tests for :mod:`repro.datasets.dtd` (parser + random generator)."""

import random

import pytest

from repro.datasets.dtd import (
    ChoiceParticle,
    DTDGeneratorConfig,
    EmptyContent,
    NameParticle,
    PCDataParticle,
    RandomDocumentGenerator,
    SeqParticle,
    parse_dtd,
)
from repro.exceptions import DTDError

MOVIE_DTD = """
<!-- a tiny movie schema -->
<!ELEMENT db (movie*, person*)>
<!ELEMENT movie (title, year?, (cast | crew))>
<!ATTLIST movie id ID #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT cast (member+)>
<!ELEMENT crew (member+)>
<!ELEMENT member EMPTY>
<!ATTLIST member person IDREF #REQUIRED>
<!ELEMENT person (name)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT name (#PCDATA)>
"""


def test_parse_elements():
    dtd = parse_dtd(MOVIE_DTD)
    assert sorted(dtd.element_names()) == [
        "cast", "crew", "db", "member", "movie", "name", "person",
        "title", "year",
    ]


def test_parse_content_models():
    dtd = parse_dtd(MOVIE_DTD)
    db = dtd.element("db").content
    assert isinstance(db, SeqParticle)
    assert db.items[0] == NameParticle(occurrence="*", name="movie")
    movie = dtd.element("movie").content
    assert isinstance(movie.items[2], ChoiceParticle)
    assert isinstance(dtd.element("title").content, PCDataParticle)
    assert isinstance(dtd.element("member").content, EmptyContent)


def test_parse_attlist():
    dtd = parse_dtd(MOVIE_DTD)
    movie_attrs = dtd.element("movie").attributes
    assert movie_attrs[0].name == "id"
    assert movie_attrs[0].kind == "ID"
    assert movie_attrs[0].required
    member_attrs = dtd.element("member").attributes
    assert member_attrs[0].kind == "IDREF"


def test_parse_enumerated_attribute():
    dtd = parse_dtd(
        "<!ELEMENT a (#PCDATA)><!ATTLIST a mode (on|off) \"on\">"
    )
    assert dtd.element("a").attributes[0].kind == "ENUM"


def test_parse_errors():
    with pytest.raises(DTDError):
        parse_dtd("no declarations here")
    with pytest.raises(DTDError):
        parse_dtd("<!ELEMENT a (b)><!ELEMENT a (c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>")
    with pytest.raises(DTDError):
        parse_dtd("<!ATTLIST ghost x CDATA #IMPLIED><!ELEMENT a EMPTY>")
    with pytest.raises(DTDError):
        parse_dtd("<!ELEMENT a (b,|c)>")
    with pytest.raises(DTDError):
        parse_dtd("<!ELEMENT a (b|c,d)>")  # mixed separators


def test_undeclared_element_lookup():
    dtd = parse_dtd(MOVIE_DTD)
    with pytest.raises(DTDError):
        dtd.element("ghost")


def test_generate_deterministic():
    dtd = parse_dtd(MOVIE_DTD)
    generator = RandomDocumentGenerator(
        dtd, ref_targets={("member", "person"): "person"}
    )
    one = generator.generate("db", random.Random(5))
    two = generator.generate("db", random.Random(5))
    assert one.graph.num_nodes == two.graph.num_nodes
    assert sorted(one.graph.edges()) == sorted(two.graph.edges())


def test_generate_honours_required_children():
    dtd = parse_dtd(MOVIE_DTD)
    generator = RandomDocumentGenerator(dtd)
    doc = generator.generate("db", random.Random(1))
    g = doc.graph
    for movie in g.nodes_with_label("movie"):
        child_labels = {g.label(c) for c in g.children[movie]}
        assert "title" in child_labels
        assert child_labels & {"cast", "crew"}


def test_generate_wires_references():
    dtd = parse_dtd(MOVIE_DTD)
    config = DTDGeneratorConfig(star_mean=3.0)
    generator = RandomDocumentGenerator(
        dtd, config, ref_targets={("member", "person"): "person"}
    )
    for seed in range(10):
        doc = generator.generate("db", random.Random(seed))
        if doc.num_reference_edges:
            assert doc.reference_pairs == [("member", "person")]
            g = doc.graph
            member = next(
                m
                for m in g.nodes_with_label("member")
                if any(g.label(c) == "person" for c in g.children[m])
            )
            assert member is not None
            return
    pytest.fail("no document with wired references in 10 seeds")


def test_id_pools_track_id_elements():
    dtd = parse_dtd(MOVIE_DTD)
    generator = RandomDocumentGenerator(dtd, DTDGeneratorConfig(star_mean=3.0))
    doc = generator.generate("db", random.Random(3))
    movies = doc.graph.nodes_with_label("movie")
    assert sorted(doc.id_pools.get("movie", [])) == sorted(movies)


def test_max_depth_respected():
    recursive = parse_dtd(
        "<!ELEMENT a (b)><!ELEMENT b (a?)>"
    )
    config = DTDGeneratorConfig(max_depth=6, optional_prob=1.0)
    generator = RandomDocumentGenerator(recursive, config)
    doc = generator.generate("a", random.Random(0))
    from repro.graph.stats import graph_stats

    assert graph_stats(doc.graph).max_depth <= 6


def test_soft_node_cap_limits_growth():
    dtd = parse_dtd("<!ELEMENT a (a*)>")
    config = DTDGeneratorConfig(
        max_depth=1000, star_mean=10.0, max_repeat=1000, soft_node_cap=50
    )
    generator = RandomDocumentGenerator(dtd, config)
    doc = generator.generate("a", random.Random(0))
    # The cap is soft (required content still completes) but the star
    # expansion must stop shortly after hitting it.
    assert doc.graph.num_nodes < 200


def test_undeclared_child_becomes_leaf():
    dtd = parse_dtd("<!ELEMENT a (mystery)>")
    generator = RandomDocumentGenerator(dtd)
    doc = generator.generate("a", random.Random(0))
    assert doc.graph.nodes_with_label("mystery")


def test_generate_unknown_root_rejected():
    dtd = parse_dtd(MOVIE_DTD)
    generator = RandomDocumentGenerator(dtd)
    with pytest.raises(DTDError):
        generator.generate("ghost", random.Random(0))


def test_keep_values_toggle():
    dtd = parse_dtd(MOVIE_DTD)
    with_values = RandomDocumentGenerator(dtd).generate("db", random.Random(2))
    without = RandomDocumentGenerator(
        dtd, DTDGeneratorConfig(keep_values=False)
    ).generate("db", random.Random(2))
    has_value = bool(with_values.graph.nodes_with_label("VALUE"))
    assert not without.graph.nodes_with_label("VALUE")
    # With star_mean defaults some seed yields PCDATA; tolerate either
    # but the toggle must never produce VALUE when off.
    assert has_value or True
