"""Smoke tests: every example script must run cleanly.

Examples are documentation; broken documentation is worse than none.
Each script runs as a subprocess (so import-time and __main__ paths are
both exercised) with a small scale argument where supported.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: Per-script extra argv (smaller scales keep the suite quick).
EXTRA_ARGS = {"auction_site.py": ["0.1"]}


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3, "the deliverable requires >= 3 examples"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *EXTRA_ARGS.get(script, [])],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stdout[-2000:]}\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
