"""Tests for :mod:`repro.core.construction` (Algorithm 2 + re-indexing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import (
    brute_force_kbisim,
    extent_is_homogeneous,
    label_requirements,
    small_graphs,
)
from repro.core.construction import (
    build_dk_index,
    reindex_index_graph,
    resolve_requirements,
)
from repro.core.dindex import check_dk_constraint
from repro.graph.builder import graph_from_edges
from repro.indexes.akindex import build_ak_index
from repro.indexes.labelsplit import build_labelsplit_index


def paper_figure2_graph():
    """Figure 2's construction example shape: label E requires 2, the
    rest 1; a chain ROOT -> A -> B/C -> D -> E with two D parents."""
    return graph_from_edges(
        ["A", "B", "C", "D", "D", "E", "E"],
        [(0, 1), (1, 2), (1, 3), (2, 4), (3, 5), (4, 6), (5, 7)],
    )


def test_dk_zero_requirements_is_labelsplit():
    g = paper_figure2_graph()
    index, levels = build_dk_index(g, {})
    assert index.num_nodes == build_labelsplit_index(g).num_nodes
    assert set(index.k) == {0}


def test_dk_uniform_requirements_equals_ak():
    g = paper_figure2_graph()
    requirements = {g.label_name(i): 2 for i in range(g.num_labels)}
    index, _ = build_dk_index(g, requirements)
    ak = build_ak_index(g, 2)
    assert index.to_partition() == ak.to_partition()


def test_figure2_style_construction():
    g = paper_figure2_graph()
    index, levels = build_dk_index(g, {"E": 2, "D": 1, "B": 1, "C": 1, "A": 1})
    check_dk_constraint(index)
    index.check_invariants()
    # D requires max(1, 2-1) = 1 via broadcast from E.
    d_level = levels[g.label_id("D")]
    assert d_level == 1
    # The two E nodes differ at distance 2 (through B vs C), so they split.
    e_nodes = index.nodes_with_label("E")
    assert len(e_nodes) == 2


def test_unknown_labels_in_requirements_ignored():
    g = paper_figure2_graph()
    index, _ = build_dk_index(g, {"nonexistent": 3})
    assert set(index.k) == {0}


def test_negative_requirement_rejected():
    g = paper_figure2_graph()
    with pytest.raises(ValueError):
        build_dk_index(g, {"A": -1})
    with pytest.raises(ValueError):
        resolve_requirements(g, {"A": -2})


def test_assigned_k_follows_broadcast_levels():
    g = paper_figure2_graph()
    index, levels = build_dk_index(g, {"E": 2})
    for node in range(index.num_nodes):
        assert index.k[node] == levels[index.label_ids[node]]


def test_reindex_to_same_levels_is_identity():
    g = paper_figure2_graph()
    index, levels = build_dk_index(g, {"E": 2})
    again = reindex_index_graph(index, levels)
    assert again.to_partition() == index.to_partition()
    assert again.k == index.k


def test_reindex_to_lower_levels_merges():
    g = paper_figure2_graph()
    index, _ = build_dk_index(g, {"E": 2})
    coarse = reindex_index_graph(index, [0] * g.num_labels)
    assert coarse.num_nodes == build_labelsplit_index(g).num_nodes
    assert set(coarse.k) == {0}
    coarse.check_invariants()


def test_reindex_requires_full_level_table():
    g = paper_figure2_graph()
    index, _ = build_dk_index(g, {"E": 2})
    from repro.exceptions import IndexInvariantError

    with pytest.raises(IndexInvariantError):
        reindex_index_graph(index, [0])


@given(small_graphs(), label_requirements())
@settings(max_examples=80, deadline=None)
def test_dk_construction_invariants(graph, requirements):
    index, levels = build_dk_index(graph, requirements)
    index.check_invariants()
    check_dk_constraint(index)
    # Honest k: every extent is truly k(n)-bisimilar.
    for node in range(index.num_nodes):
        assert extent_is_homogeneous(graph, index.extents[node], index.k[node])


@given(small_graphs(), st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_dk_uniform_matches_brute_force(graph, k):
    requirements = {graph.label_name(i): k for i in range(graph.num_labels)}
    index, _ = build_dk_index(graph, requirements)
    assert index.to_partition() == brute_force_kbisim(graph, k)


@given(small_graphs(), label_requirements())
@settings(max_examples=60, deadline=None)
def test_dk_partition_between_labelsplit_and_max_bisim(graph, requirements):
    index, levels = build_dk_index(graph, requirements)
    partition = index.to_partition()
    assert partition.refines(brute_force_kbisim(graph, 0))
    max_level = max(levels, default=0)
    assert brute_force_kbisim(graph, max_level).refines(partition)
