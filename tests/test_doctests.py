"""Run every docstring example in the package as a test.

Documentation that drifts from the code is worse than none; this keeps
all ``>>>`` examples in module/class/function docstrings executable.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules() -> list[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
