"""Unit tests for :mod:`repro.graph.traversal`."""

from hypothesis import given

from conftest import small_graphs
from repro.graph.builder import graph_from_edges
from repro.graph.traversal import (
    ancestors_within,
    bfs_distances,
    bfs_order,
    descendants_within,
    iter_label_paths_to,
    label_path_exists,
    reachable_from,
    topological_order,
)


def diamond():
    #      root -> a -> b,c -> d
    return graph_from_edges(
        ["a", "b", "c", "d"],
        [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)],
    )


def test_bfs_order_starts_at_start():
    g = diamond()
    order = bfs_order(g, g.root)
    assert order[0] == g.root
    assert set(order) == set(g.nodes())


def test_bfs_distances():
    g = diamond()
    dist = bfs_distances(g, g.root)
    assert dist[0] == 0
    assert dist[1] == 1
    assert dist[4] == 3


def test_reachable_from_subset():
    g = diamond()
    assert reachable_from(g, [2]) == {2, 4}
    assert reachable_from(g, [2, 3]) == {2, 3, 4}


def test_ancestors_within_radius():
    g = diamond()
    anc = ancestors_within(g, 4, radius=1)
    assert anc == {4: 0, 2: 1, 3: 1}
    anc2 = ancestors_within(g, 4, radius=10)
    assert set(anc2) == {0, 1, 2, 3, 4}


def test_descendants_within_radius():
    g = diamond()
    desc = descendants_within(g, 1, radius=1)
    assert desc == {1: 0, 2: 1, 3: 1}


def test_topological_order_acyclic():
    g = diamond()
    order = topological_order(g)
    assert order is not None
    position = {node: i for i, node in enumerate(order)}
    for src, dst in g.edges():
        assert position[src] < position[dst]


def test_topological_order_cycle_returns_none():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2), (2, 1)])
    assert topological_order(g) is None


def test_iter_label_paths_to():
    g = diamond()
    paths = set(iter_label_paths_to(g, g.label_ids, 4, length=3))
    b, c, d = g.label_id("b"), g.label_id("c"), g.label_id("d")
    a = g.label_id("a")
    assert (a, b, d) in paths
    assert (a, c, d) in paths
    assert len(paths) == 2


def test_iter_label_paths_limit():
    g = diamond()
    paths = list(iter_label_paths_to(g, g.label_ids, 4, length=3, limit=1))
    assert len(paths) == 1


def test_label_path_exists_positive_and_negative():
    g = diamond()
    a, b, d = g.label_id("a"), g.label_id("b"), g.label_id("d")
    assert label_path_exists(g, g.label_ids, 4, [a, b, d])
    assert label_path_exists(g, g.label_ids, 4, [b, d])
    assert not label_path_exists(g, g.label_ids, 4, [b, b, d])
    assert not label_path_exists(g, g.label_ids, 4, [])
    assert not label_path_exists(g, g.label_ids, 4, [a])  # wrong tail label


def test_label_path_exists_with_cycle():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2), (2, 1)])
    a, b = g.label_id("a"), g.label_id("b")
    # a -> b -> a(cycle node labeled 'a'? no: 1='a', 2='b'; cycle b->a)
    assert label_path_exists(g, g.label_ids, 2, [a, b])
    assert label_path_exists(g, g.label_ids, 2, [b, a, b])


@given(small_graphs())
def test_bfs_order_visits_each_reachable_node_once(graph):
    order = bfs_order(graph, graph.root)
    assert len(order) == len(set(order))
    assert set(order) == reachable_from(graph, [graph.root])


@given(small_graphs())
def test_label_paths_agree_with_exists(graph):
    label_ids = graph.label_ids
    for node in list(graph.nodes())[:5]:
        for path in iter_label_paths_to(graph, label_ids, node, 2, limit=5):
            assert label_path_exists(graph, label_ids, node, list(path))
