"""Unit tests for :mod:`repro.paths.cost`."""

from repro.paths.cost import CostCounter, CostSummary


def test_counter_totals():
    c = CostCounter()
    c.visit_index_node(3)
    c.visit_data_node(2)
    assert c.index_nodes_visited == 3
    assert c.data_nodes_visited == 2
    assert c.total == 5


def test_counter_validation_flags():
    c = CostCounter()
    assert c.validated_queries == 0
    c.record_validation(candidates=7)
    assert c.validations == 7
    assert c.validated_queries == 1


def test_counter_merge():
    a = CostCounter(index_nodes_visited=1, data_nodes_visited=2)
    b = CostCounter(index_nodes_visited=10, data_nodes_visited=20)
    b.record_validation(5)
    a.merge(b)
    assert a.index_nodes_visited == 11
    assert a.data_nodes_visited == 22
    assert a.validations == 5
    assert a.validated_queries == 1


def test_summary_average():
    s = CostSummary()
    c1 = CostCounter(index_nodes_visited=10)
    c2 = CostCounter(index_nodes_visited=20, data_nodes_visited=10)
    c2.record_validation(3)
    s.add(c1)
    s.add(c2)
    assert s.queries == 2
    assert s.average_cost == 20.0
    assert s.validation_fraction == 0.5
    assert s.total_index_visits == 30
    assert s.total_data_visits == 10


def test_summary_empty():
    s = CostSummary()
    assert s.average_cost == 0.0
    assert s.validation_fraction == 0.0


def test_extent_nodes_are_free_by_construction():
    # The cost model never charges for returning extents: only explicit
    # visit_* calls count, so a counter untouched by extents stays 0.
    c = CostCounter()
    assert c.total == 0
