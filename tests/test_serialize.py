"""Unit tests for :mod:`repro.graph.serialize`."""

import base64
import json
import sys
from array import array

import pytest
from hypothesis import given

from conftest import small_graphs
from repro.exceptions import FrozenGraphError, SerializationError
from repro.graph.builder import graph_from_edges
from repro.graph.serialize import (
    dumps,
    frozen_from_dict,
    frozen_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_frozen_graph,
    load_graph,
    loads,
    save_frozen_graph,
    save_graph,
)


def sample():
    return graph_from_edges(["a", "b", "a"], [(0, 1), (1, 2), (0, 3), (3, 2)])


def test_roundtrip_string():
    g = sample()
    restored = loads(dumps(g))
    assert restored.num_nodes == g.num_nodes
    assert sorted(restored.edges()) == sorted(g.edges())
    assert [restored.label(i) for i in restored.nodes()] == [
        g.label(i) for i in g.nodes()
    ]


def test_roundtrip_file(tmp_path):
    g = sample()
    path = tmp_path / "graph.json"
    save_graph(g, path)
    restored = load_graph(path)
    assert sorted(restored.edges()) == sorted(g.edges())


def test_dict_shape():
    data = graph_to_dict(sample())
    assert data["format"] == "repro-datagraph"
    assert data["version"] == 1
    assert data["labels"][data["nodes"][0]] == "ROOT"


def test_rejects_wrong_format():
    data = graph_to_dict(sample())
    data["format"] = "nope"
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_wrong_version():
    data = graph_to_dict(sample())
    data["version"] = 99
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_bad_root():
    data = graph_to_dict(sample())
    data["nodes"][0] = 1  # not the ROOT label id
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_out_of_range_label():
    data = graph_to_dict(sample())
    data["nodes"].append(999)
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_malformed_edge():
    data = graph_to_dict(sample())
    data["edges"].append([1])
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_edge_to_unknown_node():
    data = graph_to_dict(sample())
    data["edges"].append([0, 999])
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_duplicate_edge():
    data = graph_to_dict(sample())
    data["edges"].append(data["edges"][0])
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_non_object():
    with pytest.raises(SerializationError):
        graph_from_dict([1, 2, 3])


def test_rejects_empty_nodes():
    data = graph_to_dict(sample())
    data["nodes"] = []
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_json_is_plain():
    text = dumps(sample())
    parsed = json.loads(text)
    assert isinstance(parsed, dict)


# ----------------------------------------------------------------------
# Frozen documents: endianness and seal state
# ----------------------------------------------------------------------


def _forge_opposite_endian(data):
    """Rewrite a frozen document as a foreign-endian producer would.

    Every buffer's base64 payload is byte-swapped and the byteorder
    stamp flipped — exactly the document a host of the other endianness
    writes for the same graph.
    """
    forged = dict(data)
    forged["byteorder"] = "big" if sys.byteorder == "little" else "little"
    swapped_buffers = {}
    for name, text in data["buffers"].items():
        values = array("q")
        values.frombytes(base64.b64decode(text))
        values.byteswap()
        swapped_buffers[name] = base64.b64encode(values.tobytes()).decode(
            "ascii"
        )
    forged["buffers"] = swapped_buffers
    return forged


def test_opposite_endian_payload_round_trips_bit_identically():
    # Regression: a frozen file written on a foreign-endian host must
    # load byte-swapped, not be rejected or (worse) misread.  Loading
    # the forged document and re-serializing natively must reproduce
    # the original native document exactly.
    graph = sample()
    native = frozen_to_dict(graph)
    forged = _forge_opposite_endian(native)
    assert forged["buffers"] != native["buffers"]  # the forgery is real

    restored = frozen_from_dict(forged)
    assert sorted(restored.edges()) == sorted(graph.edges())
    view, original = restored.freeze(), graph.freeze()
    for name in ("label_ids", "child_offsets", "child_targets",
                 "parent_offsets", "parent_targets"):
        assert getattr(view, name) == getattr(original, name)
    assert frozen_to_dict(restored)["buffers"] == native["buffers"]


def test_frozen_round_trip_random_graphs_survive_forged_endianness():
    for seed_edges in ([(0, 1)], [(0, 1), (1, 2), (0, 2)]):
        graph = graph_from_edges(["x", "y"], seed_edges)
        restored = frozen_from_dict(
            _forge_opposite_endian(frozen_to_dict(graph))
        )
        assert sorted(restored.edges()) == sorted(graph.edges())


def test_frozen_round_trip_preserves_seal(tmp_path):
    graph = sample()
    graph.freeze(mode="seal")
    path = tmp_path / "frozen.json"
    save_frozen_graph(graph, path)

    loaded = load_frozen_graph(path)
    assert loaded.sealed
    with pytest.raises(FrozenGraphError):
        loaded.add_node("z")
    loaded.thaw()
    loaded.add_node("z")  # mutable again after the explicit thaw
    assert loaded.num_nodes == graph.num_nodes + 1


def test_frozen_round_trip_unsealed_stays_mutable(tmp_path):
    graph = sample()
    graph.freeze()  # snapshot without sealing
    path = tmp_path / "frozen.json"
    save_frozen_graph(graph, path)
    loaded = load_frozen_graph(path)
    assert not loaded.sealed
    loaded.add_node("z")


def test_frozen_sealed_flag_defaults_to_unsealed():
    # Version-1 documents written before the flag existed load mutable.
    data = frozen_to_dict(sample())
    del data["sealed"]
    assert not frozen_from_dict(data).sealed


def test_paged_manifest_rejected_by_inline_loader():
    data = frozen_to_dict(sample())
    data["version"] = 2  # a paged manifest: buffers live in page files
    with pytest.raises(SerializationError, match="PagedCSRGraph.open"):
        frozen_from_dict(data)


def test_frozen_rejects_invalid_byteorder():
    data = frozen_to_dict(sample())
    data["byteorder"] = "middle"
    with pytest.raises(SerializationError, match="byteorder"):
        frozen_from_dict(data)


def test_frozen_rejects_ragged_buffer():
    data = frozen_to_dict(sample())
    raw = base64.b64decode(data["buffers"]["child_targets"])
    data["buffers"]["child_targets"] = base64.b64encode(raw[:-3]).decode(
        "ascii"
    )
    with pytest.raises(SerializationError, match="64-bit"):
        frozen_from_dict(data)


@given(small_graphs())
def test_roundtrip_random_graphs(graph):
    restored = loads(dumps(graph))
    assert restored.num_nodes == graph.num_nodes
    assert restored.num_edges == graph.num_edges
    assert sorted(restored.edges()) == sorted(graph.edges())
    assert [restored.label(i) for i in restored.nodes()] == [
        graph.label(i) for i in graph.nodes()
    ]
