"""Unit tests for :mod:`repro.graph.serialize`."""

import json

import pytest
from hypothesis import given

from conftest import small_graphs
from repro.exceptions import SerializationError
from repro.graph.builder import graph_from_edges
from repro.graph.serialize import (
    dumps,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    loads,
    save_graph,
)


def sample():
    return graph_from_edges(["a", "b", "a"], [(0, 1), (1, 2), (0, 3), (3, 2)])


def test_roundtrip_string():
    g = sample()
    restored = loads(dumps(g))
    assert restored.num_nodes == g.num_nodes
    assert sorted(restored.edges()) == sorted(g.edges())
    assert [restored.label(i) for i in restored.nodes()] == [
        g.label(i) for i in g.nodes()
    ]


def test_roundtrip_file(tmp_path):
    g = sample()
    path = tmp_path / "graph.json"
    save_graph(g, path)
    restored = load_graph(path)
    assert sorted(restored.edges()) == sorted(g.edges())


def test_dict_shape():
    data = graph_to_dict(sample())
    assert data["format"] == "repro-datagraph"
    assert data["version"] == 1
    assert data["labels"][data["nodes"][0]] == "ROOT"


def test_rejects_wrong_format():
    data = graph_to_dict(sample())
    data["format"] = "nope"
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_wrong_version():
    data = graph_to_dict(sample())
    data["version"] = 99
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_bad_root():
    data = graph_to_dict(sample())
    data["nodes"][0] = 1  # not the ROOT label id
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_out_of_range_label():
    data = graph_to_dict(sample())
    data["nodes"].append(999)
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_malformed_edge():
    data = graph_to_dict(sample())
    data["edges"].append([1])
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_edge_to_unknown_node():
    data = graph_to_dict(sample())
    data["edges"].append([0, 999])
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_duplicate_edge():
    data = graph_to_dict(sample())
    data["edges"].append(data["edges"][0])
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_rejects_non_object():
    with pytest.raises(SerializationError):
        graph_from_dict([1, 2, 3])


def test_rejects_empty_nodes():
    data = graph_to_dict(sample())
    data["nodes"] = []
    with pytest.raises(SerializationError):
        graph_from_dict(data)


def test_json_is_plain():
    text = dumps(sample())
    parsed = json.loads(text)
    assert isinstance(parsed, dict)


@given(small_graphs())
def test_roundtrip_random_graphs(graph):
    restored = loads(dumps(graph))
    assert restored.num_nodes == graph.num_nodes
    assert restored.num_edges == graph.num_edges
    assert sorted(restored.edges()) == sorted(graph.edges())
    assert [restored.label(i) for i in restored.nodes()] == [
        graph.label(i) for i in graph.nodes()
    ]
