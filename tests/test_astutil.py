"""Tests for repro.analysis.astutil scope/qualname resolution.

The call-graph builder keys everything on these helpers; the edge cases
here (nested classes, lambdas, comprehension scopes, full parameter
grids) are exactly the shapes that silently mis-resolve if the
qualname scheme drifts.
"""

import ast
from textwrap import dedent

from repro.analysis.astutil import (
    build_qualnames,
    chain_attribute,
    dotted_name,
    lambda_slug,
    parameter_names,
    walk_scope,
)


def qualnames_of(source, module="m"):
    tree = ast.parse(dedent(source))
    names = build_qualnames(tree, module)
    by_name = {}
    for node in ast.walk(tree):
        if id(node) in names:
            by_name.setdefault(names[id(node)], node)
    return names, by_name


# ------------------------- build_qualnames ------------------------------


def test_module_level_function_and_class():
    _, by_name = qualnames_of(
        """
        def f(): pass
        class C: pass
        """
    )
    assert "m.f" in by_name
    assert "m.C" in by_name


def test_nested_classes_and_methods():
    _, by_name = qualnames_of(
        """
        class Outer:
            class Inner:
                def method(self): pass
            def top(self): pass
        """
    )
    assert "m.Outer" in by_name
    assert "m.Outer.Inner" in by_name
    assert "m.Outer.Inner.method" in by_name
    assert "m.Outer.top" in by_name


def test_function_nested_in_function_gets_locals_segment():
    _, by_name = qualnames_of(
        """
        def outer():
            def inner(): pass
            class Local:
                def m(self): pass
        """
    )
    assert "m.outer.<locals>.inner" in by_name
    assert "m.outer.<locals>.Local" in by_name
    assert "m.outer.<locals>.Local.m" in by_name


def test_class_in_method_in_nested_class():
    _, by_name = qualnames_of(
        """
        class A:
            class B:
                def m(self):
                    def helper(): pass
        """
    )
    assert "m.A.B.m.<locals>.helper" in by_name


def test_lambda_names_are_positional_and_unique():
    _, by_name = qualnames_of(
        """
        f = lambda x: x
        g = lambda x: x
        """
    )
    lambdas = [name for name in by_name if "<lambda@" in name]
    assert len(lambdas) == 2
    assert len(set(lambdas)) == 2  # two lambdas never collide
    for name in lambdas:
        node = by_name[name]
        assert isinstance(node, ast.Lambda)
        assert name == f"m.{lambda_slug(node)}"


def test_lambda_inside_function_carries_locals_prefix():
    _, by_name = qualnames_of(
        """
        def factory():
            return lambda y: y
        """
    )
    inner = [n for n in by_name if "<lambda@" in n]
    assert len(inner) == 1
    assert inner[0].startswith("m.factory.<locals>.<lambda@")


def test_comprehension_scopes_are_transparent():
    # A lambda inside a comprehension inside a method is named as if
    # the comprehension scope did not exist (documented deviation from
    # PEP 3155 — no ``<listcomp>`` segment).
    _, by_name = qualnames_of(
        """
        class C:
            def f(self):
                return [lambda: x for x in range(3)]
        """
    )
    inner = [n for n in by_name if "<lambda@" in n]
    assert len(inner) == 1
    assert inner[0].startswith("m.C.f.<locals>.<lambda@")
    assert "<listcomp>" not in inner[0]


def test_nested_lambdas():
    _, by_name = qualnames_of("f = lambda x: (lambda y: x + y)")
    lambdas = sorted(n for n in by_name if "<lambda@" in n)
    assert len(lambdas) == 2
    outer = min(lambdas, key=len)
    inner = max(lambdas, key=len)
    assert inner.startswith(outer + ".<locals>.<lambda@")


def test_qualname_keys_are_node_identity():
    tree = ast.parse("def f(): pass\ndef g(): pass")
    names = build_qualnames(tree, "mod")
    f_node, g_node = tree.body
    assert names[id(f_node)] == "mod.f"
    assert names[id(g_node)] == "mod.g"


# ------------------------- parameter_names ------------------------------


def test_parameter_names_full_grid():
    tree = ast.parse(
        "def f(a, b, /, c, d=1, *args, e, f=2, **kwargs): pass"
    )
    node = tree.body[0]
    assert parameter_names(node) == [
        "a", "b", "c", "d", "args", "e", "f", "kwargs",
    ]


def test_parameter_names_lambda():
    tree = ast.parse("g = lambda x, *rest, **kw: x")
    node = tree.body[0].value
    assert parameter_names(node) == ["x", "rest", "kw"]


def test_parameter_names_empty():
    tree = ast.parse("def f(): pass")
    assert parameter_names(tree.body[0]) == []


# ------------------------- walk_scope -----------------------------------


def test_walk_scope_does_not_enter_nested_functions():
    tree = ast.parse(
        dedent(
            """
            def outer():
                a = 1
                def inner():
                    b = 2
                c = 3
            """
        )
    )
    outer = tree.body[0]
    assigned = {
        node.targets[0].id
        for node in walk_scope(outer)
        if isinstance(node, ast.Assign)
    }
    assert assigned == {"a", "c"}  # inner's body is its own scope


def test_walk_scope_enters_comprehensions():
    tree = ast.parse("def f(xs):\n    return [x + 1 for x in xs]")
    nodes = list(walk_scope(tree.body[0]))
    assert any(isinstance(node, ast.ListComp) for node in nodes)
    assert any(isinstance(node, ast.BinOp) for node in nodes)


# ------------------------- misc helpers ---------------------------------


def test_dotted_name_and_chain_attribute():
    expr = ast.parse("a.b.extents[0].c", mode="eval").body
    found = chain_attribute(expr, {"extents"})
    assert found is not None and found.attr == "extents"
    assert dotted_name(found.value) == "a.b"
    call = ast.parse("f().extents", mode="eval").body
    assert chain_attribute(call, {"extents"}).attr == "extents"
    crossed = ast.parse("x.extents_of()", mode="eval").body
    assert chain_attribute(crossed, {"extents"}) is None
