"""Tests for :mod:`repro.paths.twig` (branching path queries).

The property tests check the two-phase evaluator against a brute-force
homomorphism-enumeration oracle built straight from twig semantics.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import small_graphs
from repro.exceptions import PathSyntaxError
from repro.graph.builder import graph_from_edges
from repro.graph.datagraph import DataGraph
from repro.graph.traversal import reachable_from
from repro.paths.twig import TwigNode, TwigQuery, evaluate_twig, parse_twig


# ------------------------- parsing -------------------------------------


def test_parse_simple_chain():
    q = parse_twig("a/b/c")
    assert q.root.label == "a"
    assert q.root.children[0].label == "b"
    assert q.output.label == "c"
    assert not q.anchored


def test_parse_predicate():
    q = parse_twig("movie[actor/name]/title")
    movie = q.root
    assert movie.label == "movie"
    labels = [c.label for c in movie.children]
    assert "actor" in labels and "title" in labels
    assert q.output.label == "title"
    actor = movie.children[labels.index("actor")]
    assert actor.children[0].label == "name"
    assert not actor.children[0].is_output


def test_parse_descendant_axes():
    q = parse_twig("a//b[//c]/d")
    a = q.root
    assert a.axes == ["descendant"]
    b = a.children[0]
    assert set(b.axes) == {"descendant", "child"}


def test_parse_anchoring():
    assert parse_twig("/a/b").anchored
    assert not parse_twig("//a/b").anchored
    assert not parse_twig("a/b").anchored


def test_parse_wildcard():
    q = parse_twig("*/b")
    assert q.root.label is None


def test_parse_errors():
    with pytest.raises(PathSyntaxError):
        parse_twig("a[b")
    with pytest.raises(PathSyntaxError):
        parse_twig("a/")
    with pytest.raises(PathSyntaxError):
        parse_twig("a]b")
    with pytest.raises(PathSyntaxError):
        parse_twig("")


def test_to_text_roundtrips():
    for text in ("a/b", "a//b", "a[b]/c", "a[//b][c/d]//e", "*[b]/c"):
        q = parse_twig(text)
        again = parse_twig(q.to_text())
        assert again.to_text() == q.to_text()


def test_output_uniqueness():
    q = parse_twig("a[b]/c[d]")
    outputs = [n for n in q.nodes() if n.is_output]
    assert len(outputs) == 1
    assert outputs[0].label == "c"


# ------------------------- evaluation ----------------------------------


def cinema_graph():
    # movies: m1 has actor+title, m2 only title, m3 under a collection.
    return graph_from_edges(
        ["db", "movie", "title", "actor", "movie", "title",
         "collection", "movie", "title", "actor"],
        [
            (0, 1),
            (1, 2), (2, 3), (2, 4),
            (1, 5), (5, 6),
            (1, 7), (7, 8), (8, 9), (8, 10),
        ],
    )


def test_twig_predicate_filters():
    g = cinema_graph()
    result = evaluate_twig(g, parse_twig("movie[actor]/title"))
    # Only the movies that *have* an actor contribute their titles.
    assert result == {3, 9}


def test_twig_plain_chain_equals_linear():
    from repro.paths.evaluator import evaluate_on_data_graph
    from repro.paths.query import make_query

    g = cinema_graph()
    assert evaluate_twig(g, parse_twig("movie/title")) == evaluate_on_data_graph(
        g, make_query("movie.title")
    )


def test_twig_descendant_axis():
    g = cinema_graph()
    assert evaluate_twig(g, parse_twig("db//title")) == {3, 6, 9}
    assert evaluate_twig(g, parse_twig("db//movie[actor]/title")) == {3, 9}


def test_twig_anchored():
    g = cinema_graph()
    assert evaluate_twig(g, parse_twig("/db/movie/title")) == {3, 6}
    assert evaluate_twig(g, parse_twig("/movie/title")) == set()


def test_twig_wildcard():
    g = cinema_graph()
    assert evaluate_twig(g, parse_twig("collection/*/title")) == {9}


def test_twig_unknown_label_empty():
    g = cinema_graph()
    assert evaluate_twig(g, parse_twig("alien/title")) == set()
    assert evaluate_twig(g, parse_twig("movie[alien]/title")) == set()


def test_twig_over_reference_cycle():
    g = graph_from_edges(
        ["a", "b", "c"], [(0, 1), (1, 2), (2, 3), (3, 1)]
    )
    assert evaluate_twig(g, parse_twig("c//b")) == {2}
    assert evaluate_twig(g, parse_twig("b[c]/c")) == {3}


# ------------------------- brute-force oracle --------------------------


def brute_force_twig(graph: DataGraph, query: TwigQuery) -> set[int]:
    """Enumerate all pattern-to-graph homomorphisms directly."""
    reach_cache: dict[int, set[int]] = {}

    def strict_descendants(node: int) -> set[int]:
        if node not in reach_cache:
            reach_cache[node] = reachable_from(graph, graph.children[node])
        return reach_cache[node]

    def label_ok(pattern: TwigNode, node: int) -> bool:
        return pattern.label is None or (
            graph.has_label(pattern.label)
            and graph.label_ids[node] == graph.label_id(pattern.label)
        )

    def matches(pattern: TwigNode, node: int) -> set[int] | None:
        """Return the output-node images if pattern matches at node."""
        if not label_ok(pattern, node):
            return None
        outputs: set[int] = {node} if pattern.is_output else set()
        for child, axis in zip(pattern.children, pattern.axes):
            targets = (
                graph.children[node]
                if axis == "child"
                else strict_descendants(node)
            )
            branch_outputs: set[int] = set()
            matched = False
            for target in targets:
                sub = matches(child, target)
                if sub is not None:
                    matched = True
                    branch_outputs |= sub
            if not matched:
                return None
            outputs |= branch_outputs
        return outputs

    candidates = (
        graph.children[graph.root] if query.anchored else list(graph.nodes())
    )
    result: set[int] = set()
    for node in candidates:
        sub = matches(query.root, node)
        if sub is not None:
            result |= sub
    return result


@st.composite
def twig_queries(draw, labels: str = "abc", max_nodes: int = 4):
    count = draw(st.integers(1, max_nodes))
    nodes = [
        TwigNode(label=draw(st.one_of(st.sampled_from(labels), st.none())))
        for _ in range(count)
    ]
    for position in range(1, count):
        parent = nodes[draw(st.integers(0, position - 1))]
        axis = draw(st.sampled_from(["child", "descendant"]))
        parent.add_child(nodes[position], axis)
    nodes[draw(st.integers(0, count - 1))].is_output = True
    return TwigQuery(root=nodes[0], anchored=draw(st.booleans()))


@given(small_graphs(max_nodes=8), twig_queries())
@settings(max_examples=150, deadline=None)
def test_twig_evaluator_matches_oracle(graph, query):
    assert evaluate_twig(graph, query) == brute_force_twig(graph, query)
