"""Tests for :mod:`repro.bench.reporting`."""

from repro.bench.reporting import (
    ExperimentResult,
    SeriesPoint,
    render_series,
    render_table,
)


def test_render_table_alignment():
    text = render_table(["name", "value"], [["abc", 1], ["x", 22.5]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert lines[1].startswith("----")
    assert "22.5" in lines[3]


def test_render_table_title():
    text = render_table(["a"], [[1]], title="hello")
    assert text.splitlines()[0] == "hello"


def test_render_table_float_formatting():
    text = render_table(["v"], [[3.14159]])
    assert "3.1" in text
    assert "3.14159" not in text


def test_render_series():
    points = [
        SeriesPoint("A(0)", 72, 604.9, 1.0),
        SeriesPoint("D(k)", 582, 39.1, 0.0, note="tuned"),
    ]
    text = render_series(points, "figure 4")
    assert "figure 4" in text
    assert "A(0)" in text and "D(k)" in text
    assert "tuned" in text


def test_experiment_result_render():
    result = ExperimentResult("FIG4", "demo")
    result.points.append(SeriesPoint("A(0)", 1, 2.0))
    result.extra_lines.append("footer")
    text = result.render()
    assert text.startswith("[FIG4] demo")
    assert text.endswith("footer")
