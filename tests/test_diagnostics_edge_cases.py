"""Edge-case tests for :mod:`repro.indexes.diagnostics`.

Covers the boundaries ``audit_similarities`` promises: a contentless
index graph, a zero ``max_k`` audit depth, the exact ``max_paths``
truncation threshold, and the ``max_findings`` cut-off.
"""

from repro.graph.builder import graph_from_edges
from repro.graph.datagraph import DataGraph
from repro.indexes.akindex import build_ak_index
from repro.indexes.diagnostics import audit_similarities
from repro.indexes.oneindex import build_1index


def twin_x_graph():
    """ROOT -> a -> x and ROOT -> a -> x: both pairs fully bisimilar."""
    return graph_from_edges(
        ["a", "a", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )


# ------------------------- empty index graph ----------------------------


def test_audit_on_empty_graph_index():
    # A bare DataGraph has only the implicit ROOT; every extent is a
    # singleton, so the audit trivially passes without skipping.
    index = build_ak_index(DataGraph(), 2)
    report = audit_similarities(index)
    assert report.ok
    assert report.nodes_checked == index.num_nodes == 1
    assert report.nodes_skipped == 0
    assert "clean" in report.format()


# ------------------------- max_k = 0 ------------------------------------


def test_max_k_zero_checks_only_labels():
    # The x's hang under differently-labelled parents, so k=2 is a lie
    # for their shared A(0) extent.  Depth-0 paths are just the nodes'
    # own labels, which agree — the lie is invisible at max_k=0, and
    # caught as soon as one parent step is allowed.
    uneven = graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )
    index = build_ak_index(uneven, 0)
    index.k[index.node_of[3]] = 2
    shallow = audit_similarities(index, max_k=0)
    assert shallow.ok
    assert shallow.nodes_checked == index.num_nodes
    assert shallow.nodes_skipped == 0
    assert not audit_similarities(index, max_k=1).ok


def test_max_k_caps_unbounded_claims():
    # 1-index nodes claim K_UNBOUNDED; the audit checks a prefix and
    # still counts the node as checked rather than skipped.
    index = build_1index(twin_x_graph())
    report = audit_similarities(index, max_k=1)
    assert report.ok
    assert report.nodes_skipped == 0
    assert report.nodes_checked == index.num_nodes


# ------------------------- max_paths boundary ---------------------------


def test_max_paths_truncation_boundary():
    # Each x has exactly 3 incoming label paths of length <= 2:
    # (x,), (a, x), (ROOT, a, x).  The budget is inclusive: a node with
    # exactly max_paths paths is checked; one fewer skips it.
    g = twin_x_graph()
    index = build_ak_index(g, 2)

    exact = audit_similarities(index, max_paths=3)
    assert exact.ok
    assert exact.nodes_skipped == 0
    assert exact.nodes_checked == index.num_nodes

    truncated = audit_similarities(index, max_paths=2)
    assert truncated.nodes_skipped >= 1
    assert truncated.nodes_checked < index.num_nodes
    assert truncated.ok  # skipped, never reported as a finding
    assert "skipped by bounds" in truncated.format()


# ------------------------- max_findings cut-off -------------------------


def test_max_findings_stops_early():
    g = graph_from_edges(
        ["a", "b", "x", "x", "y", "y"],
        [(0, 1), (0, 2), (1, 3), (2, 4), (1, 5), (2, 6)],
    )
    index = build_ak_index(g, 0)
    index.k[index.node_of[3]] = 2  # lie about the x extent
    index.k[index.node_of[5]] = 2  # ... and the y extent
    assert len(audit_similarities(index).findings) == 2
    limited = audit_similarities(index, max_findings=1)
    assert len(limited.findings) == 1
