"""Unit tests for :mod:`repro.paths.query`."""

import pytest

from repro.exceptions import WorkloadError
from repro.paths.query import LabelPathQuery, RegexQuery, make_query


def test_make_query_plain_chain():
    q = make_query("movie.title")
    assert isinstance(q, LabelPathQuery)
    assert q.labels == ("movie", "title")
    assert q.anchored is False


def test_make_query_dslash_chain():
    q = make_query("//movie.title")
    assert isinstance(q, LabelPathQuery)
    assert q.anchored is False


def test_make_query_anchored_chain():
    q = make_query("/db.movie")
    assert isinstance(q, LabelPathQuery)
    assert q.anchored is True


def test_make_query_regex_forms():
    assert isinstance(make_query("a.b*"), RegexQuery)
    assert isinstance(make_query("a|b"), RegexQuery)
    assert isinstance(make_query("_.a"), RegexQuery)
    assert isinstance(make_query("a.b?"), RegexQuery)


def test_label_path_lengths():
    q = make_query("a.b.c")
    assert q.length == 3
    assert q.num_edges == 2
    assert q.target_label == "c"


def test_label_path_to_text_roundtrips():
    for text in ["a.b", "/a.b", "//a.b.c"]:
        q = make_query(text)
        assert make_query(q.to_text()) == q
    assert make_query("/a.b").to_text() == "/a.b"
    assert LabelPathQuery(anchored=False, labels=("a", "b")).to_text() == "//a.b"


def test_empty_label_path_rejected():
    with pytest.raises(WorkloadError):
        LabelPathQuery(anchored=False, labels=())


def test_regex_query_nfa_cached():
    q = make_query("a.(b|c)*")
    assert q.nfa is q.nfa


def test_regex_max_length():
    assert make_query("a.b?").max_length == 2
    assert make_query("a.b*").max_length is None


def test_queries_hashable_and_equal():
    assert make_query("a.b") == make_query("a.b")
    assert make_query("a.b") != make_query("//a.c")
    assert len({make_query("a.b"), make_query("a.b")}) == 1


def test_regex_to_text():
    q = make_query("//a.(b|c)")
    assert q.to_text() == "//a.(b|c)"
