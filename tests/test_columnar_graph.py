"""The frozen columnar (CSR) view: buffers, freeze contract, persistence.

Covers the tentpole invariants of ``repro.graph.columnar``:

- CSR buffers agree with the mutable adjacency (both directions, plus
  extents and assigned k on index graphs);
- the freeze/invalidation contract — ``mode="refresh"`` drops the
  cached view on mutation, ``mode="seal"`` forbids mutation until
  ``thaw()``, and the mutation version counts every structural change;
- the frozen persistence format round-trips through the atomic sealed
  writer *without rebuilding offsets* (the loaded graph's ``freeze()``
  is the deserialized snapshot itself).
"""

import io
import json
import sys

import pytest
from hypothesis import given, settings

from conftest import small_graphs
from repro.exceptions import FrozenGraphError, GraphError, SerializationError
from repro.graph.columnar import (
    BUFFER_TYPECODE,
    CSRGraph,
    csr_from_parent_adjacency,
    flatten_adjacency,
)
from repro.graph.datagraph import DataGraph
from repro.graph.serialize import (
    FROZEN_FORMAT_NAME,
    frozen_from_dict,
    frozen_to_dict,
    load_frozen_graph,
    save_frozen_graph,
)
from repro.indexes.base import IndexGraph
from repro.partition.refinement import bisim_partition
from test_engine_equivalence import cyclic_idref_graph


def movie_like_graph():
    g = DataGraph()
    db = g.add_node("db")
    g.add_edge(g.root, db)
    movies = [g.add_node("movie") for _ in range(3)]
    actors = [g.add_node("actor") for _ in range(2)]
    for m in movies:
        g.add_edge(db, m)
    for a in actors:
        g.add_edge(db, a)
        for m in movies[:2]:
            g.add_edge(a, m)  # shared subtrees: movies get many parents
    return g


# ----------------------------------------------------------------------
# CSR buffer correctness
# ----------------------------------------------------------------------


def test_flatten_adjacency_offsets_and_sort():
    offsets, targets = flatten_adjacency([[2, 1], [], [0]])
    assert list(offsets) == [0, 2, 2, 3]
    assert list(targets) == [2, 1, 0]
    sorted_offsets, sorted_targets = flatten_adjacency(
        [{2, 1}, set(), {0}], sort=True
    )
    assert list(sorted_offsets) == [0, 2, 2, 3]
    assert list(sorted_targets) == [1, 2, 0]


def test_freeze_matches_mutable_adjacency():
    g = movie_like_graph()
    view = g.freeze()
    assert view.num_nodes == g.num_nodes
    assert view.num_edges == g.num_edges
    assert view.num_labels == g.num_labels
    for node in g.nodes():
        assert list(view.children(node)) == list(g.children[node])
        assert list(view.parents(node)) == list(g.parents[node])
        assert view.out_degree(node) == len(g.children[node])
        assert view.in_degree(node) == len(g.parents[node])
        assert view.label_ids[node] == g.label_ids[node]
    view.check_invariants()
    assert len(view) == g.num_nodes
    assert "data" in repr(view)
    with pytest.raises(GraphError):
        view.extent(0)  # data snapshots carry no extents


@given(small_graphs(max_nodes=12))
@settings(max_examples=40, deadline=None)
def test_freeze_invariants_hold_on_random_graphs(graph):
    view = graph.freeze()
    view.check_invariants()
    edges = sorted(graph.edges())
    csr_edges = sorted(
        (src, dst)
        for src in graph.nodes()
        for dst in view.children(src)
    )
    assert csr_edges == edges


def test_csr_from_parent_adjacency_transposes():
    g = movie_like_graph()
    view = csr_from_parent_adjacency(
        list(g.label_ids), [list(p) for p in g.parents]
    )
    view.check_invariants()
    for node in g.nodes():
        assert sorted(view.children(node)) == sorted(g.children[node])
        assert sorted(view.parents(node)) == sorted(g.parents[node])


def test_csr_constructor_validates_shapes():
    from array import array

    ids = array(BUFFER_TYPECODE, [0])
    empty = array(BUFFER_TYPECODE)
    span = array(BUFFER_TYPECODE, [0, 0])
    with pytest.raises(GraphError):
        CSRGraph(ids, empty, empty, span, empty, num_labels=1)
    with pytest.raises(GraphError):
        CSRGraph(
            ids, span, array(BUFFER_TYPECODE, [0]), span, empty, num_labels=1
        )


def test_check_invariants_catches_corruption():
    g = movie_like_graph()
    view = g.freeze()
    view.child_targets[0] = 10_000
    with pytest.raises(GraphError):
        view.check_invariants()


# ----------------------------------------------------------------------
# Freeze contract: refresh, seal, versions
# ----------------------------------------------------------------------


def test_freeze_is_cached_until_mutation():
    g = movie_like_graph()
    version = g.mutation_version
    first = g.freeze()
    assert g.freeze() is first  # cached
    assert first.source_version == version
    g.add_node("x")  # refresh mode: invalidates, does not raise
    assert g.mutation_version == version + 1
    second = g.freeze()
    assert second is not first
    assert second.num_nodes == first.num_nodes + 1


def test_every_mutator_bumps_the_version():
    g = DataGraph()
    v = g.mutation_version
    a = g.add_node("a")
    assert g.mutation_version == v + 1
    g.add_edge(g.root, a)
    assert g.mutation_version == v + 2
    assert g.add_edge_if_absent(a, g.root)
    assert g.mutation_version == v + 3
    assert not g.add_edge_if_absent(a, g.root)  # no-op: no bump
    assert g.mutation_version == v + 3
    g.remove_edge(a, g.root)
    assert g.mutation_version == v + 4


def test_seal_blocks_mutation_until_thaw():
    g = movie_like_graph()
    view = g.freeze(mode="seal")
    assert g.sealed
    with pytest.raises(FrozenGraphError):
        g.add_node("x")
    with pytest.raises(FrozenGraphError):
        g.add_edge(2, 5)  # not a duplicate: seal check must fire
    with pytest.raises(FrozenGraphError):
        g.remove_edge(g.root, 1)
    assert g.freeze() is view  # re-freezing a sealed graph is a no-op
    g.thaw()
    assert not g.sealed
    g.add_node("x")  # allowed again
    assert g.freeze() is not view


def test_unknown_freeze_mode_rejected():
    g = DataGraph()
    with pytest.raises(GraphError):
        g.freeze(mode="deep")
    index = IndexGraph.from_partition(
        g, bisim_partition(g, engine="legacy")[0], [0]
    )
    with pytest.raises(GraphError):
        index.freeze(mode="deep")


def test_copy_is_unsealed_and_uncached():
    g = movie_like_graph()
    g.freeze(mode="seal")
    clone = g.copy()
    assert not clone.sealed
    clone.add_node("x")  # the copy is free to mutate
    with pytest.raises(FrozenGraphError):
        g.add_node("x")  # the original stays sealed


def test_index_graph_freeze_carries_extents_and_k():
    g = cyclic_idref_graph(3, size=60)
    partition, _rounds = bisim_partition(g, engine="legacy")
    k_values = [2] * partition.num_blocks
    index = IndexGraph.from_partition(g, partition, k_values)
    view = index.freeze()
    view.check_invariants()
    assert "index" in repr(view)
    for node in range(index.num_nodes):
        assert sorted(view.children(node)) == sorted(index.children[node])
        assert sorted(view.parents(node)) == sorted(index.parents[node])
        assert list(view.extent(node)) == list(index.extents[node])
        assert view.k[node] == index.k[node]
    # Seal/thaw work on index graphs too, and mutation invalidates.
    index.freeze(mode="seal")
    with pytest.raises(FrozenGraphError):
        index.add_index_edge(0, 0)
    index.thaw()
    version = index.mutation_version
    index.add_index_edge(0, 0)
    assert index.mutation_version == version + 1
    assert index.freeze() is not view
    index.remove_index_edge(0, 0)
    assert index.mutation_version == version + 2


# ----------------------------------------------------------------------
# Frozen persistence
# ----------------------------------------------------------------------


def test_frozen_round_trip_preserves_buffers(tmp_path):
    g = cyclic_idref_graph(1, size=80)
    view = g.freeze()
    path = tmp_path / "frozen.json"
    save_frozen_graph(g, path)
    loaded = load_frozen_graph(path)
    assert sorted(loaded.edges()) == sorted(g.edges())
    assert list(loaded.label_names()) == list(g.label_names())
    restored = loaded.freeze()
    # The loader adopts the stored buffers: freeze() does not rebuild.
    assert loaded.freeze() is restored
    assert restored.child_offsets == view.child_offsets
    assert restored.child_targets == view.child_targets
    assert restored.parent_offsets == view.parent_offsets
    assert restored.parent_targets == view.parent_targets
    assert restored.label_ids == view.label_ids


def test_frozen_round_trip_through_file_object():
    g = movie_like_graph()
    buffer = io.StringIO()
    save_frozen_graph(g, buffer)
    loaded = load_frozen_graph(io.StringIO(buffer.getvalue()))
    assert sorted(loaded.edges()) == sorted(g.edges())


def test_frozen_document_is_versioned_and_endian_stamped():
    document = frozen_to_dict(movie_like_graph())
    assert document["format"] == FROZEN_FORMAT_NAME
    assert document["version"] == 1
    assert document["byteorder"] == sys.byteorder
    assert set(document["buffers"]) == {
        "label_ids",
        "child_offsets",
        "child_targets",
        "parent_offsets",
        "parent_targets",
    }


def test_frozen_loader_swaps_foreign_endianness():
    g = movie_like_graph()
    document = frozen_to_dict(g)
    import base64
    from array import array

    foreign = dict(document)
    foreign["byteorder"] = "big" if sys.byteorder == "little" else "little"
    swapped = {}
    for name, text in document["buffers"].items():
        buf = array(BUFFER_TYPECODE)
        buf.frombytes(base64.b64decode(text))
        buf.byteswap()
        swapped[name] = base64.b64encode(buf.tobytes()).decode("ascii")
    foreign["buffers"] = swapped
    loaded = frozen_from_dict(foreign)
    assert sorted(loaded.edges()) == sorted(g.edges())


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.update(format="repro-datagraph"),
        lambda d: d.update(version=99),
        lambda d: d.update(byteorder="middle"),
        lambda d: d.update(labels="ROOT"),
        lambda d: d.update(buffers={}),
        lambda d: d["buffers"].update(label_ids="!!!not-base64!!!"),
        lambda d: d["buffers"].update(label_ids="AAA="),  # 2 bytes
        lambda d: d.update(num_nodes=999),
        lambda d: d.update(num_edges=999),
    ],
)
def test_frozen_loader_rejects_malformed_documents(mutate):
    document = json.loads(json.dumps(frozen_to_dict(movie_like_graph())))
    mutate(document)
    with pytest.raises(SerializationError):
        frozen_from_dict(document)


def test_frozen_loader_rejects_inconsistent_buffers():
    document = frozen_to_dict(movie_like_graph())
    # Swap child and parent targets: per-direction shapes stay valid but
    # the two views no longer describe the same edge multiset.
    buffers = dict(document["buffers"])
    buffers["child_targets"], buffers["parent_targets"] = (
        buffers["parent_targets"],
        buffers["child_targets"],
    )
    document = dict(document, buffers=buffers)
    with pytest.raises(SerializationError):
        frozen_from_dict(document)


def test_frozen_file_corruption_is_detected(tmp_path):
    path = tmp_path / "frozen.json"
    save_frozen_graph(movie_like_graph(), path)
    raw = path.read_bytes()
    path.write_bytes(raw.replace(b'"byteorder"', b'"byteoRder"', 1))
    with pytest.raises(SerializationError):
        load_frozen_graph(path)
