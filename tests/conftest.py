"""Shared test fixtures, reference graphs and independent oracles.

The oracles here are deliberately *independent* of the library's own
algorithms: brute-force pairwise k-bisimilarity (straight from
Definition 2) and exhaustive node-path enumeration, so the property
tests check the implementation against the paper's definitions rather
than against itself.
"""

from __future__ import annotations

import random
from functools import lru_cache

import pytest
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.datagraph import DataGraph
from repro.partition.blocks import Partition

# ----------------------------------------------------------------------
# Reference graphs
# ----------------------------------------------------------------------


@pytest.fixture
def movie_graph() -> GraphBuilder:
    """The paper's Figure 1 movie database (structure-faithful).

    A movieDB with directors and actors; movies hang under both their
    director (via subtree) and their actors (via reference edges), and
    nodes 7/10-style bisimilar movie pairs exist.
    """
    b = GraphBuilder()
    b.node("db", "movieDB", parent="root")

    b.node("d1", "director", parent="db")
    b.node("d1name", "name", parent="d1")
    b.node("m1", "movie", parent="d1")
    b.node("m1title", "title", parent="m1")

    b.node("d2", "director", parent="db")
    b.node("d2name", "name", parent="d2")
    b.node("m2", "movie", parent="d2")
    b.node("m2title", "title", parent="m2")

    b.node("a1", "actor", parent="db")
    b.node("a1name", "name", parent="a1")
    b.node("a2", "actor", parent="db")
    b.node("a2name", "name", parent="a2")

    # Reference edges: actors point at the movies they act in; one movie
    # hangs only under an actor (the 7-vs-9 asymmetry of Figure 1).
    b.node("m3", "movie", parent="a2")
    b.node("m3title", "title", parent="m3")
    b.edge("a1", "m1")
    b.edge("a1", "m3")
    b.edge("a2", "m2")
    return b


# ----------------------------------------------------------------------
# Brute-force oracles
# ----------------------------------------------------------------------


def brute_force_kbisim(graph: DataGraph, k: int) -> Partition:
    """k-bisimulation straight from Definition 2 (pairwise, memoised)."""

    @lru_cache(maxsize=None)
    def bisimilar(u: int, v: int, depth: int) -> bool:
        if graph.label_ids[u] != graph.label_ids[v]:
            return False
        if depth == 0:
            return True
        if not bisimilar(u, v, depth - 1):
            return False
        for one, other in ((u, v), (v, u)):
            for parent in graph.parents[one]:
                if not any(
                    bisimilar(parent, q, depth - 1) for q in graph.parents[other]
                ):
                    return False
        return True

    block_of = [-1] * graph.num_nodes
    representatives: list[int] = []
    for node in graph.nodes():
        for block, representative in enumerate(representatives):
            if bisimilar(node, representative, k):
                block_of[node] = block
                break
        else:
            block_of[node] = len(representatives)
            representatives.append(node)
    return Partition(block_of)


def brute_force_full_bisim(graph: DataGraph) -> Partition:
    """Full bisimulation: k-bisim stabilises for k >= number of nodes."""
    return brute_force_kbisim(graph, graph.num_nodes)


def enumerate_label_path_matches(
    graph: DataGraph, labels: list[str], anchored: bool = False
) -> set[int]:
    """All nodes matched by a label path, by explicit path search."""
    if not all(graph.has_label(name) for name in labels):
        return set()
    wanted = [graph.label_id(name) for name in labels]
    if anchored:
        frontier = {
            child
            for child in graph.children[graph.root]
            if graph.label_ids[child] == wanted[0]
        }
    else:
        frontier = {
            node for node in graph.nodes() if graph.label_ids[node] == wanted[0]
        }
    for want in wanted[1:]:
        frontier = {
            child
            for node in frontier
            for child in graph.children[node]
            if graph.label_ids[child] == want
        }
    return frontier


def extent_is_homogeneous(graph: DataGraph, extent: list[int], k: int) -> bool:
    """True if all extent members are mutually k-bisimilar (Definition 2).

    This is the *strong* invariant: freshly built D(k)/A(k)/1-indexes
    satisfy it.  After edge-addition updates only the weaker
    :func:`extent_paths_consistent` is guaranteed (and is all that query
    soundness needs) — a distinction surfaced by property testing; see
    DESIGN.md §5.
    """
    if len(extent) <= 1:
        return True
    partition = brute_force_kbisim(graph, min(k, graph.num_nodes))
    first = partition.block_of[extent[0]]
    return all(partition.block_of[node] == first for node in extent[1:])


def incoming_label_paths(
    graph: DataGraph, node: int, max_length: int
) -> set[tuple[int, ...]]:
    """All incoming label paths of length <= max_length ending at ``node``
    (each path includes the node's own label as its last element)."""
    paths: set[tuple[int, ...]] = set()
    frontier: set[tuple[int, tuple[int, ...]]] = {
        (node, (graph.label_ids[node],))
    }
    for _ in range(max_length):
        paths.update(path for _n, path in frontier)
        next_frontier: set[tuple[int, tuple[int, ...]]] = set()
        for current, path in frontier:
            for parent in graph.parents[current]:
                next_frontier.add((parent, (graph.label_ids[parent],) + path))
        frontier = next_frontier
    paths.update(path for _n, path in frontier)
    return paths


def extent_paths_consistent(graph: DataGraph, extent: list[int], k: int) -> bool:
    """The weak ("all-or-none") invariant behind Theorem 1's soundness:
    every extent member has the same set of incoming label paths up to
    length k, so a matching label path matches all members or none.

    Implied by k-bisimilarity but strictly weaker; this is the invariant
    the edge-addition update (Algorithm 4+5) maintains.
    """
    if len(extent) <= 1:
        return True
    bound = min(k, graph.num_nodes)
    reference = incoming_label_paths(graph, extent[0], bound)
    return all(
        incoming_label_paths(graph, node, bound) == reference
        for node in extent[1:]
    )


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


@st.composite
def small_graphs(
    draw,
    max_nodes: int = 10,
    labels: str = "abc",
    allow_cycles: bool = True,
    extra_edge_factor: int = 1,
):
    """Random connected data graphs with a small label alphabet.

    Every non-root node gets one parent among the earlier nodes (so the
    graph is root-connected), plus a few random extra edges — backward
    ones too when ``allow_cycles`` (reference edges create cycles in
    real XML graphs).
    """
    count = draw(st.integers(min_value=1, max_value=max_nodes))
    graph = DataGraph()
    nodes = [graph.add_node(draw(st.sampled_from(labels))) for _ in range(count)]
    for position, node in enumerate(nodes):
        choice = draw(st.integers(min_value=0, max_value=position))
        parent = graph.root if choice == 0 else nodes[choice - 1]
        graph.add_edge_if_absent(parent, node)
    extras = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=count),
                st.integers(min_value=1, max_value=count),
            ),
            max_size=count * extra_edge_factor,
        )
    )
    for a, b in extras:
        src, dst = nodes[a - 1], nodes[b - 1]
        if src == dst:
            continue
        if not allow_cycles and src > dst:
            src, dst = dst, src
        graph.add_edge_if_absent(src, dst)
    return graph


@st.composite
def label_requirements(draw, labels: str = "abc", max_k: int = 3):
    """Random per-label requirement maps over the small alphabet."""
    return {
        label: draw(st.integers(min_value=0, max_value=max_k))
        for label in labels
        if draw(st.booleans())
    }


def random_label_path(
    graph: DataGraph, rng: random.Random, max_length: int = 4
) -> list[str]:
    """A label path that actually occurs in the graph (walk-based)."""
    candidates = [n for n in graph.nodes() if n != graph.root]
    if not candidates:
        return [graph.label(graph.root)]
    node = rng.choice(candidates)
    path = [graph.label(node)]
    length = rng.randint(1, max_length)
    while len(path) < length and graph.children[node]:
        node = rng.choice(graph.children[node])
        path.append(graph.label(node))
    return path
