"""Tests for :mod:`repro.graph.numbering` (interval numbering)."""

import pytest
from hypothesis import given, settings

from conftest import small_graphs
from repro.exceptions import GraphError
from repro.graph.builder import graph_from_edges
from repro.graph.datagraph import DataGraph
from repro.graph.traversal import reachable_from
from repro.graph.numbering import number_tree, skeleton_descendants


def tree():
    #     root -> a -> (b, c); c -> d
    return graph_from_edges(
        ["a", "b", "c", "d"], [(0, 1), (1, 2), (1, 3), (3, 4)]
    )


def test_preorder_intervals():
    numbering = number_tree(tree())
    assert numbering.start[0] == 1
    assert numbering.end[0] == 5  # whole document
    assert numbering.complete


def test_is_ancestor_matches_reachability_on_trees():
    g = tree()
    numbering = number_tree(g)
    for ancestor in g.nodes():
        below = reachable_from(g, g.children[ancestor])
        for descendant in g.nodes():
            assert numbering.is_ancestor(ancestor, descendant) == (
                descendant in below
            )


def test_is_ancestor_is_strict():
    numbering = number_tree(tree())
    assert not numbering.is_ancestor(1, 1)


def test_depth():
    numbering = number_tree(tree())
    assert numbering.depth(0) == 0
    assert numbering.depth(1) == 1
    assert numbering.depth(4) == 3


def test_depth_unreachable_raises():
    g = DataGraph()
    g.add_node("orphan")
    numbering = number_tree(g)
    with pytest.raises(GraphError):
        numbering.depth(1)


def test_reference_edges_make_it_incomplete():
    g = tree()
    g.add_edge(4, 2)  # a reference edge (d -> b)
    numbering = number_tree(g)
    assert not numbering.complete  # intervals no longer equal reachability


def test_skeleton_descendants():
    g = tree()
    numbering = number_tree(g)
    assert sorted(skeleton_descendants(numbering, 1)) == [2, 3, 4]
    assert skeleton_descendants(numbering, 2) == []


def test_tree_parents():
    numbering = number_tree(tree())
    assert numbering.tree_parent[0] == -1
    assert numbering.tree_parent[1] == 0
    assert numbering.tree_parent[4] == 3


@given(small_graphs(max_nodes=10, extra_edge_factor=0))
@settings(max_examples=60, deadline=None)
def test_numbering_on_random_trees(graph):
    # The strategy with extra_edge_factor=0 yields pure trees (each node
    # gets exactly one parent edge).
    numbering = number_tree(graph)
    assert numbering.complete
    for ancestor in graph.nodes():
        below = reachable_from(graph, graph.children[ancestor])
        for descendant in graph.nodes():
            assert numbering.is_ancestor(ancestor, descendant) == (
                descendant in below
            )


@given(small_graphs(max_nodes=10))
@settings(max_examples=40, deadline=None)
def test_numbering_skeleton_is_sound_on_graphs(graph):
    # On general graphs the skeleton-ancestor relation must be a
    # *subset* of true reachability (never a false positive).
    numbering = number_tree(graph)
    for ancestor in list(graph.nodes())[:6]:
        below = reachable_from(graph, graph.children[ancestor])
        for descendant in graph.nodes():
            if numbering.is_ancestor(ancestor, descendant):
                assert descendant in below
