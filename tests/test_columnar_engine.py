"""The columnar batch engine: equivalence, parallel identity, fallbacks.

The columnar engine must be partition-identical to both the worklist
engine and the legacy full-rehash loop — at the fixpoint *and* round for
round (the D(k) freeze-bucket semantics depend on the intermediate
rounds).  These tests drive it over hypothesis-generated small graphs
and the seeded DAG / cyclic-IDREF families, force the shared-memory
fork pool and the numpy sweep onto tiny rounds to require bit-for-bit
agreement with the serial path, and pin down the driver validation and
input-flexibility contract.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import small_graphs
import repro.partition.columnar as columnar_module
from repro.graph.columnar import csr_from_parent_adjacency
from repro.partition.columnar import ColumnarEngine
from repro.partition.engine import RefinementEngine
from repro.partition.refinement import (
    bisim_partition,
    kbisim_partition,
    label_partition,
    leveled_partition,
)
from test_engine_equivalence import (
    assert_engines_agree,
    broadcast_levels,
    cyclic_idref_graph,
    dag_with_shared_subtrees,
)

# ----------------------------------------------------------------------
# Hypothesis: random small graphs, every driver
# ----------------------------------------------------------------------


@given(small_graphs(), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_columnar_kbisim_matches_both_engines(graph, k):
    columnar = kbisim_partition(graph, k, engine="columnar")
    assert columnar == kbisim_partition(graph, k, engine="worklist")
    assert columnar == kbisim_partition(graph, k, engine="legacy")


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_columnar_fixpoint_matches_both_engines(graph):
    columnar, columnar_rounds = bisim_partition(graph, engine="columnar")
    worklist, worklist_rounds = bisim_partition(graph, engine="worklist")
    legacy, legacy_rounds = bisim_partition(graph, engine="legacy")
    assert columnar == worklist == legacy
    assert columnar_rounds == worklist_rounds == legacy_rounds


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_columnar_leveled_matches_both_engines(graph):
    levels = broadcast_levels(graph)
    columnar = leveled_partition(graph, levels, engine="columnar")
    assert columnar == leveled_partition(graph, levels, engine="worklist")
    assert columnar == leveled_partition(graph, levels, engine="legacy")


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_columnar_rounds_match_worklist_round_for_round(graph):
    worklist_rounds = list(RefinementEngine(graph).refine_rounds())
    columnar_rounds = list(ColumnarEngine(graph).refine_rounds())
    assert len(columnar_rounds) == len(worklist_rounds)
    for ours, theirs in zip(columnar_rounds, worklist_rounds):
        assert ours == theirs


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_columnar_leveled_rounds_match_worklist(graph):
    levels = broadcast_levels(graph)
    worklist_rounds = list(RefinementEngine(graph).refine_rounds(levels))
    columnar_rounds = list(ColumnarEngine(graph).refine_rounds(levels))
    assert columnar_rounds == worklist_rounds


# ----------------------------------------------------------------------
# Seeded families: k-sweeps, fixpoints, per-node leveled runs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(4))
def test_columnar_agrees_on_shared_subtree_dags(seed):
    assert_engines_agree(dag_with_shared_subtrees(seed))


@pytest.mark.parametrize("seed", range(4))
def test_columnar_agrees_on_cyclic_idref_graphs(seed):
    assert_engines_agree(cyclic_idref_graph(seed))


@pytest.mark.parametrize("seed", [0, 2])
def test_columnar_k_sweep_is_monotone_and_exact(seed):
    graph = cyclic_idref_graph(seed, size=150)
    previous_blocks = 0
    for k in range(0, 8):
        partition = kbisim_partition(graph, k, engine="columnar")
        assert partition == kbisim_partition(graph, k, engine="legacy")
        assert partition.num_blocks >= previous_blocks
        previous_blocks = partition.num_blocks


# ----------------------------------------------------------------------
# Parallel shared-memory path: serial-identical, self-cleaning
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 3])
def test_parallel_columnar_is_serial_identical(seed, monkeypatch):
    # Force the fork pool onto every round, then require bit-for-bit
    # agreement with the serial columnar, worklist and legacy engines.
    monkeypatch.setattr(columnar_module, "PARALLEL_NODE_THRESHOLD", 0)
    assert_engines_agree(cyclic_idref_graph(seed, size=120), jobs=2)
    assert_engines_agree(dag_with_shared_subtrees(seed, size=120), jobs=2)


def test_parallel_columnar_leveled_is_serial_identical(monkeypatch):
    monkeypatch.setattr(columnar_module, "PARALLEL_NODE_THRESHOLD", 0)
    graph = dag_with_shared_subtrees(5, size=150)
    levels = broadcast_levels(graph)
    serial = ColumnarEngine(graph).run_leveled(levels)
    parallel = ColumnarEngine(graph, jobs=3).run_leveled(levels)
    assert parallel == serial


def test_parallel_run_releases_shared_segments(monkeypatch):
    monkeypatch.setattr(columnar_module, "PARALLEL_NODE_THRESHOLD", 0)
    engine = ColumnarEngine(cyclic_idref_graph(1, size=100), jobs=2)
    engine.run_fixpoint()
    assert engine._pool is None
    assert engine._segments == []
    assert engine._views == []


def _shm_segments():
    """Names of the host's shared-memory segments (Linux /dev/shm)."""
    import os

    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}


def test_midrun_failure_releases_shared_segments(monkeypatch):
    # Regression: a raise after the fork pool spun up used to leave the
    # engine's shared-memory segments alive until (at best) interpreter
    # GC and, under prompt process death, leaked them in /dev/shm.  The
    # drivers now release in a finally, so even an injected crash in
    # the middle of a refinement run must leave no trace behind.
    monkeypatch.setattr(columnar_module, "PARALLEL_NODE_THRESHOLD", 0)
    engine = ColumnarEngine(cyclic_idref_graph(2, size=100), jobs=2)
    real_round = engine._refine_round
    calls = {"count": 0}

    def crash_on_second_round(*args, **kwargs):
        calls["count"] += 1
        if calls["count"] == 2:  # after the pool and segments exist
            raise RuntimeError("injected mid-run failure")
        return real_round(*args, **kwargs)

    monkeypatch.setattr(engine, "_refine_round", crash_on_second_round)
    before = _shm_segments()
    with pytest.raises(RuntimeError, match="injected"):
        engine.run_fixpoint()
    assert engine._pool is None
    assert engine._segments == []
    assert engine._views == []
    assert _shm_segments() == before  # nothing left in /dev/shm


def test_abandoned_refine_rounds_generator_releases_segments(monkeypatch):
    # A caller that stops iterating refine_rounds() part-way through
    # (break, exception, lost reference) must not keep the fork pool or
    # its segments alive: closing the generator releases them.
    monkeypatch.setattr(columnar_module, "PARALLEL_NODE_THRESHOLD", 0)
    engine = ColumnarEngine(cyclic_idref_graph(3, size=100), jobs=2)
    before = _shm_segments()
    rounds = engine.refine_rounds()
    next(rounds)  # the pool is live here
    rounds.close()
    assert engine._pool is None
    assert engine._segments == []
    assert _shm_segments() == before


def test_engine_close_and_context_manager(monkeypatch):
    monkeypatch.setattr(columnar_module, "PARALLEL_NODE_THRESHOLD", 0)
    before = _shm_segments()
    with ColumnarEngine(cyclic_idref_graph(4, size=80), jobs=2) as engine:
        engine.run_fixpoint()
    assert engine._pool is None
    assert _shm_segments() == before
    engine.close()  # idempotent on an already-released engine


# ----------------------------------------------------------------------
# numpy sweep (skipped transparently when the extra is not installed)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 4])
def test_numpy_sweep_is_scalar_identical(seed, monkeypatch):
    if columnar_module._numpy is None:
        pytest.skip("numpy extra not installed")
    graph = cyclic_idref_graph(seed, size=150)
    reference = ColumnarEngine(graph).run_fixpoint()
    monkeypatch.setattr(columnar_module, "NUMPY_NODE_THRESHOLD", 0)
    forced = ColumnarEngine(graph).run_fixpoint()
    assert forced == reference


def test_scalar_sweep_stands_alone_without_numpy(monkeypatch):
    # The stdlib-array path must produce the same partitions with the
    # optional extra hidden entirely.
    graph = dag_with_shared_subtrees(2, size=120)
    reference, rounds = bisim_partition(graph, engine="legacy")
    monkeypatch.setattr(columnar_module, "_numpy", None)
    partition, columnar_rounds = ColumnarEngine(graph).run_fixpoint()
    assert partition == reference
    assert columnar_rounds == rounds


# ----------------------------------------------------------------------
# Inputs, validation, reuse
# ----------------------------------------------------------------------


def test_engine_accepts_a_raw_csr_snapshot():
    graph = cyclic_idref_graph(2, size=80)
    view = graph.freeze()
    from_csr, rounds_csr = ColumnarEngine(view).run_fixpoint()
    from_graph, rounds_graph = ColumnarEngine(graph).run_fixpoint()
    assert from_csr == from_graph
    assert rounds_csr == rounds_graph


def test_engine_accepts_freezeless_adjacency_objects():
    graph = cyclic_idref_graph(2, size=60)

    class Plain:
        """LabeledAdjacency without freeze(): exercises the fallback."""

        label_ids = list(graph.label_ids)
        parents = [list(p) for p in graph.parents]
        children = [list(c) for c in graph.children]
        num_nodes = graph.num_nodes

    partition, rounds = ColumnarEngine(Plain()).run_fixpoint()
    reference, reference_rounds = bisim_partition(graph, engine="legacy")
    assert partition == reference
    assert rounds == reference_rounds


def test_engine_reuses_cached_frozen_view():
    graph = cyclic_idref_graph(0, size=40)
    view = graph.freeze()
    assert ColumnarEngine(graph).csr is view  # no rebuild per engine


def test_driver_validation():
    graph = cyclic_idref_graph(0, size=20)
    engine = ColumnarEngine(graph)
    with pytest.raises(ValueError):
        engine.run_kbisim(-1)
    with pytest.raises(ValueError):
        engine.run_leveled([0])
    with pytest.raises(ValueError):
        engine.run_leveled([-1] * graph.num_nodes)


def test_initial_partition_is_label_partition():
    graph = cyclic_idref_graph(1, size=50)
    assert ColumnarEngine(graph).initial_partition() == label_partition(graph)
    assert ColumnarEngine(graph).run_kbisim(0) == label_partition(graph)


def test_engine_instance_is_reusable_across_runs():
    graph = dag_with_shared_subtrees(1, size=80)
    engine = ColumnarEngine(graph)
    first = engine.run_fixpoint()
    second = engine.run_fixpoint()
    assert first == second
    levels = broadcast_levels(graph)
    assert engine.run_leveled(levels) == leveled_partition(
        graph, levels, engine="legacy"
    )


def test_engine_routes_through_dkindex_env(monkeypatch):
    # DKINDEX_ENGINE=columnar re-routes whole construction pipelines.
    from repro.core.construction import build_dk_index

    graph = cyclic_idref_graph(3, size=80)
    requirements = {"a": 2, "b": 1}
    baseline, baseline_levels = build_dk_index(graph, requirements)
    monkeypatch.setenv("DKINDEX_ENGINE", "columnar")
    routed, routed_levels = build_dk_index(graph, requirements)
    assert routed_levels == baseline_levels
    assert routed.to_partition() == baseline.to_partition()
