"""Tests for :mod:`repro.indexes.serialize`."""

import io
import json

import pytest

from repro.core.dindex import DKIndex
from repro.exceptions import SerializationError
from repro.graph.builder import graph_from_edges
from repro.indexes.akindex import build_ak_index
from repro.indexes.serialize import (
    index_from_dict,
    index_to_dict,
    load_dk_index,
    load_index,
    save_dk_index,
    save_index,
)


def sample_graph():
    return graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )


def test_roundtrip_embedded_graph(tmp_path):
    g = sample_graph()
    index = build_ak_index(g, 2)
    path = tmp_path / "index.json"
    save_index(index, path)
    restored, requirements = load_index(path)
    assert requirements is None
    assert restored.to_partition() == index.to_partition()
    assert restored.k == index.k
    assert restored.num_edges == index.num_edges


def test_roundtrip_external_graph():
    g = sample_graph()
    index = build_ak_index(g, 1)
    buffer = io.StringIO()
    save_index(index, buffer, embed_graph=False)
    buffer.seek(0)
    restored, _ = load_index(buffer, graph=g)
    assert restored.to_partition() == index.to_partition()


def test_load_without_graph_fails():
    g = sample_graph()
    index = build_ak_index(g, 1)
    buffer = io.StringIO()
    save_index(index, buffer, embed_graph=False)
    buffer.seek(0)
    with pytest.raises(SerializationError):
        load_index(buffer)


def test_load_with_conflicting_graph_fails():
    g = sample_graph()
    index = build_ak_index(g, 1)
    buffer = io.StringIO()
    save_index(index, buffer)
    buffer.seek(0)
    with pytest.raises(SerializationError):
        load_index(buffer, graph=g)


def test_corrupt_node_of_rejected():
    g = sample_graph()
    data = index_to_dict(build_ak_index(g, 1))
    data["node_of"] = data["node_of"][:-1]
    with pytest.raises(SerializationError):
        index_from_dict(data)


def test_label_mixing_rejected():
    g = sample_graph()
    data = index_to_dict(build_ak_index(g, 1))
    data["node_of"] = [0] * g.num_nodes  # everything in one block
    data["k"] = [0]
    with pytest.raises(SerializationError):
        index_from_dict(data)


def test_negative_k_rejected():
    g = sample_graph()
    data = index_to_dict(build_ak_index(g, 1))
    data["k"] = [-1] * len(data["k"])
    with pytest.raises(SerializationError):
        index_from_dict(data)


def test_wrong_format_rejected():
    with pytest.raises(SerializationError):
        index_from_dict({"format": "nope"})
    with pytest.raises(SerializationError):
        index_from_dict([1, 2])


def test_dk_roundtrip(tmp_path):
    g = sample_graph()
    dk = DKIndex.build(g, {"x": 2})
    path = tmp_path / "dk.json"
    save_dk_index(dk, path)
    restored = load_dk_index(path)
    assert restored.requirements == {"x": 2}
    assert restored.size == dk.size
    assert restored.index.k == dk.index.k
    restored.check_invariants()


def test_dk_constraint_checked_on_load(tmp_path):
    g = sample_graph()
    dk = DKIndex.build(g, {"x": 2})
    path = tmp_path / "dk.json"
    save_dk_index(dk, path)
    from repro.maintenance.store import seal, unseal

    body, _sealed = unseal(path.read_text(), str(path))
    data = json.loads(body)
    data["k"] = [0] * len(data["k"])
    data["k"][-1] = 5  # violates Definition 3 somewhere
    path.write_text(seal(json.dumps(data)))
    with pytest.raises(SerializationError):
        load_dk_index(path)


def test_dk_roundtrip_preserves_answers(tmp_path):
    from repro.paths.query import make_query

    g = sample_graph()
    dk = DKIndex.build(g, {"x": 1})
    path = tmp_path / "dk.json"
    save_dk_index(dk, path)
    restored = load_dk_index(path)
    q = make_query("a.x")
    assert restored.evaluate(q) == dk.evaluate(q)
