"""Unit tests for :mod:`repro.graph.stats`."""

from repro.graph.builder import graph_from_edges
from repro.graph.datagraph import DataGraph
from repro.graph.stats import graph_stats


def test_counts():
    g = graph_from_edges(["a", "b", "b"], [(0, 1), (1, 2), (1, 3), (2, 3)])
    s = graph_stats(g)
    assert s.num_nodes == 4
    assert s.num_edges == 4
    assert s.num_labels == 3  # ROOT, a, b


def test_tree_vs_reference_edges():
    # A pure tree has zero reference edges; each extra edge adds one.
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2)])
    assert graph_stats(g).num_reference_edges == 0
    g.add_edge(0, 2)
    s = graph_stats(g)
    assert s.num_tree_edges == 2
    assert s.num_reference_edges == 1


def test_depths():
    g = graph_from_edges(["a", "b", "c"], [(0, 1), (1, 2), (2, 3)])
    s = graph_stats(g)
    assert s.max_depth == 3
    assert s.avg_depth == (0 + 1 + 2 + 3) / 4


def test_degrees():
    g = graph_from_edges(["a", "b", "c"], [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)])
    s = graph_stats(g)
    assert s.max_out_degree == 3
    assert s.max_in_degree == 3


def test_unreachable_nodes_counted():
    g = DataGraph()
    g.add_node("orphan")
    s = graph_stats(g)
    assert s.unreachable_nodes == 1


def test_label_histogram():
    g = graph_from_edges(["a", "a", "b"], [(0, 1), (0, 2), (0, 3)])
    s = graph_stats(g)
    assert s.label_histogram["a"] == 2
    assert s.label_histogram["b"] == 1


def test_format_renders():
    g = graph_from_edges(["a"], [(0, 1)])
    text = graph_stats(g).format()
    assert "nodes:" in text
    assert "top labels:" in text
