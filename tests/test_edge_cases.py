"""Edge-case and regression tests across modules.

Targets behaviours the module-level suites do not reach: safety valves,
degenerate graphs, report-field details and API misuse handling.
"""

import pytest

import repro.core.updates as updates_module
from repro.core.construction import build_dk_index
from repro.core.dindex import DKIndex
from repro.core.updates import (
    dk_add_edge,
    enforce_dk_constraint,
    update_local_similarity,
)
from repro.graph.builder import graph_from_edges
from repro.graph.datagraph import DataGraph
from repro.graph.xmlio import graph_to_xml, parse_xml
from repro.indexes.base import IndexGraph
from repro.indexes.labelsplit import build_labelsplit_index
from repro.indexes.metrics import index_metrics
from repro.paths.cost import CostCounter
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import make_query


# ------------------------- Algorithm 4 safety valve --------------------


def test_update_local_similarity_path_cap(monkeypatch):
    # With the label-path cap forced to 1 the search stops early and
    # returns a conservative (lower) similarity — never a higher one.
    g = graph_from_edges(
        ["a", "b", "c", "c", "d"],
        [(0, 1), (1, 2), (0, 3), (2, 4), (3, 4), (4, 5)],
    )
    index, _ = build_dk_index(g, {"d": 3})
    c_nodes = sorted(index.nodes_with_label("c"))
    d_node = next(iter(index.nodes_with_label("d")))
    unrestricted = update_local_similarity(index, c_nodes[0], d_node)
    monkeypatch.setattr(updates_module, "MAX_LABEL_PATHS", 1)
    capped = update_local_similarity(index, c_nodes[0], d_node)
    assert capped <= unrestricted


def test_update_local_similarity_dead_end_parent():
    # The source index node has no parents at all: new label paths run
    # dry, so every longer path vacuously matches -> cap is reached.
    g = DataGraph()
    a, b = g.add_node("a"), g.add_node("b")
    g.add_edge(g.root, b)
    # `a` is parentless (not even under the root).
    index, _ = build_dk_index(g, {"b": 2})
    a_node = next(iter(index.nodes_with_label("a")))
    b_node = next(iter(index.nodes_with_label("b")))
    k_new = update_local_similarity(index, a_node, b_node)
    assert k_new <= min(index.k[a_node] + 1, index.k[b_node])


# ------------------------- report details ------------------------------


def test_edge_report_preserves_original_old_k():
    # A node lowered twice in one sweep must report its *original* k.
    g = graph_from_edges(
        ["q", "x1", "x2"],
        [(0, 1), (0, 2), (2, 3), (1, 3)],
    )
    index, _ = build_dk_index(g, {"x2": 2})
    original = {n: index.k[n] for n in range(index.num_nodes)}
    report = dk_add_edge(g, index, 1, 2)
    for node, (old, new) in report.lowered.items():
        assert old == original[node]
        assert new == index.k[node]


def test_enforce_dk_constraint_counts_lowered():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2)])
    index, _ = build_dk_index(g, {"b": 1})
    index.k[index.node_of[2]] = 9  # corrupt upward
    lowered = enforce_dk_constraint(index)
    assert lowered >= 1
    from repro.core.dindex import check_dk_constraint

    check_dk_constraint(index)


def test_promote_report_raised_entries():
    from repro.core.promote import promote_requirements

    g = graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )
    index, _ = build_dk_index(g, {})
    report = promote_requirements(g, index, {"x": 1})
    assert report.rounds == 1
    assert any(new == 1 for _old, new in report.raised.values())


# ------------------------- degenerate graphs ---------------------------


def test_everything_on_root_only_graph():
    g = DataGraph()
    dk = DKIndex.build(g, {})
    dk.check_invariants()
    assert dk.size == 1
    assert dk.evaluate(make_query("anything")) == set()
    assert index_metrics(dk.index).compression == 1.0


def test_single_chain_graph_promote_to_excess():
    # Promoting beyond the graph's depth must terminate and stay honest.
    g = graph_from_edges(["a", "b", "c"], [(0, 1), (1, 2), (2, 3)])
    dk = DKIndex.build(g, {})
    dk.promote({"c": 50})
    dk.check_invariants()
    counter = CostCounter()
    q = make_query("a.b.c")
    assert dk.evaluate(q, counter) == {3}
    assert counter.validated_queries == 0


def test_parallel_labels_single_nodes():
    # Every node uniquely labeled: all indexes coincide with the data.
    g = graph_from_edges(["a", "b", "c"], [(0, 1), (0, 2), (0, 3)])
    for build in (build_labelsplit_index,):
        index = build(g)
        assert index.num_nodes == g.num_nodes
        m = index_metrics(index)
        assert m.singleton_extents == g.num_nodes


def test_self_loop_through_whole_stack():
    g = graph_from_edges(["a"], [(0, 1), (1, 1)])
    dk = DKIndex.build(g, {"a": 2})
    dk.check_invariants()
    q = make_query("a.a.a")
    assert dk.evaluate(q) == evaluate_on_data_graph(g, q) == {1}


# ------------------------- xml round trips -----------------------------


def test_graph_to_xml_multiple_top_elements():
    from repro.graph.xmlio import XmlOptions

    g = DataGraph()
    a, b = g.add_node("a"), g.add_node("b")
    g.add_edge(g.root, a)
    g.add_edge(g.root, b)
    text = graph_to_xml(g)
    assert text.startswith("<document>")
    reparsed = parse_xml(text, XmlOptions(keep_values=False))
    # The synthetic <document> wrapper adds one node.
    assert reparsed.num_nodes == g.num_nodes + 1


def test_index_graph_duck_typing_for_traversal():
    # IndexGraph satisfies the Adjacency protocol used by traversal.
    from repro.graph.traversal import bfs_order, reachable_from

    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2)])
    index = build_labelsplit_index(g)
    order = bfs_order(index, index.root_index_node)
    assert set(order) == set(range(index.num_nodes))
    assert reachable_from(index, [index.root_index_node]) == set(order)


# ------------------------- misuse handling -----------------------------


def test_from_partition_rejects_int_mismatch():
    g = graph_from_edges(["a"], [(0, 1)])
    from repro.partition.refinement import label_partition
    from repro.exceptions import IndexInvariantError

    with pytest.raises(IndexInvariantError):
        IndexGraph.from_partition(g, label_partition(g), [1, 2, 3])


def test_evaluate_on_index_rejects_unknown_query_type():
    from repro.indexes.evaluation import evaluate_on_index

    g = graph_from_edges(["a"], [(0, 1)])
    index = build_labelsplit_index(g)
    with pytest.raises(TypeError):
        evaluate_on_index(index, object())


def test_evaluate_on_data_graph_rejects_unknown_query_type():
    g = graph_from_edges(["a"], [(0, 1)])
    with pytest.raises(TypeError):
        evaluate_on_data_graph(g, "not-a-query")
