"""Tests for :mod:`repro.maintenance` — transactions, journal, audit, repair.

The subsystem's contract, stated once: every mutating operation either
completes and passes its audit, rolls the store back bit-identically, or
ends in a repaired (re-audited) index — and with a journal attached, the
whole history replays from the base snapshot to the same partition.
"""

import random

import pytest

from repro.core.dindex import DKIndex
from repro.core.updates import dk_add_edge
from repro.exceptions import (
    InjectedFaultError,
    JournalError,
    MaintenanceError,
    QuarantineError,
    UpdateError,
)
from repro.graph.builder import graph_from_edges
from repro.graph.datagraph import DataGraph
from repro.indexes.evaluation import evaluate_on_index
from repro.maintenance.audit import (
    AUDIT_LEVELS,
    audit_level_from_env,
    run_audit,
    scoped_fast_ok,
)
from repro.maintenance.faults import FAULT_POINTS, FaultInjector, inject_faults
from repro.maintenance.journal import (
    JOURNAL_VERSION,
    JOURNALED_OPS,
    UpdateJournal,
    _decode_line,
    scan_journal,
)
from repro.maintenance.pipeline import MaintenanceConfig, UpdatePipeline
from repro.maintenance.repair import repair_index
from repro.maintenance.transaction import UpdateTransaction, state_fingerprint
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import make_query


def make_store(journal_path=None, audit="fast", auto_repair=True):
    """A small store with shared labels, a cycle and index edges to spare."""
    graph = graph_from_edges(
        ["db", "m", "t", "a", "m", "t", "a", "m", "x", "t"],
        [
            (0, 1), (1, 2), (1, 3),
            (0, 4), (4, 5), (4, 6),
            (0, 7), (7, 8), (7, 9), (7, 10),
            (7, 2),  # a -> m reference edge, closes a cycle region
        ],
    )
    dk = DKIndex.build(graph, {"t": 2, "x": 3})
    dk.maintenance = MaintenanceConfig(
        audit=audit, journal_path=journal_path, auto_repair=auto_repair
    )
    return dk


def store_queries(dk):
    """Index answers for a battery of label paths (validation on)."""
    answers = {}
    for text in ("t", "m.t", "db.m", "db.m.t", "db.m.a", "m.x"):
        answers[text] = evaluate_on_index(dk.index, make_query(text))
    return answers


# ------------------------- transactions --------------------------------


def test_add_edge_scope_rolls_back_bit_identically():
    dk = make_store()
    before = state_fingerprint(dk.graph, dk.index)
    with pytest.raises(InjectedFaultError):
        with UpdateTransaction(dk.graph, dk.index, "add-edge", edge=(2, 9)):
            with inject_faults("add_edge.lowered"):
                dk_add_edge(dk.graph, dk.index, 2, 9)
    assert state_fingerprint(dk.graph, dk.index) == before


def test_remove_edge_scope_restores_adjacency_order():
    dk = make_store()
    # (7, 2) sits mid-list in node 7's children; the rollback must put
    # it back at the same position, not just back in the set.
    before = state_fingerprint(dk.graph, dk.index)
    with pytest.raises(InjectedFaultError):
        with UpdateTransaction(dk.graph, dk.index, "remove-edge", edge=(7, 2)):
            with inject_faults("remove_edge.lowered"):
                from repro.core.updates import dk_remove_edge

                dk_remove_edge(dk.graph, dk.index, 7, 2)
    assert state_fingerprint(dk.graph, dk.index) == before


def test_full_scope_rolls_back_promote():
    dk = make_store()
    before = state_fingerprint(dk.graph, dk.index)
    with pytest.raises(RuntimeError):
        with UpdateTransaction(dk.graph, dk.index, "full"):
            from repro.core.promote import promote_requirements

            promote_requirements(dk.graph, dk.index, {"m": 2, "t": 2})
            raise RuntimeError("boom after the writes")
    assert state_fingerprint(dk.graph, dk.index) == before


def test_clean_exit_keeps_the_writes():
    dk = make_store()
    before = state_fingerprint(dk.graph, dk.index)
    with UpdateTransaction(dk.graph, dk.index, "add-edge", edge=(2, 9)):
        dk_add_edge(dk.graph, dk.index, 2, 9)
    assert state_fingerprint(dk.graph, dk.index) != before
    assert dk.graph.has_edge(2, 9)


def test_edge_scope_requires_edge():
    dk = make_store()
    with pytest.raises(MaintenanceError):
        UpdateTransaction(dk.graph, dk.index, "add-edge")


def test_transaction_rejects_foreign_index():
    dk = make_store()
    other = make_store()
    with pytest.raises(MaintenanceError):
        UpdateTransaction(dk.graph, other.index)


# ------------------------- journal -------------------------------------


def test_journal_records_begin_commit_and_abort(tmp_path):
    path = tmp_path / "journal.jsonl"
    dk = make_store(journal_path=path)
    dk.add_edge(2, 9)
    with pytest.raises(UpdateError):
        dk.add_edge(2, 9)  # duplicate: raises, rolls back, journals abort
    entries = list(UpdateJournal(path).entries())
    types = [entry.type for entry in entries]
    assert types == ["base", "begin", "commit", "begin", "abort"]
    assert entries[1].op == "add_edge"
    assert entries[1].args == {"src": 2, "dst": 9}
    assert "UpdateError" in entries[4].reason
    assert UpdateJournal(path).dangling() == []


def test_journal_base_written_once(tmp_path):
    path = tmp_path / "journal.jsonl"
    dk = make_store(journal_path=path)
    dk.add_edge(2, 9)
    # Re-attaching to a non-empty journal must not re-base.
    journal = UpdateJournal.open(path, dk)
    assert [e.type for e in journal.entries()][0] == "base"
    assert sum(1 for e in journal.entries() if e.type == "base") == 1
    with pytest.raises(JournalError):
        journal.write_base(dk)


def test_journal_rejects_unknown_op(tmp_path):
    dk = make_store()
    journal = UpdateJournal.open(tmp_path / "j.jsonl", dk)
    with pytest.raises(JournalError):
        journal.begin("compact", {})
    assert "compact" not in JOURNALED_OPS


def test_journal_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "journal.jsonl"
    dk = make_store(journal_path=path)
    dk.add_edge(2, 9)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "begin", "seq": 99')  # crash mid-write
    journal = UpdateJournal(path)
    assert [e.type for e in journal.entries()] == ["base", "begin", "commit"]
    replayed = journal.replay()
    assert replayed.graph.has_edge(2, 9)


def test_journal_rejects_malformed_complete_line(tmp_path):
    path = tmp_path / "journal.jsonl"
    dk = make_store(journal_path=path)
    dk.add_edge(2, 9)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
    with pytest.raises(JournalError):
        list(UpdateJournal(path).entries())


def test_journal_lines_are_crc_framed(tmp_path):
    assert JOURNAL_VERSION == 2
    path = tmp_path / "journal.jsonl"
    dk = make_store(journal_path=path)
    dk.add_edge(2, 9)
    for line in path.read_text(encoding="utf-8").splitlines():
        prefix, _, payload = line.partition(" ")
        assert len(prefix) == 8 and int(prefix, 16) >= 0
        record = _decode_line(line)
        assert record is not None and "type" in record


def test_mid_file_corruption_names_path_line_and_prefix(tmp_path):
    path = tmp_path / "journal.jsonl"
    dk = make_store(journal_path=path)
    dk.add_edge(2, 9)
    dk.add_edge(3, 5)
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    lines[3] = "deadbeef" + lines[3][8:]  # destroy the second begin
    path.write_text("".join(lines), encoding="utf-8")
    with pytest.raises(JournalError) as error:
        list(UpdateJournal(path).entries())
    assert f"{path}:4" in str(error.value)
    assert "replayable prefix: 3 entries" in str(error.value)


def test_scan_journal_stops_at_corrupt_operation_record(tmp_path):
    path = tmp_path / "journal.jsonl"
    dk = make_store(journal_path=path)
    dk.add_edge(2, 9)
    dk.add_edge(3, 5)
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    lines[3] = "deadbeef" + lines[3][8:]
    path.write_text("".join(lines), encoding="utf-8")
    scan = scan_journal(path)  # forgiving twin of entries(): never raises
    assert scan.damaged and scan.corrupt_lines == [4]
    assert scan.committed_ops == [(1, "add_edge", {"src": 2, "dst": 9})]
    assert any("unrecoverable" in note for note in scan.notes)


def test_scan_journal_corrupt_base_still_reads_operations(tmp_path):
    path = tmp_path / "journal.jsonl"
    dk = make_store(journal_path=path)
    dk.add_edge(2, 9)
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    lines[0] = "deadbeef" + lines[0][8:]
    path.write_text("".join(lines), encoding="utf-8")
    scan = scan_journal(path)
    assert scan.base_document is None
    assert scan.corrupt_lines == [1]
    assert scan.committed_ops == [(1, "add_edge", {"src": 2, "dst": 9})]


def test_replay_requires_base(tmp_path):
    path = tmp_path / "no-base.jsonl"
    path.write_text('{"type":"begin","seq":1,"op":"add_edge","args":{}}\n')
    with pytest.raises(JournalError):
        UpdateJournal(path).replay()


def test_dangling_begin_is_skipped_by_replay(tmp_path):
    path = tmp_path / "journal.jsonl"
    dk = make_store(journal_path=path)
    dk.add_edge(2, 9)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type":"begin","seq":77,"op":"add_edge","args":{"src":3,"dst":8}}\n')
    journal = UpdateJournal(path)
    assert journal.dangling() == [77]
    replayed = journal.replay()
    assert replayed.graph.has_edge(2, 9)
    assert not replayed.graph.has_edge(3, 8)


def test_replay_partition_identical_after_random_edge_sequence(tmp_path):
    """The acceptance criterion: 100 journaled random edge ops, then
    ``replay()`` rebuilds the identical partition from the base snapshot."""
    rng = random.Random(7)
    graph = DataGraph()
    nodes = [graph.add_node(rng.choice("abcx")) for _ in range(30)]
    for position, node in enumerate(nodes):
        parent = graph.root if position == 0 else nodes[rng.randrange(position)]
        graph.add_edge_if_absent(parent, node)
    dk = DKIndex.build(graph, {"x": 2, "a": 1})
    path = tmp_path / "journal.jsonl"
    dk.maintenance = MaintenanceConfig(audit="fast", journal_path=path)

    applied = 0
    while applied < 100:
        src = rng.randrange(graph.num_nodes)
        dst = rng.randrange(1, graph.num_nodes)
        if src == dst:
            continue
        if graph.has_edge(src, dst):
            if rng.random() < 0.2:  # mix some removals into the stream
                dk.remove_edge(src, dst)
                applied += 1
            continue
        dk.add_edge(src, dst)
        applied += 1

    replayed = UpdateJournal(path).replay()
    assert replayed.index.node_of == dk.index.node_of
    assert replayed.index.extents == dk.index.extents
    assert replayed.index.k == dk.index.k
    assert state_fingerprint(replayed.graph, replayed.index) == state_fingerprint(
        dk.graph, dk.index
    )


# ------------------------- audit tiers ---------------------------------


def test_audit_off_sees_nothing():
    dk = make_store()
    dk.index.k[dk.index.node_of[2]] += 10  # corrupt
    outcome = run_audit(dk.index, "off")
    assert outcome.ok


def test_fast_audit_catches_violation_in_touched_neighbourhood():
    dk = make_store()
    victim = dk.index.node_of[2]
    parent = next(iter(dk.index.parents[victim]))
    dk.index.k[victim] += 10
    outcome = run_audit(dk.index, "fast", [parent])
    assert not outcome.ok
    assert any("D(k) constraint" in problem for problem in outcome.problems)


def test_fast_audit_full_scan_when_no_touched_set():
    dk = make_store()
    dk.index.k[dk.index.node_of[2]] += 10
    outcome = run_audit(dk.index, "fast")
    assert not outcome.ok


def test_deep_audit_catches_corruption_anywhere():
    dk = make_store()
    dk.index.k[dk.index.node_of[2]] += 10
    # Touched set far from the corruption: fast scoping would miss it,
    # deep must not.
    outcome = run_audit(dk.index, "deep", [0])
    assert not outcome.ok


def test_deep_audit_spot_checks_touched_extents():
    dk = make_store()
    outcome = run_audit(dk.index, "deep", list(range(dk.index.num_nodes)))
    assert outcome.ok
    assert outcome.nodes_spot_checked > 0


def test_run_audit_rejects_unknown_level():
    dk = make_store()
    with pytest.raises(MaintenanceError):
        run_audit(dk.index, "paranoid")
    assert "paranoid" not in AUDIT_LEVELS


def test_scoped_fast_ok_expected_k_detects_drift():
    dk = make_store()
    victim = dk.index.node_of[2]
    assert scoped_fast_ok(dk.index, [victim], expected={victim: dk.index.k[victim]})
    dk.index.k[victim] += 10
    assert not scoped_fast_ok(
        dk.index, [victim], expected={victim: dk.index.k[victim] - 10}
    )


def test_audit_level_from_env(monkeypatch):
    monkeypatch.delenv("DKINDEX_AUDIT", raising=False)
    assert audit_level_from_env() == "fast"
    monkeypatch.setenv("DKINDEX_AUDIT", "deep")
    assert audit_level_from_env() == "deep"
    monkeypatch.setenv("DKINDEX_AUDIT", "loud")
    with pytest.raises(MaintenanceError):
        audit_level_from_env()


# ------------------------- fault injection -----------------------------


def test_fault_injector_rejects_unknown_point_and_mode():
    with pytest.raises(MaintenanceError):
        FaultInjector("add_edge.nowhere")
    with pytest.raises(MaintenanceError):
        FaultInjector("add_edge.planned", mode="explode")


def test_single_armed_slot():
    with inject_faults("add_edge.planned"):
        with pytest.raises(MaintenanceError):
            with inject_faults("add_edge.lowered"):
                pass  # pragma: no cover


def test_fault_points_registry_documents_every_point():
    assert "pipeline.pre_audit" in FAULT_POINTS
    assert all(description for description in FAULT_POINTS.values())


# ------------------------- pipeline ------------------------------------


def test_pipeline_repairs_injected_corruption():
    dk = make_store(audit="deep")
    with inject_faults("pipeline.pre_audit", mode="corrupt", seed=3):
        report = dk.add_edge(2, 9)
    assert dk.graph.has_edge(2, 9) and report is not None
    pipeline = dk.pipeline
    assert not pipeline.quarantined
    assert pipeline.last_repair is not None and pipeline.last_repair.repaired
    # The healed index answers queries exactly like the data graph.
    for text in ("t", "m.t", "db.m.t", "m.x"):
        query = make_query(text)
        assert evaluate_on_index(dk.index, query) == evaluate_on_data_graph(
            dk.graph, query
        )


def test_pipeline_quarantines_without_auto_repair():
    dk = make_store(audit="deep", auto_repair=False)
    with pytest.raises(QuarantineError):
        with inject_faults("pipeline.pre_audit", mode="corrupt", seed=3):
            dk.add_edge(2, 9)
    assert dk.pipeline.quarantined
    with pytest.raises(QuarantineError):
        dk.add_edge(3, 8)  # further updates refused while quarantined


def test_pipeline_rolls_back_and_journals_raise_faults(tmp_path):
    path = tmp_path / "journal.jsonl"
    dk = make_store(journal_path=path)
    before = state_fingerprint(dk.graph, dk.index)
    with pytest.raises(InjectedFaultError):
        with inject_faults("add_edge.graph_mutated"):
            dk.add_edge(2, 9)
    assert state_fingerprint(dk.graph, dk.index) == before
    types = [entry.type for entry in UpdateJournal(path).entries()]
    assert types == ["base", "begin", "abort"]


def test_pipeline_batch_is_atomic():
    dk = make_store()
    before = state_fingerprint(dk.graph, dk.index)
    with pytest.raises(InjectedFaultError):
        with inject_faults("add_edge.planned", trigger_on_hit=2):
            dk.add_edges([(2, 9), (3, 8)])
    # The first edge of the batch must be gone too.
    assert state_fingerprint(dk.graph, dk.index) == before
    reports = dk.add_edges([(2, 9), (3, 8)])
    assert len(reports) == 2 and dk.graph.has_edge(2, 9)


def test_pipeline_answers_stay_exact_across_facade_ops():
    dk = make_store(audit="deep")
    dk.add_edge(2, 9)
    dk.remove_edge(7, 2)
    sub = graph_from_edges(["m", "t", "a"], [(0, 1), (1, 2), (1, 3)])
    dk.add_subgraph(sub)
    dk.promote({"m": 1})
    dk.demote({"t": 1})
    for text, answer in store_queries(dk).items():
        assert answer == evaluate_on_data_graph(dk.graph, make_query(text)), text


def test_facade_lazy_pipeline_reuse():
    dk = make_store()
    assert dk.pipeline is dk.pipeline
    assert isinstance(dk.pipeline, UpdatePipeline)


# ------------------------- repair ladder -------------------------------


def test_repair_lower_rung_heals_sound_violations():
    dk = make_store()
    # Drop a parent's similarity below a high-k child's requirement:
    # Definition 3 breaks, but every k is still honest (lowering always
    # is), so the cheapest rung — a lowering sweep — can heal it.
    child = max(
        (n for n in range(dk.index.num_nodes) if dk.index.parents[n]),
        key=lambda n: dk.index.k[n],
    )
    assert dk.index.k[child] >= 2
    parent = next(iter(dk.index.parents[child]))
    dk.index.k[parent] = 0
    outcome = run_audit(dk.index, "deep")
    assert not outcome.ok
    report = repair_index(dk.graph, dk.index, dk.requirements, outcome)
    assert report.repaired
    assert report.strategy == "lower"
    assert report.index is not None
    assert run_audit(report.index, "deep").ok
    assert "lower" in report.format()


def test_repair_escalates_past_lowering_for_dishonest_similarity():
    dk = make_store()
    victim = dk.index.node_of[2]
    dk.index.k[victim] += 10
    outcome = run_audit(dk.index, "deep")
    assert not outcome.ok
    report = repair_index(dk.graph, dk.index, dk.requirements, outcome)
    assert report.repaired
    # Lowering to the Definition-3 ceiling still overclaims similarity,
    # so the ladder must climb to a rung that recomputes it.
    assert report.strategy in ("reindex", "rebuild")
    assert run_audit(report.index, "deep").ok


def test_repair_falls_through_to_rebuild_on_partition_damage():
    dk = make_store()
    # Tear a node out of its extent: lowering cannot fix a partition
    # hole, so the ladder must escalate past the first rung.
    victim = dk.index.node_of[2]
    dk.index.extents[victim].remove(2)
    outcome = run_audit(dk.index, "deep")
    assert not outcome.ok
    report = repair_index(dk.graph, dk.index, dk.requirements, outcome)
    assert report.repaired
    assert report.strategy in ("reindex", "rebuild")
    assert report.index is not None
    assert run_audit(report.index, "deep").ok
    assert len(report.attempts) >= 2
