"""Tests for :mod:`repro.datasets.validate` (DTD conformance checker)."""

import pytest

from repro.datasets.dtd import parse_dtd
from repro.datasets.nasa import NASA_DTD, generate_nasa
from repro.datasets.validate import ConformanceReport, check_conformance
from repro.datasets.xmark import XMARK_DTD, generate_xmark
from repro.graph.xmlio import XmlOptions, parse_xml

MOVIE_DTD = parse_dtd(
    """
    <!ELEMENT db (movie*, person?)>
    <!ELEMENT movie (title, year?, genre+)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
    <!ELEMENT genre (#PCDATA)>
    <!ELEMENT person (name)>
    <!ELEMENT name (#PCDATA)>
    """
)


def check(xml: str, **kwargs) -> ConformanceReport:
    return check_conformance(parse_xml(xml), MOVIE_DTD, "db", **kwargs)


def test_conforming_document():
    report = check("<db><movie><title>H</title><genre>x</genre></movie></db>")
    assert report.ok
    assert report.checked_elements > 0
    assert "conforms" in report.format()


def test_optional_and_plus():
    assert check(
        "<db><movie><title>H</title><year>1</year>"
        "<genre>a</genre><genre>b</genre></movie></db>"
    ).ok


def test_missing_required_child():
    report = check(
        "<db><movie><genre>a</genre></movie></db>", allow_truncation=False
    )
    assert not report.ok
    assert any(v.element == "movie" for v in report.violations)


def test_wrong_order():
    report = check(
        "<db><movie><genre>a</genre><title>H</title></movie></db>"
    )
    assert not report.ok


def test_unexpected_child():
    report = check("<db><title>stray</title></db>")
    assert not report.ok
    assert any(v.element == "db" for v in report.violations)


def test_truncation_allowance():
    xml = "<db><movie/></db>"
    assert check(xml).ok  # empty movie accepted as truncated
    assert not check(xml, allow_truncation=False).ok


def test_wrong_document_element():
    g = parse_xml("<movie><title>H</title><genre>g</genre></movie>")
    report = check_conformance(g, MOVIE_DTD, "db")
    assert not report.ok
    assert any(v.element == "ROOT" for v in report.violations)


def test_pcdata_accepts_value_nodes():
    assert check("<db><movie><title>text here</title>"
                 "<genre>g</genre></movie></db>").ok


def test_reference_edges_do_not_count_as_children():
    dtd = parse_dtd(
        "<!ELEMENT db (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
        "<!ATTLIST a id ID #REQUIRED><!ATTLIST b ref IDREF #REQUIRED>"
    )
    g = parse_xml(
        '<db><a id="x"/><b ref="x"/></db>', XmlOptions(keep_values=False)
    )
    # b -> a is a reference edge; b's content model is EMPTY and must
    # still pass because reference edges are not document structure.
    assert check_conformance(g, dtd, "db").ok


def test_mixed_content():
    dtd = parse_dtd(
        "<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>"
        "<!ELEMENT db (p)>"
    )
    ok = parse_xml("<db><p>text<em>bold</em>tail</p></db>")
    assert check_conformance(ok, dtd, "db").ok
    bad = parse_xml("<db><p><db/></p></db>")
    report = check_conformance(bad, dtd, "db")
    assert not report.ok
    assert "mixed content" in report.violations[0].reason


def test_violation_str_and_format_limit():
    report = check(
        "<db>" + "<title>s</title>" * 3 + "</db>"
    )
    assert not report.ok
    text = report.format(limit=0)
    assert "more" in text or "violations" in text
    assert "node" in str(report.violations[0])


def test_random_dtds_generate_conforming_documents():
    """Cross-validate the generator against the checker on random DTDs."""
    import random

    from hypothesis import assume, given, settings
    from hypothesis import strategies as st

    from repro.exceptions import DTDError
    from repro.datasets.dtd import (
        DTD,
        DTDGeneratorConfig,
        ChoiceParticle,
        ElementDecl,
        EmptyContent,
        NameParticle,
        PCDataParticle,
        RandomDocumentGenerator,
        SeqParticle,
    )

    @st.composite
    def random_dtds(draw):
        names = [f"e{i}" for i in range(draw(st.integers(2, 6)))]

        def particle(depth: int):
            kind = draw(st.integers(0, 5 if depth > 0 else 2))
            occurrence = draw(st.sampled_from(["", "?", "*", "+"]))
            if kind == 0:
                return PCDataParticle()
            if kind == 1:
                return EmptyContent()
            if kind == 2:
                return NameParticle(
                    occurrence=occurrence, name=draw(st.sampled_from(names))
                )
            items = tuple(
                particle(depth - 1) for _ in range(draw(st.integers(1, 3)))
            )
            maker = SeqParticle if kind == 3 else ChoiceParticle
            return maker(occurrence=occurrence, items=items)

        dtd = DTD()
        for name in names:
            dtd.elements[name] = ElementDecl(name=name, content=particle(2))
        return dtd

    @given(random_dtds(), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def run(dtd, seed):
        generator = RandomDocumentGenerator(
            dtd,
            DTDGeneratorConfig(max_depth=10, max_repeat=4, soft_node_cap=300),
        )
        root = dtd.element_names()[0]
        try:
            document = generator.generate(root, random.Random(seed))
        except DTDError:
            # The drawn root's required content recurses unconditionally,
            # so no finite conforming document exists; the generator is
            # expected to reject it rather than emit a malformed tree.
            assume(False)
            return
        report = check_conformance(document.graph, dtd, root)
        assert report.ok, report.format()

    run()


def test_generated_xmark_conforms():
    doc = generate_xmark(scale=0.08, seed=6)
    report = check_conformance(doc.graph, parse_dtd(XMARK_DTD), "site")
    assert report.ok, report.format()


def test_generated_nasa_conforms():
    doc = generate_nasa(scale=0.08, seed=6)
    report = check_conformance(doc.graph, parse_dtd(NASA_DTD), "datasets")
    assert report.ok, report.format()
