"""Storage chaos: faulted paged I/O, retry/backoff, scrub, degradation.

The storage crash matrix (:func:`repro.maintenance.chaos.run_storage_suite`)
is itself the test of the out-of-core robustness stack; these tests pin
its headline guarantee (zero silent data loss across >= 20 scenarios)
and unit-test the pieces it composes: the transient-I/O retry policy,
the OS-error fault modes, engine degradation, page scrub & repair, and
the spill-run CRC frames.
"""

import errno
import warnings

import pytest

from repro.cli import main
from repro.exceptions import (
    InjectedFaultError,
    MaintenanceError,
    PagedStoreError,
    StorageDegradationWarning,
)
from repro.maintenance.chaos import (
    STORAGE_SCENARIOS,
    _fixture_graph,
    run_storage_suite,
)
from repro.maintenance.faults import (
    FAULT_POINTS,
    STORAGE_FAULT_POINTS,
    FaultInjector,
)
from repro.maintenance.repair import scrub_store
from repro.partition.refinement import bisim_partition, resolve_degrade
from repro.storage.paged import PagedCSRGraph, PagedStore, PoolStats
from repro.storage.retry import (
    TRANSIENT_ERRNOS,
    RetryPolicy,
    io_retry,
    resolve_retry_policy,
)
from repro.storage.spill import SpillRuns

# ----------------------------------------------------------------------
# The storage crash matrix
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1])
def test_storage_matrix_zero_silent_loss(seed, tmp_path):
    report = run_storage_suite(seed=seed, work_dir=tmp_path)
    assert report.ok, report.format()
    assert len(report.outcomes) == len(STORAGE_SCENARIOS) >= 20
    counts = report.counts()
    assert counts.get("broken", 0) == 0
    assert counts.get("unrepaired", 0) == 0
    # Every recovery story must actually be exercised by the matrix.
    for outcome in (
        "absorbed",
        "rebuilt",
        "degraded",
        "rolled-back",
        "repaired",
        "recovered",
        "flagged-rebuild",
        "loud",
    ):
        assert counts.get(outcome, 0) > 0, (outcome, counts)


def test_storage_scenarios_only_name_registered_points():
    for phase, point, mode, hit, rate, expect in STORAGE_SCENARIOS:
        assert point in FAULT_POINTS, (phase, point)
        assert hit >= 1 and 0.0 <= rate <= 1.0
    # Every registered storage point is attacked by at least one scenario.
    attacked = {point for _, point, *_ in STORAGE_SCENARIOS}
    assert set(STORAGE_FAULT_POINTS) <= attacked


# ----------------------------------------------------------------------
# The retry policy
# ----------------------------------------------------------------------


def test_io_retry_absorbs_transient_errors():
    stats = PoolStats()
    attempts = []

    def flaky():
        attempts.append(len(attempts))
        if len(attempts) < 3:
            raise OSError(errno.EIO, "injected")
        return "ok"

    policy = RetryPolicy(retries=4, backoff_ms=0.0, seed=0)
    assert io_retry(flaky, what="read", policy=policy, stats=stats) == "ok"
    assert len(attempts) == 3
    assert stats.retries == 2
    assert stats.give_ups == 0


def test_io_retry_fails_fast_on_non_transient_errno():
    attempts = []

    def doomed():
        attempts.append(len(attempts))
        raise OSError(errno.ENOSPC, "injected")

    policy = RetryPolicy(retries=4, backoff_ms=0.0, seed=0)
    with pytest.raises(PagedStoreError):
        io_retry(doomed, what="write", policy=policy)
    assert len(attempts) == 1  # no retry: ENOSPC is not transient


def test_io_retry_gives_up_after_budget():
    stats = PoolStats()

    def always_eio():
        raise OSError(errno.EIO, "injected")

    policy = RetryPolicy(retries=2, backoff_ms=0.0, seed=0)
    with pytest.raises(PagedStoreError, match="3 attempt"):
        io_retry(always_eio, what="read", policy=policy, stats=stats)
    assert stats.retries == 2
    assert stats.give_ups == 1


def test_retry_policy_resolution(monkeypatch):
    monkeypatch.delenv("DKINDEX_IO_RETRIES", raising=False)
    monkeypatch.delenv("DKINDEX_IO_BACKOFF_MS", raising=False)
    assert resolve_retry_policy().retries == 4
    monkeypatch.setenv("DKINDEX_IO_RETRIES", "7")
    monkeypatch.setenv("DKINDEX_IO_BACKOFF_MS", "0.5")
    policy = resolve_retry_policy(seed=3)
    assert policy == RetryPolicy(retries=7, backoff_ms=0.5, seed=3)
    assert resolve_retry_policy(retries=1, backoff_ms=0.0).retries == 1
    monkeypatch.setenv("DKINDEX_IO_RETRIES", "soon")
    with pytest.raises(PagedStoreError):
        resolve_retry_policy()
    assert errno.EIO in TRANSIENT_ERRNOS
    assert errno.ENOSPC not in TRANSIENT_ERRNOS


# ----------------------------------------------------------------------
# The OS-error fault modes
# ----------------------------------------------------------------------


def test_transient_mode_raises_eio_once():
    injector = FaultInjector(
        "storage.page_read_eio_transient", "transient", trigger_on_hit=2
    )
    injector.hit("storage.page_read_eio_transient", None)
    with pytest.raises(OSError) as excinfo:
        injector.hit("storage.page_read_eio_transient", None)
    assert excinfo.value.errno == errno.EIO
    injector.hit("storage.page_read_eio_transient", None)  # latched: clean
    assert injector.fired and injector.fires == 1 and injector.hits == 3


def test_enospc_mode_raises_enospc():
    injector = FaultInjector("storage.page_enospc", "enospc")
    with pytest.raises(OSError) as excinfo:
        injector.hit("storage.page_enospc", None)
    assert excinfo.value.errno == errno.ENOSPC


def test_rate_mode_fires_on_every_hit_at_certainty():
    injector = FaultInjector(
        "storage.page_read_eio_transient", "transient", rate=1.0
    )
    for _ in range(5):
        with pytest.raises(OSError):
            injector.hit("storage.page_read_eio_transient", None)
    assert injector.fires == 5  # non-latching: a flaky disk, not a landmine


def test_rate_mode_is_seeded_and_validated():
    def firing_pattern(seed):
        injector = FaultInjector(
            "storage.page_read_eio_transient", "transient", seed=seed, rate=0.5
        )
        pattern = []
        for _ in range(32):
            try:
                injector.hit("storage.page_read_eio_transient", None)
                pattern.append(False)
            except OSError:
                pattern.append(True)
        return pattern

    assert firing_pattern(7) == firing_pattern(7)
    assert any(firing_pattern(7)) and not all(firing_pattern(7))
    with pytest.raises(MaintenanceError):
        FaultInjector("storage.page_enospc", "enospc", rate=1.5)


# ----------------------------------------------------------------------
# Graceful engine degradation
# ----------------------------------------------------------------------


def _fail_all_page_reads():
    return FaultInjector(
        "storage.page_read_eio_transient", "transient", rate=1.0
    )


@pytest.fixture
def fast_retries(monkeypatch):
    monkeypatch.setenv("DKINDEX_IO_RETRIES", "0")
    monkeypatch.setenv("DKINDEX_IO_BACKOFF_MS", "0")


def test_degrade_off_reraises(monkeypatch, fast_retries):
    monkeypatch.setenv("DKINDEX_DEGRADE", "off")
    with _fail_all_page_reads():
        with pytest.raises(PagedStoreError):
            bisim_partition(_fixture_graph(), engine="external")


def test_degrade_warn_falls_back_with_warning(monkeypatch, fast_retries):
    monkeypatch.delenv("DKINDEX_DEGRADE", raising=False)  # default: warn
    graph = _fixture_graph()
    baseline, rounds = bisim_partition(graph, engine="columnar")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with _fail_all_page_reads():
            partition, degraded_rounds = bisim_partition(
                graph, engine="external"
            )
    storage_warnings = [
        entry.message
        for entry in caught
        if isinstance(entry.message, StorageDegradationWarning)
    ]
    assert storage_warnings
    assert storage_warnings[0].from_engine == "external"
    assert storage_warnings[0].to_engine == "columnar"
    assert partition.block_of == baseline.block_of
    assert degraded_rounds == rounds


def test_degrade_auto_falls_back_silently(monkeypatch, fast_retries):
    monkeypatch.setenv("DKINDEX_DEGRADE", "auto")
    graph = _fixture_graph()
    baseline, _ = bisim_partition(graph, engine="columnar")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with _fail_all_page_reads():
            partition, _ = bisim_partition(graph, engine="external")
    assert not [
        entry
        for entry in caught
        if isinstance(entry.message, StorageDegradationWarning)
    ]
    assert partition.block_of == baseline.block_of


def test_degrade_never_absorbs_injected_crashes(monkeypatch):
    # A simulated crash (InjectedFaultError) must propagate: if the
    # degradation chain could eat it, it could eat real crashes too.
    monkeypatch.setenv("DKINDEX_DEGRADE", "auto")
    with FaultInjector("storage.page_torn_write", "raise"):
        with pytest.raises(InjectedFaultError):
            bisim_partition(_fixture_graph(), engine="external")


def test_resolve_degrade_validates(monkeypatch):
    monkeypatch.delenv("DKINDEX_DEGRADE", raising=False)
    assert resolve_degrade() == "warn"
    assert resolve_degrade("off") == "off"
    monkeypatch.setenv("DKINDEX_DEGRADE", "auto")
    assert resolve_degrade() == "auto"
    with pytest.raises(ValueError):
        resolve_degrade("loudly")
    monkeypatch.setenv("DKINDEX_DEGRADE", "maybe")
    with pytest.raises(ValueError):
        resolve_degrade()


# ----------------------------------------------------------------------
# Page scrub & repair
# ----------------------------------------------------------------------


def _page_files(directory):
    return sorted((directory / "pages").iterdir())


def _flip_byte(path):
    raw = bytearray(path.read_bytes())
    raw[0] ^= 0x20
    path.write_bytes(bytes(raw))


def test_scrub_repairs_from_older_generation(tmp_path):
    store_dir = tmp_path / "s"
    graph = _fixture_graph()
    view = graph.freeze()
    paged = PagedCSRGraph.create(store_dir, graph, page_bytes=64)
    store = paged.store
    # Same-value rewrite: generation 2 gets fresh physical pages with
    # generation 1's digests — the donor twins repair relies on.
    for position in range(store.length("label_ids")):
        store.write_element(
            "label_ids", position, store.read_element("label_ids", position)
        )
    store.checkpoint()
    paged.close()
    # Rot one generation-2 page file on disk (the newest physical ids).
    _flip_byte(_page_files(store_dir)[-1])
    report = scrub_store(store_dir)
    assert report.ok and not report.rebuild_required
    assert len(report.repaired) == 1
    assert "restored from generation 1" in report.repaired[0].detail
    assert (store_dir / "quarantine").exists()  # evidence kept
    with PagedCSRGraph.open(store_dir) as healed:
        assert healed.to_csr().label_ids == view.label_ids


def test_scrub_flags_rebuild_when_no_donor_exists(tmp_path):
    store_dir = tmp_path / "s"
    PagedCSRGraph.create(store_dir, _fixture_graph(), page_bytes=64).close()
    _flip_byte(_page_files(store_dir)[0])
    report = scrub_store(store_dir)
    assert not report.ok and report.rebuild_required
    assert len(report.unrepairable) == 1
    assert "rebuild" in report.format()
    # The damaged page is quarantined, never served: reads stay loud.
    bad = report.unrepairable[0]
    with PagedCSRGraph.open(store_dir) as paged:
        with pytest.raises(PagedStoreError):
            paged.store.read_slice(
                bad.buffer, 0, paged.store.length(bad.buffer)
            )


def test_scrub_refuses_dirty_pages(tmp_path):
    store = PagedStore.create(tmp_path / "s", {"v": range(16)})
    store.write_element("v", 0, 99)
    with pytest.raises(PagedStoreError, match="dirty"):
        store.scrub()
    store.checkpoint()
    assert store.scrub().ok
    store.close()


# ----------------------------------------------------------------------
# Spill-run CRC frames
# ----------------------------------------------------------------------


def test_spill_run_crc_detects_bit_rot(tmp_path):
    with SpillRuns(budget_bytes=0, directory=tmp_path) as runs:
        for position in range(8):
            runs.add(position, position.to_bytes(8, "big"))
        assert runs.runs_spilled >= 1
        victim = sorted(tmp_path.iterdir())[0]
        _flip_byte(victim)
        with pytest.raises(PagedStoreError, match="CRC"):
            list(runs.merged())


def test_spill_torn_run_fault_point_is_loud(tmp_path):
    with FaultInjector("storage.spill_torn_run", "raise"):
        with pytest.raises(InjectedFaultError):
            with SpillRuns(budget_bytes=0, directory=tmp_path) as runs:
                runs.add(0, b"payload!")


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------


def test_cli_chaos_storage_only(capsys):
    assert main(["chaos", "--storage", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "storage crash matrix" in out
    assert "durability crash matrix" not in out
    assert "-> OK" in out


def test_cli_scrub(tmp_path, capsys):
    store_dir = tmp_path / "s"
    PagedCSRGraph.create(store_dir, _fixture_graph(), page_bytes=64).close()
    assert main(["scrub", str(store_dir)]) == 0
    assert "0 unrepairable" in capsys.readouterr().out
    _flip_byte(_page_files(store_dir)[0])
    assert main(["scrub", str(store_dir)]) == 1
    out = capsys.readouterr().out
    assert "UNREPAIRED" in out and "rebuild from the source graph" in out


def test_cli_bench_outofcore_fault_rate(tmp_path, capsys):
    # The acceptance check in miniature: a transient-fault-riddled
    # external build must complete through retry/backoff alone, with
    # the retry counters recorded in the report.
    out = tmp_path / "bench.json"
    code = main(
        [
            "bench",
            "outofcore",
            "--scale",
            "0.05",
            "--fault-rate",
            "0.25",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "faulted build @ rate 0.25" in printed
    import json

    report = json.loads(out.read_text(encoding="utf-8"))
    faulty = report["phases"]["external_build_faulty"]
    assert faulty["partition_identical"] is True
    assert faulty["degraded"] is False
    assert faulty["give_ups"] == 0
    assert faulty["retries"] >= faulty["faults_injected"] > 0
    assert report["summary"]["faulted_build_ok"] is True
