"""Tests for the XMark-like and NASA-like dataset builders."""

import pytest

from repro.datasets.nasa import NASA_REF_TARGETS, generate_nasa
from repro.datasets.xmark import XMARK_REF_TARGETS, generate_xmark
from repro.exceptions import DatasetError
from repro.graph.stats import graph_stats


def test_xmark_deterministic():
    one = generate_xmark(scale=0.05, seed=9)
    two = generate_xmark(scale=0.05, seed=9)
    assert one.graph.num_nodes == two.graph.num_nodes
    assert sorted(one.graph.edges()) == sorted(two.graph.edges())
    other = generate_xmark(scale=0.05, seed=10)
    assert sorted(one.graph.edges()) != sorted(other.graph.edges())


def test_xmark_scale_controls_size():
    small = generate_xmark(scale=0.05, seed=0)
    large = generate_xmark(scale=0.2, seed=0)
    assert large.graph.num_nodes > small.graph.num_nodes


def test_xmark_structure():
    doc = generate_xmark(scale=0.05, seed=0)
    g = doc.graph
    stats = graph_stats(g)
    assert stats.unreachable_nodes == 0
    assert stats.num_reference_edges > 0
    # The auction-site backbone exists.
    for label in ("site", "regions", "people", "open_auctions", "item", "person"):
        assert g.nodes_with_label(label), label
    # Every open_auction has a seller and an itemref.
    for auction in g.nodes_with_label("open_auction")[:10]:
        child_labels = {g.label(c) for c in g.children[auction]}
        assert "seller" in child_labels
        assert "itemref" in child_labels


def test_xmark_reference_pairs_subset_of_spec():
    doc = generate_xmark(scale=0.05, seed=0)
    declared = {
        (element, target) for (element, _attr), target in XMARK_REF_TARGETS.items()
    }
    assert set(doc.reference_pairs) <= declared


def test_xmark_rejects_bad_scale():
    with pytest.raises(DatasetError):
        generate_xmark(scale=0)


def test_xmark_keep_values_toggle():
    doc = generate_xmark(scale=0.05, seed=0, keep_values=False)
    assert not doc.graph.nodes_with_label("VALUE")


def test_nasa_deterministic():
    one = generate_nasa(scale=0.05, seed=4)
    two = generate_nasa(scale=0.05, seed=4)
    assert sorted(one.graph.edges()) == sorted(two.graph.edges())


def test_nasa_structure():
    doc = generate_nasa(scale=0.05, seed=0)
    g = doc.graph
    stats = graph_stats(g)
    assert stats.unreachable_nodes == 0
    assert stats.num_reference_edges > 0
    for label in ("datasets", "dataset", "title", "author", "reference"):
        assert g.nodes_with_label(label), label


def test_nasa_has_eight_reference_kinds_declared():
    assert len(NASA_REF_TARGETS) == 8  # the paper keeps 8 of 20


def test_nasa_broader_label_alphabet_and_references():
    nasa = generate_nasa(scale=0.1, seed=0)
    assert len(nasa.reference_pairs) >= 4


def test_nasa_rejects_bad_scale():
    with pytest.raises(DatasetError):
        generate_nasa(scale=-1)


def test_dblp_structure():
    from repro.datasets.dblp import DBLP_REF_TARGETS, generate_dblp

    doc = generate_dblp(scale=0.1, seed=0)
    g = doc.graph
    stats = graph_stats(g)
    assert stats.unreachable_nodes == 0
    assert stats.max_depth <= 6  # shallow by design
    for label in ("dblp", "article", "author", "title", "year"):
        assert g.nodes_with_label(label), label
    declared = {
        (element, target) for (element, _a), target in DBLP_REF_TARGETS.items()
    }
    assert set(doc.reference_pairs) <= declared
    assert doc.num_reference_edges > 0


def test_dblp_deterministic_and_scaled():
    from repro.datasets.dblp import generate_dblp

    one = generate_dblp(scale=0.05, seed=3)
    two = generate_dblp(scale=0.05, seed=3)
    assert sorted(one.graph.edges()) == sorted(two.graph.edges())
    big = generate_dblp(scale=0.2, seed=3)
    assert big.graph.num_nodes > one.graph.num_nodes


def test_dblp_conforms_to_its_dtd():
    from repro.datasets.dblp import DBLP_DTD, generate_dblp
    from repro.datasets.dtd import parse_dtd
    from repro.datasets.validate import check_conformance

    doc = generate_dblp(scale=0.08, seed=2)
    report = check_conformance(doc.graph, parse_dtd(DBLP_DTD), "dblp")
    assert report.ok, report.format()


def test_dblp_rejects_bad_scale():
    from repro.datasets.dblp import generate_dblp

    with pytest.raises(DatasetError):
        generate_dblp(scale=0)


def test_dblp_headline_shape():
    # The FIG4 shape must generalise to the third corpus.
    from repro.bench.experiments import run_eval_before_updates
    from repro.bench.harness import ExperimentConfig

    result = run_eval_before_updates(
        "dblp", ExperimentConfig(scale=0.15, num_queries=20)
    )
    by = {p.name: p for p in result.points}
    best_ak = by["A(4)"]
    assert by["D(k)"].avg_cost <= best_ak.avg_cost * 1.15
    assert by["D(k)"].index_size < best_ak.index_size


def test_datasets_differ_in_character():
    # NASA is the bigger, reference-richer corpus (paper: 15M vs 10M).
    xmark = generate_xmark(scale=0.2, seed=0)
    nasa = generate_nasa(scale=0.2, seed=0)
    assert nasa.graph.num_nodes != xmark.graph.num_nodes
    assert set(l for l, _ in [(x, 0) for x in ("site",)]) - set(
        nasa.graph.label_names()
    )
