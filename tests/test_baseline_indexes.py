"""Tests for the label-split, A(k), 1-index and DataGuide baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_full_bisim, brute_force_kbisim, small_graphs
from repro.exceptions import IndexError_
from repro.graph.builder import graph_from_edges
from repro.indexes.akindex import build_ak_index
from repro.indexes.base import K_UNBOUNDED
from repro.indexes.dataguide import build_strong_dataguide
from repro.indexes.labelsplit import build_labelsplit_index
from repro.indexes.oneindex import bisimulation_depth, build_1index


def two_x_graph():
    return graph_from_edges(
        ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )


# ------------------------- label split --------------------------------


def test_labelsplit_one_node_per_label():
    g = two_x_graph()
    idx = build_labelsplit_index(g)
    assert idx.num_nodes == g.num_labels
    assert all(k == 0 for k in idx.k)
    idx.check_invariants()


# ------------------------- A(k) ---------------------------------------


def test_ak_sizes_monotone_in_k():
    g = two_x_graph()
    sizes = [build_ak_index(g, k).num_nodes for k in range(4)]
    assert sizes == sorted(sizes)


def test_ak_zero_is_labelsplit():
    g = two_x_graph()
    assert build_ak_index(g, 0).num_nodes == build_labelsplit_index(g).num_nodes


def test_ak_assigned_k_uniform():
    g = two_x_graph()
    idx = build_ak_index(g, 2)
    assert set(idx.k) == {2}


def test_ak_rejects_negative():
    with pytest.raises(ValueError):
        build_ak_index(two_x_graph(), -1)


@given(small_graphs(), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_ak_partition_is_kbisim(graph, k):
    idx = build_ak_index(graph, k)
    idx.check_invariants()
    assert idx.to_partition() == brute_force_kbisim(graph, k)


# ------------------------- 1-index ------------------------------------


def test_1index_on_two_x_graph():
    g = two_x_graph()
    idx = build_1index(g)
    assert idx.num_nodes == 5  # the x nodes split
    assert set(idx.k) == {K_UNBOUNDED}
    idx.check_invariants()


def test_bisimulation_depth():
    g = two_x_graph()
    assert bisimulation_depth(g) >= 1


@given(small_graphs())
@settings(max_examples=50, deadline=None)
def test_1index_partition_is_full_bisim(graph):
    idx = build_1index(graph)
    idx.check_invariants()
    assert idx.to_partition() == brute_force_full_bisim(graph)


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_ak_converges_to_1index(graph):
    depth = bisimulation_depth(graph)
    ak = build_ak_index(graph, depth + 1)
    one = build_1index(graph)
    assert ak.to_partition() == one.to_partition()


# ------------------------- DataGuide ----------------------------------


def test_dataguide_shares_nodes_across_paths():
    g = graph_from_edges(
        ["a", "a", "b", "b"], [(0, 1), (0, 2), (1, 3), (2, 4)]
    )
    guide = build_strong_dataguide(g)
    assert guide.num_nodes == 3  # ROOT, {a,a}, {b,b}
    assert guide.evaluate_label_path(["a", "b"]) == {3, 4}


def test_dataguide_extents_can_overlap():
    # Shared child under two differently-labeled parents: the target set
    # {x} appears under both label paths, still one DataGuide node.
    g = graph_from_edges(["a", "b", "x"], [(0, 1), (0, 2), (1, 3), (2, 3)])
    guide = build_strong_dataguide(g)
    assert guide.evaluate_label_path(["a", "x"]) == {3}
    assert guide.evaluate_label_path(["b", "x"]) == {3}


def test_dataguide_unknown_label():
    g = two_x_graph()
    guide = build_strong_dataguide(g)
    assert guide.evaluate_label_path(["zzz"]) == set()
    assert guide.evaluate_label_path(["a", "a"]) == set()


def test_dataguide_max_nodes_guard():
    g = two_x_graph()
    with pytest.raises(IndexError_):
        build_strong_dataguide(g, max_nodes=1)


def test_dataguide_deterministic_descent_matches_eval():
    from conftest import enumerate_label_path_matches

    g = two_x_graph()
    guide = build_strong_dataguide(g)
    for path in (["a"], ["a", "x"], ["b", "x"], ["x"]):
        expected = enumerate_label_path_matches(g, path, anchored=True)
        assert guide.evaluate_label_path(path) == expected


@given(small_graphs(max_nodes=8))
@settings(max_examples=40, deadline=None)
def test_dataguide_matches_anchored_oracle(graph):
    from conftest import enumerate_label_path_matches
    import random

    guide = build_strong_dataguide(graph, max_nodes=100_000)
    rng = random.Random(0)
    labels = [graph.label_name(i) for i in range(graph.num_labels)]
    for _ in range(5):
        path = [rng.choice(labels) for _ in range(rng.randint(1, 3))]
        expected = enumerate_label_path_matches(graph, path, anchored=True)
        assert guide.evaluate_label_path(path) == expected
