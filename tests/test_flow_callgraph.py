"""Tests for the whole-program call graph builder."""

from textwrap import dedent

from repro.analysis.flow import build_program_from_sources


def program_of(**modules):
    return build_program_from_sources(
        {name.replace("__", "."): dedent(source) for name, source in modules.items()}
    )


def edges(program):
    return {
        (site.caller, site.callee)
        for sites in program.calls.values()
        for site in sites
    }


# ------------------------- direct calls ---------------------------------


def test_module_local_call_resolves():
    program = program_of(
        m="""
        def helper() -> int:
            return 1

        def top() -> int:
            return helper()
        """
    )
    assert ("m.top", "m.helper") in edges(program)


def test_from_import_resolves_across_modules():
    program = program_of(
        a="""
        def f() -> int:
            return 1
        """,
        b="""
        from a import f

        def g() -> int:
            return f()
        """,
    )
    assert ("b.g", "a.f") in edges(program)


def test_reexport_followed_transitively():
    program = program_of(
        base="""
        def real() -> int:
            return 1
        """,
        pkg="""
        from base import real
        """,
        user="""
        from pkg import real

        def g() -> int:
            return real()
        """,
    )
    assert ("user.g", "base.real") in edges(program)


def test_import_module_attribute_call():
    program = program_of(
        util="""
        def f() -> int:
            return 1
        """,
        user="""
        import util

        def g() -> int:
            return util.f()
        """,
    )
    assert ("user.g", "util.f") in edges(program)


# ------------------------- method dispatch ------------------------------


def test_self_method_dispatch():
    program = program_of(
        m="""
        class C:
            def a(self) -> int:
                return self.b()

            def b(self) -> int:
                return 1
        """
    )
    assert ("m.C.a", "m.C.b") in edges(program)


def test_inherited_method_dispatch():
    program = program_of(
        m="""
        class Base:
            def shared(self) -> int:
                return 1

        class Child(Base):
            def go(self) -> int:
                return self.shared()
        """
    )
    assert ("m.Child.go", "m.Base.shared") in edges(program)


def test_annotated_parameter_receiver():
    program = program_of(
        m="""
        class Store:
            def save(self) -> None:
                pass

        def run(store: Store) -> None:
            store.save()
        """
    )
    assert ("m.run", "m.Store.save") in edges(program)


def test_constructor_assignment_types_local():
    program = program_of(
        m="""
        class Store:
            def save(self) -> None:
                pass

        def run() -> None:
            store = Store()
            store.save()
        """
    )
    assert ("m.run", "m.Store.__init__") not in edges(program)  # no __init__
    assert ("m.run", "m.Store.save") in edges(program)


def test_instance_attribute_receiver():
    program = program_of(
        m="""
        class Journal:
            def append(self) -> None:
                pass

        class Pipeline:
            def __init__(self) -> None:
                self.journal = Journal()

            def run(self) -> None:
                self.journal.append()
        """
    )
    assert ("m.Pipeline.run", "m.Journal.append") in edges(program)


def test_constructor_call_edge_to_init():
    program = program_of(
        m="""
        class C:
            def __init__(self) -> None:
                self.x = 1

        def make() -> C:
            return C()
        """
    )
    assert ("m.make", "m.C.__init__") in edges(program)


# ------------------------- coverage bit ---------------------------------


def test_call_under_transaction_is_covered():
    program = program_of(
        m="""
        def mutate() -> None:
            pass

        def guarded(graph: object, index: object) -> None:
            with UpdateTransaction(graph, index):
                mutate()

        def bare() -> None:
            mutate()
        """
    )
    sites = {site.caller: site for site in program.sites_to("m.mutate")}
    assert sites["m.guarded"].covered
    assert not sites["m.bare"].covered


# ------------------------- higher-order binding -------------------------


def test_lambda_argument_binds_through_parameter_call():
    program = program_of(
        m="""
        def runner(action) -> object:
            return action()

        def mutate() -> None:
            pass

        def top() -> object:
            return runner(lambda: mutate())
        """
    )
    lambda_callees = {
        site.callee for site in program.sites_from("m.runner")
    }
    assert any("<lambda@" in callee for callee in lambda_callees)
    bound = [s for s in program.sites_from("m.runner") if s.bound]
    assert bound, "parameter invocation should bind the passed lambda"


def test_keyword_bound_callable_parameter():
    program = program_of(
        m="""
        def runner(tag: str, action=None) -> object:
            return action()

        def work() -> None:
            pass

        def top() -> object:
            return runner(tag="x", action=work)
        """
    )
    assert ("m.runner", "m.work") in edges(program)


# ------------------------- dispatch sites -------------------------------


def test_pool_map_dispatch_site():
    program = program_of(
        m="""
        from multiprocessing import Pool

        def worker(chunk: list) -> list:
            return chunk

        def run(chunks: list) -> list:
            with Pool(2) as pool:
                return pool.map(worker, chunks)
        """
    )
    assert len(program.dispatch_sites) == 1
    site = program.dispatch_sites[0]
    assert site.kind == "pool"
    assert site.worker == "m.worker"
    assert site.caller == "m.run"


def test_process_target_dispatch_site():
    program = program_of(
        m="""
        from multiprocessing import Process

        def worker() -> None:
            pass

        def run() -> None:
            Process(target=worker).start()
        """
    )
    kinds = {site.kind for site in program.dispatch_sites}
    assert kinds == {"process"}


# ------------------------- robustness -----------------------------------


def test_unresolved_calls_counted_not_fatal():
    program = program_of(
        m="""
        import os

        def g() -> str:
            return os.environ.get("HOME", "")
        """
    )
    assert program.unresolved_calls >= 1
    assert program.functions["m.g"].module == "m"


def test_syntax_error_module_skipped():
    program = build_program_from_sources({"ok": "def f() -> int:\n    return 1\n", "bad": "def ("})
    assert program.skipped_files == 1
    assert "ok.f" in program.functions
