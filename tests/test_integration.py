"""End-to-end integration scenarios tying the whole stack together.

Each scenario is a miniature of the paper's lifecycle: parse/generate
data, mine a workload, build the D(k)-index, query, update, re-tune —
checking exactness against the data graph at every step.
"""

import random

from repro.bench.harness import sample_reference_edges
from repro.core.dindex import DKIndex
from repro.datasets.nasa import generate_nasa
from repro.datasets.xmark import generate_xmark
from repro.graph.serialize import dumps, loads
from repro.graph.xmlio import parse_xml
from repro.indexes.akindex import build_ak_index
from repro.indexes.evaluation import evaluate_on_index
from repro.indexes.oneindex import build_1index
from repro.paths.cost import CostCounter
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import make_query
from repro.workload.generator import WorkloadConfig, generate_test_paths
from repro.workload.mining import exact_requirements


def test_full_lifecycle_on_xmark():
    doc = generate_xmark(scale=0.08, seed=11)
    graph = doc.graph
    load = generate_test_paths(graph, WorkloadConfig(count=30), seed=12)
    requirements = exact_requirements(load)

    dk = DKIndex.from_query_load(graph, list(load))
    assert dk.requirements == requirements
    dk.check_invariants()

    # 1. Tuned queries are sound and exact.
    for query in load:
        counter = CostCounter()
        assert dk.evaluate(query, counter) == evaluate_on_data_graph(graph, query)
        assert counter.validated_queries == 0

    # 2. Apply reference-edge updates; exactness survives via validation.
    edges = sample_reference_edges(
        graph, doc.reference_pairs, 12, random.Random(13)
    )
    for src, dst in edges:
        dk.add_edge(src, dst)
    dk.check_invariants()
    for query in list(load)[:10]:
        assert dk.evaluate(query) == evaluate_on_data_graph(graph, query)

    # 3. Promote restores soundness.
    dk.promote()
    dk.check_invariants()
    for query in list(load)[:10]:
        counter = CostCounter()
        assert dk.evaluate(query, counter) == evaluate_on_data_graph(graph, query)
        assert counter.validated_queries == 0

    # 4. Demote to nothing: back to a label-split-sized index, still exact.
    dk.demote({})
    dk.check_invariants()
    assert dk.size <= graph.num_labels
    for query in list(load)[:5]:
        assert dk.evaluate(query) == evaluate_on_data_graph(graph, query)


def test_document_insert_lifecycle_on_nasa():
    doc = generate_nasa(scale=0.06, seed=21)
    graph = doc.graph
    load = generate_test_paths(graph, WorkloadConfig(count=20), seed=22)
    dk = DKIndex.from_query_load(graph, list(load))

    newcomer = generate_nasa(scale=0.02, seed=23)
    dk.add_subgraph(newcomer.graph)
    dk.check_invariants()
    for query in list(load)[:8]:
        assert dk.evaluate(query) == evaluate_on_data_graph(dk.graph, query)


def test_dk_point_dominates_ak_curve_small_scale():
    doc = generate_xmark(scale=0.08, seed=31)
    graph = doc.graph
    load = generate_test_paths(graph, WorkloadConfig(count=30), seed=32)
    dk = DKIndex.from_query_load(graph, list(load))

    def average(index):
        total = 0
        for query, weight in load.items():
            counter = CostCounter()
            evaluate_on_index(index, query, counter)
            total += counter.total * weight
        return total / load.total_weight

    dk_cost = average(dk.index)
    a4 = build_ak_index(graph, 4)
    assert dk.size < a4.num_nodes
    assert dk_cost <= average(a4) * 1.2


def test_one_index_is_sound_for_everything():
    doc = generate_xmark(scale=0.05, seed=41)
    graph = doc.graph
    one = build_1index(graph)
    load = generate_test_paths(graph, WorkloadConfig(count=15), seed=42)
    for query in load:
        counter = CostCounter()
        assert evaluate_on_index(one, query, counter) == evaluate_on_data_graph(
            graph, query
        )
        assert counter.data_nodes_visited == 0


def test_serialize_then_index_roundtrip():
    doc = generate_xmark(scale=0.04, seed=51)
    restored = loads(dumps(doc.graph))
    dk_original = DKIndex.build(doc.graph, {"name": 2})
    dk_restored = DKIndex.build(restored, {"name": 2})
    assert dk_original.size == dk_restored.size
    q = make_query("person.name")
    assert dk_original.evaluate(q) == dk_restored.evaluate(q)


def test_xml_to_index_pipeline():
    xml = (
        "<catalog>"
        + "".join(
            f'<book id="b{i}"><title>t</title><ref idref="b{(i + 1) % 4}"/></book>'
            for i in range(4)
        )
        + "</catalog>"
    )
    graph = parse_xml(xml)
    dk = DKIndex.build(graph, {"title": 3})
    dk.check_invariants()
    q = make_query("book.ref.book.title")
    assert dk.evaluate(q) == evaluate_on_data_graph(graph, q)
    assert dk.evaluate(q)  # the reference cycle makes this non-empty
