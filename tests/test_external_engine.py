"""The out-of-core ``ExternalEngine``: equivalence, spilling, lifecycle.

The broad cross-engine identity checks live in
``test_engine_equivalence.py`` (the seeded DAG/cyclic families and the
driver matrix all run ``engine="external"``).  This file covers what is
specific to the external path: forced page-pool/spill pressure, the
borrowed-vs-owned store lifecycle, engine reuse across drivers, and the
pool/spill counters the benchmark reports.
"""

import random

import pytest
from hypothesis import given, settings

from conftest import small_graphs
from repro.graph.datagraph import DataGraph
from repro.partition.columnar import ColumnarEngine
from repro.partition.external import ExternalEngine
from repro.partition.refinement import bisim_partition, kbisim_partition
from repro.storage.paged import PagedCSRGraph


def idref_graph(seed, size=180, labels="abcde"):
    rng = random.Random(seed)
    g = DataGraph()
    created = []
    for _ in range(size):
        node = g.add_node(rng.choice(labels))
        parent = created[rng.randrange(len(created))] if created else g.root
        g.add_edge_if_absent(parent, node)
        created.append(node)
    for _ in range(size):
        src = created[rng.randrange(len(created))]
        dst = created[rng.randrange(len(created))]
        if src != dst:
            g.add_edge_if_absent(src, dst)
    return g


@given(small_graphs())
@settings(max_examples=25, deadline=None)
def test_external_fixpoint_matches_columnar(graph):
    columnar, columnar_rounds = bisim_partition(graph, engine="columnar")
    external, external_rounds = bisim_partition(graph, engine="external")
    assert external == columnar
    assert external_rounds == columnar_rounds


def test_tiny_budgets_force_spills_and_stay_identical():
    graph = idref_graph(7)
    baseline = ColumnarEngine(graph, jobs=1).run_fixpoint()
    with ExternalEngine(
        graph, budget_bytes=512, page_bytes=64, spill_bytes=128
    ) as engine:
        partition = engine.run_fixpoint()
        assert engine.spilled_runs > 0  # the spill budget really bit
        stats = engine.stats
        assert stats.evictions > 0  # so did the page pool
        assert stats.hits + stats.misses == stats.accesses
    assert partition == baseline


def test_engine_reuse_across_drivers():
    graph = idref_graph(2, size=90)
    with ExternalEngine(graph, budget_bytes=2048, page_bytes=64) as engine:
        # One engine instance, several runs: the temp store must survive
        # between drivers and every run must match its in-memory twin.
        assert engine.run_fixpoint() == bisim_partition(
            graph, engine="columnar"
        )
        for k in (0, 1, 3):
            assert engine.run_kbisim(k) == kbisim_partition(
                graph, k, engine="columnar"
            )


def test_borrowed_paged_store_survives_engine_close(tmp_path):
    graph = idref_graph(4, size=60)
    paged = PagedCSRGraph.create(tmp_path / "csr", graph, page_bytes=128)
    expected = bisim_partition(graph, engine="columnar")
    with ExternalEngine(paged) as engine:
        assert engine.run_fixpoint() == expected
    # The engine closed, but it borrowed the store: it stays usable.
    assert paged.children(0) is not None
    assert list(paged.children(0)) == list(graph.freeze().children(0))
    paged.close()


def test_owned_store_is_cleaned_up_on_close():
    graph = idref_graph(5, size=40)
    engine = ExternalEngine(graph)
    directory = engine._tempdir.name
    engine.run_fixpoint()
    engine.close()
    import os

    assert not os.path.exists(directory)
    engine.close()  # idempotent


def test_materialize_round_trips_the_paged_csr():
    graph = idref_graph(6, size=50)
    view = graph.freeze()
    with ExternalEngine(graph, page_bytes=64) as engine:
        csr = engine.materialize()
    csr.check_invariants()
    assert csr.label_ids == view.label_ids
    assert csr.child_offsets == view.child_offsets
    assert csr.child_targets == view.child_targets


def test_single_node_and_empty_signature_paths():
    g = DataGraph()
    g.add_node("a")  # root plus one leaf: empty-signature sentinel path
    with ExternalEngine(g) as engine:
        partition, rounds = engine.run_fixpoint()
    legacy, legacy_rounds = bisim_partition(g, engine="legacy")
    assert partition == legacy
    assert rounds == legacy_rounds


def test_leveled_run_matches_columnar_under_pressure():
    graph = idref_graph(8, size=120)
    levels = [min(2, graph.label_ids[n] % 3) for n in graph.nodes()]
    baseline = ColumnarEngine(graph, jobs=1).run_leveled(list(levels))
    with ExternalEngine(
        graph, budget_bytes=0, page_bytes=64, spill_bytes=64
    ) as engine:
        # budget 0 keeps exactly one page resident: every access that
        # changes page evicts, the worst case for the pool.
        assert engine.run_leveled(list(levels)) == baseline
        assert engine.stats.evictions > 0


def test_external_rejects_parallel_jobs_request():
    # The external sweep is inherently serial (one cursor through the
    # page file); the engine pins jobs to 1 regardless of environment.
    graph = idref_graph(9, size=30)
    with ExternalEngine(graph) as engine:
        assert engine.jobs == 1
        engine.run_fixpoint()


def test_kbisim_zero_is_label_partition():
    graph = idref_graph(10, size=70)
    with ExternalEngine(graph) as engine:
        assert engine.run_kbisim(0) == kbisim_partition(
            graph, 0, engine="legacy"
        )
    with pytest.raises(ValueError):
        kbisim_partition(graph, -1, engine="external")
