"""Tests for :mod:`repro.paths.evaluator` (data-graph evaluation).

Includes the paper's Section 3 worked examples on the Figure 1 movie
graph and property tests against the exhaustive path-search oracle.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import enumerate_label_path_matches, random_label_path, small_graphs
from repro.graph.builder import graph_from_edges
from repro.paths.cost import CostCounter
from repro.paths.evaluator import build_label_map, evaluate_on_data_graph
from repro.paths.query import LabelPathQuery, make_query


def test_paper_example_director_movie_title(movie_graph):
    g = movie_graph.graph
    result = evaluate_on_data_graph(g, make_query("director.movie.title"))
    expected = {
        movie_graph.id_of("m1title"),
        movie_graph.id_of("m2title"),
    }
    assert result == expected


def test_paper_example_optional_wildcard(movie_graph):
    g = movie_graph.graph
    result = evaluate_on_data_graph(g, make_query("movieDB._?.movie.actor"))
    # No actor below movie in our rendering; use the name query instead.
    assert result == set()
    names = evaluate_on_data_graph(g, make_query("movieDB._?.actor.name"))
    assert names == {
        movie_graph.id_of("a1name"),
        movie_graph.id_of("a2name"),
    }


def test_unanchored_matches_anywhere():
    g = graph_from_edges(["a", "b", "b"], [(0, 1), (1, 2), (2, 3)])
    assert evaluate_on_data_graph(g, make_query("b.b")) == {3}


def test_anchored_requires_root_start():
    g = graph_from_edges(["a", "a"], [(0, 1), (1, 2)])
    assert evaluate_on_data_graph(g, make_query("/a")) == {1}
    assert evaluate_on_data_graph(g, make_query("a")) == {1, 2}


def test_unknown_label_yields_empty():
    g = graph_from_edges(["a"], [(0, 1)])
    assert evaluate_on_data_graph(g, make_query("nope")) == set()
    assert evaluate_on_data_graph(g, make_query("nope|a")) == {1}


def test_regex_star_over_cycle_terminates():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2), (2, 1)])
    result = evaluate_on_data_graph(g, make_query("a.(b.a)*"))
    assert 1 in result


def test_cost_counter_counts_scan():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2)])
    counter = CostCounter()
    evaluate_on_data_graph(g, make_query("a.b"), counter)
    # Full scan of 3 nodes for the start frontier plus the b step.
    assert counter.data_nodes_visited == g.num_nodes + 1
    assert counter.index_nodes_visited == 0


def test_label_map_reduces_scan_cost():
    g = graph_from_edges(["a", "b"], [(0, 1), (1, 2)])
    label_map = build_label_map(g)
    counter = CostCounter()
    evaluate_on_data_graph(g, make_query("a.b"), counter, label_map)
    assert counter.data_nodes_visited == 2  # one a start + one b step


def test_anchored_regex():
    g = graph_from_edges(["a", "b", "b"], [(0, 1), (1, 2), (0, 3)])
    assert evaluate_on_data_graph(g, make_query("/b")) == {3}
    assert evaluate_on_data_graph(g, make_query("/a.b")) == {2}


@given(small_graphs(), st.integers(0, 10_000))
@settings(max_examples=100, deadline=None)
def test_label_path_eval_matches_oracle(graph, seed):
    rng = random.Random(seed)
    labels = random_label_path(graph, rng)
    for anchored in (False, True):
        query = LabelPathQuery(anchored=anchored, labels=tuple(labels))
        got = evaluate_on_data_graph(graph, query)
        want = enumerate_label_path_matches(graph, labels, anchored)
        assert got == want


@given(small_graphs(), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_regex_chain_agrees_with_label_path(graph, seed):
    rng = random.Random(seed)
    labels = random_label_path(graph, rng)
    chain = LabelPathQuery(anchored=False, labels=tuple(labels))
    got_chain = evaluate_on_data_graph(graph, chain)
    # a//b desugars to a._*.b, whose language contains a.b — so its
    # result must be a superset of the plain chain's.
    if len(labels) > 1:
        regex = make_query("//" + "//".join(labels))
        got_regex = evaluate_on_data_graph(graph, regex)
        assert got_chain <= got_regex
