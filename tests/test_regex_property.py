"""Cross-cutting property: regex queries are exact on every index.

Random regular path expressions (from the NFA test strategy) evaluated
over random graphs through random indexes must always equal the
data-graph answer — the validation machinery and the finite-language
soundness shortcut may change *cost*, never *answers*.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import small_graphs
from repro.core.construction import build_dk_index
from repro.indexes.akindex import build_ak_index
from repro.indexes.evaluation import evaluate_on_index
from repro.indexes.oneindex import build_1index
from repro.paths.cost import CostCounter
from repro.paths.evaluator import evaluate_on_data_graph
from repro.paths.query import RegexQuery
from test_nfa import path_exprs


@given(
    small_graphs(max_nodes=8),
    path_exprs(),
    st.integers(0, 2),
    st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_regex_exact_on_ak_index(graph, expr, k, anchored):
    query = RegexQuery(anchored=anchored, expr=expr)
    index = build_ak_index(graph, k)
    want = evaluate_on_data_graph(graph, query)
    got = evaluate_on_index(index, query)
    assert got == want
    raw = evaluate_on_index(index, query, validate=False)
    assert want <= raw


@given(small_graphs(max_nodes=8), path_exprs(), st.booleans())
@settings(max_examples=100, deadline=None)
def test_regex_exact_on_1index(graph, expr, anchored):
    query = RegexQuery(anchored=anchored, expr=expr)
    index = build_1index(graph)
    assert evaluate_on_index(index, query) == evaluate_on_data_graph(
        graph, query
    )


@given(small_graphs(max_nodes=8), path_exprs())
@settings(max_examples=80, deadline=None)
def test_finite_regex_never_validates_on_1index(graph, expr):
    query = RegexQuery(anchored=False, expr=expr)
    index = build_1index(graph)
    counter = CostCounter()
    evaluate_on_index(index, query, counter)
    if expr.is_finite():
        assert counter.validated_queries == 0, "1-index must be sound"


@given(small_graphs(max_nodes=8), path_exprs(), st.integers(0, 10_000))
@settings(max_examples=100, deadline=None)
def test_regex_exact_on_dk_index(graph, expr, seed):
    import random

    rng = random.Random(seed)
    requirements = {
        graph.label_name(i): rng.randint(0, 2) for i in range(graph.num_labels)
    }
    index, _levels = build_dk_index(graph, requirements)
    query = RegexQuery(anchored=False, expr=expr)
    assert evaluate_on_index(index, query) == evaluate_on_data_graph(
        graph, query
    )
