"""Tests for the chaos suite (:mod:`repro.maintenance.chaos`).

The suite is itself the test of the maintenance stack; these tests pin
its headline guarantee (zero broken / unrepaired scenarios across the
whole operation x fault-point x mode matrix) and its reporting surface.
"""

import pytest

from repro.cli import main
from repro.maintenance.chaos import (
    ORACLE_QUERIES,
    POINTS_FOR_OP,
    UPDATE_CHAOS_MODES,
    run_chaos_suite,
)
from repro.maintenance.faults import FAULT_POINTS
from repro.maintenance.journal import UpdateJournal


@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_matrix_rolls_back_or_repairs(seed, tmp_path):
    report = run_chaos_suite(seed=seed, journal_dir=tmp_path)
    assert report.ok, report.format()
    counts = report.counts()
    assert counts.get("broken", 0) == 0
    assert counts.get("unrepaired", 0) == 0
    expected = sum(len(points) for points in POINTS_FOR_OP.values()) * len(
        UPDATE_CHAOS_MODES
    )
    assert len(report.outcomes) == expected
    # The matrix must actually exercise both recovery paths.
    assert counts.get("rolled-back", 0) > 0
    assert counts.get("repaired", 0) > 0


def test_chaos_writes_one_journal_per_scenario(tmp_path):
    run_chaos_suite(seed=0, journal_dir=tmp_path)
    journals = sorted(tmp_path.glob("*.jsonl"))
    assert journals
    # Every journal starts with a base snapshot and parses end to end.
    for path in journals[:5]:
        entries = list(UpdateJournal(path).entries())
        assert entries[0].type == "base"


def test_points_for_op_only_names_registered_points():
    for op, points in POINTS_FOR_OP.items():
        for point in points:
            assert point in FAULT_POINTS, (op, point)
        assert "pipeline.pre_audit" in points


def test_oracle_covers_multi_step_paths():
    assert any(query.count(".") >= 2 for query in ORACLE_QUERIES)


def test_cli_chaos(capsys):
    code = main(["chaos", "--seed", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert "scenarios" in out
