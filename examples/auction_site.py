#!/usr/bin/env python3
"""Auction site scenario: the paper's XMark experiment in miniature.

Generates an XMark-like auction-site graph, derives the 100-test-path
workload, and walks through the whole D(k)-index lifecycle the paper
evaluates:

1. build A(0)..A(4) and the query-load-tuned D(k) (Figure 4's points);
2. stream 100 random ID/IDREF edge additions through the D(k) updater
   (Table 1's protocol) and watch evaluation cost degrade (Figure 6);
3. run the promoting process to recover performance (the experiment the
   paper defers to its full version).

Run:  python examples/auction_site.py [scale]
"""

import random
import sys
import time

from repro import DKIndex, build_ak_index
from repro.bench.harness import sample_reference_edges, workload_average_cost
from repro.datasets.xmark import generate_xmark
from repro.workload.generator import generate_test_paths
from repro.workload.mining import exact_requirements


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    document = generate_xmark(scale=scale, seed=0)
    graph = document.graph
    print(
        f"XMark-like graph at scale {scale}: "
        f"{graph.num_nodes} nodes, {graph.num_edges} edges"
    )

    load = generate_test_paths(graph, seed=1)
    requirements = exact_requirements(load)
    print(
        f"workload: {load.total_weight} queries, "
        f"{load.num_distinct} distinct; "
        f"requirements cover {len(requirements)} labels"
    )

    print(f"\n--- before updates (Figure 4) ---")
    print(f"{'index':<6} {'size':>7} {'avg cost':>9} {'validated':>10}")
    for k in range(5):
        ak = build_ak_index(graph, k)
        cost, validated = workload_average_cost(ak, load)
        print(f"A({k})  {ak.num_nodes:>7} {cost:>9.1f} {validated:>10.2f}")
    dk = DKIndex.build(graph.copy(), requirements)
    cost, validated = workload_average_cost(dk.index, load)
    print(f"D(k)  {dk.size:>7} {cost:>9.1f} {validated:>10.2f}")

    print(f"\n--- 100 edge additions (Table 1 protocol) ---")
    edges = sample_reference_edges(
        dk.graph, document.reference_pairs, 100, random.Random(42)
    )
    started = time.perf_counter()
    for src, dst in edges:
        dk.add_edge(src, dst)
    elapsed = (time.perf_counter() - started) * 1000
    cost, validated = workload_average_cost(dk.index, load)
    print(
        f"D(k) applied {len(edges)} updates in {elapsed:.1f} ms; "
        f"size still {dk.size}, avg cost now {cost:.1f} "
        f"({validated:.0%} of queries validate)"
    )

    print(f"\n--- promoting (deferred 'full version' experiment) ---")
    started = time.perf_counter()
    report = dk.promote()
    elapsed = (time.perf_counter() - started) * 1000
    cost, validated = workload_average_cost(dk.index, load)
    print(
        f"promotion took {elapsed:.1f} ms "
        f"({report.index_nodes_split} splits, {report.rounds} rounds); "
        f"size {dk.size}, avg cost {cost:.1f} "
        f"({validated:.0%} validate)"
    )
    dk.check_invariants()
    print("\ninvariants verified; done.")


if __name__ == "__main__":
    main()
