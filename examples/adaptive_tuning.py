#!/usr/bin/env python3
"""Adaptive tuning under query-load drift — the D(k)-index's raison d'être.

Simulates a NASA-like archive whose query pattern shifts over time:

- phase 1: shallow browsing ("dataset.title", "author.lastName");
- phase 2: deep provenance queries arrive
  ("dataset.history.revisions.revision.author");
- phase 3: the deep queries disappear again.

A static A(k)-index must either carry k=4 forever (big) or validate the
deep queries forever (slow).  The :class:`AdaptiveTuner` watches the
stream and promotes/demotes the D(k)-index as the pattern shifts — the
automated version of Sections 5.3/5.4.

Run:  python examples/adaptive_tuning.py
"""

from repro import DKIndex, make_query
from repro.core.tuner import AdaptiveTuner, TunerConfig
from repro.datasets.nasa import generate_nasa
from repro.paths.cost import CostCounter

PHASES = {
    "shallow browsing": [
        "dataset.title",
        "author.lastName",
        "keywords.keyword",
        "journal.title",
    ],
    "deep provenance": [
        "dataset.history.revisions.revision.author",
        "history.revisions.revision.date.year",
        "dataset.reference.source.other.title",
        "dataset.title",
    ],
    "shallow again": [
        "dataset.title",
        "author.lastName",
        "journal.date.year",
    ],
}

QUERIES_PER_PHASE = 120


def main() -> None:
    graph = generate_nasa(scale=0.4, seed=0).graph
    print(f"NASA-like graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    dk = DKIndex.build(graph, {})  # start untuned (label-split)
    tuner = AdaptiveTuner(
        dk,
        TunerConfig(window=QUERIES_PER_PHASE, check_every=20, demote_slack=2),
    )

    print(f"\n{'phase':<18} {'avg cost':>9} {'validated':>10} "
          f"{'index size':>11} {'tunings':>8}")
    for phase_name, texts in PHASES.items():
        queries = [make_query(t) for t in texts]
        total_cost = 0
        validated = 0
        tunings = 0
        for i in range(QUERIES_PER_PHASE):
            query = queries[i % len(queries)]
            counter = CostCounter()
            dk.evaluate(query, counter)
            total_cost += counter.total
            validated += counter.validated_queries
            if tuner.observe(query):
                tunings += 1
        print(
            f"{phase_name:<18} {total_cost / QUERIES_PER_PHASE:>9.1f} "
            f"{validated / QUERIES_PER_PHASE:>10.2f} {dk.size:>11} "
            f"{tunings:>8}"
        )

    print("\ntuning actions taken:")
    for action in tuner.actions:
        parts = []
        if action.promoted:
            parts.append(f"promoted {sorted(action.promoted)}")
        if action.demoted:
            parts.append(f"demoted {sorted(action.demoted)}")
        print(
            f"  {', '.join(parts)} "
            f"(size {action.index_size_before} -> {action.index_size_after})"
        )
    dk.check_invariants()
    print("\ninvariants verified; done.")


if __name__ == "__main__":
    main()
