#!/usr/bin/env python3
"""A self-tuning document store, end to end, via the Database facade.

Everything the library offers through one object: bulk-load documents,
mix linear and branching queries, add references, watch the adaptive
tuner react to the query pattern, persist and restore.

Run:  python examples/self_tuning_store.py
"""

import io
import random

from repro import Database, TunerConfig
from repro.datasets.xmark import generate_xmark

DOCUMENTS = [
    """
    <orders>
      <order id="o1"><item>widget</item>
        <customer><name>Ada</name><city>London</city></customer></order>
      <order id="o2"><item>sprocket</item>
        <customer><name>Grace</name></customer></order>
    </orders>
    """,
    """
    <orders>
      <order id="o3"><item>cog</item>
        <customer><name>Edsger</name><city>Austin</city></customer>
        <relates/></order>
    </orders>
    """,
]


def main() -> None:
    db = Database(
        tuner_config=TunerConfig(window=60, min_queries=8, check_every=8)
    )
    for xml in DOCUMENTS:
        db.insert_document(xml)
    print(db)

    # Cross-document references cannot resolve at parse time (IDs are
    # per document); wire them through the update algorithm instead.
    relates = db.graph.nodes_with_label("relates")[0]
    first_order = db.graph.nodes_with_label("order")[0]
    db.add_reference(relates, first_order)

    print("\nlinear and branching queries:")
    for expression in (
        "order.item",                      # linear
        "order[customer/city]/item",       # twig: only orders with a city
        "order.relates.order.item",        # through the reference edge
    ):
        result = db.query(expression)
        print(f"  {expression:<30} -> {sorted(db.labels_of(result))}")

    print("\nhammer one deep query so the tuner promotes for it:")
    deep = "orders.order.customer.name"
    for _ in range(24):
        db.query(deep)
    print(f"  requirements learned: {db.index.requirements}")
    print(f"  {db.statistics.format()}")

    print("\npersist + restore:")
    buffer = io.StringIO()
    db.save(buffer)
    buffer.seek(0)
    restored = Database.load(buffer)
    restored.check()
    assert restored.query(deep) == db.query(deep)
    print(f"  restored {restored!r}")

    print("\nbulk scenario on an XMark graph:")
    big = Database(
        graph=generate_xmark(scale=0.2, seed=0).graph,
        tuner_config=TunerConfig(window=100, min_queries=10, check_every=10),
    )
    rng = random.Random(7)
    expressions = [
        "item.name",
        "person.name",
        "open_auction.bidder.increase",
        "closed_auction.annotation.happiness",
        "item[incategory]/name",
    ]
    for _ in range(150):
        big.query(rng.choice(expressions))
    big.check()
    print(f"  {big!r}")
    print(f"  {big.statistics.format()}")


if __name__ == "__main__":
    main()
