#!/usr/bin/env python3
"""Quickstart: index the paper's movie database and run path queries.

Builds the Figure 1 style movie graph from XML (ID/IDREF references make
it a graph, not a tree), constructs a D(k)-index tuned for the queries
we intend to run, and evaluates them — showing the cost difference
against a naive data-graph scan and against A(k) baselines.

Run:  python examples/quickstart.py
"""

from repro import DKIndex, build_ak_index, make_query, parse_xml
from repro.indexes.evaluation import evaluate_on_index
from repro.paths.cost import CostCounter
from repro.paths.evaluator import evaluate_on_data_graph

MOVIE_XML = """
<movieDB>
  <director id="d1">
    <name>Mann</name>
    <movie id="m1"><title>Heat</title><year>1995</year></movie>
  </director>
  <director id="d2">
    <name>Scott</name>
    <movie id="m2"><title>Alien</title><year>1979</year></movie>
  </director>
  <actor id="a1"><name>De Niro</name><acted idrefs="m1"/></actor>
  <actor id="a2"><name>Pacino</name><acted idrefs="m1 m2"/></actor>
</movieDB>
"""

QUERIES = [
    "director.movie.title",          # titles of directed movies
    "actor.acted.movie.title",       # titles through acting references
    "movieDB._?.movie",              # the paper's optional-wildcard form
    "//name",                        # every name, wherever it occurs
]


def main() -> None:
    graph = parse_xml(MOVIE_XML)
    print(f"data graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # Tune the index for the query load: mine per-label requirements.
    queries = [make_query(text) for text in QUERIES]
    dk = DKIndex.from_query_load(graph, queries)
    print(f"D(k)-index: {dk.size} index nodes, requirements {dk.requirements}")
    dk.check_invariants()

    print(f"\n{'query':<28} {'matches':>8} {'D(k) cost':>10} {'scan cost':>10}")
    for query in queries:
        dk_counter = CostCounter()
        result = dk.evaluate(query, dk_counter)
        scan_counter = CostCounter()
        truth = evaluate_on_data_graph(graph, query, scan_counter)
        assert result == truth, "index answer must equal the data answer"
        print(
            f"{query.to_text():<28} {len(result):>8} "
            f"{dk_counter.total:>10} {scan_counter.total:>10}"
        )

    # Against the uniform-k baseline family.
    print(f"\n{'index':<8} {'size':>6} {'total cost over the 4 queries':>32}")
    for k in range(3):
        ak = build_ak_index(graph, k)
        total = 0
        for query in queries:
            counter = CostCounter()
            evaluate_on_index(ak, query, counter)
            total += counter.total
        print(f"A({k})    {ak.num_nodes:>6} {total:>32}")
    total = 0
    for query in queries:
        counter = CostCounter()
        dk.evaluate(query, counter)
        total += counter.total
    print(f"D(k)    {dk.size:>6} {total:>32}")


if __name__ == "__main__":
    main()
