#!/usr/bin/env python3
"""A tiny document store: incremental inserts + persistence.

Shows the D(k)-index as the index of a growing document collection:

1. start with one XML document;
2. insert more documents *incrementally* with Algorithm 3 (subgraph
   addition) — no from-scratch rebuild, and verify the result matches a
   rebuild anyway (Theorem 2);
3. persist the data graph to JSON and reload it;
4. answer path queries across all documents.

Run:  python examples/document_store.py
"""

import io
import time

from repro import DKIndex, make_query, parse_xml
from repro.core.construction import build_dk_index
from repro.graph.serialize import load_graph, save_graph
from repro.paths.evaluator import evaluate_on_data_graph

LIBRARY_DOCS = [
    """
    <library>
      <book id="b1"><title>TAOCP</title>
        <author><name>Knuth</name></author>
        <cites idrefs="b1"/></book>
      <book id="b2"><title>SICP</title>
        <author><name>Abelson</name></author>
        <author><name>Sussman</name></author>
        <cites idrefs="b1"/></book>
    </library>
    """,
    """
    <library>
      <book id="b3"><title>Dragon Book</title>
        <author><name>Aho</name></author></book>
      <journal id="j1"><title>CACM</title>
        <article><title>GoTo Considered Harmful</title>
          <author><name>Dijkstra</name></author></article></journal>
    </library>
    """,
    """
    <library>
      <journal id="j2"><title>TODS</title>
        <article><title>A Relational Model</title>
          <author><name>Codd</name></author></article></journal>
    </library>
    """,
]

REQUIREMENTS = {"title": 2, "name": 2}


def main() -> None:
    store = DKIndex.build(parse_xml(LIBRARY_DOCS[0]), REQUIREMENTS)
    print(
        f"initial document: {store.graph.num_nodes} data nodes, "
        f"index size {store.size}"
    )

    for number, xml in enumerate(LIBRARY_DOCS[1:], start=2):
        document = parse_xml(xml)
        started = time.perf_counter()
        store.add_subgraph(document)
        elapsed = (time.perf_counter() - started) * 1000
        print(
            f"inserted document {number} "
            f"({document.num_nodes - 1} nodes) in {elapsed:.2f} ms; "
            f"store now {store.graph.num_nodes} nodes, index {store.size}"
        )
    store.check_invariants()

    # Theorem 2: the incremental index equals the from-scratch rebuild.
    rebuilt, _ = build_dk_index(store.graph, REQUIREMENTS)
    assert store.index.to_partition() == rebuilt.to_partition()
    print("incremental index matches a from-scratch rebuild (Theorem 2)")

    # Persist and reload.
    buffer = io.StringIO()
    save_graph(store.graph, buffer)
    buffer.seek(0)
    reloaded = load_graph(buffer)
    store2 = DKIndex.build(reloaded, REQUIREMENTS)
    print(f"persisted {len(buffer.getvalue())} bytes of JSON and reloaded")

    print("\nqueries across all documents:")
    for text in (
        "book.title",
        "article.author.name",
        "//journal.article.title",
        "book.cites.book.title",
    ):
        query = make_query(text)
        result = store2.evaluate(query)
        truth = evaluate_on_data_graph(reloaded, query)
        assert result == truth
        labels = sorted(
            reloaded.label(node) for node in result
        )
        print(f"  {text:<28} -> {len(result)} matches ({set(labels) or '-'})")


if __name__ == "__main__":
    main()
