#!/usr/bin/env python3
"""Branching path (twig) queries with the F&B-index.

Linear-path summaries (1-index, A(k), D(k)) group nodes by *incoming*
structure only, so a predicate query like ``movie[actor]/title`` can
over-report on them: two movies reached by identical paths may differ
in whether they have an actor at all.  The F&B-index — the structure
the paper's conclusion points at — refines in both directions and
answers every twig exactly from the index graph.

This example demonstrates the failure mode and the fix, then sizes both
indexes on an XMark graph.

Run:  python examples/branching_queries.py
"""

from repro import parse_xml
from repro.datasets.xmark import generate_xmark
from repro.graph.visualize import index_graph_to_dot
from repro.indexes.fbindex import build_fb_index, evaluate_twig_on_fb
from repro.indexes.oneindex import build_1index
from repro.paths.cost import CostCounter
from repro.paths.twig import evaluate_twig, parse_twig

CINEMA_XML = """
<db>
  <movie><title>Heat</title><actor>De Niro</actor></movie>
  <movie><title>Koyaanisqatsi</title></movie>
</db>
"""


def main() -> None:
    graph = parse_xml(CINEMA_XML)
    query = parse_twig("movie[actor]/title")
    exact = evaluate_twig(graph, query)
    print(f"query {query.to_text()!r}")
    print(f"  exact answer: {sorted(exact)} "
          f"({[graph.label(n) for n in sorted(exact)]})")

    one = build_1index(graph)
    naive = evaluate_twig_on_fb(one, query)  # same machinery, wrong index
    print(f"  1-index quotient answer: {sorted(naive)}  "
          f"<- over-reports: both movies share one extent")

    fb = build_fb_index(graph)
    print(f"  F&B-index answer: {sorted(evaluate_twig_on_fb(fb, query))}  "
          f"<- exact, no validation")
    print(f"  sizes: 1-index {one.num_nodes} nodes, F&B {fb.num_nodes} nodes")

    print("\nF&B index graph as DOT (render with `dot -Tsvg`):")
    print(index_graph_to_dot(fb))

    print("\n--- at XMark scale ---")
    doc = generate_xmark(scale=0.3, seed=0)
    big = doc.graph
    fb_big = build_fb_index(big)
    one_big = build_1index(big)
    print(
        f"data {big.num_nodes} nodes | 1-index {one_big.num_nodes} | "
        f"F&B {fb_big.num_nodes}  (branching coverage costs size)"
    )
    for text in (
        "item[incategory]/name",
        "open_auction[bidder/increase]/itemref",
        "person[address/city][phone]/name",
    ):
        twig = parse_twig(text)
        counter = CostCounter()
        answer = evaluate_twig_on_fb(fb_big, twig, counter)
        truth = evaluate_twig(big, twig)
        assert answer == truth
        print(
            f"  {text:<42} {len(answer):>5} matches, "
            f"{counter.index_nodes_visited} index nodes visited"
        )


if __name__ == "__main__":
    main()
