# Convenience targets; everything is plain pytest / python underneath.

PYTHON ?= python

.PHONY: install test bench bench-full results examples clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=1.0 $(PYTHON) -m pytest benchmarks/ --benchmark-only

results:
	$(PYTHON) -m repro bench all --scale 1.0 | tee docs/results-scale-1.0.txt

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
