# Convenience targets; everything is plain pytest / python underneath.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: help install test lint lint-deep typecheck bench bench-full bench-scale bench-outofcore chaos results examples clean

help:
	@echo "Targets:"
	@echo "  install    editable install (pip install -e .)"
	@echo "  test       run the test suite (PYTHONPATH=src)"
	@echo "  lint       run the repro.analysis invariant linter over src/ and tests/"
	@echo "  lint-deep  per-file linter plus the interprocedural pass"
	@echo "             (DK109-DK112); refreshes analysis-effects.json"
	@echo "  typecheck  run mypy (strict on repro.core/indexes/partition/analysis)"
	@echo "  bench      quick benchmark pass (PYTHONPATH=src)"
	@echo "  bench-full full-scale benchmark pass"
	@echo "  bench-scale refinement engines over the small,medium scale"
	@echo "             axis; refreshes the committed BENCH_refinement.json"
	@echo "  bench-outofcore external engine vs in-memory columnar under a"
	@echo "             25% pool budget; refreshes BENCH_outofcore.json"
	@echo "  chaos      run both chaos suites: update faults + the"
	@echo "             checkpoint-store durability crash matrix (seed 0)"
	@echo "  results    regenerate docs/results-scale-1.0.txt"
	@echo "  examples   run every example script"
	@echo "  clean      remove caches and build artifacts"

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m repro lint src tests

lint-deep: lint
	$(PYTHON) -m repro lint src --deep --effects-out analysis-effects.json

typecheck:
	$(PYTHON) -m mypy src/repro

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=1.0 $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-scale:
	$(PYTHON) -m repro bench refine --scale small,medium --repeats 3 \
		--out BENCH_refinement.json

bench-outofcore:
	$(PYTHON) -m repro bench outofcore --scale medium --budget-ratio 0.25 \
		--out BENCH_outofcore.json

chaos:
	$(PYTHON) -m repro chaos --seed 0

results:
	$(PYTHON) -m repro bench all --scale 1.0 | tee docs/results-scale-1.0.txt

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
