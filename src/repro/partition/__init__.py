"""Partition-refinement engine.

Bisimulation partitions are the mathematical core of every index in this
library (Section 3, Definitions 1 and 2 of the paper).  This subpackage
provides:

- :class:`~repro.partition.blocks.Partition` — an immutable-ish node
  partition with dense block ids;
- :func:`~repro.partition.refinement.label_partition` — 0-bisimulation
  (label split);
- :func:`~repro.partition.refinement.kbisim_partition` — uniform
  k-bisimulation (the A(k)-index equivalence);
- :func:`~repro.partition.refinement.bisim_partition` — the full
  bisimulation fixpoint (the 1-index equivalence);
- :func:`~repro.partition.refinement.leveled_partition` — per-node freeze
  levels, the generalisation the D(k)-index construction (Algorithm 2)
  needs;
- :class:`~repro.partition.engine.RefinementEngine` — the worklist-driven
  engine behind all three (interned signatures, dirty-block propagation,
  optional parallel hashing); ``engine="legacy"`` on the functions above
  selects the full-rehash reference implementation instead;
- :class:`~repro.partition.columnar.ColumnarEngine` — the batch engine
  over frozen CSR buffers (``engine="columnar"``): in-place flat block
  array, contiguous signature sweeps, optional numpy vectorisation and a
  shared-memory fork pool for parallel hashing;
- :class:`~repro.partition.external.ExternalEngine` — the out-of-core
  engine (``engine="external"``): the columnar round loop over a paged
  CSR snapshot behind a byte-budgeted LRU pool, with page-ordered
  signature sweeps spilling sorted runs to disk.
"""

from repro.partition.blocks import Partition
from repro.partition.columnar import ColumnarEngine
from repro.partition.engine import RefinementEngine, resolve_jobs
from repro.partition.external import ExternalEngine
from repro.partition.refinement import (
    bisim_partition,
    kbisim_partition,
    label_partition,
    leveled_partition,
    resolve_engine,
)

__all__ = [
    "ColumnarEngine",
    "ExternalEngine",
    "Partition",
    "RefinementEngine",
    "bisim_partition",
    "kbisim_partition",
    "label_partition",
    "leveled_partition",
    "resolve_engine",
    "resolve_jobs",
]
