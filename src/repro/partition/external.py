"""Out-of-core refinement over a paged CSR snapshot (fourth engine).

:class:`ExternalEngine` is the :class:`ColumnarEngine` round loop —
candidate selection, freeze buckets, largest-group-keeps-its-id splits,
all inherited *verbatim*, which is what makes it partition-identical
round for round — re-based onto a :class:`~repro.storage.paged.
PagedCSRGraph` whose buffers live behind an LRU pool instead of in
memory.  The memory model is the semi-external one of I/O-efficient
bisimulation construction (Luo et al.; see PAPERS.md): node-sized state
(the live ``block_of`` assignment and the block member lists) stays
resident, while everything edge-sized — parent/child offsets and
targets — is read through pages under a byte budget.

Only the signature sweep is replaced.  The columnar engine hashes the
round's batch in job order (frozen-bucket order), which over paged
buffers would be a random-access storm; this engine instead visits the
batch in **ascending node order**, so the parent-offset and
parent-target reads advance monotonically through the pages — one miss
per page even under a one-page budget.  Each computed key is recorded
against its batch position in a :class:`~repro.storage.spill.
SpillRuns` reorder buffer that spills sorted runs to disk when the
round's working set exceeds its budget; a k-way merge then hands the
keys back in exactly the batch order the inherited round logic expects.
The key *values* (``-1`` sentinel, single block id as a plain ``int``,
sorted dedup tuple otherwise) are bit-identical to the in-memory
sweeps, so the grouping — and therefore the partition — is too.

The shared-memory fork pool is never engaged: page-ordered sequential
sweeps are the whole point, and forking workers that each fault pages
through one pool would destroy that locality.
"""

from __future__ import annotations

import tempfile
from array import array
from pathlib import Path
from types import TracebackType
from typing import Any

from repro.graph.columnar import BUFFER_TYPECODE, CSRGraph
from repro.partition.columnar import _EMPTY_KEY, ColumnarEngine
from repro.storage.paged import PagedCSRGraph, PoolStats
from repro.storage.spill import SpillRuns, resolve_spill_budget

#: One-element encoded payload for the parentless sentinel key.
_EMPTY_PAYLOAD = array(BUFFER_TYPECODE, [_EMPTY_KEY]).tobytes()


class ExternalEngine(ColumnarEngine):
    """Batch refinement whose adjacency lives in a paged store.

    Args:
        graph: a :class:`PagedCSRGraph` (used as-is, left open on
            :meth:`close`), or any graph the columnar engine accepts —
            it is frozen once and *paged out to a temporary store*,
            owned and deleted by this engine, so refinement itself runs
            with a bounded resident set either way.
        budget_bytes: LRU pool budget for an engine-owned store
            (``None`` reads ``DKINDEX_POOL_BUDGET``); ignored when a
            paged graph is passed in, which brings its own pool.
        page_bytes: page size for an engine-owned store (``None`` reads
            ``DKINDEX_PAGE_BYTES``); ignored for a passed-in store.
        spill_bytes: in-memory working-set cap per signature sweep
            before ``(position, key)`` runs spill to disk (``None``
            reads ``DKINDEX_SPILL_BUDGET``).

    The driver surface (``run_kbisim`` / ``run_fixpoint`` /
    ``run_leveled`` / ``refine_rounds``) is inherited unchanged.
    """

    def __init__(
        self,
        graph: Any,
        *,
        budget_bytes: int | None = None,
        page_bytes: int | None = None,
        spill_bytes: int | None = None,
    ) -> None:
        self._tempdir: tempfile.TemporaryDirectory[str] | None = None
        self._owns_store = False
        if isinstance(graph, PagedCSRGraph):
            paged = graph
        else:
            self._tempdir = tempfile.TemporaryDirectory(
                prefix="dkindex-external-"
            )
            paged = PagedCSRGraph.create(
                Path(self._tempdir.name) / "store",
                graph,
                page_bytes=page_bytes,
                budget_bytes=budget_bytes,
            )
            self._owns_store = True
        self.paged = paged
        self._spill_bytes = resolve_spill_budget(spill_bytes)
        self._spills = 0
        self._bind(paged, jobs=1)
        # Belt and braces: jobs=1 already bypasses the fork pool, but a
        # paged snapshot must never be mapped into shared memory.
        self._parallel_failed = True

    # ------------------------------------------------------------------
    # The page-ordered signature sweep
    # ------------------------------------------------------------------

    def _signature_keys(
        self, hash_nodes: list[int]
    ) -> list["int | tuple[int, ...]"]:
        """Keys for the batch, computed node-ascending, returned batch-order.

        Sorting the batch by node id turns the parent reads into a
        monotone sweep over the offset and target pages; the spill
        buffer restores batch order afterwards.  Key values match the
        inherited scalar sweep exactly.
        """
        store = self.paged.store
        block_of = self._block_of
        order = sorted(
            range(len(hash_nodes)), key=hash_nodes.__getitem__
        )
        out: list[int | tuple[int, ...]] = [_EMPTY_KEY] * len(hash_nodes)
        # Spill retries/give-ups land in the same PoolStats the page
        # I/O uses, so one counter pair prices the whole fault story.
        with SpillRuns(
            budget_bytes=self._spill_bytes,
            stats=store.stats,
            retry=store.retry,
        ) as runs:
            for position in order:
                node = hash_nodes[position]
                start = store.read_element("parent_offsets", node)
                end = store.read_element("parent_offsets", node + 1)
                if end == start:
                    runs.add(position, _EMPTY_PAYLOAD)
                    continue
                targets = store.read_slice("parent_targets", start, end)
                if len(targets) == 1:
                    payload = array(
                        BUFFER_TYPECODE, [block_of[targets[0]]]
                    ).tobytes()
                else:
                    seen = {block_of[target] for target in targets}
                    payload = array(
                        BUFFER_TYPECODE, sorted(seen)
                    ).tobytes()
                runs.add(position, payload)
            self._spills += runs.runs_spilled
            for position, payload in runs.merged():
                values = array(BUFFER_TYPECODE)
                values.frombytes(payload)
                # One element is an int key (single shared block, or the
                # -1 sentinel); multi-element payloads are always the
                # sorted dedup of >= 2 distinct blocks, hence tuples —
                # identical to the in-memory key domain.
                out[position] = (
                    values[0] if len(values) == 1 else tuple(values)
                )
        return out

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    @property
    def stats(self) -> PoolStats:
        """The underlying pool's cumulative counters."""
        return self.paged.stats

    @property
    def spilled_runs(self) -> int:
        """Sorted signature runs spilled to disk across all rounds."""
        return self._spills

    def materialize(self) -> CSRGraph:
        """The snapshot as an in-memory :class:`CSRGraph` (for tests)."""
        return self.paged.to_csr()

    def close(self) -> None:
        """Release resources; delete the temp store if this engine owns it.

        A :class:`PagedCSRGraph` passed in by the caller is left open —
        they own its lifecycle.
        """
        super().close()
        if self._owns_store:
            self._owns_store = False
            self.paged.close(discard_dirty=True)
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
