"""Worklist-driven partition refinement (the high-performance engine).

The naive signature refinement in :mod:`repro.partition.refinement`
re-hashes *every* node in *every* round: each round allocates one
``frozenset`` of parent blocks per node even when nothing anywhere near
that node changed.  This module implements the three levers that make
k-bisimulation scale on large graphs (cf. Rau et al. 2022, "Computing
k-Bisimulations for Large Graphs", and Blume et al. 2021, "Time and
Memory Efficient Parallel Algorithm for Structural Graph Summaries"):

**Worklist propagation.**  A refinement round groups the members of each
block by the signature ``(own block, set of parent blocks)``.  Two
co-members can only separate in round ``r+1`` if some parent's block
assignment changed in round ``r`` — and because the largest group of a
split keeps its block id (see :meth:`Partition.split_blocks`), "changed"
means "was moved into a freshly created block".  So after each round
only the *children of moved nodes* are marked dirty, and a block is
re-processed only when it contains a dirty participating member (or when
freezing levels newly divide it, see below).  Clean blocks survive with
no rehash, sharing their member list with the next round's partition.

**Signature interning.**  Per-node ``frozenset`` allocation is replaced
by sorted-dedup parent-block tuples interned through a round-local
table, so grouping compares small integers instead of hashing sets, and
the single-parent fast path (the overwhelming majority of nodes in
document-shaped graphs) allocates one 1-tuple.

**Parallel signature hashing.**  Signature computation is
embarrassingly parallel across the dirty node set.  With ``jobs > 1``
(or ``DKINDEX_JOBS`` set) the engine chunks the dirty nodes across a
``multiprocessing`` fork pool — processes, not threads, because this is
pure CPU-bound Python — and splices the per-chunk results back in node
order, which makes the parallel path bit-for-bit identical to the
serial one.  Small rounds (below :data:`PARALLEL_NODE_THRESHOLD`) and
platforms without ``fork`` fall back to the serial loop.

The engine is round-for-round partition-identical to the legacy
refinement (``tests/test_engine_equivalence.py`` verifies this per
round, per engine, on trees, DAGs with shared subtrees and cyclic
IDREF-style graphs).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Iterator, Protocol, Sequence

from repro.partition.blocks import Partition

#: Minimum number of to-be-hashed nodes in a round before the parallel
#: path is worth a fork; below it the serial loop is always faster.
PARALLEL_NODE_THRESHOLD = 2048

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV_VAR = "DKINDEX_JOBS"


class LabeledAdjacency(Protocol):
    """Anything with labels and parent adjacency (data or index graph)."""

    label_ids: Sequence[int]
    parents: Sequence[Sequence[int]]

    @property
    def num_nodes(self) -> int: ...


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a ``jobs`` argument against the ``DKINDEX_JOBS`` default.

    ``None`` reads the environment (unset/empty means serial); ``0`` and
    ``1`` mean serial; negative values mean "one per CPU".

    Raises:
        ValueError: if ``DKINDEX_JOBS`` is set to a non-integer.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if jobs < 0:
        return os.cpu_count() or 1
    return max(1, jobs)


# ----------------------------------------------------------------------
# Parallel worker plumbing.
#
# The pool is created with the "fork" start method once per round, after
# the round's inputs have been stored in module globals: the child
# processes inherit them copy-on-write, so neither the (large, static)
# parent adjacency nor the per-round block assignment is ever pickled.
# ----------------------------------------------------------------------

_WORKER_PARENTS: Sequence[Sequence[int]] | None = None
_WORKER_BLOCK_OF: list[int] | None = None
_WORKER_NODES: list[int] | None = None

#: The empty signature (root-like nodes with no parents), shared.
_EMPTY_SIG: tuple[int, ...] = ()


def _signature_chunk(bounds: tuple[int, int]) -> list[tuple[int, ...]]:
    """Signatures for one contiguous chunk of the round's node list."""
    parents = _WORKER_PARENTS
    block_of = _WORKER_BLOCK_OF
    nodes = _WORKER_NODES
    assert parents is not None and block_of is not None and nodes is not None
    out: list[tuple[int, ...]] = []
    start, end = bounds
    for position in range(start, end):
        node = nodes[position]
        node_parents = parents[node]
        if not node_parents:
            out.append(_EMPTY_SIG)
        elif len(node_parents) == 1:
            out.append((block_of[next(iter(node_parents))],))
        else:
            out.append(tuple(sorted({block_of[p] for p in node_parents})))
    return out


class RefinementEngine:
    """Worklist-driven signature refinement over one graph.

    One engine instance serves one refinement run (the worklist state is
    re-initialised by every call to :meth:`refine_rounds`); construct it
    cheaply and throw it away.

    Args:
        graph: the data or index graph to refine.
        jobs: worker processes for signature hashing — ``None`` reads
            ``DKINDEX_JOBS``, ``<= 1`` is serial (the default).
    """

    def __init__(self, graph: LabeledAdjacency, jobs: int | None = None) -> None:
        self.graph = graph
        self.jobs = resolve_jobs(jobs)
        self._parents = graph.parents
        self._num_nodes = graph.num_nodes
        self._children: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # Drivers (mirror the legacy public functions exactly)
    # ------------------------------------------------------------------

    def initial_partition(self) -> Partition:
        """The 0-bisimulation (label) partition the rounds start from."""
        return Partition.from_keys(list(self.graph.label_ids))

    def run_kbisim(self, k: int) -> Partition:
        """The k-bisimulation partition (A(k) equivalence).

        Raises:
            ValueError: if ``k`` is negative.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        partition = self.initial_partition()
        for partition in self.refine_rounds(max_rounds=k):
            pass
        return partition

    def run_fixpoint(self) -> tuple[Partition, int]:
        """The full-bisimulation fixpoint (1-index equivalence).

        Returns ``(partition, rounds)``; ``rounds`` counts the rounds
        that changed the partition (the graph's bisimulation depth).
        """
        partition = self.initial_partition()
        rounds = 0
        for partition in self.refine_rounds():
            rounds += 1
        return partition, rounds

    def run_leveled(self, node_levels: Sequence[int]) -> Partition:
        """Per-node bounded bisimulation (the D(k) construction core).

        Raises:
            ValueError: if ``node_levels`` has the wrong length or any
                negative entry.
        """
        if len(node_levels) != self._num_nodes:
            raise ValueError(
                f"node_levels has {len(node_levels)} entries for "
                f"{self._num_nodes} nodes"
            )
        if any(level < 0 for level in node_levels):
            raise ValueError("node levels must be non-negative")
        partition = self.initial_partition()
        for partition in self.refine_rounds(node_levels=node_levels):
            pass
        return partition

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------

    def refine_rounds(
        self,
        node_levels: Sequence[int] | None = None,
        max_rounds: int | None = None,
    ) -> Iterator[Partition]:
        """Yield the partition after every *changing* round.

        Starts from the label partition; stops at the first round that
        changes nothing (the legacy fixpoint test), after ``max_rounds``
        rounds, or — with ``node_levels`` — after round
        ``max(node_levels)``, whichever comes first.  In round ``r``
        only nodes with ``node_levels[node] >= r`` participate; the
        others are frozen exactly as in the legacy
        :func:`~repro.partition.refinement.refine_once`.
        """
        partition = self.initial_partition()
        limit = max_rounds
        freeze_round_of: dict[int, list[int]] = {}
        if node_levels is not None:
            level_cap = max(node_levels, default=0)
            limit = level_cap if limit is None else min(limit, level_cap)
            for node, level in enumerate(node_levels):
                freeze_round_of.setdefault(level + 1, []).append(node)

        # Round 1 considers every block; later rounds only dirty ones.
        dirty: set[int] = set(range(self._num_nodes))
        round_number = 0
        while limit is None or round_number < limit:
            round_number += 1
            replacements, moved = self._refine_round(
                partition, dirty, node_levels, round_number, freeze_round_of
            )
            if not replacements:
                return
            partition = partition.split_blocks(replacements)
            yield partition
            children = self._ensure_children()
            dirty = set()
            for group in moved:
                for node in group:
                    dirty.update(children[node])

    def _refine_round(
        self,
        partition: Partition,
        dirty: set[int],
        node_levels: Sequence[int] | None,
        round_number: int,
        freeze_round_of: dict[int, list[int]],
    ) -> tuple[dict[int, list[list[int]]], list[list[int]]]:
        """One round: split every block that can change.

        Returns ``(replacements, moved)`` — the per-block groups to
        apply via :meth:`Partition.split_blocks` and the groups whose
        members leave their old block id (the sources of next round's
        dirt).
        """
        block_of = partition.block_of
        blocks = partition.blocks

        # Candidate blocks: those holding a dirty *participating* node,
        # plus those holding a node whose level just expired (a block
        # with mixed participation must separate its frozen members even
        # if no signature changed — legacy freezing semantics).
        candidates: set[int] = set()
        if node_levels is None:
            for node in dirty:
                candidates.add(block_of[node])
        else:
            for node in dirty:
                if node_levels[node] >= round_number:
                    candidates.add(block_of[node])
            for node in freeze_round_of.get(round_number, ()):
                candidates.add(block_of[node])

        # Partition each candidate block into active/frozen members.
        split_jobs: list[tuple[int, list[int], list[int]]] = []
        hash_nodes: list[int] = []
        for block in sorted(candidates):
            members = blocks[block]
            frozen: list[int] = []
            if node_levels is None:
                active = members
            else:
                active = [m for m in members if node_levels[m] >= round_number]
                if not active:
                    continue  # fully frozen: survives untouched
                if len(active) != len(members):
                    frozen = [
                        m for m in members if node_levels[m] < round_number
                    ]
            if len(active) == 1 and not frozen:
                continue  # a lone active member cannot split
            split_jobs.append((block, active, frozen))
            hash_nodes.extend(active)

        if not split_jobs:
            return {}, []

        # Hash the active members (serial or chunked across processes),
        # then intern each signature tuple through a round-local table.
        signatures = self._signatures(hash_nodes, block_of)
        intern: dict[tuple[int, ...], int] = {}
        sig_of: dict[int, int] = {}
        for node, signature in zip(hash_nodes, signatures):
            sig_id = intern.get(signature)
            if sig_id is None:
                sig_id = len(intern)
                intern[signature] = sig_id
            sig_of[node] = sig_id

        # Regroup each block; the largest group keeps the old block id
        # (fewest assignment rewrites, Paige–Tarjan's smaller-half idea).
        replacements: dict[int, list[list[int]]] = {}
        moved: list[list[int]] = []
        for block, active, frozen in split_jobs:
            groups: dict[int, list[int]] = {}
            for member in active:
                groups.setdefault(sig_of[member], []).append(member)
            if len(groups) == 1 and not frozen:
                continue  # signatures agree and nothing froze: no change
            parts = list(groups.values())
            if frozen:
                parts.append(frozen)
            largest = max(range(len(parts)), key=lambda i: len(parts[i]))
            if largest != 0:
                parts[0], parts[largest] = parts[largest], parts[0]
            replacements[block] = parts
            moved.extend(parts[1:])
        return replacements, moved

    # ------------------------------------------------------------------
    # Signature hashing
    # ------------------------------------------------------------------

    def _signatures(
        self, nodes: list[int], block_of: list[int]
    ) -> list[tuple[int, ...]]:
        """Sorted-dedup parent-block tuples for ``nodes``, in order."""
        if self.jobs > 1 and len(nodes) >= PARALLEL_NODE_THRESHOLD:
            parallel = self._parallel_signatures(nodes, block_of)
            if parallel is not None:
                return parallel
        parents = self._parents
        out: list[tuple[int, ...]] = []
        for node in nodes:
            node_parents = parents[node]
            if not node_parents:
                out.append(_EMPTY_SIG)
            elif len(node_parents) == 1:
                out.append((block_of[next(iter(node_parents))],))
            else:
                out.append(tuple(sorted({block_of[p] for p in node_parents})))
        return out

    def _parallel_signatures(
        self, nodes: list[int], block_of: list[int]
    ) -> list[tuple[int, ...]] | None:
        """Fork a pool and hash ``nodes`` in chunks; None = fall back."""
        global _WORKER_PARENTS, _WORKER_BLOCK_OF, _WORKER_NODES
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            return None
        chunk = -(-len(nodes) // self.jobs)  # ceil division
        bounds = [
            (start, min(start + chunk, len(nodes)))
            for start in range(0, len(nodes), chunk)
        ]
        _WORKER_PARENTS = self._parents
        _WORKER_BLOCK_OF = block_of
        _WORKER_NODES = nodes
        try:
            with context.Pool(processes=min(self.jobs, len(bounds))) as pool:
                chunks = pool.map(_signature_chunk, bounds)
        except OSError:  # pragma: no cover - fork/pipe resource failure
            return None
        finally:
            _WORKER_PARENTS = None
            _WORKER_BLOCK_OF = None
            _WORKER_NODES = None
        return [signature for part in chunks for signature in part]

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def _ensure_children(self) -> list[list[int]]:
        """Forward adjacency (inverse of ``parents``), built lazily."""
        if self._children is None:
            children: list[list[int]] = [[] for _ in range(self._num_nodes)]
            parents = self._parents
            for node in range(self._num_nodes):
                for parent in parents[node]:
                    children[parent].append(node)
            self._children = children
        return self._children
