"""Paige–Tarjan partition refinement (O(m·log n) bisimulation).

Section 4.1 cites Paige & Tarjan's "Three Partition Refinement
Algorithms" (SIAM J. Comput. 1987) as the way to build the 1-index in
O(m·log n).  The signature-hashing fixpoint in
:mod:`repro.partition.refinement` computes the same partition in
O(d·m) for bisimulation depth d — usually faster in Python for
document-shaped data — but a faithful reproduction should carry the
real thing, so here it is: the *process the smaller half* algorithm.

The key invariant: maintain a coarse partition X (unions of blocks of
the current partition Q) such that Q is stable with respect to every
block of X.  Repeatedly pick a compound X-block S, split off its
smaller constituent B, and refine Q against both B and S∖B using only
the edges into B — the "smaller half" trick that gives each edge
O(log n) total work.

This module implements the standard three-way-split formulation:
splitting Q against splitter B and then against S∖B is equivalent to
partitioning each block by the pair

    (has an edge into B,  has an edge into S∖B)

and counts of edges into S make the second component computable from
counts into B alone (``count(u, S∖B) = count(u, S) − count(u, B)``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Protocol, Sequence

from repro.partition.blocks import Partition
from repro.partition.refinement import label_partition


class _LabeledAdjacency(Protocol):
    label_ids: Sequence[int]
    parents: Sequence[Sequence[int]]
    children: Sequence[Sequence[int]]

    @property
    def num_nodes(self) -> int: ...


def paige_tarjan_bisim(graph: _LabeledAdjacency) -> Partition:
    """Full (backward) bisimulation via Paige–Tarjan refinement.

    Computes the coarsest partition refining the label partition that is
    stable under the *parent* relation — i.e. the 1-index equivalence of
    Definition 1.  Produces exactly the same partition as
    :func:`repro.partition.refinement.bisim_partition` (the test suite
    asserts this on random graphs) with the better asymptotic bound.

    Note on orientation: stability here means every block has a uniform
    answer to "do I have a parent in splitter B?", so the refining edges
    run child → parent.
    """
    n = graph.num_nodes
    initial = label_partition(graph)

    # Q: the current partition as mutable member lists + block-of map.
    block_of = list(initial.block_of)
    blocks: list[set[int]] = [set(members) for members in initial.blocks]

    # X: the coarse partition; each X-block is a set of Q-block ids.
    # Initially one compound X-block holding everything (stability with
    # respect to the whole universe is trivial).
    x_blocks: list[set[int]] = [set(range(len(blocks)))]
    x_of_block: dict[int, int] = {b: 0 for b in range(len(blocks))}
    compound: list[int] = [0] if len(blocks) > 1 else []

    # count[u][x] = number of parents of u inside X-block x.  (The
    # refining relation is "has a parent in ...", so we count each
    # node's parent-side edges per X-block.)
    count: list[dict[int, int]] = [defaultdict(int) for _ in range(n)]
    for u in range(n):
        for p in graph.parents[u]:
            count[u][0] += 1

    def new_q_block(members: set[int], x_id: int) -> int:
        blocks.append(members)
        b = len(blocks) - 1
        x_of_block[b] = x_id
        x_blocks[x_id].add(b)
        for node in members:
            block_of[node] = b
        return b

    while compound:
        x_id = compound.pop()
        members_ids = x_blocks[x_id]
        if len(members_ids) <= 1:
            continue
        # Pick the smaller constituent as the splitter B.
        b_id = min(members_ids, key=lambda b: len(blocks[b]))
        splitter = blocks[b_id]

        # Move B into its own (simple) X-block.
        x_blocks[x_id].discard(b_id)
        new_x = len(x_blocks)
        x_blocks.append({b_id})
        x_of_block[b_id] = new_x
        if len(x_blocks[x_id]) > 1:
            compound.append(x_id)

        # Count parents-in-B per node with a parent in B; children of
        # splitter members are exactly the nodes that can be affected.
        in_b: dict[int, int] = defaultdict(int)
        affected: set[int] = set()
        for member in splitter:
            for child in graph.children[member]:
                in_b[child] += 1
                affected.add(child)

        # Maintain counts: count into the old compound S shrinks by the
        # edges now attributed to B.
        for u, edges_into_b in in_b.items():
            count[u][new_x] = edges_into_b
            count[u][x_id] -= edges_into_b
            if count[u][x_id] == 0:
                del count[u][x_id]

        # Three-way split of every affected Q-block by
        # (parent in B?, parent in S\B?).  Nodes not in `affected` have
        # no parent in B, so their blocks only need the B-side check —
        # but blocks containing no affected node cannot split at all.
        touched_blocks: set[int] = {block_of[u] for u in affected}
        for q_id in touched_blocks:
            groups: dict[tuple[bool, bool], set[int]] = defaultdict(set)
            for u in blocks[q_id]:
                has_b = count[u].get(new_x, 0) > 0
                has_rest = count[u].get(x_id, 0) > 0
                groups[(has_b, has_rest)].add(u)
            if len(groups) == 1:
                continue
            # Keep the largest group under the old id; spin off the rest.
            ordered = sorted(
                groups.items(), key=lambda item: (-len(item[1]), item[0])
            )
            keep_key, keep_members = ordered[0]
            blocks[q_id] = keep_members
            owner_x = x_of_block[q_id]
            was_simple = len(x_blocks[owner_x]) == 1
            for _key, members in ordered[1:]:
                new_q_block(members, owner_x)
            if was_simple and len(x_blocks[owner_x]) > 1:
                compound.append(owner_x)

    return Partition(_densify(block_of))


def _densify(block_of: list[int]) -> list[int]:
    """Renumber block ids densely in first-seen order."""
    table: dict[int, int] = {}
    result = []
    for block in block_of:
        dense = table.get(block)
        if dense is None:
            dense = len(table)
            table[block] = dense
        result.append(dense)
    return result
