"""Columnar batch refinement over frozen CSR buffers (third engine).

:class:`ColumnarEngine` exposes the same driver surface as the worklist
:class:`~repro.partition.engine.RefinementEngine` — ``run_kbisim`` /
``run_fixpoint`` / ``run_leveled`` / ``refine_rounds``, with identical
freeze-bucket semantics so D(k) leveled refinement stays exact — but
executes every round as a *batch sweep* over the flat buffers of a
:class:`~repro.graph.columnar.CSRGraph` snapshot:

**Flat state, updated in place.**  The node→block map is one ``array``
(``'q'``) mutated in place as blocks split (the largest group keeps its
block id, so only *moved* nodes are rewritten).  The worklist engine
pays an O(num_nodes) ``block_of`` copy per changing round through
``Partition.split_blocks``; this engine pays O(moved nodes).  A
:class:`~repro.partition.blocks.Partition` is materialised once, at the
end of the run (or per round only when :meth:`refine_rounds` snapshots
are requested).

**Contiguous signature sweep.**  Parent sets are contiguous CSR slices:
a single-parent node's signature is one flat-buffer read interned as a
plain ``int`` (no 1-tuple allocation, no tuple hashing), the empty
signature is the sentinel ``-1``, and only genuinely multi-block parent
sets — a small minority in document-shaped graphs — fall back to a
sorted dedup tuple.  With the optional ``fast`` extra installed
(``pip install .[fast]``), the zero/single-parent majority of each batch
is computed by vectorised numpy gathers over the same buffers without
copying them; the stdlib-``array`` path stands alone and produces
bit-identical keys.

**Shared-memory parallel hashing.**  With ``jobs > 1`` the engine maps
the parent CSR, the live ``block_of`` array and a per-round hash-node
scratch into ``multiprocessing.shared_memory`` segments, then forks one
pool *per run* (not per round): workers inherit the mapped segments, so
each round ships only ``(start, end)`` chunk bounds and receives
signature keys back — the adjacency is never pickled, and the parent's
in-place ``block_of`` writes are visible to the already-forked workers
through the shared mapping.  Workers only read the segments and return
results, which keeps them pure under the DK109 fork-safety rule.  The
parallel path is bit-for-bit identical to the serial one.

The engine is round-for-round partition-identical to both the worklist
and legacy engines (``tests/test_columnar_engine.py`` and the extended
``tests/test_engine_equivalence.py`` verify all drivers on trees,
shared-subtree DAGs and cyclic IDREF graphs).
"""

from __future__ import annotations

import importlib
import multiprocessing
import multiprocessing.pool
from array import array
from multiprocessing import shared_memory
from types import TracebackType
from typing import Any, Iterator, Sequence

from repro.graph.columnar import (
    BUFFER_TYPECODE,
    CSRBuffers,
    CSRGraph,
    csr_from_parent_adjacency,
)
from repro.partition.blocks import Partition
from repro.partition.engine import (
    PARALLEL_NODE_THRESHOLD,
    LabeledAdjacency,
    resolve_jobs,
)

_numpy: Any = None
try:  # pragma: no cover - exercised implicitly on numpy-less installs
    _numpy = importlib.import_module("numpy")
except ImportError:
    _numpy = None

#: Minimum hash-batch size before the vectorised numpy sweep pays for
#: its gather/array setup; below it the scalar loop is faster.
NUMPY_NODE_THRESHOLD = 256

#: Signature key of a parentless (root-like) node.  Block ids are >= 0,
#: so the sentinel can never collide with a single-parent key.
_EMPTY_KEY = -1

#: A per-node signature key: ``-1`` for no parents, the parent's block
#: id when all parents share one block, else the sorted dedup tuple.
SignatureKey = "int | tuple[int, ...]"

# ----------------------------------------------------------------------
# Shared-memory worker plumbing.
#
# The segments are created and filled by the parent, the module globals
# below are set, and only then is the fork pool created — the children
# inherit the *mapped* segments, so the parent's later in-place writes
# (block assignments each round, the hash-node scratch) are visible to
# them without re-forking and without pickling any buffer.  Workers
# read the views and return signature keys; they never write.
# ----------------------------------------------------------------------

_SHM_PARENT_OFFSETS: "memoryview | None" = None
_SHM_PARENT_TARGETS: "memoryview | None" = None
_SHM_BLOCK_OF: "memoryview | None" = None
_SHM_HASH_NODES: "memoryview | None" = None


def _columnar_signature_chunk(
    bounds: tuple[int, int],
) -> list["int | tuple[int, ...]"]:
    """Signature keys for one contiguous chunk of the round's batch."""
    po = _SHM_PARENT_OFFSETS
    pt = _SHM_PARENT_TARGETS
    block_of = _SHM_BLOCK_OF
    nodes = _SHM_HASH_NODES
    assert (
        po is not None
        and pt is not None
        and block_of is not None
        and nodes is not None
    )
    out: list[int | tuple[int, ...]] = []
    append = out.append
    for position in range(bounds[0], bounds[1]):
        node = nodes[position]
        start = po[node]
        end = po[node + 1]
        if end == start:
            append(_EMPTY_KEY)
        elif end == start + 1:
            append(block_of[pt[start]])
        else:
            seen = {block_of[pt[i]] for i in range(start, end)}
            if len(seen) == 1:
                append(next(iter(seen)))
            else:
                append(tuple(sorted(seen)))
    return out


class ColumnarEngine:
    """Batch refinement over a frozen columnar snapshot.

    One engine instance serves one refinement run (state is
    re-initialised by every driver call); construct it cheaply and
    throw it away, exactly like :class:`RefinementEngine`.

    Args:
        graph: a :class:`CSRGraph` snapshot, or any labeled-adjacency
            graph — ``DataGraph``/``IndexGraph`` are frozen via their
            ``freeze()`` (cached, refresh-on-mutate), anything else gets
            a one-off snapshot via :func:`csr_from_parent_adjacency`.
        jobs: worker processes for shared-memory signature hashing —
            ``None`` reads ``DKINDEX_JOBS``, ``<= 1`` is serial.
    """

    def __init__(
        self,
        graph: "LabeledAdjacency | CSRGraph",
        jobs: int | None = None,
    ) -> None:
        if isinstance(graph, CSRGraph):
            csr: CSRBuffers = graph
        else:
            freeze = getattr(graph, "freeze", None)
            if callable(freeze):
                csr = freeze()
            else:
                csr = csr_from_parent_adjacency(
                    list(graph.label_ids), list(graph.parents)
                )
        self._bind(csr, resolve_jobs(jobs))

    def _bind(self, csr: CSRBuffers, jobs: int) -> None:
        """Attach a snapshot and reset all engine state.

        Split out of ``__init__`` so subclasses that obtain their
        snapshot differently (the external engine pages it from disk)
        can share the state layout without re-freezing anything.
        """
        self.csr = csr
        self.jobs = jobs
        self._num_nodes = csr.num_nodes
        # Live refinement state (filled by _init_run).
        self._block_of: "array[int] | memoryview" = array(BUFFER_TYPECODE)
        self._blocks: list[list[int]] = []
        # Shared-memory run state (filled lazily by _ensure_parallel).
        self._pool: multiprocessing.pool.Pool | None = None
        self._segments: list[shared_memory.SharedMemory] = []
        self._views: list[memoryview] = []
        self._parallel_failed = False

    # ------------------------------------------------------------------
    # Drivers (mirror RefinementEngine exactly)
    # ------------------------------------------------------------------

    def initial_partition(self) -> Partition:
        """The 0-bisimulation (label) partition the rounds start from."""
        return Partition.from_keys(list(self.csr.label_ids))

    def run_kbisim(self, k: int) -> Partition:
        """The k-bisimulation partition (A(k) equivalence).

        Raises:
            ValueError: if ``k`` is negative.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        try:
            for _ in self._rounds_inplace(None, k):
                pass
            return self._take_partition()
        finally:
            self._release_parallel()

    def run_fixpoint(self) -> tuple[Partition, int]:
        """The full-bisimulation fixpoint (1-index equivalence).

        Returns ``(partition, rounds)``; ``rounds`` counts the rounds
        that changed the partition (the graph's bisimulation depth).
        """
        rounds = 0
        try:
            for _ in self._rounds_inplace(None, None):
                rounds += 1
            return self._take_partition(), rounds
        finally:
            self._release_parallel()

    def run_leveled(self, node_levels: Sequence[int]) -> Partition:
        """Per-node bounded bisimulation (the D(k) construction core).

        Raises:
            ValueError: if ``node_levels`` has the wrong length or any
                negative entry.
        """
        if len(node_levels) != self._num_nodes:
            raise ValueError(
                f"node_levels has {len(node_levels)} entries for "
                f"{self._num_nodes} nodes"
            )
        if any(level < 0 for level in node_levels):
            raise ValueError("node levels must be non-negative")
        try:
            for _ in self._rounds_inplace(node_levels, None):
                pass
            return self._take_partition()
        finally:
            self._release_parallel()

    def refine_rounds(
        self,
        node_levels: Sequence[int] | None = None,
        max_rounds: int | None = None,
    ) -> Iterator[Partition]:
        """Yield a partition snapshot after every *changing* round.

        Semantically identical to
        :meth:`RefinementEngine.refine_rounds`; snapshots copy the live
        flat state, so prefer the ``run_*`` drivers when only the final
        partition matters.
        """
        rounds = self._rounds_inplace(node_levels, max_rounds)
        try:
            for _ in rounds:
                yield self._snapshot()
        finally:
            # A consumer that abandons this generator mid-run (or whose
            # exception traceback keeps the suspended frame alive) must
            # not strand the shared-memory segments until whenever the
            # GC gets around to the inner generator: close it *now* and
            # release deterministically.  _release_parallel is
            # idempotent, so the inner finally running first is fine.
            rounds.close()
            self._release_parallel()

    def close(self) -> None:
        """Release every process/shared-memory resource (idempotent).

        The drivers already release on success *and* on error; call
        this (or use the engine as a context manager) as a final
        belt-and-braces when a run was abandoned from the outside —
        e.g. a ``refine_rounds`` consumer that stopped iterating.
        """
        self._release_parallel()

    def __enter__(self) -> "ColumnarEngine":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The in-place round loop
    # ------------------------------------------------------------------

    def _rounds_inplace(
        self,
        node_levels: Sequence[int] | None,
        max_rounds: int | None,
    ) -> Iterator[None]:
        """Run rounds in place, yielding once per changing round."""
        self._init_run()
        try:
            limit = max_rounds
            freeze_round_of: dict[int, list[int]] = {}
            if node_levels is not None:
                level_cap = max(node_levels, default=0)
                limit = level_cap if limit is None else min(limit, level_cap)
                for node, level in enumerate(node_levels):
                    freeze_round_of.setdefault(level + 1, []).append(node)

            co = self.csr.child_offsets
            ct = self.csr.child_targets
            # Round 1 considers every node; later rounds only dirty ones.
            dirty: "range | set[int]" = range(self._num_nodes)
            round_number = 0
            while limit is None or round_number < limit:
                round_number += 1
                moved = self._refine_round(
                    dirty, node_levels, round_number, freeze_round_of
                )
                if moved is None:
                    return
                yield None
                fresh_dirt: set[int] = set()
                add = fresh_dirt.add
                for group in moved:
                    for node in group:
                        for position in range(co[node], co[node + 1]):
                            add(ct[position])
                dirty = fresh_dirt
        finally:
            self._release_parallel()

    def _init_run(self) -> None:
        """Reset the live flat state to the label (round-0) partition."""
        label_ids = self.csr.label_ids
        block_of = array(BUFFER_TYPECODE, bytes(8 * self._num_nodes))
        blocks: list[list[int]] = []
        table: dict[int, int] = {}
        for node in range(self._num_nodes):
            label = label_ids[node]
            block = table.get(label)
            if block is None:
                block = len(table)
                table[label] = block
                blocks.append([])
            block_of[node] = block
            blocks[block].append(node)
        self._block_of = block_of
        self._blocks = blocks

    def _refine_round(
        self,
        dirty: "range | set[int]",
        node_levels: Sequence[int] | None,
        round_number: int,
        freeze_round_of: dict[int, list[int]],
    ) -> list[list[int]] | None:
        """Apply one round in place; return the moved groups.

        Returns ``None`` when the round changed nothing (the fixpoint
        test).  Candidate selection, active/frozen separation and the
        largest-group-keeps-its-id split policy are exactly the
        worklist engine's, so the produced partitions are identical
        round for round.
        """
        block_of = self._block_of
        blocks = self._blocks

        candidates: set[int] = set()
        if node_levels is None:
            for node in dirty:
                candidates.add(block_of[node])
        else:
            for node in dirty:
                if node_levels[node] >= round_number:
                    candidates.add(block_of[node])
            for node in freeze_round_of.get(round_number, ()):
                candidates.add(block_of[node])

        split_jobs: list[tuple[int, list[int], list[int]]] = []
        hash_nodes: list[int] = []
        for block in sorted(candidates):
            members = blocks[block]
            frozen: list[int] = []
            if node_levels is None:
                active = members
            else:
                active = [m for m in members if node_levels[m] >= round_number]
                if not active:
                    continue  # fully frozen: survives untouched
                if len(active) != len(members):
                    frozen = [
                        m for m in members if node_levels[m] < round_number
                    ]
            if len(active) == 1 and not frozen:
                continue  # a lone active member cannot split
            split_jobs.append((block, active, frozen))
            hash_nodes.extend(active)

        if not split_jobs:
            return None

        keys = self._signature_keys(hash_nodes)
        # The sweep may have migrated the live assignment into shared
        # memory (first parallel round); re-read it so the split writes
        # below land in the buffer the forked workers actually see.
        block_of = self._block_of

        moved: list[list[int]] = []
        position = 0
        for block, active, frozen in split_jobs:
            groups: dict[int | tuple[int, ...], list[int]] = {}
            for member in active:
                key = keys[position]
                position += 1
                group = groups.get(key)
                if group is None:
                    groups[key] = [member]
                else:
                    group.append(member)
            if len(groups) == 1 and not frozen:
                continue  # signatures agree and nothing froze: no change
            parts = list(groups.values())
            if frozen:
                parts.append(frozen)
            largest = max(range(len(parts)), key=lambda i: len(parts[i]))
            if largest != 0:
                parts[0], parts[largest] = parts[largest], parts[0]
            blocks[block] = parts[0]
            for group in parts[1:]:
                fresh = len(blocks)
                blocks.append(group)
                for node in group:
                    block_of[node] = fresh
            moved.extend(parts[1:])
        return moved if moved else None

    # ------------------------------------------------------------------
    # Signature sweeps
    # ------------------------------------------------------------------

    def _signature_keys(
        self, hash_nodes: list[int]
    ) -> list["int | tuple[int, ...]"]:
        """Per-node signature keys for the batch, in batch order.

        All sweeps — scalar, numpy-vectorised, shared-memory parallel —
        produce identical key values, so the grouping (and therefore
        the refinement) is bit-for-bit independent of the path taken.
        """
        if (
            self.jobs > 1
            and len(hash_nodes) >= PARALLEL_NODE_THRESHOLD
            and not self._parallel_failed
        ):
            parallel = self._parallel_keys(hash_nodes)
            if parallel is not None:
                return parallel
        if _numpy is not None and len(hash_nodes) >= NUMPY_NODE_THRESHOLD:
            return self._numpy_keys(hash_nodes)
        return self._scalar_keys(hash_nodes)

    def _scalar_keys(
        self, hash_nodes: list[int]
    ) -> list["int | tuple[int, ...]"]:
        """The stdlib sweep: flat-buffer reads, int keys, no tuples on
        the zero/single-parent fast paths."""
        po = self.csr.parent_offsets
        pt = self.csr.parent_targets
        block_of = self._block_of
        out: list[int | tuple[int, ...]] = []
        append = out.append
        for node in hash_nodes:
            start = po[node]
            end = po[node + 1]
            if end == start:
                append(_EMPTY_KEY)
            elif end == start + 1:
                append(block_of[pt[start]])
            else:
                seen = {block_of[pt[i]] for i in range(start, end)}
                if len(seen) == 1:
                    append(next(iter(seen)))
                else:
                    append(tuple(sorted(seen)))
        return out

    def _numpy_keys(
        self, hash_nodes: list[int]
    ) -> list["int | tuple[int, ...]"]:
        """Vectorised sweep over the same buffers (no copies).

        Zero- and single-parent nodes — the overwhelming majority in
        document-shaped graphs — are resolved by two fused gathers;
        only multi-parent nodes drop to the scalar dedup path.
        """
        np = _numpy
        po = np.frombuffer(self.csr.parent_offsets, dtype=np.int64)
        pt = np.frombuffer(self.csr.parent_targets, dtype=np.int64)
        block_of = np.frombuffer(self._block_of, dtype=np.int64)
        nodes = np.asarray(hash_nodes, dtype=np.int64)
        starts = po[nodes]
        degrees = po[nodes + 1] - starts
        keys_flat = np.full(len(nodes), _EMPTY_KEY, dtype=np.int64)
        single = degrees == 1
        keys_flat[single] = block_of[pt[starts[single]]]
        keys: list[int | tuple[int, ...]] = keys_flat.tolist()
        multi_positions = np.nonzero(degrees >= 2)[0]
        if len(multi_positions):
            po_arr = self.csr.parent_offsets
            pt_arr = self.csr.parent_targets
            bo = self._block_of
            for position in multi_positions.tolist():
                node = hash_nodes[position]
                seen = {
                    bo[pt_arr[i]]
                    for i in range(po_arr[node], po_arr[node + 1])
                }
                if len(seen) == 1:
                    keys[position] = next(iter(seen))
                else:
                    keys[position] = tuple(sorted(seen))
        return keys

    # ------------------------------------------------------------------
    # Shared-memory parallel sweep
    # ------------------------------------------------------------------

    def _parallel_keys(
        self, hash_nodes: list[int]
    ) -> list["int | tuple[int, ...]"] | None:
        """Hash the batch across the shared-memory fork pool.

        Returns ``None`` (and remembers the failure) when the platform
        cannot supply fork + shared memory, letting the run continue on
        the serial sweep.
        """
        if self._pool is None and not self._ensure_parallel():
            return None
        assert self._pool is not None and _SHM_HASH_NODES is not None
        count = len(hash_nodes)
        _SHM_HASH_NODES[0:count] = array(BUFFER_TYPECODE, hash_nodes)
        chunk = -(-count // self.jobs)  # ceil division
        bounds = [
            (start, min(start + chunk, count))
            for start in range(0, count, chunk)
        ]
        try:
            chunks = self._pool.map(_columnar_signature_chunk, bounds)
        except OSError:  # pragma: no cover - pool/pipe resource failure
            self._parallel_failed = True
            self._release_parallel()
            return None
        return [key for part in chunks for key in part]

    def _ensure_parallel(self) -> bool:
        """Create the shared segments and the per-run fork pool.

        The live ``block_of`` is migrated into shared memory so the
        in-place writes of later rounds propagate to the (already
        forked) workers; the parent CSR is copied in once.  Must be
        called before any worker exists — globals are inherited by
        fork, never re-sent.
        """
        global _SHM_PARENT_OFFSETS, _SHM_PARENT_TARGETS
        global _SHM_BLOCK_OF, _SHM_HASH_NODES
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            self._parallel_failed = True
            return False
        try:
            po_view = self._share(self.csr.parent_offsets)
            pt_view = self._share(self.csr.parent_targets)
            block_view = self._share(self._block_of)
            nodes_view = self._share_empty(self._num_nodes)
        except (OSError, ValueError):  # pragma: no cover - no /dev/shm
            self._parallel_failed = True
            self._release_parallel()
            return False
        self._block_of = block_view  # later rounds write through shm
        _SHM_PARENT_OFFSETS = po_view
        _SHM_PARENT_TARGETS = pt_view
        _SHM_BLOCK_OF = block_view
        _SHM_HASH_NODES = nodes_view
        try:
            self._pool = context.Pool(processes=self.jobs)
        except OSError:  # pragma: no cover - fork resource failure
            self._parallel_failed = True
            self._release_parallel()
            return False
        return True

    def _share(self, source: Sequence[int]) -> memoryview:
        """Copy ``source`` into a fresh shared segment; return its view."""
        length = len(source)
        view = self._share_empty(length)
        view[0:length] = array(BUFFER_TYPECODE, source)
        return view

    def _share_empty(self, length: int) -> memoryview:
        """Allocate a shared segment for ``length`` int64 slots."""
        segment = shared_memory.SharedMemory(
            create=True, size=max(8 * length, 8)
        )
        self._segments.append(segment)
        view = segment.buf.cast(BUFFER_TYPECODE)
        self._views.append(view)
        return view

    def _release_parallel(self) -> None:
        """Tear down the pool and unlink every shared segment."""
        global _SHM_PARENT_OFFSETS, _SHM_PARENT_TARGETS
        global _SHM_BLOCK_OF, _SHM_HASH_NODES
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if not self._segments:
            return
        # The live assignment may still point into shared memory; pull
        # it back into a private array before the mapping goes away.
        if isinstance(self._block_of, memoryview):
            self._block_of = array(BUFFER_TYPECODE, self._block_of)
        _SHM_PARENT_OFFSETS = None
        _SHM_PARENT_TARGETS = None
        _SHM_BLOCK_OF = None
        _SHM_HASH_NODES = None
        for view in self._views:
            view.release()
        self._views.clear()
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    # ------------------------------------------------------------------
    # Partition materialisation
    # ------------------------------------------------------------------

    def _take_partition(self) -> Partition:
        """Hand the live state over as a Partition (ends the run)."""
        return Partition.trusted(list(self._block_of), self._blocks)

    def _snapshot(self) -> Partition:
        """A defensive copy of the live state (per-round yields)."""
        return Partition.trusted(
            list(self._block_of), [list(members) for members in self._blocks]
        )
