"""The :class:`Partition` data structure.

A partition assigns every node of a graph to exactly one *block*.
Blocks have dense integer ids; the structure keeps both directions of
the mapping (node→block and block→members) because refinement needs the
former and index construction needs the latter.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import IndexInvariantError


class Partition:
    """A partition of ``0 .. num_nodes-1`` into dense blocks.

    Attributes:
        block_of: ``block_of[node]`` is the block id of ``node``.
        blocks: ``blocks[b]`` lists the member nodes of block ``b`` in
            ascending node order.
    """

    __slots__ = ("block_of", "blocks")

    def __init__(self, block_of: Sequence[int]) -> None:
        self.block_of = list(block_of)
        num_blocks = max(self.block_of, default=-1) + 1
        blocks: list[list[int]] = [[] for _ in range(num_blocks)]
        for node, block in enumerate(self.block_of):
            if not 0 <= block < num_blocks:
                raise IndexInvariantError(f"block id out of range: {block}")
            blocks[block].append(node)
        for block, members in enumerate(blocks):
            if not members:
                raise IndexInvariantError(f"block {block} is empty (ids not dense)")
        self.blocks = blocks

    @classmethod
    def from_keys(cls, keys: Sequence[object]) -> "Partition":
        """Group nodes by equal keys; block ids follow first-seen order.

        Example:
            >>> p = Partition.from_keys(["a", "b", "a"])
            >>> p.block_of
            [0, 1, 0]
            >>> p.blocks
            [[0, 2], [1]]
        """
        table: dict[object, int] = {}
        block_of = []
        for key in keys:
            block = table.get(key)
            if block is None:
                block = len(table)
                table[key] = block
            block_of.append(block)
        return cls(block_of)

    @property
    def num_nodes(self) -> int:
        """Number of partitioned nodes."""
        return len(self.block_of)

    @property
    def num_blocks(self) -> int:
        """Number of blocks."""
        return len(self.blocks)

    def __len__(self) -> int:
        return self.num_blocks

    def __repr__(self) -> str:
        return f"Partition(nodes={self.num_nodes}, blocks={self.num_blocks})"

    def __eq__(self, other: object) -> bool:
        """Partitions are equal when they group nodes identically.

        Block *ids* are a labeling artefact and do not participate.
        """
        if not isinstance(other, Partition):
            return NotImplemented
        if len(self.block_of) != len(other.block_of):
            return False
        return self.relabel_canonical() == other.relabel_canonical()

    def __hash__(self) -> int:  # pragma: no cover - partitions as keys is rare
        return hash(tuple(self.relabel_canonical()))

    def relabel_canonical(self) -> list[int]:
        """Node→block map with blocks renumbered in first-node order."""
        table: dict[int, int] = {}
        result = []
        for block in self.block_of:
            canonical = table.get(block)
            if canonical is None:
                canonical = len(table)
                table[block] = canonical
            result.append(canonical)
        return result

    def refines(self, coarser: "Partition") -> bool:
        """True if every block of ``self`` lies inside one block of
        ``coarser`` (i.e. ``self`` is a refinement of ``coarser``)."""
        if coarser.num_nodes != self.num_nodes:
            return False
        for members in self.blocks:
            first = coarser.block_of[members[0]]
            if any(coarser.block_of[node] != first for node in members[1:]):
                return False
        return True

    def same_block(self, u: int, v: int) -> bool:
        """True if ``u`` and ``v`` share a block."""
        return self.block_of[u] == self.block_of[v]


def intersect(left: Partition, right: Partition) -> Partition:
    """The coarsest partition refining both arguments."""
    if left.num_nodes != right.num_nodes:
        raise IndexInvariantError("cannot intersect partitions of different sizes")
    return Partition.from_keys(
        [(left.block_of[node], right.block_of[node]) for node in range(left.num_nodes)]
    )


def blocks_as_sets(partition: Partition) -> list[frozenset[int]]:
    """Blocks as frozensets (handy for set-comparison in tests)."""
    return [frozenset(members) for members in partition.blocks]
