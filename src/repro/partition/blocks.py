"""The :class:`Partition` data structure.

A partition assigns every node of a graph to exactly one *block*.
Blocks have dense integer ids; the structure keeps both directions of
the mapping (node→block and block→members) because refinement needs the
former and index construction needs the latter.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.exceptions import IndexInvariantError


class Partition:
    """A partition of ``0 .. num_nodes-1`` into dense blocks.

    Attributes:
        block_of: ``block_of[node]`` is the block id of ``node``.
        blocks: ``blocks[b]`` lists the member nodes of block ``b`` in
            ascending node order.
    """

    __slots__ = ("block_of", "blocks")

    def __init__(self, block_of: Sequence[int]) -> None:
        self.block_of = list(block_of)
        num_blocks = max(self.block_of, default=-1) + 1
        blocks: list[list[int]] = [[] for _ in range(num_blocks)]
        for node, block in enumerate(self.block_of):
            if not 0 <= block < num_blocks:
                raise IndexInvariantError(f"block id out of range: {block}")
            blocks[block].append(node)
        for block, members in enumerate(blocks):
            if not members:
                raise IndexInvariantError(f"block {block} is empty (ids not dense)")
        self.blocks = blocks

    @classmethod
    def trusted(
        cls, block_of: list[int], blocks: list[list[int]]
    ) -> "Partition":
        """Fast-path constructor that skips the density re-validation.

        ``__init__`` walks every node to check that block ids are dense
        and in range; callers that construct both maps together (such as
        :meth:`from_keys` and :meth:`split_blocks`) already guarantee
        consistency, so re-walking the whole node set per refinement
        round is pure overhead.  Ownership of both lists transfers to
        the partition — the caller must not mutate them afterwards.
        """
        self = cls.__new__(cls)
        self.block_of = block_of
        self.blocks = blocks
        return self

    @classmethod
    def from_keys(cls, keys: Sequence[object]) -> "Partition":
        """Group nodes by equal keys; block ids follow first-seen order.

        Example:
            >>> p = Partition.from_keys(["a", "b", "a"])
            >>> p.block_of
            [0, 1, 0]
            >>> p.blocks
            [[0, 2], [1]]
        """
        table: dict[object, int] = {}
        block_of: list[int] = []
        blocks: list[list[int]] = []
        for node, key in enumerate(keys):
            block = table.get(key)
            if block is None:
                block = len(table)
                table[key] = block
                blocks.append([])
            block_of.append(block)
            blocks[block].append(node)
        return cls.trusted(block_of, blocks)

    def split_blocks(
        self, replacements: Mapping[int, Sequence[list[int]]]
    ) -> "Partition":
        """A new partition with the listed blocks subdivided in place.

        ``replacements[b]`` is a sequence of disjoint member groups that
        together cover block ``b``.  The first group keeps id ``b`` (so
        block ids stay dense without renumbering anything else); every
        later group gets a fresh id appended at the end.  Blocks not
        mentioned are *reused* — their member lists are shared with the
        new partition, not rebuilt — which is what makes worklist-driven
        refinement cheap on the stable majority of blocks.

        Group lists transfer ownership to the new partition (callers
        must not mutate them afterwards); the receiver is unchanged.

        Raises:
            IndexInvariantError: if a group is empty, lists a node
                outside its block, or the groups do not cover the block.
        """
        block_of = list(self.block_of)
        blocks = list(self.blocks)
        for block in sorted(replacements):
            if not 0 <= block < len(self.blocks):
                raise IndexInvariantError(f"no block {block} to split")
            groups = replacements[block]
            total = 0
            for group in groups:
                if not group:
                    raise IndexInvariantError(
                        f"empty group in split of block {block}"
                    )
                total += len(group)
                for node in group:
                    if self.block_of[node] != block:
                        raise IndexInvariantError(
                            f"node {node} is not a member of block {block}"
                        )
            if total != len(self.blocks[block]):
                raise IndexInvariantError(
                    f"split of block {block} covers {total} of "
                    f"{len(self.blocks[block])} members"
                )
            blocks[block] = groups[0]
            for group in groups[1:]:
                fresh = len(blocks)
                blocks.append(group)
                for node in group:
                    block_of[node] = fresh
        return Partition.trusted(block_of, blocks)

    @property
    def num_nodes(self) -> int:
        """Number of partitioned nodes."""
        return len(self.block_of)

    @property
    def num_blocks(self) -> int:
        """Number of blocks."""
        return len(self.blocks)

    def __len__(self) -> int:
        return self.num_blocks

    def __repr__(self) -> str:
        return f"Partition(nodes={self.num_nodes}, blocks={self.num_blocks})"

    def __eq__(self, other: object) -> bool:
        """Partitions are equal when they group nodes identically.

        Block *ids* are a labeling artefact and do not participate.
        """
        if not isinstance(other, Partition):
            return NotImplemented
        if len(self.block_of) != len(other.block_of):
            return False
        return self.relabel_canonical() == other.relabel_canonical()

    def __hash__(self) -> int:  # pragma: no cover - partitions as keys is rare
        return hash(tuple(self.relabel_canonical()))

    def relabel_canonical(self) -> list[int]:
        """Node→block map with blocks renumbered in first-node order."""
        table: dict[int, int] = {}
        result = []
        for block in self.block_of:
            canonical = table.get(block)
            if canonical is None:
                canonical = len(table)
                table[block] = canonical
            result.append(canonical)
        return result

    def refines(self, coarser: "Partition") -> bool:
        """True if every block of ``self`` lies inside one block of
        ``coarser`` (i.e. ``self`` is a refinement of ``coarser``)."""
        if coarser.num_nodes != self.num_nodes:
            return False
        for members in self.blocks:
            first = coarser.block_of[members[0]]
            if any(coarser.block_of[node] != first for node in members[1:]):
                return False
        return True

    def same_block(self, u: int, v: int) -> bool:
        """True if ``u`` and ``v`` share a block."""
        return self.block_of[u] == self.block_of[v]


def intersect(left: Partition, right: Partition) -> Partition:
    """The coarsest partition refining both arguments."""
    if left.num_nodes != right.num_nodes:
        raise IndexInvariantError("cannot intersect partitions of different sizes")
    return Partition.from_keys(
        [(left.block_of[node], right.block_of[node]) for node in range(left.num_nodes)]
    )


def blocks_as_sets(partition: Partition) -> list[frozenset[int]]:
    """Blocks as frozensets (handy for set-comparison in tests)."""
    return [frozenset(members) for members in partition.blocks]
