"""Signature-based partition refinement.

All refinements compute (bounded) *backward* bisimulations: two nodes are
k-bisimilar (Definition 2) when they carry the same label and their
*parents* match recursively to depth k.  One refinement round maps every
participating node to the signature

    ``(current block, set of parents' current blocks)``

and regroups nodes by equal signatures.  One round therefore moves the
partition from k-bisimulation to (k+1)-bisimulation — the same
"split until stable with respect to the previous classes" step as the
A(k)- and D(k)-index construction algorithms, implemented with hashing
rather than explicit ``B ∩ Succ(A)`` splits (the resulting partition is
identical, round for round).

Refinement never merges blocks, so the block count is non-decreasing; a
round that does not increase it has changed nothing, which is the
fixpoint test used by :func:`bisim_partition`.

Three engines implement the rounds:

- ``"worklist"`` (the default) — the dirty-block worklist engine of
  :mod:`repro.partition.engine`: only nodes whose parents' blocks just
  split are re-hashed, signatures are interned tuples, and hashing can
  be spread across worker processes (``jobs=`` / ``DKINDEX_JOBS``).
- ``"columnar"`` — the batch engine of
  :mod:`repro.partition.columnar`: the same dirty-block round structure,
  but run over the graph's frozen CSR view with an in-place flat
  node→block array, contiguous-slice signature sweeps (optionally
  numpy-vectorised via the ``fast`` extra) and a shared-memory fork
  pool for ``jobs > 1``.
- ``"legacy"`` — the straightforward full-rehash loop over
  :func:`refine_once`, kept as the reference implementation (the
  equivalence test suite checks the engines round for round, and the
  ``dkindex bench refine`` harness times each against the others).
- ``"external"`` — the out-of-core engine of
  :mod:`repro.partition.external`: the columnar round loop run over a
  paged CSR snapshot (:mod:`repro.storage.paged`) behind a
  byte-budgeted LRU pool, with page-ordered signature sweeps that
  spill sorted runs to disk — for graphs whose flat buffers should not
  (or cannot) be held in memory.

``engine="auto"`` resolves to the worklist engine unless the
``DKINDEX_ENGINE`` environment variable says ``legacy``, ``columnar``
or ``external`` — which lets the benchmark harness re-route whole
construction pipelines without threading a parameter through every call
site.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

from repro.partition.blocks import Partition
from repro.partition.columnar import ColumnarEngine
from repro.partition.engine import LabeledAdjacency, RefinementEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partition.external import ExternalEngine

#: Engine names accepted by the ``engine=`` parameters below.
ENGINE_CHOICES = ("auto", "worklist", "columnar", "external", "legacy")

#: Environment variable that re-routes ``engine="auto"`` callers.
ENGINE_ENV_VAR = "DKINDEX_ENGINE"

# Backwards-compatible alias; the protocol moved to the engine module.
_LabeledAdjacency = LabeledAdjacency


def resolve_engine(engine: str) -> str:
    """Resolve ``engine=`` to a concrete engine name.

    ``"auto"`` yields ``"worklist"`` unless ``DKINDEX_ENGINE`` routes
    elsewhere; concrete names (``"worklist"``, ``"columnar"``,
    ``"external"``, ``"legacy"``) pass through.

    Raises:
        ValueError: for unknown engine names (argument or environment).
    """
    if engine == "auto":
        env = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
        if not env or env == "auto":
            return "worklist"
        engine = env
    if engine not in ("worklist", "columnar", "external", "legacy"):
        raise ValueError(
            f"unknown refinement engine {engine!r}; choose from "
            f"{ENGINE_CHOICES}"
        )
    return engine


def _external_engine(graph: LabeledAdjacency) -> "ExternalEngine":
    """Build the out-of-core engine (imported lazily: storage stack)."""
    from repro.partition.external import ExternalEngine

    return ExternalEngine(graph)


def label_partition(graph: LabeledAdjacency) -> Partition:
    """The 0-bisimulation partition: group nodes by label.

    This is the paper's "label-split index graph", the starting point of
    every construction algorithm.
    """
    return Partition.from_keys(list(graph.label_ids))


def refine_once(
    graph: LabeledAdjacency,
    partition: Partition,
    participating: Sequence[bool] | None = None,
) -> Partition:
    """One full-rehash refinement round (the legacy reference step).

    Nodes for which ``participating`` is False are *frozen*: they stay
    grouped exactly as in the previous round (their old block survives as
    a block of the new partition, minus any members that participated).

    Returns a new partition; the input is unchanged.

    Raises:
        ValueError: if ``participating`` does not have one entry per
            node — silently freezing a suffix of the node set would
            corrupt the partition.
    """
    block_of = partition.block_of
    if participating is not None and len(participating) != len(block_of):
        raise ValueError(
            f"participating has {len(participating)} entries for "
            f"{len(block_of)} nodes"
        )
    parents = graph.parents
    keys: list[object] = [None] * len(block_of)
    for node in range(len(block_of)):
        if participating is None or participating[node]:
            parent_blocks = frozenset(block_of[p] for p in parents[node])
            keys[node] = (block_of[node], parent_blocks)
        else:
            keys[node] = ("frozen", block_of[node])
    return Partition.from_keys(keys)


def kbisim_partition(
    graph: LabeledAdjacency,
    k: int,
    *,
    engine: str = "auto",
    jobs: int | None = None,
) -> Partition:
    """The k-bisimulation partition (the A(k)-index equivalence).

    Runs ``k`` refinement rounds from the label partition, stopping early
    at a fixpoint (further rounds cannot change a stable partition).

    Args:
        graph: the data (or index) graph.
        k: the uniform bisimilarity bound (>= 0).
        engine: ``"worklist"`` (default via ``"auto"``), ``"columnar"``
            or ``"legacy"``.
        jobs: worker processes for the worklist/columnar engines'
            signature hashing; ``None`` reads ``DKINDEX_JOBS``.

    Raises:
        ValueError: if ``k`` is negative or ``engine`` is unknown.
    """
    resolved = resolve_engine(engine)
    if resolved == "worklist":
        return RefinementEngine(graph, jobs=jobs).run_kbisim(k)
    if resolved == "columnar":
        return ColumnarEngine(graph, jobs=jobs).run_kbisim(k)
    if resolved == "external":
        with _external_engine(graph) as engine:
            return engine.run_kbisim(k)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    partition = label_partition(graph)
    for _ in range(k):
        refined = refine_once(graph, partition)
        if refined.num_blocks == partition.num_blocks:
            return refined
        partition = refined
    return partition


def bisim_partition(
    graph: LabeledAdjacency,
    *,
    engine: str = "auto",
    jobs: int | None = None,
) -> tuple[Partition, int]:
    """The full-bisimulation fixpoint (the 1-index equivalence).

    Returns ``(partition, rounds)`` where ``rounds`` is the number of
    refinement rounds needed to stabilise (the graph's bisimulation
    "depth"); nodes in a common block are k-bisimilar for every k.
    """
    resolved = resolve_engine(engine)
    if resolved == "worklist":
        return RefinementEngine(graph, jobs=jobs).run_fixpoint()
    if resolved == "columnar":
        return ColumnarEngine(graph, jobs=jobs).run_fixpoint()
    if resolved == "external":
        with _external_engine(graph) as engine:
            return engine.run_fixpoint()
    partition = label_partition(graph)
    rounds = 0
    while True:
        refined = refine_once(graph, partition)
        if refined.num_blocks == partition.num_blocks:
            return partition, rounds
        partition = refined
        rounds += 1


def leveled_partition(
    graph: LabeledAdjacency,
    node_levels: Sequence[int],
    *,
    engine: str = "auto",
    jobs: int | None = None,
) -> Partition:
    """Per-node bounded bisimulation, the D(k) construction core.

    ``node_levels[v]`` is the local-similarity level node ``v`` must be
    refined to (the broadcast-adjusted requirement of its label).  During
    round ``i`` only nodes with ``node_levels[v] >= i`` participate; all
    others are frozen at their previous block.  This reproduces
    Algorithm 2 of the paper: splitting proceeds from the label-split
    graph, each round splits only the index nodes whose requirement is at
    least the round number, and newly created nodes inherit requirements.

    When the levels are uniform this equals :func:`kbisim_partition`;
    when they satisfy the broadcast constraint
    ``level(parent) >= level(child) - 1`` the result is a valid
    D(k)-index partition (Theorem 1).

    Raises:
        ValueError: if ``node_levels`` has the wrong length or any
            negative entry.
    """
    resolved = resolve_engine(engine)
    if resolved == "worklist":
        return RefinementEngine(graph, jobs=jobs).run_leveled(node_levels)
    if resolved == "columnar":
        return ColumnarEngine(graph, jobs=jobs).run_leveled(node_levels)
    if resolved == "external":
        with _external_engine(graph) as engine:
            return engine.run_leveled(node_levels)
    if len(node_levels) != graph.num_nodes:
        raise ValueError(
            f"node_levels has {len(node_levels)} entries for "
            f"{graph.num_nodes} nodes"
        )
    if any(level < 0 for level in node_levels):
        raise ValueError("node levels must be non-negative")

    partition = label_partition(graph)
    max_level = max(node_levels, default=0)
    for round_number in range(1, max_level + 1):
        participating = [level >= round_number for level in node_levels]
        refined = refine_once(graph, partition, participating)
        # No early fixpoint exit here: with freezing, a stable round for
        # participating nodes can still be followed by change once other
        # requirements kick in — but levels only shrink the participant
        # set over rounds, so stability of the block count is still a
        # valid exit.  Keep it simple and only exit when nothing changed.
        if refined.num_blocks == partition.num_blocks:
            partition = refined
            # Participant sets only shrink as the round number grows, so
            # once a round is a no-op every later round is too.
            break
        partition = refined
    return partition
