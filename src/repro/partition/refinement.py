"""Signature-based partition refinement.

All refinements compute (bounded) *backward* bisimulations: two nodes are
k-bisimilar (Definition 2) when they carry the same label and their
*parents* match recursively to depth k.  One refinement round maps every
participating node to the signature

    ``(current block, set of parents' current blocks)``

and regroups nodes by equal signatures.  One round therefore moves the
partition from k-bisimulation to (k+1)-bisimulation — the same
"split until stable with respect to the previous classes" step as the
A(k)- and D(k)-index construction algorithms, implemented with hashing
rather than explicit ``B ∩ Succ(A)`` splits (the resulting partition is
identical, round for round).

Refinement never merges blocks, so the block count is non-decreasing; a
round that does not increase it has changed nothing, which is the
fixpoint test used by :func:`bisim_partition`.

Three engines implement the rounds:

- ``"worklist"`` (the default) — the dirty-block worklist engine of
  :mod:`repro.partition.engine`: only nodes whose parents' blocks just
  split are re-hashed, signatures are interned tuples, and hashing can
  be spread across worker processes (``jobs=`` / ``DKINDEX_JOBS``).
- ``"columnar"`` — the batch engine of
  :mod:`repro.partition.columnar`: the same dirty-block round structure,
  but run over the graph's frozen CSR view with an in-place flat
  node→block array, contiguous-slice signature sweeps (optionally
  numpy-vectorised via the ``fast`` extra) and a shared-memory fork
  pool for ``jobs > 1``.
- ``"legacy"`` — the straightforward full-rehash loop over
  :func:`refine_once`, kept as the reference implementation (the
  equivalence test suite checks the engines round for round, and the
  ``dkindex bench refine`` harness times each against the others).
- ``"external"`` — the out-of-core engine of
  :mod:`repro.partition.external`: the columnar round loop run over a
  paged CSR snapshot (:mod:`repro.storage.paged`) behind a
  byte-budgeted LRU pool, with page-ordered signature sweeps that
  spill sorted runs to disk — for graphs whose flat buffers should not
  (or cannot) be held in memory.

``engine="auto"`` resolves to the worklist engine unless the
``DKINDEX_ENGINE`` environment variable says ``legacy``, ``columnar``
or ``external`` — which lets the benchmark harness re-route whole
construction pipelines without threading a parameter through every call
site.

When a storage-backed engine *fails on storage* — retry budget
exhausted, disk full, pool unsatisfiable — the drivers degrade along
``external → columnar → worklist`` instead of dying, emitting a
:class:`~repro.exceptions.StorageDegradationWarning` (every engine
computes the identical partition, so correctness is unaffected; only
the resource profile changes).  ``DKINDEX_DEGRADE`` selects the
policy: ``warn`` (the default) falls back with the warning, ``auto``
falls back silently, ``off`` re-raises the storage error unchanged.
Injected crash faults (:class:`~repro.exceptions.InjectedFaultError`)
are never absorbed — a simulated crash must stay loud.
"""

from __future__ import annotations

import os
import warnings
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

from repro.exceptions import PagedStoreError, StorageDegradationWarning
from repro.partition.blocks import Partition
from repro.partition.columnar import ColumnarEngine
from repro.partition.engine import LabeledAdjacency, RefinementEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partition.external import ExternalEngine

#: Engine names accepted by the ``engine=`` parameters below.
ENGINE_CHOICES = ("auto", "worklist", "columnar", "external", "legacy")

#: Environment variable that re-routes ``engine="auto"`` callers.
ENGINE_ENV_VAR = "DKINDEX_ENGINE"

#: Environment variable selecting the storage-degradation policy.
DEGRADE_ENV_VAR = "DKINDEX_DEGRADE"

#: Degradation policies: ``off`` re-raises storage failures, ``warn``
#: falls back with a :class:`StorageDegradationWarning`, ``auto`` falls
#: back silently.
DEGRADE_CHOICES = ("off", "warn", "auto")

DEFAULT_DEGRADE = "warn"

#: Fallback order when a storage-backed engine is exhausted.  The
#: worklist engine has no entry: it touches no storage, so a failure
#: there is not a storage failure and must propagate.
_DEGRADE_CHAIN = {"external": "columnar", "columnar": "worklist"}

#: The storage-exhaustion error classes a fallback may absorb.
#: :class:`~repro.exceptions.InjectedFaultError` is deliberately not
#: here — it subclasses none of these, so simulated crashes stay loud.
_DEGRADABLE_ERRORS = (PagedStoreError, OSError, MemoryError)

_R = TypeVar("_R")

# Backwards-compatible alias; the protocol moved to the engine module.
_LabeledAdjacency = LabeledAdjacency


def resolve_engine(engine: str) -> str:
    """Resolve ``engine=`` to a concrete engine name.

    ``"auto"`` yields ``"worklist"`` unless ``DKINDEX_ENGINE`` routes
    elsewhere; concrete names (``"worklist"``, ``"columnar"``,
    ``"external"``, ``"legacy"``) pass through.

    Raises:
        ValueError: for unknown engine names (argument or environment).
    """
    if engine == "auto":
        env = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
        if not env or env == "auto":
            return "worklist"
        engine = env
    if engine not in ("worklist", "columnar", "external", "legacy"):
        raise ValueError(
            f"unknown refinement engine {engine!r}; choose from "
            f"{ENGINE_CHOICES}"
        )
    return engine


def resolve_degrade(policy: str | None = None) -> str:
    """Resolve the degradation policy: argument, environment, default.

    Raises:
        ValueError: for unknown policy names.
    """
    if policy is None:
        policy = (
            os.environ.get(DEGRADE_ENV_VAR, "").strip().lower()
            or DEFAULT_DEGRADE
        )
    if policy not in DEGRADE_CHOICES:
        raise ValueError(
            f"unknown degradation policy {policy!r}; choose from "
            f"{DEGRADE_CHOICES}"
        )
    return policy


def _external_engine(graph: LabeledAdjacency) -> "ExternalEngine":
    """Build the out-of-core engine (imported lazily: storage stack)."""
    from repro.partition.external import ExternalEngine

    return ExternalEngine(graph)


def _run_degradable(
    resolved: str, runners: dict[str, Callable[[], _R]]
) -> _R:
    """Run ``runners[resolved]``, degrading down the engine chain.

    A storage-exhaustion failure (:data:`_DEGRADABLE_ERRORS`) in an
    engine with a fallback restarts the build on the next engine down
    — every engine computes the identical partition, so the retry is
    semantically free.  The ``off`` policy, the absence of a fallback,
    and non-storage exceptions (including injected crash faults) all
    re-raise unchanged.
    """
    policy = resolve_degrade()
    current = resolved
    while True:
        try:
            return runners[current]()
        except _DEGRADABLE_ERRORS as error:
            fallback = _DEGRADE_CHAIN.get(current)
            if policy == "off" or fallback is None:
                raise
            if policy == "warn":
                warnings.warn(
                    StorageDegradationWarning(current, fallback, str(error)),
                    stacklevel=3,
                )
            current = fallback


def label_partition(graph: LabeledAdjacency) -> Partition:
    """The 0-bisimulation partition: group nodes by label.

    This is the paper's "label-split index graph", the starting point of
    every construction algorithm.
    """
    return Partition.from_keys(list(graph.label_ids))


def refine_once(
    graph: LabeledAdjacency,
    partition: Partition,
    participating: Sequence[bool] | None = None,
) -> Partition:
    """One full-rehash refinement round (the legacy reference step).

    Nodes for which ``participating`` is False are *frozen*: they stay
    grouped exactly as in the previous round (their old block survives as
    a block of the new partition, minus any members that participated).

    Returns a new partition; the input is unchanged.

    Raises:
        ValueError: if ``participating`` does not have one entry per
            node — silently freezing a suffix of the node set would
            corrupt the partition.
    """
    block_of = partition.block_of
    if participating is not None and len(participating) != len(block_of):
        raise ValueError(
            f"participating has {len(participating)} entries for "
            f"{len(block_of)} nodes"
        )
    parents = graph.parents
    keys: list[object] = [None] * len(block_of)
    for node in range(len(block_of)):
        if participating is None or participating[node]:
            parent_blocks = frozenset(block_of[p] for p in parents[node])
            keys[node] = (block_of[node], parent_blocks)
        else:
            keys[node] = ("frozen", block_of[node])
    return Partition.from_keys(keys)


def kbisim_partition(
    graph: LabeledAdjacency,
    k: int,
    *,
    engine: str = "auto",
    jobs: int | None = None,
) -> Partition:
    """The k-bisimulation partition (the A(k)-index equivalence).

    Runs ``k`` refinement rounds from the label partition, stopping early
    at a fixpoint (further rounds cannot change a stable partition).

    Args:
        graph: the data (or index) graph.
        k: the uniform bisimilarity bound (>= 0).
        engine: ``"worklist"`` (default via ``"auto"``), ``"columnar"``
            or ``"legacy"``.
        jobs: worker processes for the worklist/columnar engines'
            signature hashing; ``None`` reads ``DKINDEX_JOBS``.

    Raises:
        ValueError: if ``k`` is negative or ``engine`` is unknown.
    """
    resolved = resolve_engine(engine)
    if resolved != "legacy":

        def run_external() -> Partition:
            with _external_engine(graph) as ext:
                return ext.run_kbisim(k)

        return _run_degradable(
            resolved,
            {
                "worklist": lambda: RefinementEngine(
                    graph, jobs=jobs
                ).run_kbisim(k),
                "columnar": lambda: ColumnarEngine(
                    graph, jobs=jobs
                ).run_kbisim(k),
                "external": run_external,
            },
        )
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    partition = label_partition(graph)
    for _ in range(k):
        refined = refine_once(graph, partition)
        if refined.num_blocks == partition.num_blocks:
            return refined
        partition = refined
    return partition


def bisim_partition(
    graph: LabeledAdjacency,
    *,
    engine: str = "auto",
    jobs: int | None = None,
) -> tuple[Partition, int]:
    """The full-bisimulation fixpoint (the 1-index equivalence).

    Returns ``(partition, rounds)`` where ``rounds`` is the number of
    refinement rounds needed to stabilise (the graph's bisimulation
    "depth"); nodes in a common block are k-bisimilar for every k.
    """
    resolved = resolve_engine(engine)
    if resolved != "legacy":

        def run_external() -> tuple[Partition, int]:
            with _external_engine(graph) as ext:
                return ext.run_fixpoint()

        return _run_degradable(
            resolved,
            {
                "worklist": lambda: RefinementEngine(
                    graph, jobs=jobs
                ).run_fixpoint(),
                "columnar": lambda: ColumnarEngine(
                    graph, jobs=jobs
                ).run_fixpoint(),
                "external": run_external,
            },
        )
    partition = label_partition(graph)
    rounds = 0
    while True:
        refined = refine_once(graph, partition)
        if refined.num_blocks == partition.num_blocks:
            return partition, rounds
        partition = refined
        rounds += 1


def leveled_partition(
    graph: LabeledAdjacency,
    node_levels: Sequence[int],
    *,
    engine: str = "auto",
    jobs: int | None = None,
) -> Partition:
    """Per-node bounded bisimulation, the D(k) construction core.

    ``node_levels[v]`` is the local-similarity level node ``v`` must be
    refined to (the broadcast-adjusted requirement of its label).  During
    round ``i`` only nodes with ``node_levels[v] >= i`` participate; all
    others are frozen at their previous block.  This reproduces
    Algorithm 2 of the paper: splitting proceeds from the label-split
    graph, each round splits only the index nodes whose requirement is at
    least the round number, and newly created nodes inherit requirements.

    When the levels are uniform this equals :func:`kbisim_partition`;
    when they satisfy the broadcast constraint
    ``level(parent) >= level(child) - 1`` the result is a valid
    D(k)-index partition (Theorem 1).

    Raises:
        ValueError: if ``node_levels`` has the wrong length or any
            negative entry.
    """
    resolved = resolve_engine(engine)
    if resolved != "legacy":

        def run_external() -> Partition:
            with _external_engine(graph) as ext:
                return ext.run_leveled(node_levels)

        return _run_degradable(
            resolved,
            {
                "worklist": lambda: RefinementEngine(
                    graph, jobs=jobs
                ).run_leveled(node_levels),
                "columnar": lambda: ColumnarEngine(
                    graph, jobs=jobs
                ).run_leveled(node_levels),
                "external": run_external,
            },
        )
    if len(node_levels) != graph.num_nodes:
        raise ValueError(
            f"node_levels has {len(node_levels)} entries for "
            f"{graph.num_nodes} nodes"
        )
    if any(level < 0 for level in node_levels):
        raise ValueError("node levels must be non-negative")

    partition = label_partition(graph)
    max_level = max(node_levels, default=0)
    for round_number in range(1, max_level + 1):
        participating = [level >= round_number for level in node_levels]
        refined = refine_once(graph, partition, participating)
        # No early fixpoint exit here: with freezing, a stable round for
        # participating nodes can still be followed by change once other
        # requirements kick in — but levels only shrink the participant
        # set over rounds, so stability of the block count is still a
        # valid exit.  Keep it simple and only exit when nothing changed.
        if refined.num_blocks == partition.num_blocks:
            partition = refined
            # Participant sets only shrink as the round number grows, so
            # once a round is a no-op every later round is too.
            break
        partition = refined
    return partition
