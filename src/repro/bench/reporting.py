"""Plain-text rendering of experiment results.

The paper presents its results as X/Y plots (index size vs average
evaluation cost) and one table; the harness renders the same data as
aligned text tables so results diff cleanly and slot into
EXPERIMENTS.md verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class SeriesPoint:
    """One (index, size, cost) measurement of an evaluation experiment.

    Attributes:
        name: index name ("A(2)", "D(k)", ...).
        index_size: number of index nodes (the figures' X axis).
        avg_cost: average visited nodes per query (the Y axis).
        validation_fraction: fraction of queries that validated.
        note: free-form annotation.
    """

    name: str
    index_size: int
    avg_cost: float
    validation_fraction: float = 0.0
    note: str = ""


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    Floats are shown with one decimal; everything else via ``str``.

    Example:
        >>> print(render_table(["a", "b"], [[1, 2.5]]))
        a  b
        -  ---
        1  2.5
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def render_series(points: Sequence[SeriesPoint], title: str) -> str:
    """Render an evaluation-experiment series as a table."""
    rows = [
        [p.name, p.index_size, p.avg_cost, f"{p.validation_fraction:.2f}", p.note]
        for p in points
    ]
    return render_table(
        ["index", "size (nodes)", "avg cost (visited)", "validated", "note"],
        rows,
        title=title,
    )


@dataclass
class ExperimentResult:
    """A finished experiment: id, structured points and extra tables."""

    experiment_id: str
    title: str
    points: list[SeriesPoint] = field(default_factory=list)
    extra_lines: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [render_series(self.points, f"[{self.experiment_id}] {self.title}")]
        parts.extend(self.extra_lines)
        return "\n".join(parts)

    def to_csv(self) -> str:
        """The points as CSV (for external plotting of the figures).

        Example:
            >>> r = ExperimentResult("FIG4", "demo")
            >>> r.points.append(SeriesPoint("A(0)", 72, 1921.1, 1.0))
            >>> print(r.to_csv())
            index,size,avg_cost,validated,note
            A(0),72,1921.1,1.00,
        """
        lines = ["index,size,avg_cost,validated,note"]
        for p in self.points:
            note = p.note.replace(",", ";")
            lines.append(
                f"{p.name},{p.index_size},{p.avg_cost:.1f},"
                f"{p.validation_fraction:.2f},{note}"
            )
        return "\n".join(lines)
