"""Update-pipeline timing harness (``dkindex bench update``).

The transactional pipeline promises that its default tier is cheap
enough to leave on: the ``fast`` audit is ``O(index)`` accounting, and
the edge-scope transaction checkpoint is ``O(index nodes)``.  This
harness prices that promise on the paper's Table-1 workload — a stream
of random edge additions — and records it to ``BENCH_updates.json`` so
the overhead is a tracked number, not a belief.

Four configurations are timed per dataset, identical seeded edge
streams throughout:

- ``legacy`` — the bare algorithms (``dk_add_edge`` straight onto the
  index): no transaction, no audit — the pre-maintenance baseline;
- ``off`` / ``fast`` / ``deep`` — the pipeline at each audit tier
  (``off`` isolates the transaction + journal-less pipeline cost,
  ``fast`` is the shipped default, ``deep`` is the chaos tier).

The acceptance bar tracked by the tests: ``fast`` within 25% of ``off``
at scale ``small``.
"""

from __future__ import annotations

import json
import platform
import random
import statistics
import time
from dataclasses import dataclass

from repro.bench.harness import DATASET_BUILDERS
from repro.bench.refine import SCALE_NAMES, synthetic_requirements
from repro.bench.reporting import render_table
from repro.core.construction import build_dk_index
from repro.core.dindex import DKIndex
from repro.core.updates import dk_add_edge
from repro.exceptions import DatasetError
from repro.graph.datagraph import DataGraph
from repro.maintenance.pipeline import MaintenanceConfig

#: Schema identifier written into (and expected from) the report JSON.
SCHEMA = "dkindex-bench-updates/1"

#: Timed configurations, in report order.
MODES = ("legacy", "off", "fast", "deep")


@dataclass(frozen=True)
class UpdateBenchConfig:
    """Knobs of one harness run.

    Attributes:
        scale: named scale (``small``/``medium``/``large``) or a float
            literal like ``"0.4"``.
        repeats: timed runs per (dataset, mode); the report records the
            median.
        seed: dataset generator and edge-stream seed.
        edges: edge additions per timed run (Table 1 applies 100).
        datasets: generator names to measure.
    """

    scale: str = "small"
    repeats: int = 3
    seed: int = 0
    edges: int = 100
    datasets: tuple[str, ...] = ("xmark", "nasa")

    @property
    def scale_factor(self) -> float:
        """The numeric dataset scale behind the (possibly named) scale.

        Raises:
            DatasetError: if the scale is neither named nor numeric.
        """
        named = SCALE_NAMES.get(self.scale)
        if named is not None:
            return named
        try:
            return float(self.scale)
        except ValueError:
            raise DatasetError(
                f"unknown bench scale {self.scale!r}; use one of "
                f"{sorted(SCALE_NAMES)} or a number"
            ) from None


def _edge_stream(graph: DataGraph, count: int, seed: int) -> list[tuple[int, int]]:
    """``count`` seeded random new edges (no duplicates, none existing)."""
    rng = random.Random(seed)
    chosen: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    attempts = 0
    limit = max(50 * count, 1000)
    while len(chosen) < count and attempts < limit:
        attempts += 1
        src = rng.randrange(graph.num_nodes)
        dst = rng.randrange(1, graph.num_nodes)
        if src == dst or (src, dst) in seen or graph.has_edge(src, dst):
            continue
        seen.add((src, dst))
        chosen.append((src, dst))
    return chosen


def _timed_run(
    dataset: str,
    mode: str,
    config: UpdateBenchConfig,
    edges: list[tuple[int, int]],
) -> float:
    """Build a fresh store (untimed), then time the edge stream."""
    builder = DATASET_BUILDERS[dataset]
    graph = builder(config.scale_factor, config.seed).graph
    requirements = synthetic_requirements(graph)
    index, _levels = build_dk_index(graph, requirements)
    if mode == "legacy":
        start = time.perf_counter()
        for src, dst in edges:
            dk_add_edge(graph, index, src, dst)
        return time.perf_counter() - start
    dk = DKIndex(
        graph, index, requirements, maintenance=MaintenanceConfig(audit=mode)
    )
    start = time.perf_counter()
    for src, dst in edges:
        dk.add_edge(src, dst)
    return time.perf_counter() - start


def run_update_bench(config: UpdateBenchConfig) -> dict[str, object]:
    """Run every (dataset, mode) cell; return the report.

    Raises:
        DatasetError: for unknown dataset names or scales.
    """
    dataset_stats: dict[str, dict[str, int]] = {}
    results: list[dict[str, object]] = []
    for name in config.datasets:
        builder = DATASET_BUILDERS.get(name)
        if builder is None:
            raise DatasetError(
                f"unknown dataset {name!r}; available: "
                f"{sorted(DATASET_BUILDERS)}"
            )
        graph = builder(config.scale_factor, config.seed).graph
        dataset_stats[name] = {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "labels": graph.num_labels,
        }
        edge_stream = _edge_stream(graph, config.edges, config.seed)
        for mode in MODES:
            times = [
                _timed_run(name, mode, config, edge_stream)
                for _ in range(config.repeats)
            ]
            median = statistics.median(times)
            results.append(
                {
                    "dataset": name,
                    "mode": mode,
                    "edges": len(edge_stream),
                    "median_s": median,
                    "per_edge_ms": median * 1000 / max(len(edge_stream), 1),
                    "times_s": times,
                }
            )

    return {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "scale": config.scale,
            "scale_factor": config.scale_factor,
            "repeats": config.repeats,
            "seed": config.seed,
            "edges": config.edges,
            "datasets": list(config.datasets),
        },
        "datasets": dataset_stats,
        "results": results,
        "overheads": _overheads(results),
    }


def _overheads(results: list[dict[str, object]]) -> dict[str, dict[str, float]]:
    """Per dataset: tier medians plus the tracked overhead ratios."""
    medians: dict[tuple[str, str], float] = {}
    for row in results:
        median = row["median_s"]
        assert isinstance(median, float)
        medians[(str(row["dataset"]), str(row["mode"]))] = median
    overheads: dict[str, dict[str, float]] = {}
    datasets = sorted({dataset for dataset, _mode in medians})
    for dataset in datasets:
        entry = {
            f"{mode}_s": medians[(dataset, mode)]
            for mode in MODES
            if (dataset, mode) in medians
        }
        off = medians.get((dataset, "off"))
        fast = medians.get((dataset, "fast"))
        legacy = medians.get((dataset, "legacy"))
        if off and fast:
            entry["fast_over_off"] = fast / off - 1.0
        if legacy and off:
            entry["pipeline_over_legacy"] = off / legacy - 1.0
        overheads[dataset] = entry
    return overheads


def write_report(report: dict[str, object], path: str) -> None:
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: dict[str, object]) -> str:
    """Render the per-dataset tier comparison as an aligned text table."""
    overheads = report["overheads"]
    assert isinstance(overheads, dict)
    rows = []
    for dataset, entry in overheads.items():
        rows.append(
            [
                dataset,
                *(
                    f"{entry[f'{mode}_s'] * 1000:.1f}"
                    if f"{mode}_s" in entry
                    else "-"
                    for mode in MODES
                ),
                f"{entry.get('fast_over_off', float('nan')) * 100:+.1f}%",
            ]
        )
    config = report["config"]
    assert isinstance(config, dict)
    title = (
        f"[UPDATE] audit-tier comparison, scale {config['scale']} "
        f"(factor {config['scale_factor']}), {config['edges']} edges, "
        f"median of {config['repeats']} run(s)"
    )
    return render_table(
        [
            "dataset",
            "legacy (ms)",
            "off (ms)",
            "fast (ms)",
            "deep (ms)",
            "fast vs off",
        ],
        rows,
        title=title,
    )


def main_entry(
    scale: str,
    repeats: int,
    seed: int,
    edges: int,
    datasets: tuple[str, ...],
    out: str,
) -> int:
    """CLI driver: run, write the JSON, print the summary table."""
    config = UpdateBenchConfig(
        scale=scale,
        repeats=repeats,
        seed=seed,
        edges=edges,
        datasets=datasets,
    )
    report = run_update_bench(config)
    write_report(report, out)
    print(format_report(report))
    print(f"wrote {out}")
    return 0
