"""Out-of-core refinement harness (``dkindex bench outofcore``).

Answers the question the paged store exists for: *can the external
engine build the same partition as the in-memory columnar engine while
its buffer pool is capped at a fraction of the in-memory footprint —
and what does the page traffic look like while it does?*

One run, on a seeded dataset (XMark by default):

1. **In-memory baseline** — freeze the graph and time the columnar
   fixpoint; the frozen CSR buffers' byte size is the *footprint* the
   pool budget is expressed against.
2. **Page-out** — stream the snapshot into a paged store
   (:mod:`repro.storage.paged`), recording pages, page size and
   wall-clock (creation itself is out-of-core: one page in memory at a
   time).
3. **External build** — run the same fixpoint through
   :class:`~repro.partition.external.ExternalEngine` over the paged
   store with the pool capped at ``budget_ratio`` of the footprint
   (default 0.25, floored at one page), then check the produced
   partition *equals* the in-memory one; the report carries
   ``partition_identical`` so a silent divergence can never hide
   behind good-looking timings.
4. **Query sweep** — seeded random ``children()``/``parents()`` lookups
   against the paged snapshot, each verified against the in-memory
   buffers; random access is the pool's worst case, so its hit rate is
   reported separately from the build's sequential sweeps.

Per-phase pool counters (hits, misses, evictions, write-backs, hit
rate) come from :class:`~repro.storage.paged.PoolStats` deltas.  The
result is written to ``BENCH_outofcore.json`` following the same
committed-trajectory convention as ``BENCH_refinement.json``.
"""

from __future__ import annotations

import json
import platform
import random
import time
from dataclasses import dataclass
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.bench.harness import DATASET_BUILDERS
from repro.bench.refine import SCALE_NAMES
from repro.bench.reporting import render_table
from repro.exceptions import DatasetError
from repro.partition.columnar import ColumnarEngine
from repro.partition.external import ExternalEngine
from repro.storage.paged import (
    ENTRY_BYTES,
    PagedCSRGraph,
    resolve_page_bytes,
)

#: Schema identifier written into the report JSON.
SCHEMA = "dkindex-bench-outofcore/1"

#: Default pool budget as a fraction of the in-memory CSR footprint.
DEFAULT_BUDGET_RATIO = 0.25

#: Random lookups in the query-sweep phase.
DEFAULT_QUERIES = 2000


def parse_scale(text: str) -> tuple[str, float]:
    """One scale token — a named scale or a float — as ``(name, factor)``.

    Raises:
        DatasetError: for a token that is neither named nor numeric.
    """
    name = text.strip()
    factor = SCALE_NAMES.get(name)
    if factor is None:
        try:
            factor = float(name)
        except ValueError:
            raise DatasetError(
                f"unknown bench scale {name!r}; use one of "
                f"{sorted(SCALE_NAMES)} or a number"
            ) from None
    return name, factor


@dataclass(frozen=True)
class OutOfCoreBenchConfig:
    """Knobs of one out-of-core harness run.

    Attributes:
        scale: one scale token (``small``/``medium``/``large`` or a
            float literal) — this harness runs a single cell deeply
            rather than an axis.
        seed: dataset generator and query-sweep seed.
        budget_ratio: pool budget as a fraction of the in-memory CSR
            footprint (floored at one page).
        page_bytes: page size (``None`` reads ``DKINDEX_PAGE_BYTES``).
        dataset: generator name (see
            :data:`repro.bench.harness.DATASET_BUILDERS`).
        queries: random lookups in the query-sweep phase.
    """

    scale: str = "medium"
    seed: int = 0
    budget_ratio: float = DEFAULT_BUDGET_RATIO
    page_bytes: int | None = None
    dataset: str = "xmark"
    queries: int = DEFAULT_QUERIES

    @property
    def scale_pair(self) -> tuple[str, float]:
        """The ``(name, factor)`` of the configured scale.

        Raises:
            DatasetError: for an invalid scale token.
        """
        return parse_scale(self.scale)


def run_outofcore_bench(config: OutOfCoreBenchConfig) -> dict[str, object]:
    """Run the four phases; return the report dictionary.

    Raises:
        DatasetError: unknown dataset name, invalid scale token, or a
            non-positive budget ratio.
    """
    scale_name, scale_factor = config.scale_pair
    if config.budget_ratio <= 0:
        raise DatasetError(
            f"budget ratio must be positive: {config.budget_ratio}"
        )
    builder = DATASET_BUILDERS.get(config.dataset)
    if builder is None:
        raise DatasetError(
            f"unknown dataset {config.dataset!r}; available: "
            f"{sorted(DATASET_BUILDERS)}"
        )
    page_bytes = resolve_page_bytes(config.page_bytes)

    graph = builder(scale_factor, config.seed).graph
    view = graph.freeze()
    footprint = (
        len(view.label_ids)
        + len(view.child_offsets)
        + len(view.child_targets)
        + len(view.parent_offsets)
        + len(view.parent_targets)
    ) * ENTRY_BYTES
    budget = max(page_bytes, int(footprint * config.budget_ratio))

    phases: dict[str, dict[str, object]] = {}

    # Phase 1: in-memory columnar fixpoint (the baseline).
    start = time.perf_counter()
    baseline, baseline_rounds = ColumnarEngine(view, jobs=1).run_fixpoint()
    phases["columnar_in_memory"] = {
        "seconds": round(time.perf_counter() - start, 6),
        "rounds": baseline_rounds,
        "blocks": baseline.num_blocks,
    }

    with TemporaryDirectory(prefix="dkindex-outofcore-") as tmp:
        # Phase 2: page the snapshot out to disk.
        start = time.perf_counter()
        paged = PagedCSRGraph.create(
            Path(tmp) / "store",
            graph,
            page_bytes=page_bytes,
            budget_bytes=budget,
        )
        phases["page_out"] = {
            "seconds": round(time.perf_counter() - start, 6),
            "pages": paged.store.page_count,
            "page_bytes": page_bytes,
            "store_bytes": paged.footprint_bytes,
        }

        with paged:
            # Phase 3: the same fixpoint through the external engine.
            before = paged.stats.snapshot()
            start = time.perf_counter()
            engine = ExternalEngine(paged)
            with engine:
                external, external_rounds = engine.run_fixpoint()
            build_seconds = time.perf_counter() - start
            identical = (
                external == baseline and external_rounds == baseline_rounds
            )
            phases["external_build"] = {
                "seconds": round(build_seconds, 6),
                "rounds": external_rounds,
                "blocks": external.num_blocks,
                "spilled_runs": engine.spilled_runs,
                "partition_identical": identical,
                "pool": paged.stats.delta(before).as_dict(),
            }

            # Phase 4: seeded random lookups, verified against memory.
            rng = random.Random(config.seed)
            before = paged.stats.snapshot()
            verified = 0
            start = time.perf_counter()
            for _ in range(config.queries):
                node = rng.randrange(paged.num_nodes)
                if rng.random() < 0.5:
                    got = paged.children(node)
                    want = view.children(node)
                else:
                    got = paged.parents(node)
                    want = view.parents(node)
                if got == want:
                    verified += 1
            phases["query_sweep"] = {
                "seconds": round(time.perf_counter() - start, 6),
                "queries": config.queries,
                "verified": verified,
                "pool": paged.stats.delta(before).as_dict(),
            }
            overall = paged.stats.as_dict()

    in_memory_s = phases["columnar_in_memory"]["seconds"]
    assert isinstance(in_memory_s, float)
    return {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "dataset": config.dataset,
            "scale": scale_name,
            "scale_factor": scale_factor,
            "seed": config.seed,
            "budget_ratio": config.budget_ratio,
            "page_bytes": page_bytes,
            "queries": config.queries,
        },
        "graph": {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "labels": graph.num_labels,
        },
        "footprint_bytes": footprint,
        "budget_bytes": budget,
        "budget_fraction": round(budget / footprint, 6) if footprint else 1.0,
        "phases": phases,
        "summary": {
            "external_vs_inmemory": (
                round(build_seconds / in_memory_s, 3)
                if in_memory_s > 0
                else float("inf")
            ),
            "partition_identical": identical,
            "queries_verified": verified == config.queries,
            "overall_pool": overall,
        },
    }


def write_report(report: dict[str, object], path: str) -> None:
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: dict[str, object]) -> str:
    """Render the per-phase table plus the verification verdict."""
    phases = report["phases"]
    assert isinstance(phases, dict)
    rows = []
    for name, phase in phases.items():
        pool = phase.get("pool")
        if isinstance(pool, dict):
            traffic = (
                f"{pool['hits']}/{pool['misses']}/{pool['evictions']}"
            )
            rate = f"{pool['hit_rate']:.3f}"
        else:
            traffic = "-"
            rate = "-"
        rows.append(
            [name, f"{phase['seconds'] * 1000:.1f}", traffic, rate]
        )
    config = report["config"]
    summary = report["summary"]
    assert isinstance(config, dict) and isinstance(summary, dict)
    title = (
        f"[OUTOFCORE] {config['dataset']}@{config['scale']}, pool "
        f"{report['budget_bytes']} B "
        f"({float(str(report['budget_fraction'])) * 100:.0f}% of "
        f"{report['footprint_bytes']} B), page {config['page_bytes']} B"
    )
    table = render_table(
        ["phase", "ms", "hit/miss/evict", "hit rate"], rows, title=title
    )
    verdict = (
        "partition identical to in-memory columnar; "
        f"all {config['queries']} queries verified"
        if summary["partition_identical"] and summary["queries_verified"]
        else "VERIFICATION FAILED"
    )
    return f"{table}\n{verdict}"


def main_entry(
    scale: str,
    seed: int,
    budget_ratio: float,
    page_bytes: int | None,
    dataset: str,
    out: str,
) -> int:
    """CLI driver: run, write the JSON, print the summary table.

    Exits non-zero when the external build diverges from the in-memory
    partition or any query disagrees — the harness doubles as an
    end-to-end check, not just a stopwatch.
    """
    config = OutOfCoreBenchConfig(
        scale=scale,
        seed=seed,
        budget_ratio=budget_ratio,
        page_bytes=page_bytes,
        dataset=dataset,
    )
    report = run_outofcore_bench(config)
    write_report(report, out)
    print(format_report(report))
    print(f"wrote {out}")
    summary = report["summary"]
    assert isinstance(summary, dict)
    ok = bool(summary["partition_identical"]) and bool(
        summary["queries_verified"]
    )
    return 0 if ok else 1
