"""Out-of-core refinement harness (``dkindex bench outofcore``).

Answers the question the paged store exists for: *can the external
engine build the same partition as the in-memory columnar engine while
its buffer pool is capped at a fraction of the in-memory footprint —
and what does the page traffic look like while it does?*

One run, on a seeded dataset (XMark by default):

1. **In-memory baseline** — freeze the graph and time the columnar
   fixpoint; the frozen CSR buffers' byte size is the *footprint* the
   pool budget is expressed against.
2. **Page-out** — stream the snapshot into a paged store
   (:mod:`repro.storage.paged`), recording pages, page size and
   wall-clock (creation itself is out-of-core: one page in memory at a
   time).
3. **External build** — run the same fixpoint through
   :class:`~repro.partition.external.ExternalEngine` over the paged
   store with the pool capped at ``budget_ratio`` of the footprint
   (default 0.25, floored at one page), then check the produced
   partition *equals* the in-memory one; the report carries
   ``partition_identical`` so a silent divergence can never hide
   behind good-looking timings.
4. **Query sweep** — seeded random ``children()``/``parents()`` lookups
   against the paged snapshot, each verified against the in-memory
   buffers; random access is the pool's worst case, so its hit rate is
   reported separately from the build's sequential sweeps.

With ``--fault-rate F`` a fifth phase repeats the external build while
a :class:`~repro.maintenance.faults.FaultInjector` fires transient
``EIO`` read faults on a seeded coin at rate ``F``: the build must
still complete — carried entirely by the retry/backoff policy of
:mod:`repro.storage.retry`, never by an engine fallback — and the
report records the injected-fault count, retry counters and the
wall-clock overhead relative to the fault-free build
(``recovery_overhead``).

Per-phase pool counters (hits, misses, evictions, write-backs, hit
rate, retries, give-ups) come from
:class:`~repro.storage.paged.PoolStats` deltas.  The result is written
to ``BENCH_outofcore.json`` following the same committed-trajectory
convention as ``BENCH_refinement.json``.
"""

from __future__ import annotations

import json
import platform
import random
import time
from dataclasses import dataclass
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.bench.harness import DATASET_BUILDERS
from repro.bench.refine import SCALE_NAMES
from repro.bench.reporting import render_table
from repro.exceptions import DatasetError
from repro.maintenance.faults import FaultInjector
from repro.partition.columnar import ColumnarEngine
from repro.partition.external import ExternalEngine
from repro.storage.paged import (
    ENTRY_BYTES,
    PagedCSRGraph,
    resolve_page_bytes,
)
from repro.storage.retry import RetryPolicy, resolve_retry_policy

#: Schema identifier written into the report JSON.
SCHEMA = "dkindex-bench-outofcore/1"

#: Default pool budget as a fraction of the in-memory CSR footprint.
DEFAULT_BUDGET_RATIO = 0.25

#: Random lookups in the query-sweep phase.
DEFAULT_QUERIES = 2000


def parse_scale(text: str) -> tuple[str, float]:
    """One scale token — a named scale or a float — as ``(name, factor)``.

    Raises:
        DatasetError: for a token that is neither named nor numeric.
    """
    name = text.strip()
    factor = SCALE_NAMES.get(name)
    if factor is None:
        try:
            factor = float(name)
        except ValueError:
            raise DatasetError(
                f"unknown bench scale {name!r}; use one of "
                f"{sorted(SCALE_NAMES)} or a number"
            ) from None
    return name, factor


@dataclass(frozen=True)
class OutOfCoreBenchConfig:
    """Knobs of one out-of-core harness run.

    Attributes:
        scale: one scale token (``small``/``medium``/``large`` or a
            float literal) — this harness runs a single cell deeply
            rather than an axis.
        seed: dataset generator and query-sweep seed.
        budget_ratio: pool budget as a fraction of the in-memory CSR
            footprint (floored at one page).
        page_bytes: page size (``None`` reads ``DKINDEX_PAGE_BYTES``).
        dataset: generator name (see
            :data:`repro.bench.harness.DATASET_BUILDERS`).
        queries: random lookups in the query-sweep phase.
        fault_rate: when positive, repeat the external build with
            transient ``EIO`` read faults injected on a seeded coin at
            this rate, and record the retry/recovery overhead.
    """

    scale: str = "medium"
    seed: int = 0
    budget_ratio: float = DEFAULT_BUDGET_RATIO
    page_bytes: int | None = None
    dataset: str = "xmark"
    queries: int = DEFAULT_QUERIES
    fault_rate: float = 0.0

    @property
    def scale_pair(self) -> tuple[str, float]:
        """The ``(name, factor)`` of the configured scale.

        Raises:
            DatasetError: for an invalid scale token.
        """
        return parse_scale(self.scale)


def run_outofcore_bench(config: OutOfCoreBenchConfig) -> dict[str, object]:
    """Run the four phases; return the report dictionary.

    Raises:
        DatasetError: unknown dataset name, invalid scale token, or a
            non-positive budget ratio.
    """
    scale_name, scale_factor = config.scale_pair
    if config.budget_ratio <= 0:
        raise DatasetError(
            f"budget ratio must be positive: {config.budget_ratio}"
        )
    if not 0.0 <= config.fault_rate <= 1.0:
        raise DatasetError(
            f"fault rate must be within [0, 1]: {config.fault_rate}"
        )
    builder = DATASET_BUILDERS.get(config.dataset)
    if builder is None:
        raise DatasetError(
            f"unknown dataset {config.dataset!r}; available: "
            f"{sorted(DATASET_BUILDERS)}"
        )
    page_bytes = resolve_page_bytes(config.page_bytes)

    graph = builder(scale_factor, config.seed).graph
    view = graph.freeze()
    footprint = (
        len(view.label_ids)
        + len(view.child_offsets)
        + len(view.child_targets)
        + len(view.parent_offsets)
        + len(view.parent_targets)
    ) * ENTRY_BYTES
    budget = max(page_bytes, int(footprint * config.budget_ratio))

    phases: dict[str, dict[str, object]] = {}

    # Phase 1: in-memory columnar fixpoint (the baseline).
    start = time.perf_counter()
    baseline, baseline_rounds = ColumnarEngine(view, jobs=1).run_fixpoint()
    phases["columnar_in_memory"] = {
        "seconds": round(time.perf_counter() - start, 6),
        "rounds": baseline_rounds,
        "blocks": baseline.num_blocks,
    }

    # A deeper retry budget for the fault-injected build: at a 10%
    # fault rate the default four attempts give up roughly once per
    # hundred thousand reads, which a large build *will* hit.  Eight
    # attempts push that to one in ~10^9 — the phase measures retry
    # overhead, not give-up luck.
    retry: RetryPolicy | None = None
    if config.fault_rate > 0:
        base = resolve_retry_policy(seed=config.seed)
        retry = RetryPolicy(
            retries=max(base.retries, 8),
            backoff_ms=min(base.backoff_ms, 0.25),
            seed=config.seed,
        )

    with TemporaryDirectory(prefix="dkindex-outofcore-") as tmp:
        # Phase 2: page the snapshot out to disk.
        start = time.perf_counter()
        paged = PagedCSRGraph.create(
            Path(tmp) / "store",
            graph,
            page_bytes=page_bytes,
            budget_bytes=budget,
            retry=retry,
        )
        phases["page_out"] = {
            "seconds": round(time.perf_counter() - start, 6),
            "pages": paged.store.page_count,
            "page_bytes": page_bytes,
            "store_bytes": paged.footprint_bytes,
        }

        with paged:
            # Phase 3: the same fixpoint through the external engine.
            before = paged.stats.snapshot()
            start = time.perf_counter()
            engine = ExternalEngine(paged)
            with engine:
                external, external_rounds = engine.run_fixpoint()
            build_seconds = time.perf_counter() - start
            identical = (
                external == baseline and external_rounds == baseline_rounds
            )
            phases["external_build"] = {
                "seconds": round(build_seconds, 6),
                "rounds": external_rounds,
                "blocks": external.num_blocks,
                "spilled_runs": engine.spilled_runs,
                "partition_identical": identical,
                "pool": paged.stats.delta(before).as_dict(),
            }

            # Phase 3b (optional): the same build under injected
            # transient read faults — completion must come from the
            # retry policy alone (the engine is driven directly, so a
            # retry give-up raises; there is no fallback to hide in).
            faults_ok = True
            if config.fault_rate > 0:
                injector = FaultInjector(
                    "storage.page_read_eio_transient",
                    "transient",
                    seed=config.seed,
                    rate=config.fault_rate,
                )
                before = paged.stats.snapshot()
                start = time.perf_counter()
                with injector:
                    with ExternalEngine(paged) as faulty_engine:
                        faulty, faulty_rounds = faulty_engine.run_fixpoint()
                faulty_seconds = time.perf_counter() - start
                delta = paged.stats.delta(before)
                faults_ok = (
                    faulty == baseline
                    and faulty_rounds == baseline_rounds
                    and delta.give_ups == 0
                )
                phases["external_build_faulty"] = {
                    "seconds": round(faulty_seconds, 6),
                    "fault_rate": config.fault_rate,
                    "faults_injected": injector.fires,
                    "retries": delta.retries,
                    "give_ups": delta.give_ups,
                    "partition_identical": faulty == baseline
                    and faulty_rounds == baseline_rounds,
                    "degraded": False,
                    "recovery_overhead": (
                        round(faulty_seconds / build_seconds, 3)
                        if build_seconds > 0
                        else float("inf")
                    ),
                    "pool": delta.as_dict(),
                }

            # Phase 4: seeded random lookups, verified against memory.
            rng = random.Random(config.seed)
            before = paged.stats.snapshot()
            verified = 0
            start = time.perf_counter()
            for _ in range(config.queries):
                node = rng.randrange(paged.num_nodes)
                if rng.random() < 0.5:
                    got = paged.children(node)
                    want = view.children(node)
                else:
                    got = paged.parents(node)
                    want = view.parents(node)
                if got == want:
                    verified += 1
            phases["query_sweep"] = {
                "seconds": round(time.perf_counter() - start, 6),
                "queries": config.queries,
                "verified": verified,
                "pool": paged.stats.delta(before).as_dict(),
            }
            overall = paged.stats.as_dict()

    in_memory_s = phases["columnar_in_memory"]["seconds"]
    assert isinstance(in_memory_s, float)
    return {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "dataset": config.dataset,
            "scale": scale_name,
            "scale_factor": scale_factor,
            "seed": config.seed,
            "budget_ratio": config.budget_ratio,
            "page_bytes": page_bytes,
            "queries": config.queries,
            "fault_rate": config.fault_rate,
        },
        "graph": {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "labels": graph.num_labels,
        },
        "footprint_bytes": footprint,
        "budget_bytes": budget,
        "budget_fraction": round(budget / footprint, 6) if footprint else 1.0,
        "phases": phases,
        "summary": {
            "external_vs_inmemory": (
                round(build_seconds / in_memory_s, 3)
                if in_memory_s > 0
                else float("inf")
            ),
            "partition_identical": identical,
            "queries_verified": verified == config.queries,
            "faulted_build_ok": faults_ok,
            "overall_pool": overall,
        },
    }


def write_report(report: dict[str, object], path: str) -> None:
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: dict[str, object]) -> str:
    """Render the per-phase table plus the verification verdict."""
    phases = report["phases"]
    assert isinstance(phases, dict)
    rows = []
    for name, phase in phases.items():
        pool = phase.get("pool")
        if isinstance(pool, dict):
            # .get with defaults: reports written before the retry
            # counters existed must still render.
            traffic = (
                f"{pool.get('hits', 0)}/{pool.get('misses', 0)}"
                f"/{pool.get('evictions', 0)}"
            )
            rate = f"{pool.get('hit_rate', 1.0):.3f}"
            retries = f"{pool.get('retries', 0)}/{pool.get('give_ups', 0)}"
        else:
            traffic = "-"
            rate = "-"
            retries = "-"
        rows.append(
            [name, f"{phase['seconds'] * 1000:.1f}", traffic, rate, retries]
        )
    config = report["config"]
    summary = report["summary"]
    assert isinstance(config, dict) and isinstance(summary, dict)
    title = (
        f"[OUTOFCORE] {config['dataset']}@{config['scale']}, pool "
        f"{report['budget_bytes']} B "
        f"({float(str(report['budget_fraction'])) * 100:.0f}% of "
        f"{report['footprint_bytes']} B), page {config['page_bytes']} B"
    )
    table = render_table(
        ["phase", "ms", "hit/miss/evict", "hit rate", "retry/give-up"],
        rows,
        title=title,
    )
    ok = bool(summary["partition_identical"]) and bool(
        summary["queries_verified"]
    )
    ok = ok and bool(summary.get("faulted_build_ok", True))
    verdict = (
        "partition identical to in-memory columnar; "
        f"all {config['queries']} queries verified"
        if ok
        else "VERIFICATION FAILED"
    )
    if "external_build_faulty" in phases:
        faulty = phases["external_build_faulty"]
        verdict += (
            f"\nfaulted build @ rate {faulty['fault_rate']}: "
            f"{faulty['faults_injected']} fault(s) injected, "
            f"{faulty['retries']} retried, {faulty['give_ups']} gave up, "
            f"{faulty['recovery_overhead']}x fault-free wall-clock"
        )
    return f"{table}\n{verdict}"


def main_entry(
    scale: str,
    seed: int,
    budget_ratio: float,
    page_bytes: int | None,
    dataset: str,
    out: str,
    fault_rate: float = 0.0,
) -> int:
    """CLI driver: run, write the JSON, print the summary table.

    Exits non-zero when the external build diverges from the in-memory
    partition, any query disagrees, or the fault-injected build (when
    requested) gave up or diverged — the harness doubles as an
    end-to-end check, not just a stopwatch.
    """
    config = OutOfCoreBenchConfig(
        scale=scale,
        seed=seed,
        budget_ratio=budget_ratio,
        page_bytes=page_bytes,
        dataset=dataset,
        fault_rate=fault_rate,
    )
    report = run_outofcore_bench(config)
    write_report(report, out)
    print(format_report(report))
    print(f"wrote {out}")
    summary = report["summary"]
    assert isinstance(summary, dict)
    ok = (
        bool(summary["partition_identical"])
        and bool(summary["queries_verified"])
        and bool(summary["faulted_build_ok"])
    )
    return 0 if ok else 1
