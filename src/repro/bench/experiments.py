"""The experiments themselves — one function per paper artefact.

Each function takes a dataset name and an :class:`ExperimentConfig`,
returns an :class:`~repro.bench.reporting.ExperimentResult` (structured
points + rendered extras) and never mutates the cached bundle: graphs
are copied before any update runs, so experiments compose in any order.
"""

from __future__ import annotations

import time

from repro.bench.harness import (
    DatasetBundle,
    ExperimentConfig,
    load_dataset,
    workload_average_cost,
)
from repro.bench.reporting import ExperimentResult, SeriesPoint, render_table
from repro.core.construction import build_dk_index
from repro.core.dindex import DKIndex
from repro.core.updates import ak_propagate_add_edge
from repro.indexes.akindex import build_ak_index
from repro.indexes.base import IndexGraph
from repro.workload.mining import coverage_requirements


def _ak_points(bundle: DatasetBundle, config: ExperimentConfig) -> list[SeriesPoint]:
    points = []
    for k in config.ks:
        index = build_ak_index(bundle.graph, k)
        cost, validated = workload_average_cost(index, bundle.load)
        points.append(
            SeriesPoint(f"A({k})", index.num_nodes, cost, validated)
        )
    return points


def run_eval_before_updates(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """FIG4 (xmark) / FIG5 (nasa): evaluation cost vs index size.

    Sweeps A(0)..A(4) and places the D(k) point built from the mined
    query-load requirements.  Expected shape: the D(k) point lies below
    the A(k) trade-off curve.
    """
    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    experiment_id = {"xmark": "FIG4", "nasa": "FIG5"}.get(dataset, "DATASET3")
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"evaluation cost vs index size, {dataset}, before updating",
    )
    result.points.extend(_ak_points(bundle, config))
    dk = bundle.fresh_dk(bundle.graph)  # no mutation happens; reuse graph
    cost, validated = workload_average_cost(dk.index, bundle.load)
    result.points.append(
        SeriesPoint("D(k)", dk.size, cost, validated, note="query-load tuned")
    )
    return result


def run_update_table(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """TAB1: total running time of 100 random IDREF edge additions.

    A(1)..A(4) use the propagate update (re-partitioning against the
    source data); D(k) uses Algorithms 4+5 (index-only).  Expected
    shape: A(k) cost "shoots up dramatically" with k; D(k) is orders of
    magnitude cheaper.  A(0) is excluded like in the paper ("the index
    graph remains unchanged").
    """
    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    result = ExperimentResult(
        experiment_id="TAB1",
        title=f"update efficiency, {dataset}: 100 random edge additions",
    )
    rows: list[list[object]] = []
    for k in config.ks:
        if k == 0:
            continue
        graph = bundle.fresh_graph()
        index = build_ak_index(graph, k)
        data_touched = 0
        started = time.perf_counter()
        for src, dst in bundle.update_edges:
            report = ak_propagate_add_edge(graph, index, src, dst, k)
            data_touched += report.data_nodes_touched
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        rows.append([f"A({k})", f"{elapsed_ms:.1f}", data_touched, index.num_nodes])
        result.points.append(
            SeriesPoint(f"A({k})", index.num_nodes, elapsed_ms, note="ms total")
        )
    dk = bundle.fresh_dk()
    index_touched = 0
    started = time.perf_counter()
    for src, dst in bundle.update_edges:
        edge_report = dk.add_edge(src, dst)
        index_touched += edge_report.index_nodes_touched
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    rows.append(["D(k)", f"{elapsed_ms:.1f}", 0, dk.size])
    result.points.append(
        SeriesPoint(
            "D(k)", dk.size, elapsed_ms,
            note=f"ms total; {index_touched} index nodes touched, 0 data",
        )
    )
    result.extra_lines.append(
        render_table(
            ["index", "running time (ms)", "data nodes touched", "size after"],
            rows,
            title=f"Table 1 ({dataset}): accumulated update time, "
            f"{len(bundle.update_edges)} edges",
        )
    )
    return result


def _updated_indexes(
    bundle: DatasetBundle, config: ExperimentConfig
) -> tuple[list[tuple[int, IndexGraph]], DKIndex]:
    """A(k) and D(k) after applying the shared update-edge list."""
    ak_after: list[tuple[int, IndexGraph]] = []
    for k in config.ks:
        graph = bundle.fresh_graph()
        index = build_ak_index(graph, k)
        for src, dst in bundle.update_edges:
            ak_propagate_add_edge(graph, index, src, dst, k)
        ak_after.append((k, index))
    dk = bundle.fresh_dk()
    for src, dst in bundle.update_edges:
        dk.add_edge(src, dst)
    return ak_after, dk


def run_eval_after_updates(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """FIG6 (xmark) / FIG7 (nasa): evaluation cost vs size after updates.

    Expected shape: D(k)'s cost rises (it now validates) but its size is
    unchanged, while A(k) sizes grow dramatically; factoring both, D(k)
    stays better than or comparable to the best A(k).
    """
    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    result = ExperimentResult(
        experiment_id="FIG6" if dataset == "xmark" else "FIG7",
        title=f"evaluation cost vs index size, {dataset}, after updating",
    )
    ak_after, dk = _updated_indexes(bundle, config)
    for k, index in ak_after:
        cost, validated = workload_average_cost(index, bundle.load)
        result.points.append(
            SeriesPoint(f"A({k})", index.num_nodes, cost, validated)
        )
    cost, validated = workload_average_cost(dk.index, bundle.load)
    result.points.append(
        SeriesPoint("D(k)", dk.size, cost, validated, note="size unchanged")
    )
    return result


def run_promote(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """PROMOTE: the experiment the paper defers to its full version.

    After the FIG6/FIG7 update stream, run the promoting process to
    restore the mined requirements, and measure cost/size before and
    after (plus the promotion's own running time).  Expected shape:
    promotion is cheap and recovers (most of) the pre-update cost at a
    modest size increase.
    """
    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    result = ExperimentResult(
        experiment_id="PROMOTE",
        title=f"promoting after updates, {dataset}",
    )
    dk = bundle.fresh_dk()
    cost0, validated0 = workload_average_cost(dk.index, bundle.load)
    result.points.append(SeriesPoint("D(k) fresh", dk.size, cost0, validated0))
    for src, dst in bundle.update_edges:
        dk.add_edge(src, dst)
    cost1, validated1 = workload_average_cost(dk.index, bundle.load)
    result.points.append(SeriesPoint("D(k) updated", dk.size, cost1, validated1))
    started = time.perf_counter()
    report = dk.promote()
    promote_ms = (time.perf_counter() - started) * 1000.0
    cost2, validated2 = workload_average_cost(dk.index, bundle.load)
    result.points.append(
        SeriesPoint(
            "D(k) promoted", dk.size, cost2, validated2,
            note=f"{promote_ms:.1f} ms, {report.index_nodes_split} splits",
        )
    )
    return result


def run_demote(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """DEMOTE: shrink the index with median-coverage requirement mining.

    Rare long queries lose their soundness guarantee (they validate);
    everything else stays index-only.  Expected shape: a meaningful size
    reduction for a bounded cost increase — the trade the demoting
    process exists to make.
    """
    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    result = ExperimentResult(
        experiment_id="DEMOTE",
        title=f"demoting to median-coverage requirements, {dataset}",
    )
    dk = bundle.fresh_dk(bundle.graph)
    cost0, validated0 = workload_average_cost(dk.index, bundle.load)
    result.points.append(SeriesPoint("D(k) exact reqs", dk.size, cost0, validated0))
    lowered = coverage_requirements(bundle.load, coverage=0.5)
    started = time.perf_counter()
    removed = dk.demote(lowered)
    demote_ms = (time.perf_counter() - started) * 1000.0
    cost1, validated1 = workload_average_cost(dk.index, bundle.load)
    result.points.append(
        SeriesPoint(
            "D(k) demoted", dk.size, cost1, validated1,
            note=f"{demote_ms:.1f} ms, merged away {removed} nodes",
        )
    )
    return result


def run_subgraph(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """SUBGRAPH: Algorithm 3 (incremental document insert) vs rebuild.

    Inserts a second, smaller document of the same schema under the root
    and compares the incremental index against a from-scratch rebuild —
    they must coincide in size (Theorem 2), with the incremental path
    cheaper because it never re-partitions the original data.
    """
    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    from repro.bench.harness import DATASET_BUILDERS  # local to avoid cycle

    newcomer = DATASET_BUILDERS[dataset](
        max(config.scale * 0.25, 0.02), config.dataset_seed + 1
    )
    result = ExperimentResult(
        experiment_id="SUBGRAPH",
        title=f"subgraph addition (Algorithm 3) vs rebuild, {dataset}",
    )

    dk = bundle.fresh_dk()
    started = time.perf_counter()
    dk.add_subgraph(newcomer.graph)
    incremental_ms = (time.perf_counter() - started) * 1000.0
    cost_inc, validated_inc = workload_average_cost(dk.index, bundle.load)
    result.points.append(
        SeriesPoint(
            "D(k) incremental", dk.size, cost_inc, validated_inc,
            note=f"{incremental_ms:.1f} ms",
        )
    )

    combined = bundle.fresh_graph()
    combined.graft(newcomer.graph)
    started = time.perf_counter()
    rebuilt, _levels = build_dk_index(combined, bundle.requirements)
    rebuild_ms = (time.perf_counter() - started) * 1000.0
    cost_reb, validated_reb = workload_average_cost(rebuilt, bundle.load)
    result.points.append(
        SeriesPoint(
            "D(k) rebuilt", rebuilt.num_nodes, cost_reb, validated_reb,
            note=f"{rebuild_ms:.1f} ms",
        )
    )
    return result


def run_construct(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """CONSTRUCT: construction-time scaling (the O(k·m) claim).

    Measures A(k) construction time across k on the full graph, and
    D(k) construction across dataset scales.
    """
    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    result = ExperimentResult(
        experiment_id="CONSTRUCT",
        title=f"construction time scaling, {dataset}",
    )
    rows: list[list[object]] = []
    for k in config.ks:
        started = time.perf_counter()
        index = build_ak_index(bundle.graph, k)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        rows.append([f"A({k})", f"{elapsed_ms:.1f}", index.num_nodes])
        result.points.append(
            SeriesPoint(f"A({k})", index.num_nodes, elapsed_ms, note="ms build")
        )
    started = time.perf_counter()
    dk = DKIndex.build(bundle.graph, bundle.requirements)
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    rows.append(["D(k)", f"{elapsed_ms:.1f}", dk.size])
    result.points.append(
        SeriesPoint("D(k)", dk.size, elapsed_ms, note="ms build")
    )
    result.extra_lines.append(
        render_table(
            ["index", "construction (ms)", "size"],
            rows,
            title=f"construction scaling on {dataset} "
            f"({bundle.graph.num_edges} data edges)",
        )
    )
    return result


def run_precision(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """PRECISION: raw (unvalidated) answer precision vs index size.

    Quantifies *why* D(k) wins: its mined similarities give perfect raw
    precision on the workload at a size no equally-precise A(k) matches.
    """
    from repro.indexes.metrics import index_metrics, load_precision

    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    result = ExperimentResult(
        experiment_id="PRECISION",
        title=f"raw answer precision vs index size, {dataset}",
    )
    for k in config.ks:
        index = build_ak_index(bundle.graph, k)
        result.points.append(
            SeriesPoint(
                f"A({k})",
                index.num_nodes,
                load_precision(index, bundle.load),
                note=f"compression {index_metrics(index).compression:.1f}x",
            )
        )
    dk = bundle.fresh_dk(bundle.graph)
    result.points.append(
        SeriesPoint(
            "D(k)",
            dk.size,
            load_precision(dk.index, bundle.load),
            note=f"compression {index_metrics(dk.index).compression:.1f}x",
        )
    )
    return result


def run_twig(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """TWIG: branching queries through the F&B-index vs direct evaluation."""
    from repro.indexes.fbindex import build_fb_index, evaluate_twig_on_fb
    from repro.indexes.oneindex import build_1index
    from repro.paths.cost import CostCounter
    from repro.paths.twig import evaluate_twig, parse_twig

    patterns = {
        "xmark": [
            "item[incategory]/name",
            "open_auction[bidder]/seller",
            "open_auction[bidder/increase]/itemref",
            "person[profile/interest]/name",
            "item[mailbox/mail]//text",
            "closed_auction[annotation]/price",
            "person[address/city][phone]/name",
        ],
        "nasa": [
            "dataset[keywords]/title",
            "dataset[author/lastName]/identifier",
            "dataset[history/revisions]//para",
            "reference[source/journal]//title",
            "dataset[tableHead/fields]/title",
        ],
    }
    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    graph = bundle.graph
    queries = [parse_twig(text) for text in patterns[dataset]]

    fb = build_fb_index(graph)
    index_cost = CostCounter()
    data_cost = CostCounter()
    for query in queries:
        got = evaluate_twig_on_fb(fb, query, index_cost)
        want = evaluate_twig(graph, query, data_cost)
        if got != want:  # pragma: no cover - correctness guard
            raise AssertionError(f"F&B twig mismatch on {query.to_text()}")

    result = ExperimentResult(
        experiment_id="TWIG",
        title=f"branching queries via the F&B-index, {dataset}",
    )
    result.points.append(
        SeriesPoint(
            "data graph", graph.num_nodes,
            data_cost.total / len(queries), note="direct evaluation",
        )
    )
    result.points.append(
        SeriesPoint(
            "F&B", fb.num_nodes,
            index_cost.total / len(queries), note="exact, no validation",
        )
    )
    one = build_1index(graph)
    result.points.append(
        SeriesPoint(
            "1-index (size ref)", one.num_nodes, 0.0,
            note="not sound for twigs",
        )
    )
    return result


def run_drift(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """DRIFT: tuner-managed D(k) vs static D(k) under a load shift."""
    from repro.core.tuner import AdaptiveTuner, TunerConfig
    from repro.paths.cost import CostCounter
    from repro.workload.generator import WorkloadConfig, generate_test_paths

    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    short = generate_test_paths(
        bundle.graph, WorkloadConfig(count=40, min_length=2, max_length=2),
        seed=101,
    )
    long = generate_test_paths(
        bundle.graph, WorkloadConfig(count=40, min_length=4, max_length=5),
        seed=102,
    )
    phases = [("short", short), ("long", long), ("short again", short)]

    def play(
        dk: DKIndex, tuner: AdaptiveTuner | None = None
    ) -> list[tuple[float, int]]:
        outcomes: list[tuple[float, int]] = []
        for _name, load in phases:
            total = 0
            for query in load.expanded():
                counter = CostCounter()
                dk.evaluate(query, counter)
                total += counter.total
                if tuner is not None:
                    tuner.observe(query)
            outcomes.append((total / load.total_weight, dk.size))
        return outcomes

    result = ExperimentResult(
        experiment_id="DRIFT",
        title=f"adaptive vs static D(k) under query-load drift, {dataset}",
    )
    static = DKIndex.from_query_load(bundle.fresh_graph(), list(short))
    static_outcomes = play(static)
    adaptive = DKIndex.from_query_load(bundle.fresh_graph(), list(short))
    tuner = AdaptiveTuner(
        adaptive, TunerConfig(window=40, min_queries=10, check_every=10)
    )
    adaptive_outcomes = play(adaptive, tuner)
    for (name, _load), (s_cost, s_size), (a_cost, a_size) in zip(
        phases, static_outcomes, adaptive_outcomes
    ):
        result.points.append(SeriesPoint(f"static {name}", s_size, s_cost))
        result.points.append(SeriesPoint(f"adaptive {name}", a_size, a_cost))
    return result


def run_dataguide(
    dataset: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """GUIDE: the Section 2 claim about strong DataGuides.

    "In the worst case, the number of index nodes in the strong
    DataGuide can be exponential related to the size of the data graph.
    This exponential behavior makes the strong DataGuide inappropriate
    for complex graph-structured data."  We build it (with a node cap)
    next to the 1-index on each dataset; on the reference-heavy NASA
    data the determinization blows straight through the cap.
    """
    from repro.exceptions import IndexError_
    from repro.indexes.dataguide import build_strong_dataguide
    from repro.indexes.oneindex import build_1index

    config = config or ExperimentConfig()
    bundle = load_dataset(dataset, config)
    graph = bundle.graph
    cap = max(20 * graph.num_nodes, 100_000)
    result = ExperimentResult(
        experiment_id="GUIDE",
        title=f"strong DataGuide vs 1-index size, {dataset}",
    )
    result.points.append(SeriesPoint("data graph", graph.num_nodes, 0.0))
    one = build_1index(graph)
    result.points.append(SeriesPoint("1-index", one.num_nodes, 0.0))
    try:
        guide = build_strong_dataguide(graph, max_nodes=cap)
        result.points.append(
            SeriesPoint("strong DataGuide", guide.num_nodes, 0.0)
        )
    except IndexError_:
        result.points.append(
            SeriesPoint(
                "strong DataGuide", cap, 0.0,
                note=f"EXPLODED past the {cap}-node cap (determinization)",
            )
        )
    return result


#: Experiment registry for the CLI: id -> (function, datasets).
EXPERIMENTS = {
    "fig4": (run_eval_before_updates, ["xmark"]),
    "fig5": (run_eval_before_updates, ["nasa"]),
    "table1": (run_update_table, ["xmark", "nasa"]),
    "fig6": (run_eval_after_updates, ["xmark"]),
    "fig7": (run_eval_after_updates, ["nasa"]),
    "promote": (run_promote, ["xmark", "nasa"]),
    "demote": (run_demote, ["xmark", "nasa"]),
    "subgraph": (run_subgraph, ["xmark", "nasa"]),
    "construct": (run_construct, ["xmark", "nasa"]),
    "precision": (run_precision, ["xmark", "nasa"]),
    "twig": (run_twig, ["xmark", "nasa"]),
    "drift": (run_drift, ["xmark"]),
    # Extension third corpus: the FIG4 protocol on a shallow/wide
    # bibliography, checking the headline result generalises.
    "dataset3": (run_eval_before_updates, ["dblp"]),
    "guide": (run_dataguide, ["xmark", "nasa", "dblp"]),
}
