"""Shared experiment plumbing: datasets, workloads, edge sampling, cost.

Every experiment needs the same scaffolding — generate a dataset, derive
the paper's 100-test-path workload, mine D(k) requirements, sample
random ID/IDREF edges for the update experiments — so it lives here once
and is cached per configuration (the benchmark files call into the same
bundles repeatedly).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.dindex import DKIndex
from repro.datasets.dblp import generate_dblp
from repro.datasets.dtd import GeneratedDocument
from repro.datasets.nasa import generate_nasa
from repro.datasets.xmark import generate_xmark
from repro.exceptions import DatasetError
from repro.graph.datagraph import DataGraph
from repro.indexes.base import IndexGraph
from repro.indexes.evaluation import evaluate_on_index
from repro.paths.cost import CostCounter, CostSummary
from repro.workload.generator import WorkloadConfig, generate_test_paths
from repro.workload.mining import exact_requirements
from repro.workload.queryload import QueryLoad


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    Attributes:
        scale: dataset scale factor (1.0 ≈ the paper-sized stand-ins;
            benchmarks default lower to keep CI runs quick).
        dataset_seed / workload_seed / update_seed: RNG seeds.
        num_queries: workload size (paper: 100).
        num_update_edges: random new edges for TAB1/FIG6/FIG7 (paper: 100).
        ks: the A(k) family to sweep (paper: 0..4).
    """

    scale: float = 1.0
    dataset_seed: int = 0
    workload_seed: int = 1
    update_seed: int = 42
    num_queries: int = 100
    num_update_edges: int = 100
    ks: tuple[int, ...] = (0, 1, 2, 3, 4)

    def scaled(self, scale: float) -> "ExperimentConfig":
        """A copy at a different dataset scale."""
        return replace(self, scale=scale)


#: Registry of dataset builders by name.  XMark and NASA are the paper's
#: corpora; DBLP is the extension third corpus (shallow and very wide).
DATASET_BUILDERS: dict[str, Callable[[float, int], GeneratedDocument]] = {
    "xmark": lambda scale, seed: generate_xmark(scale=scale, seed=seed),
    "nasa": lambda scale, seed: generate_nasa(scale=scale, seed=seed),
    "dblp": lambda scale, seed: generate_dblp(scale=scale, seed=seed),
}


@dataclass
class DatasetBundle:
    """A dataset plus everything the experiments derive from it.

    Attributes:
        name: dataset name ("xmark"/"nasa").
        document: the generated document (graph + reference metadata).
        load: the 100-test-path query load.
        requirements: mined per-label D(k) requirements.
        update_edges: the sampled ``(src, dst)`` data-node pairs used by
            the update experiments (same list for every index, so the
            comparison is paired).
    """

    name: str
    config: ExperimentConfig
    document: GeneratedDocument
    load: QueryLoad
    requirements: dict[str, int]
    update_edges: list[tuple[int, int]] = field(default_factory=list)

    @property
    def graph(self) -> DataGraph:
        """The pristine data graph (copy before mutating!)."""
        return self.document.graph

    def fresh_graph(self) -> DataGraph:
        """An independent copy of the data graph for mutation."""
        return self.document.graph.copy()

    def fresh_dk(self, graph: DataGraph | None = None) -> DKIndex:
        """A freshly built D(k)-index over ``graph`` (default: a copy)."""
        target = graph if graph is not None else self.fresh_graph()
        return DKIndex.build(target, self.requirements)


_BUNDLE_CACHE: dict[tuple[str, ExperimentConfig], DatasetBundle] = {}


def load_dataset(name: str, config: ExperimentConfig | None = None) -> DatasetBundle:
    """Build (or fetch from cache) the full bundle for a dataset.

    Raises:
        DatasetError: for unknown dataset names.
    """
    config = config or ExperimentConfig()
    key = (name, config)
    cached = _BUNDLE_CACHE.get(key)
    if cached is not None:
        return cached

    builder = DATASET_BUILDERS.get(name)
    if builder is None:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_BUILDERS)}"
        )
    document = builder(config.scale, config.dataset_seed)
    load = generate_test_paths(
        document.graph,
        WorkloadConfig(count=config.num_queries),
        seed=config.workload_seed,
    )
    requirements = exact_requirements(load)
    update_edges = sample_reference_edges(
        document.graph,
        document.reference_pairs,
        config.num_update_edges,
        random.Random(config.update_seed),
    )
    bundle = DatasetBundle(
        name=name,
        config=config,
        document=document,
        load=load,
        requirements=requirements,
        update_edges=update_edges,
    )
    _BUNDLE_CACHE[key] = bundle
    return bundle


def sample_reference_edges(
    graph: DataGraph,
    reference_pairs: list[tuple[str, str]],
    count: int,
    rng: random.Random,
) -> list[tuple[int, int]]:
    """Sample ``count`` fresh edges between ID/IDREF label groups.

    Implements the paper's update protocol: "we randomly choose a pair
    of ID/IDREF labels in the DTD file and one data node from each label
    group; then, a new edge is added between these two data nodes."
    Edges already present (or already sampled) are re-drawn.

    Raises:
        DatasetError: if the dataset declares no reference pairs.
    """
    if not reference_pairs:
        raise DatasetError("dataset has no ID/IDREF label pairs to sample from")
    pools: dict[str, list[int]] = {}

    def pool(label: str) -> list[int]:
        nodes = pools.get(label)
        if nodes is None:
            nodes = graph.nodes_with_label(label)
            pools[label] = nodes
        return nodes

    edges: list[tuple[int, int]] = []
    chosen: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = count * 100
    while len(edges) < count and attempts < max_attempts:
        attempts += 1
        src_label, dst_label = rng.choice(reference_pairs)
        src_pool, dst_pool = pool(src_label), pool(dst_label)
        if not src_pool or not dst_pool:
            continue
        src, dst = rng.choice(src_pool), rng.choice(dst_pool)
        if src == dst or (src, dst) in chosen or graph.has_edge(src, dst):
            continue
        chosen.add((src, dst))
        edges.append((src, dst))
    return edges


def workload_average_cost(
    index: IndexGraph, load: QueryLoad
) -> tuple[float, float]:
    """Evaluate every query of the load on the index.

    Returns:
        ``(average cost, validation fraction)`` — the paper's Y-axis
        metric ("the average number of nodes visited over all test
        paths", weighted by query frequency) and the share of queries
        that needed validation.
    """
    summary = CostSummary()
    for query, weight in load.items():
        counter = CostCounter()
        evaluate_on_index(index, query, counter)
        for _ in range(weight):
            summary.add(counter)
    return summary.average_cost, summary.validation_fraction
