"""Experiment harness regenerating every table and figure of the paper.

Experiments (ids match DESIGN.md's per-experiment index):

========  ============================================================
FIG4      evaluation cost vs index size, XMark, before updates
FIG5      evaluation cost vs index size, NASA, before updates
TAB1      update running time, 100 random IDREF edges, both datasets
FIG6      evaluation cost vs index size, XMark, after updates
FIG7      evaluation cost vs index size, NASA, after updates
PROMOTE   deferred "full version" experiment: promoting after updates
DEMOTE    ablation: demoting to lower requirements
SUBGRAPH  Algorithm 3 vs full rebuild
CONSTRUCT construction-time scaling in k and in graph size
========  ============================================================

Run from the CLI (``python -m repro bench fig4``) or through
pytest-benchmark (``pytest benchmarks/``).
"""

from repro.bench.harness import (
    DatasetBundle,
    ExperimentConfig,
    load_dataset,
    sample_reference_edges,
    workload_average_cost,
)
from repro.bench.experiments import (
    run_construct,
    run_demote,
    run_eval_after_updates,
    run_eval_before_updates,
    run_promote,
    run_subgraph,
    run_update_table,
)
from repro.bench.refine import RefineBenchConfig, run_refine_bench

__all__ = [
    "DatasetBundle",
    "ExperimentConfig",
    "RefineBenchConfig",
    "load_dataset",
    "run_construct",
    "run_demote",
    "run_eval_after_updates",
    "run_eval_before_updates",
    "run_promote",
    "run_refine_bench",
    "run_subgraph",
    "run_update_table",
    "sample_reference_edges",
    "workload_average_cost",
]
