"""Recovery timing harness (``dkindex bench recovery``).

The checkpoint store earns its keep only if climbing the ladder's first
rung — load the sealed snapshot, replay the committed journal suffix,
deep-audit — is actually cheaper than the alternative of rebuilding the
index from the data graph with Algorithm 2.  This harness prices both
on the paper's datasets and records the ratio to
``BENCH_recovery.json`` so "recovery beats rebuild" is a tracked
number, not a belief.

Per dataset, one untimed setup builds a checkpoint store and journals a
seeded stream of committed edge additions into it.  Then two arms are
timed over identical on-disk state:

- ``recover`` — :meth:`~repro.maintenance.store.CheckpointStore.recover`
  end to end (artifact scan, snapshot load, journal replay, deep
  audit);
- ``rebuild`` — what recovery's last rung does when every snapshot and
  journal base is gone: load the data graph out of the snapshot
  document, run Algorithm 2 from scratch, replay the same journal
  suffix, deep-audit.

Both arms read the same files and end in the same audited state, so the
ratio isolates exactly what the snapshot buys: partition loading versus
full bisimulation refinement.
"""

from __future__ import annotations

import json
import platform
import statistics
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.bench.harness import DATASET_BUILDERS
from repro.bench.refine import SCALE_NAMES, synthetic_requirements
from repro.bench.reporting import render_table
from repro.bench.update import _edge_stream
from repro.core.construction import build_dk_index
from repro.core.dindex import DKIndex
from repro.exceptions import DatasetError, RecoveryError
from repro.maintenance.audit import run_audit
from repro.maintenance.journal import apply_journal_op, scan_journal
from repro.maintenance.pipeline import UpdatePipeline
from repro.maintenance.store import (
    CheckpointStore,
    journal_name,
    read_document,
    snapshot_name,
)

#: Schema identifier written into (and expected from) the report JSON.
SCHEMA = "dkindex-bench-recovery/1"

#: Timed arms, in report order.
ARMS = ("recover", "rebuild")


@dataclass(frozen=True)
class RecoveryBenchConfig:
    """Knobs of one harness run.

    Attributes:
        scale: named scale (``small``/``medium``/``large``) or a float
            literal like ``"0.4"``.
        repeats: timed runs per (dataset, arm); the report records the
            median.
        seed: dataset generator and edge-stream seed.
        edges: committed edge additions journaled before timing (the
            replay suffix both arms pay for).
        datasets: generator names to measure.
    """

    scale: str = "small"
    repeats: int = 5
    seed: int = 0
    edges: int = 20
    datasets: tuple[str, ...] = ("xmark", "nasa")

    @property
    def scale_factor(self) -> float:
        """The numeric dataset scale behind the (possibly named) scale.

        Raises:
            DatasetError: if the scale is neither named nor numeric.
        """
        named = SCALE_NAMES.get(self.scale)
        if named is not None:
            return named
        try:
            return float(self.scale)
        except ValueError:
            raise DatasetError(
                f"unknown bench scale {self.scale!r}; use one of "
                f"{sorted(SCALE_NAMES)} or a number"
            ) from None


def _build_store(
    dataset: str, config: RecoveryBenchConfig, directory: Path
) -> dict[str, int]:
    """Untimed setup: checkpoint store + journaled edge stream."""
    builder = DATASET_BUILDERS.get(dataset)
    if builder is None:
        raise DatasetError(
            f"unknown dataset {dataset!r}; available: {sorted(DATASET_BUILDERS)}"
        )
    graph = builder(config.scale_factor, config.seed).graph
    requirements = synthetic_requirements(graph)
    index, _levels = build_dk_index(graph, requirements)
    dk = DKIndex(graph, index, requirements)
    store = CheckpointStore.create(directory, dk)
    pipeline = UpdatePipeline(dk, store.maintenance_config(audit="off"))
    stream = _edge_stream(graph, config.edges, config.seed)
    for src, dst in stream:
        pipeline.add_edge(src, dst)
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "labels": graph.num_labels,
        "journaled_ops": len(stream),
    }


def _timed_recover(directory: Path) -> float:
    """One end-to-end :meth:`CheckpointStore.recover`, timed.

    Raises:
        RecoveryError: when the ladder fails (the benchmark is then
            meaningless and must not silently report a fast failure).
    """
    start = time.perf_counter()
    report = CheckpointStore(directory).recover()
    elapsed = time.perf_counter() - start
    if not report.recovered:
        raise RecoveryError(
            f"benchmark store {directory} failed to recover:\n{report.format()}"
        )
    return elapsed


def _timed_rebuild(directory: Path) -> float:
    """The last-rung alternative: Algorithm-2 rebuild + replay + audit."""
    start = time.perf_counter()
    from repro.graph.serialize import graph_from_dict

    document = read_document(directory / snapshot_name(1))
    embedded = document.get("graph")
    assert isinstance(embedded, dict)
    graph = graph_from_dict(embedded)
    raw = document.get("requirements") or {}
    requirements = {str(name): int(value) for name, value in dict(raw).items()}
    index, _levels = build_dk_index(graph, requirements)
    dk = DKIndex(graph, index, requirements)
    scan = scan_journal(directory / journal_name(1))
    for seq, op, args in scan.committed_ops:
        apply_journal_op(dk, op, args, source=f"{directory} seq {seq}")
    run_audit(dk.index, "deep")
    return time.perf_counter() - start


def run_recovery_bench(config: RecoveryBenchConfig) -> dict[str, object]:
    """Run every (dataset, arm) cell; return the report.

    Raises:
        DatasetError: for unknown dataset names or scales.
        RecoveryError: if a timed recovery fails outright.
    """
    dataset_stats: dict[str, dict[str, int]] = {}
    results: list[dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="dk-bench-recovery-") as scratch:
        for name in config.datasets:
            directory = Path(scratch) / name
            dataset_stats[name] = _build_store(name, config, directory)
            for arm in ARMS:
                timer = _timed_recover if arm == "recover" else _timed_rebuild
                times = [timer(directory) for _ in range(config.repeats)]
                results.append(
                    {
                        "dataset": name,
                        "arm": arm,
                        "median_s": statistics.median(times),
                        "times_s": times,
                    }
                )

    return {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "scale": config.scale,
            "scale_factor": config.scale_factor,
            "repeats": config.repeats,
            "seed": config.seed,
            "edges": config.edges,
            "datasets": list(config.datasets),
        },
        "datasets": dataset_stats,
        "results": results,
        "speedups": _speedups(results),
    }


def _speedups(results: list[dict[str, object]]) -> dict[str, dict[str, float]]:
    """Per dataset: arm medians plus the tracked rebuild/recover ratio."""
    medians: dict[tuple[str, str], float] = {}
    for row in results:
        median = row["median_s"]
        assert isinstance(median, float)
        medians[(str(row["dataset"]), str(row["arm"]))] = median
    speedups: dict[str, dict[str, float]] = {}
    for dataset in sorted({dataset for dataset, _arm in medians}):
        entry = {
            f"{arm}_s": medians[(dataset, arm)]
            for arm in ARMS
            if (dataset, arm) in medians
        }
        recover = medians.get((dataset, "recover"))
        rebuild = medians.get((dataset, "rebuild"))
        if recover and rebuild:
            entry["rebuild_over_recover"] = rebuild / recover
        speedups[dataset] = entry
    return speedups


def write_report(report: dict[str, object], path: str) -> None:
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: dict[str, object]) -> str:
    """Render the recover-versus-rebuild comparison as a text table."""
    speedups = report["speedups"]
    assert isinstance(speedups, dict)
    rows = []
    for dataset, entry in speedups.items():
        rows.append(
            [
                dataset,
                *(
                    f"{entry[f'{arm}_s'] * 1000:.1f}"
                    if f"{arm}_s" in entry
                    else "-"
                    for arm in ARMS
                ),
                f"{entry.get('rebuild_over_recover', float('nan')):.2f}x",
            ]
        )
    config = report["config"]
    assert isinstance(config, dict)
    title = (
        f"[RECOVERY] snapshot+replay vs full rebuild, scale "
        f"{config['scale']} (factor {config['scale_factor']}), "
        f"{config['edges']} journaled ops, median of "
        f"{config['repeats']} run(s)"
    )
    return render_table(
        ["dataset", "recover (ms)", "rebuild (ms)", "rebuild/recover"],
        rows,
        title=title,
    )


def main_entry(
    scale: str,
    repeats: int,
    seed: int,
    edges: int,
    datasets: tuple[str, ...],
    out: str,
) -> int:
    """CLI driver: run, write the JSON, print the summary table."""
    config = RecoveryBenchConfig(
        scale=scale,
        repeats=repeats,
        seed=seed,
        edges=edges,
        datasets=datasets,
    )
    report = run_recovery_bench(config)
    write_report(report, out)
    print(format_report(report))
    print(f"wrote {out}")
    return 0
