"""Refinement-engine timing harness (``dkindex bench refine``).

Every index this library builds funnels through partition refinement, so
this harness times the four construction workloads that exercise it —

- ``ak_sweep`` — the A(k) family sweep (``kbisim_partition`` for each k),
- ``oneindex_fixpoint`` — the 1-index bisimulation fixpoint
  (``bisim_partition``), the deepest refinement and the headline number,
- ``dk_build`` — the leveled D(k) construction (Algorithm 2),
- ``table1_reindex`` — the Table-1 update path: re-indexing the index
  graph at lowered levels (Theorem 2 / ``reindex_index_graph``)

— on the seeded XMark/NASA generators, once per engine (``legacy``
full-rehash vs ``worklist``; plus the parallel worklist when ``jobs >
1``), and writes the medians to ``BENCH_refinement.json``.  The
committed baseline is this file's first entry; every future perf PR
re-runs the harness so the repository carries a recorded performance
trajectory instead of anecdotes.  Timings are wall-clock medians over
``repeats`` runs of freshly-seeded, deterministic inputs, so runs are
comparable across commits on the same machine.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass
from typing import Callable

from repro.bench.harness import DATASET_BUILDERS
from repro.bench.reporting import render_table
from repro.core.construction import build_dk_index, reindex_index_graph
from repro.exceptions import DatasetError
from repro.graph.datagraph import ROOT_LABEL, VALUE_LABEL, DataGraph
from repro.indexes.base import IndexGraph
from repro.partition.refinement import bisim_partition, kbisim_partition

#: Schema identifier written into (and expected from) the report JSON.
SCHEMA = "dkindex-bench-refinement/1"

#: Named scales: dataset scale factors sized so "small" suits CI smoke
#: runs and "large" stresses the worklist on ~10^5-edge graphs.
SCALE_NAMES: dict[str, float] = {"small": 0.2, "medium": 0.6, "large": 1.5}

#: The engines every scenario is timed under (name, jobs-override).
SERIAL_ENGINES: tuple[tuple[str, int], ...] = (
    ("legacy", 1),
    ("worklist", 1),
)


@dataclass(frozen=True)
class RefineBenchConfig:
    """Knobs of one harness run.

    Attributes:
        scale: named scale (``small``/``medium``/``large``) or a float
            literal like ``"0.4"``.
        repeats: timed runs per (dataset, scenario, engine); the report
            records the median.
        seed: dataset generator seed.
        jobs: worker processes for the additional parallel-worklist
            rows; ``<= 1`` skips them (the serial engines always run).
        datasets: generator names to measure (see
            :data:`repro.bench.harness.DATASET_BUILDERS`).
        ks: the A(k) sweep.
    """

    scale: str = "small"
    repeats: int = 3
    seed: int = 0
    jobs: int = 0
    datasets: tuple[str, ...] = ("xmark", "nasa")
    ks: tuple[int, ...] = (0, 1, 2, 3, 4)

    @property
    def scale_factor(self) -> float:
        """The numeric dataset scale behind the (possibly named) scale.

        Raises:
            DatasetError: if the scale is neither named nor numeric.
        """
        named = SCALE_NAMES.get(self.scale)
        if named is not None:
            return named
        try:
            return float(self.scale)
        except ValueError:
            raise DatasetError(
                f"unknown bench scale {self.scale!r}; use one of "
                f"{sorted(SCALE_NAMES)} or a number"
            ) from None


def synthetic_requirements(graph: DataGraph) -> dict[str, int]:
    """Deterministic varied per-label requirements for the D(k) build.

    Real requirement mining needs a query workload, which would dominate
    the measurement; instead each non-structural label gets a
    requirement cycling through 1..3 (sorted by name, so the map — and
    therefore the leveled refinement being timed — is identical on every
    run and machine).
    """
    names = sorted(
        name
        for name in graph.label_names()
        if name not in (ROOT_LABEL, VALUE_LABEL)
    )
    return {name: 1 + position % 3 for position, name in enumerate(names)}


def _time_repeats(action: Callable[[], object], repeats: int) -> list[float]:
    """Wall-clock seconds for ``repeats`` runs of ``action``."""
    times: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        times.append(time.perf_counter() - start)
    return times


def _scenarios(
    graph: DataGraph,
    requirements: dict[str, int],
    reindex_base: IndexGraph,
    lowered_levels: list[int],
    ks: tuple[int, ...],
) -> dict[str, Callable[[str, int], object]]:
    """The timed workloads, each parameterised by (engine, jobs)."""

    def ak_sweep(engine: str, jobs: int) -> object:
        return [
            kbisim_partition(graph, k, engine=engine, jobs=jobs) for k in ks
        ]

    def oneindex_fixpoint(engine: str, jobs: int) -> object:
        return bisim_partition(graph, engine=engine, jobs=jobs)

    def dk_build(engine: str, jobs: int) -> object:
        return build_dk_index(graph, requirements, engine=engine, jobs=jobs)

    def table1_reindex(engine: str, jobs: int) -> object:
        return reindex_index_graph(
            reindex_base, lowered_levels, engine=engine, jobs=jobs
        )

    return {
        "ak_sweep": ak_sweep,
        "oneindex_fixpoint": oneindex_fixpoint,
        "dk_build": dk_build,
        "table1_reindex": table1_reindex,
    }


def run_refine_bench(config: RefineBenchConfig) -> dict[str, object]:
    """Run every (dataset, scenario, engine) cell; return the report.

    Raises:
        DatasetError: for unknown dataset names or scales.
    """
    scale_factor = config.scale_factor
    engines = list(SERIAL_ENGINES)
    if config.jobs > 1:
        engines.append(("worklist-parallel", config.jobs))

    dataset_stats: dict[str, dict[str, int]] = {}
    results: list[dict[str, object]] = []
    for name in config.datasets:
        builder = DATASET_BUILDERS.get(name)
        if builder is None:
            raise DatasetError(
                f"unknown dataset {name!r}; available: "
                f"{sorted(DATASET_BUILDERS)}"
            )
        graph = builder(scale_factor, config.seed).graph
        dataset_stats[name] = {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "labels": graph.num_labels,
        }
        requirements = synthetic_requirements(graph)
        reindex_base, levels = build_dk_index(graph, requirements)
        lowered_levels = [max(level - 1, 0) for level in levels]
        scenarios = _scenarios(
            graph, requirements, reindex_base, lowered_levels, config.ks
        )
        for scenario, action in scenarios.items():
            for engine, jobs in engines:
                engine_name = "worklist" if engine.startswith("worklist") else engine
                times = _time_repeats(
                    lambda: action(engine_name, jobs), config.repeats
                )
                results.append(
                    {
                        "dataset": name,
                        "scenario": scenario,
                        "engine": engine,
                        "jobs": jobs,
                        "median_s": statistics.median(times),
                        "times_s": times,
                    }
                )

    return {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "scale": config.scale,
            "scale_factor": scale_factor,
            "repeats": config.repeats,
            "seed": config.seed,
            "jobs": config.jobs,
            "datasets": list(config.datasets),
            "ks": list(config.ks),
        },
        "datasets": dataset_stats,
        "results": results,
        "speedups": _speedups(results),
    }


def _speedups(results: list[dict[str, object]]) -> dict[str, dict[str, float]]:
    """Per (dataset, scenario): legacy vs worklist medians and the ratio."""
    medians: dict[tuple[str, str, str], float] = {}
    for row in results:
        key = (str(row["dataset"]), str(row["scenario"]), str(row["engine"]))
        median = row["median_s"]
        assert isinstance(median, float)
        medians[key] = median
    speedups: dict[str, dict[str, float]] = {}
    for (dataset, scenario, engine), median in sorted(medians.items()):
        if engine != "legacy":
            continue
        worklist = medians.get((dataset, scenario, "worklist"))
        if worklist is None:
            continue
        speedups[f"{dataset}/{scenario}"] = {
            "legacy_s": median,
            "worklist_s": worklist,
            "speedup": median / worklist if worklist > 0 else float("inf"),
        }
    return speedups


def write_report(report: dict[str, object], path: str) -> None:
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: dict[str, object]) -> str:
    """Render the speedup summary as an aligned text table."""
    speedups = report["speedups"]
    assert isinstance(speedups, dict)
    rows = [
        [
            key,
            f"{entry['legacy_s'] * 1000:.1f}",
            f"{entry['worklist_s'] * 1000:.1f}",
            f"{entry['speedup']:.2f}x",
        ]
        for key, entry in speedups.items()
    ]
    config = report["config"]
    assert isinstance(config, dict)
    title = (
        f"[REFINE] engine comparison, scale {config['scale']} "
        f"(factor {config['scale_factor']}), "
        f"median of {config['repeats']} run(s)"
    )
    return render_table(
        ["dataset/scenario", "legacy (ms)", "worklist (ms)", "speedup"],
        rows,
        title=title,
    )


def main_entry(
    scale: str,
    repeats: int,
    seed: int,
    jobs: int,
    datasets: tuple[str, ...],
    out: str,
) -> int:
    """CLI driver: run, write the JSON, print the summary table."""
    config = RefineBenchConfig(
        scale=scale,
        repeats=repeats,
        seed=seed,
        jobs=jobs,
        datasets=datasets,
    )
    report = run_refine_bench(config)
    write_report(report, out)
    print(format_report(report))
    print(f"wrote {out}")
    return 0
