"""Refinement-engine timing harness (``dkindex bench refine``).

Every index this library builds funnels through partition refinement, so
this harness times the four construction workloads that exercise it —

- ``ak_sweep`` — the A(k) family sweep (``kbisim_partition`` for each k),
- ``oneindex_fixpoint`` — the 1-index bisimulation fixpoint
  (``bisim_partition``), the deepest refinement and the headline number,
- ``dk_build`` — the leveled D(k) construction (Algorithm 2),
- ``table1_reindex`` — the Table-1 update path: re-indexing the index
  graph at lowered levels (Theorem 2 / ``reindex_index_graph``)

— on the seeded XMark/NASA generators, once per engine (``legacy``
full-rehash vs ``worklist`` vs the CSR-batch ``columnar``; plus the
parallel worklist/columnar rows when ``jobs > 1``), across a *scale
axis* (``--scale small,medium``), and writes the medians plus a
``tracemalloc`` peak-memory column to ``BENCH_refinement.json``.  The
committed baseline is this file's first entry; every future perf PR
re-runs the harness so the repository carries a recorded performance
trajectory instead of anecdotes.  Timings are wall-clock medians over
``repeats`` runs of freshly-seeded, deterministic inputs, so runs are
comparable across commits on the same machine.  Peak memory is measured
on one separate, untimed run per cell (tracemalloc's tracing overhead
would distort the wall-clock numbers) which doubles as the warm-up.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable

from repro.bench.harness import DATASET_BUILDERS
from repro.bench.reporting import render_table
from repro.core.construction import build_dk_index, reindex_index_graph
from repro.exceptions import DatasetError
from repro.graph.datagraph import ROOT_LABEL, VALUE_LABEL, DataGraph
from repro.indexes.base import IndexGraph
from repro.partition.engine import resolve_jobs
from repro.partition.refinement import bisim_partition, kbisim_partition

#: Schema identifier written into (and expected from) the report JSON.
#: Version 2 adds the scale axis (one row per scale), the ``peak_kb``
#: tracemalloc column, the columnar engine rows, and records resolved
#: worker counts in ``jobs`` (never the raw ``0`` CLI default).
SCHEMA = "dkindex-bench-refinement/2"

#: Named scales: dataset scale factors sized so "small" suits CI smoke
#: runs and "large" stresses the engines on ~10^5-edge graphs.
SCALE_NAMES: dict[str, float] = {"small": 0.2, "medium": 0.6, "large": 1.5}

#: The engines every cell is timed under (name, jobs-override).  The
#: parallel rows (``worklist-parallel``/``columnar-parallel``) are
#: appended per run when ``--jobs`` resolves past 1.
SERIAL_ENGINES: tuple[tuple[str, int], ...] = (
    ("legacy", 1),
    ("worklist", 1),
    ("columnar", 1),
)


@dataclass(frozen=True)
class RefineBenchConfig:
    """Knobs of one harness run.

    Attributes:
        scale: comma-separated scale axis — named scales
            (``small``/``medium``/``large``) and/or float literals, e.g.
            ``"small,medium"`` or ``"0.4"``.  One row per scale.
        repeats: timed runs per (dataset, scenario, engine, scale); the
            report records the median.
        seed: dataset generator seed.
        jobs: worker processes for the additional parallel rows;
            resolving to ``<= 1`` skips them (the serial engines always
            run).
        datasets: generator names to measure (see
            :data:`repro.bench.harness.DATASET_BUILDERS`).
        ks: the A(k) sweep.
    """

    scale: str = "small"
    repeats: int = 3
    seed: int = 0
    jobs: int = 0
    datasets: tuple[str, ...] = ("xmark", "nasa")
    ks: tuple[int, ...] = (0, 1, 2, 3, 4)

    @property
    def scale_axis(self) -> tuple[tuple[str, float], ...]:
        """The ``(name, factor)`` pairs of the comma-separated axis.

        Raises:
            DatasetError: if any entry is neither named nor numeric.
        """
        axis: list[tuple[str, float]] = []
        for entry in self.scale.split(","):
            name = entry.strip()
            if not name:
                continue
            factor = SCALE_NAMES.get(name)
            if factor is None:
                try:
                    factor = float(name)
                except ValueError:
                    raise DatasetError(
                        f"unknown bench scale {name!r}; use one of "
                        f"{sorted(SCALE_NAMES)} or a number"
                    ) from None
            axis.append((name, factor))
        if not axis:
            raise DatasetError("empty bench scale axis")
        return tuple(axis)


def synthetic_requirements(graph: DataGraph) -> dict[str, int]:
    """Deterministic varied per-label requirements for the D(k) build.

    Real requirement mining needs a query workload, which would dominate
    the measurement; instead each non-structural label gets a
    requirement cycling through 1..3 (sorted by name, so the map — and
    therefore the leveled refinement being timed — is identical on every
    run and machine).
    """
    names = sorted(
        name
        for name in graph.label_names()
        if name not in (ROOT_LABEL, VALUE_LABEL)
    )
    return {name: 1 + position % 3 for position, name in enumerate(names)}


def _time_repeats(action: Callable[[], object], repeats: int) -> list[float]:
    """Wall-clock seconds for ``repeats`` runs of ``action``."""
    times: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        times.append(time.perf_counter() - start)
    return times


def _peak_kb(action: Callable[[], object]) -> float:
    """Peak traced allocation of one run of ``action``, in KiB.

    Runs under :mod:`tracemalloc` and therefore *not* while timing —
    tracing costs a multiple of the untraced wall-clock.  numpy routes
    its allocations through the traced allocator, so the columnar
    engine's optional vectorised path is accounted for too.
    """
    tracemalloc.start()
    try:
        action()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024.0


def _scenarios(
    graph: DataGraph,
    requirements: dict[str, int],
    reindex_base: IndexGraph,
    lowered_levels: list[int],
    ks: tuple[int, ...],
) -> dict[str, Callable[[str, int], object]]:
    """The timed workloads, each parameterised by (engine, jobs)."""

    def ak_sweep(engine: str, jobs: int) -> object:
        return [
            kbisim_partition(graph, k, engine=engine, jobs=jobs) for k in ks
        ]

    def oneindex_fixpoint(engine: str, jobs: int) -> object:
        return bisim_partition(graph, engine=engine, jobs=jobs)

    def dk_build(engine: str, jobs: int) -> object:
        return build_dk_index(graph, requirements, engine=engine, jobs=jobs)

    def table1_reindex(engine: str, jobs: int) -> object:
        return reindex_index_graph(
            reindex_base, lowered_levels, engine=engine, jobs=jobs
        )

    return {
        "ak_sweep": ak_sweep,
        "oneindex_fixpoint": oneindex_fixpoint,
        "dk_build": dk_build,
        "table1_reindex": table1_reindex,
    }


def run_refine_bench(config: RefineBenchConfig) -> dict[str, object]:
    """Run every (scale, dataset, scenario, engine) cell; return the report.

    Raises:
        DatasetError: for unknown dataset names or scales.
    """
    scale_axis = config.scale_axis
    # Normalise the raw CLI default (0) to the resolved worker count so
    # every recorded row is self-describing.
    parallel_jobs = resolve_jobs(config.jobs)
    engines = list(SERIAL_ENGINES)
    if parallel_jobs > 1:
        engines.append(("worklist-parallel", parallel_jobs))
        engines.append(("columnar-parallel", parallel_jobs))

    dataset_stats: dict[str, dict[str, int]] = {}
    results: list[dict[str, object]] = []
    for scale_name, scale_factor in scale_axis:
        for name in config.datasets:
            builder = DATASET_BUILDERS.get(name)
            if builder is None:
                raise DatasetError(
                    f"unknown dataset {name!r}; available: "
                    f"{sorted(DATASET_BUILDERS)}"
                )
            graph = builder(scale_factor, config.seed).graph
            dataset_stats[f"{name}@{scale_name}"] = {
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "labels": graph.num_labels,
            }
            requirements = synthetic_requirements(graph)
            reindex_base, levels = build_dk_index(graph, requirements)
            lowered_levels = [max(level - 1, 0) for level in levels]
            scenarios = _scenarios(
                graph, requirements, reindex_base, lowered_levels, config.ks
            )
            for scenario, action in scenarios.items():
                for engine, jobs in engines:
                    engine_name = engine.removesuffix("-parallel")
                    run = lambda: action(engine_name, jobs)  # noqa: E731
                    peak_kb = _peak_kb(run)  # untimed; doubles as warm-up
                    times = _time_repeats(run, config.repeats)
                    results.append(
                        {
                            "dataset": name,
                            "scenario": scenario,
                            "scale": scale_name,
                            "engine": engine,
                            "jobs": jobs,
                            "median_s": statistics.median(times),
                            "times_s": times,
                            "peak_kb": round(peak_kb, 1),
                        }
                    )

    return {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "scale": config.scale,
            "scale_axis": {name: factor for name, factor in scale_axis},
            "repeats": config.repeats,
            "seed": config.seed,
            "jobs": parallel_jobs,
            "datasets": list(config.datasets),
            "ks": list(config.ks),
        },
        "datasets": dataset_stats,
        "results": results,
        "speedups": _speedups(results),
    }


def _speedups(
    results: list[dict[str, object]],
) -> dict[str, dict[str, float]]:
    """Per (dataset, scenario, scale): serial engine medians and ratios.

    ``speedup`` keeps its schema-v1 meaning (legacy over worklist);
    ``columnar_vs_worklist`` is the headline ratio of this harness
    version (> 1 means the columnar engine is faster).
    """
    medians: dict[tuple[str, str, str, str], float] = {}
    for row in results:
        key = (
            str(row["dataset"]),
            str(row["scenario"]),
            str(row["scale"]),
            str(row["engine"]),
        )
        median = row["median_s"]
        assert isinstance(median, float)
        medians[key] = median
    speedups: dict[str, dict[str, float]] = {}
    for (dataset, scenario, scale, engine), median in sorted(medians.items()):
        if engine != "legacy":
            continue
        worklist = medians.get((dataset, scenario, scale, "worklist"))
        columnar = medians.get((dataset, scenario, scale, "columnar"))
        if worklist is None or columnar is None:
            continue
        speedups[f"{dataset}/{scenario}@{scale}"] = {
            "legacy_s": median,
            "worklist_s": worklist,
            "columnar_s": columnar,
            "speedup": median / worklist if worklist > 0 else float("inf"),
            "columnar_vs_worklist": (
                worklist / columnar if columnar > 0 else float("inf")
            ),
        }
    return speedups


def write_report(report: dict[str, object], path: str) -> None:
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: dict[str, object]) -> str:
    """Render the speedup summary as an aligned text table."""
    speedups = report["speedups"]
    assert isinstance(speedups, dict)
    rows = [
        [
            key,
            f"{entry['legacy_s'] * 1000:.1f}",
            f"{entry['worklist_s'] * 1000:.1f}",
            f"{entry['columnar_s'] * 1000:.1f}",
            f"{entry['columnar_vs_worklist']:.2f}x",
        ]
        for key, entry in speedups.items()
    ]
    config = report["config"]
    assert isinstance(config, dict)
    title = (
        f"[REFINE] engine comparison, scales {config['scale']}, "
        f"median of {config['repeats']} run(s)"
    )
    return render_table(
        [
            "dataset/scenario@scale",
            "legacy (ms)",
            "worklist (ms)",
            "columnar (ms)",
            "col/wl",
        ],
        rows,
        title=title,
    )


def main_entry(
    scale: str,
    repeats: int,
    seed: int,
    jobs: int,
    datasets: tuple[str, ...],
    out: str,
) -> int:
    """CLI driver: run, write the JSON, print the summary table."""
    config = RefineBenchConfig(
        scale=scale,
        repeats=repeats,
        seed=seed,
        jobs=jobs,
        datasets=datasets,
    )
    report = run_refine_bench(config)
    write_report(report, out)
    print(format_report(report))
    print(f"wrote {out}")
    return 0
