"""Index-quality metrics: how good is a structural summary, numerically?

Beyond the paper's two headline numbers (index size and average
evaluation cost), these metrics quantify *why* an index behaves as it
does:

- **compression** — data nodes per index node (bigger = smaller index);
- **extent-size distribution** — skew matters: one huge unsplit extent
  dominates validation cost;
- **raw precision** of a query — |exact answer| / |unvalidated index
  answer|: 1.0 means the index alone was sound for that query, and the
  average over a load measures how much work validation has to undo.

The precision metric drives the EXT-PRECISION ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.indexes.base import IndexGraph
from repro.indexes.evaluation import evaluate_on_index
from repro.paths.query import Query
from repro.workload.queryload import QueryLoad


@dataclass(frozen=True)
class IndexMetrics:
    """Structural metrics of an index graph.

    Attributes:
        index_nodes / index_edges: summary size.
        data_nodes: size of the summarised graph.
        compression: ``data_nodes / index_nodes``.
        max_extent / mean_extent: extent-size distribution extremes.
        singleton_extents: extents of size 1 (fully split nodes — the
            1-index degenerates to many of these).
        k_histogram: ``{k: index nodes at that similarity}``.
    """

    index_nodes: int
    index_edges: int
    data_nodes: int
    compression: float
    max_extent: int
    mean_extent: float
    singleton_extents: int
    k_histogram: dict[int, int]


def index_metrics(index: IndexGraph) -> IndexMetrics:
    """Compute :class:`IndexMetrics` for ``index``."""
    sizes = [len(extent) for extent in index.extents]
    histogram: dict[int, int] = {}
    for k in index.k:
        histogram[k] = histogram.get(k, 0) + 1
    data_nodes = index.graph.num_nodes
    count = max(1, index.num_nodes)
    return IndexMetrics(
        index_nodes=index.num_nodes,
        index_edges=index.num_edges,
        data_nodes=data_nodes,
        compression=data_nodes / count,
        max_extent=max(sizes, default=0),
        mean_extent=sum(sizes) / count,
        singleton_extents=sum(1 for size in sizes if size == 1),
        k_histogram=histogram,
    )


def query_precision(index: IndexGraph, query: Query) -> float:
    """Precision of the *unvalidated* index answer for one query.

    ``|exact| / |raw|``; 1.0 when the raw answer is already exact, and
    1.0 by convention for empty raw answers (nothing to validate).
    """
    raw = evaluate_on_index(index, query, validate=False)
    if not raw:
        return 1.0
    exact = evaluate_on_index(index, query)
    return len(exact) / len(raw)


def load_precision(index: IndexGraph, load: QueryLoad) -> float:
    """Weighted mean raw precision over a query load."""
    total_weight = load.total_weight
    if total_weight == 0:
        return 1.0
    weighted = 0.0
    for query, weight in load.items():
        weighted += query_precision(index, query) * weight
    return weighted / total_weight
