"""The validation process for approximate index results.

When a query is longer than an index node's guaranteed local similarity,
the extent may contain false positives; validation checks each candidate
data node against the *data graph* by matching the query's label path
backwards from the candidate (A(k) paper, adopted by Section 6.1 of the
D(k) paper).  This is exactly the expensive step the D(k)-index tries to
avoid by adapting its per-node similarities to the query load.

Cost accounting: every first visit of a ``(data node, position)`` (or
``(data node, state set)`` for regex validation) pair counts as one data
node visited; the memo is shared across all candidates of one query so
overlapping ancestor walks are counted once, mirroring a shared-scan
implementation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graph.datagraph import DataGraph
from repro.paths.cost import CostCounter
from repro.paths.nfa import NFA


def validate_label_path_candidates(
    graph: DataGraph,
    candidates: Iterable[int],
    label_ids: Sequence[int],
    anchored: bool,
    counter: CostCounter,
) -> set[int]:
    """Filter ``candidates`` to those actually matched by the label path.

    Args:
        graph: the data graph.
        candidates: data nodes whose membership must be verified; their
            own label is assumed to equal ``label_ids[-1]`` already.
        label_ids: the query's labels as graph label ids.
        anchored: if True the matching node path must begin at a child
            of the root.
        counter: cost accumulator (data-node visits + validation count).

    Returns:
        The subset of candidates that truly match.
    """
    parents = graph.parents
    node_labels = graph.label_ids
    root = graph.root
    positions = len(label_ids)
    # memo[(node, position)]: does a node path matching label_ids[:position+1]
    # and ending at `node` exist?
    memo: dict[tuple[int, int], bool] = {}

    def matches_up_to(node: int, position: int) -> bool:
        key = (node, position)
        cached = memo.get(key)
        if cached is not None:
            return cached
        counter.visit_data_node()
        if node_labels[node] != label_ids[position]:
            memo[key] = False
            return False
        if position == 0:
            result = (root in parents[node]) if anchored else True
        else:
            result = any(
                matches_up_to(parent, position - 1) for parent in parents[node]
            )
        memo[key] = result
        return result

    verified: set[int] = set()
    total = 0
    for candidate in candidates:
        total += 1
        if matches_up_to(candidate, positions - 1):
            verified.add(candidate)
    counter.record_validation(total)
    return verified


def validate_regex_candidates(
    graph: DataGraph,
    candidates: Iterable[int],
    nfa: NFA,
    anchored: bool,
    counter: CostCounter,
) -> set[int]:
    """Validate candidates against a full regular path expression.

    Uses the reversed automaton: starting from the original accepting
    states, consume the candidate's label and walk *up* the data graph;
    the candidate matches when the original start state is reached (and,
    for anchored queries, the walk is standing at a child of the root).
    """
    reversed_transitions: list[dict[str | None, set[int]]] = [
        {} for _ in range(nfa.num_states)
    ]
    for src, table in enumerate(nfa.transitions):
        for label, targets in table.items():
            for dst in targets:
                reversed_transitions[dst].setdefault(label, set()).add(src)

    id_to_name = list(graph.label_names())
    parents = graph.parents
    node_labels = graph.label_ids
    root = graph.root
    rev_start = frozenset(nfa.accepting)
    goal = nfa.start

    def step_reversed(states: frozenset[int], label_name: str) -> frozenset[int]:
        result: set[int] = set()
        for state in states:
            table = reversed_transitions[state]
            result.update(table.get(label_name, ()))
            result.update(table.get(None, ()))
        return frozenset(result)

    # Explore the product graph upward from all candidates at once, then
    # mark success vertices and propagate reachability backwards through
    # the explored subgraph.  (A memoised DFS would be wrong here: cycles
    # in the product graph can freeze "False" verdicts that a later
    # branch proves "True".)
    candidate_list = list(candidates)
    start_of: dict[int, tuple[int, frozenset[int]] | None] = {}
    out_edges: dict[tuple[int, frozenset[int]], list[tuple[int, frozenset[int]]]] = {}
    success: set[tuple[int, frozenset[int]]] = set()
    stack: list[tuple[int, frozenset[int]]] = []

    def enter(node: int, after: frozenset[int]) -> tuple[int, frozenset[int]] | None:
        """Register the product vertex for `node` whose label produced
        `after`; returns None when the automaton is stuck."""
        if not after:
            return None
        vertex = (node, after)
        if vertex not in out_edges:
            counter.visit_data_node()
            out_edges[vertex] = []
            if goal in after and (not anchored or root in parents[node]):
                success.add(vertex)
            stack.append(vertex)
        return vertex

    for candidate in candidate_list:
        after = step_reversed(rev_start, id_to_name[node_labels[candidate]])
        start_of[candidate] = enter(candidate, after)

    while stack:
        node, after = stack.pop()
        for parent in parents[node]:
            parent_after = step_reversed(after, id_to_name[node_labels[parent]])
            target = enter(parent, parent_after)
            if target is not None:
                out_edges[(node, after)].append(target)

    # Reverse reachability from the success vertices.
    incoming: dict[tuple[int, frozenset[int]], list[tuple[int, frozenset[int]]]] = {}
    for vertex, targets in out_edges.items():
        for target in targets:
            incoming.setdefault(target, []).append(vertex)
    reaches_success = set(success)
    worklist = list(success)
    while worklist:
        vertex = worklist.pop()
        for predecessor in incoming.get(vertex, ()):
            if predecessor not in reaches_success:
                reaches_success.add(predecessor)
                worklist.append(predecessor)

    verified: set[int] = set()
    for candidate in candidate_list:
        start_vertex = start_of[candidate]
        if start_vertex is not None and start_vertex in reaches_success:
            verified.add(candidate)
    counter.record_validation(len(candidate_list))
    return verified
