"""EXPLAIN for index-graph query evaluation.

Answers the operational questions a user of an adaptive index keeps
asking: *which index nodes did my query land on, was it answered from
the index alone, and if it validated — why, and what would fix it?*

The explanation mirrors exactly what
:func:`repro.indexes.evaluation.evaluate_on_index` does (it calls the
same matching code), so it never lies about the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.indexes.base import K_UNBOUNDED, IndexGraph
from repro.indexes.evaluation import evaluate_on_index, match_index_nodes
from repro.paths.cost import CostCounter
from repro.paths.query import LabelPathQuery, Query, RegexQuery


@dataclass(frozen=True)
class TerminalInfo:
    """One matched terminal index node.

    Attributes:
        index_node: its id.
        label: its label name.
        extent_size: number of data nodes it summarises.
        k: its assigned local similarity.
        sound: True when its extent is returned without validation.
    """

    index_node: int
    label: str
    extent_size: int
    k: int
    sound: bool


@dataclass
class Explanation:
    """The full story of one query evaluation.

    Attributes:
        query_text: the query as text.
        required_k: the terminal similarity needed for soundness
            (None when undeterminable, i.e. unbounded regexes).
        terminals: matched terminal index nodes.
        result_size: size of the (exact) answer.
        candidates_validated: data nodes that went through validation.
        cost: the evaluation's cost counter.
        suggestion: human-readable tuning advice, empty when none.
    """

    query_text: str
    required_k: int | None
    terminals: list[TerminalInfo] = field(default_factory=list)
    result_size: int = 0
    candidates_validated: int = 0
    cost: CostCounter = field(default_factory=CostCounter)
    suggestion: str = ""

    @property
    def fully_indexed(self) -> bool:
        """True when the answer came from the index alone."""
        return self.candidates_validated == 0

    def format(self) -> str:
        lines = [f"query: {self.query_text}"]
        needed = "?" if self.required_k is None else str(self.required_k)
        lines.append(
            f"requires terminal k >= {needed}; "
            f"{len(self.terminals)} terminal index node(s):"
        )
        for term in self.terminals:
            k_text = "∞" if term.k >= K_UNBOUNDED else str(term.k)
            status = "sound" if term.sound else "VALIDATES"
            lines.append(
                f"  #{term.index_node} <{term.label}> |ext|={term.extent_size} "
                f"k={k_text} -> {status}"
            )
        lines.append(
            f"result: {self.result_size} nodes; cost "
            f"{self.cost.index_nodes_visited} index + "
            f"{self.cost.data_nodes_visited} data visits "
            f"({self.candidates_validated} candidates validated)"
        )
        if self.suggestion:
            lines.append(f"hint: {self.suggestion}")
        return "\n".join(lines)


def explain(
    index: IndexGraph, query: Query, counter: CostCounter | None = None
) -> Explanation:
    """Explain how ``query`` evaluates against ``index``.

    Runs the actual evaluation (so costs and the result size are real),
    then annotates every terminal with its soundness verdict and, when
    validation happened, suggests the promotion that would avoid it.
    The evaluation's visits are recorded in ``counter`` when the caller
    passes one (so an EXPLAIN inside a measured run stays accounted),
    and in the returned explanation's own counter otherwise.

    Example:
        >>> from repro.graph.builder import graph_from_edges
        >>> from repro.indexes.labelsplit import build_labelsplit_index
        >>> from repro.paths.query import make_query
        >>> g = graph_from_edges(
        ...     ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
        ... )
        >>> report = explain(build_labelsplit_index(g), make_query("a.x"))
        >>> report.fully_indexed
        False
        >>> "promote" in report.suggestion
        True
    """
    counter = counter if counter is not None else CostCounter()
    result = evaluate_on_index(index, query, counter)

    if isinstance(query, LabelPathQuery):
        required = query.num_edges + (1 if query.anchored else 0)
        terminals = match_index_nodes(index, query)
    elif isinstance(query, RegexQuery):
        max_len = query.max_length
        required = (
            None
            if max_len is None
            else max_len - 1 + (1 if query.anchored else 0)
        )
        terminals = set()  # regex terminal sets are not exposed; keep empty
    else:
        raise TypeError(f"unsupported query type: {type(query).__name__}")

    explanation = Explanation(
        query_text=query.to_text(),
        required_k=required,
        result_size=len(result),
        candidates_validated=counter.validations,
        cost=counter,
    )
    unsound_labels: set[str] = set()
    for terminal in sorted(terminals):
        sound = required is not None and index.k[terminal] >= required
        explanation.terminals.append(
            TerminalInfo(
                index_node=terminal,
                label=index.label(terminal),
                extent_size=index.extent_size(terminal),
                k=index.k[terminal],
                sound=sound,
            )
        )
        if not sound:
            unsound_labels.add(index.label(terminal))
    if unsound_labels and required is not None:
        labels = ", ".join(sorted(unsound_labels))
        explanation.suggestion = (
            f"promote label(s) {labels} to local similarity {required} "
            f"to answer this query from the index alone"
        )
    elif counter.validations and required is None:
        explanation.suggestion = (
            "unbounded repetition: no finite similarity can avoid "
            "validation for this expression"
        )
    return explanation
