"""The F&B-index (Kaushik, Bohannon, Naughton, Korth — SIGMOD 2002).

The D(k) paper's conclusion names the F&B index as the structure for
*branching* path queries.  Bisimulation-based indexes (1-index, A(k),
D(k)) summarise *incoming* paths only, so they are covering indexes for
linear path expressions but not for twigs: two data nodes with the same
incoming paths may differ in what hangs *below* them, and a predicate
like ``movie[actor]`` distinguishes them.

The F&B-index is the coarsest partition stable under both directions:
it refines by parents (backward bisimilarity) and by children (forward
bisimilarity) alternately until a fixpoint.  Every twig query can then
be answered exactly from the index graph alone — evaluated with the
same two-phase algorithm as on the data graph, over far fewer nodes.

The price is size: the F&B-index is at least as large as the 1-index
(the test suite and the EXT bench measure by how much).
"""

from __future__ import annotations

from repro.graph.datagraph import DataGraph
from repro.indexes.base import K_UNBOUNDED, IndexGraph
from repro.partition.blocks import Partition
from repro.partition.refinement import label_partition
from repro.paths.cost import CostCounter
from repro.paths.twig import TwigQuery, evaluate_twig_over


def fb_partition(graph: DataGraph) -> tuple[Partition, int]:
    """The forward-and-backward bisimulation partition.

    Alternates backward (parents) and forward (children) signature
    rounds until neither direction refines further.

    Returns:
        ``(partition, rounds)`` — the stable partition and the number of
        refinement rounds (both directions counted).
    """
    partition = label_partition(graph)
    rounds = 0
    parents = graph.parents
    children = graph.children
    while True:
        changed = False
        for adjacency in (parents, children):
            block_of = partition.block_of
            keys = [
                (block_of[node], frozenset(block_of[n] for n in adjacency[node]))
                for node in range(graph.num_nodes)
            ]
            refined = Partition.from_keys(keys)
            if refined.num_blocks != partition.num_blocks:
                partition = refined
                changed = True
                rounds += 1
        if not changed:
            return partition, rounds


def build_fb_index(graph: DataGraph) -> IndexGraph:
    """Build the F&B-index of ``graph``.

    Extent members agree on all incoming *and* outgoing structure, so
    the index is sound for branching path queries of any shape; the
    assigned local similarity is :data:`~repro.indexes.base.K_UNBOUNDED`
    (linear queries never validate either).

    Example:
        >>> from repro.graph.builder import graph_from_edges
        >>> # two movies with identical incoming paths; only one has an actor
        >>> g = graph_from_edges(
        ...     ["m", "m", "t", "t", "a"],
        ...     [(0, 1), (0, 2), (1, 3), (2, 4), (2, 5)],
        ... )
        >>> from repro.indexes.oneindex import build_1index
        >>> len(build_1index(g).nodes_with_label("m"))
        1
        >>> len(build_fb_index(g).nodes_with_label("m"))
        2
    """
    partition, _rounds = fb_partition(graph)
    return IndexGraph.from_partition(graph, partition, K_UNBOUNDED)


def evaluate_twig_on_fb(
    index: IndexGraph,
    query: TwigQuery,
    counter: CostCounter | None = None,
) -> set[int]:
    """Evaluate a twig query on an F&B-index; returns *data* node ids.

    The pattern is matched over index nodes (each visit counted as an
    index-node visit); the answer is the union of matched output
    extents — no validation needed, because F&B extents are
    structurally indistinguishable in both directions.
    """
    counter = counter if counter is not None else CostCounter()
    graph = index.graph
    label_table = {name: i for i, name in enumerate(graph.label_names())}
    matched = evaluate_twig_over(
        index,
        index.label_ids,
        label_table,
        index.root_index_node,
        query,
        counter,
        count_as_index=True,
    )
    return index.extent_result(matched)
