"""Deep integrity auditing for index graphs.

``IndexGraph.check_invariants`` verifies *structural* consistency
(extents partition the data, quotient edges are right).  This module
verifies the *semantic* promise behind every assigned local similarity:

    an index node with ``k = j`` must answer any label-path query of up
    to j edges all-or-none — i.e. every extent member has exactly the
    same set of incoming label paths of length <= j.

That is the invariant Theorem 1's soundness consumes, the one the
update algorithms maintain (k-bisimilarity proper is *not* preserved by
edge additions — see DESIGN.md §5), and the one a downstream user wants
to audit after anything suspicious.  The check is exponential in k in
the worst case, so it is a diagnostic, not a fast path; ``max_k`` and
``max_paths`` bound the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.graph.datagraph import DataGraph
from repro.indexes.base import IndexGraph


@dataclass(frozen=True)
class AuditFinding:
    """One semantic inconsistency.

    Attributes:
        index_node: the offending index node.
        label: its label.
        assigned_k: the similarity it claims.
        witness_path: a label path (names, outermost first) that matches
            some but not all extent members — a query of this shape
            could be answered unsoundly.
    """

    index_node: int
    label: str
    assigned_k: int
    witness_path: tuple[str, ...]

    def __str__(self) -> str:
        path = ".".join(self.witness_path)
        return (
            f"index node {self.index_node} <{self.label}> claims k="
            f"{self.assigned_k} but label path '{path}' matches only part "
            f"of its extent"
        )


@dataclass
class AuditReport:
    """Outcome of :func:`audit_similarities`."""

    nodes_checked: int = 0
    nodes_skipped: int = 0
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        if self.ok:
            skipped = (
                f" ({self.nodes_skipped} skipped by bounds)"
                if self.nodes_skipped
                else ""
            )
            return f"audit clean: {self.nodes_checked} index nodes{skipped}"
        lines = [f"{len(self.findings)} unsound similarity claim(s):"]
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)


def _paths_up_to(
    graph: DataGraph, node: int, depth: int, max_paths: int
) -> set[tuple[int, ...]] | None:
    """Incoming label-id paths of length <= depth ending at ``node``
    (own label included); None when ``max_paths`` is exceeded."""
    collected: set[tuple[int, ...]] = set()
    frontier: set[tuple[int, tuple[int, ...]]] = {
        (node, (graph.label_ids[node],))
    }
    for _ in range(depth + 1):
        for _current, path in frontier:
            collected.add(path)
            if len(collected) > max_paths:
                return None
        next_frontier: set[tuple[int, tuple[int, ...]]] = set()
        for current, path in frontier:
            for parent in graph.parents[current]:
                next_frontier.add((parent, (graph.label_ids[parent],) + path))
        frontier = next_frontier
    return collected


def audit_similarities(
    index: IndexGraph,
    max_k: int = 6,
    max_paths: int = 20_000,
    max_findings: int = 20,
    nodes: Sequence[int] | None = None,
) -> AuditReport:
    """Audit index nodes' claimed similarities against the data.

    Args:
        index: the index graph (any kind; A(k)/1-index audit their
            uniform k, D(k) audits per node).
        max_k: nodes claiming more than this are checked at ``max_k``
            (1-index nodes claim K_UNBOUNDED; checking a prefix is still
            meaningful) and counted as checked.
        max_paths: per-node label-path budget; exceeding it skips the
            node (counted in ``nodes_skipped``).
        max_findings: stop after this many findings.
        nodes: restrict the audit to these index nodes (the maintenance
            pipeline's targeted spot check on touched extents); the
            default audits every node.

    Example:
        >>> from repro.graph.builder import graph_from_edges
        >>> from repro.indexes.akindex import build_ak_index
        >>> g = graph_from_edges(
        ...     ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
        ... )
        >>> audit_similarities(build_ak_index(g, 2)).ok
        True
        >>> corrupt = build_ak_index(g, 0)
        >>> corrupt.k[corrupt.node_of[3]] = 2   # lie about the x extent
        >>> report = audit_similarities(corrupt)
        >>> report.ok
        False
        >>> report.findings[0].label
        'x'
    """
    graph = index.graph
    report = AuditReport()
    for node in range(index.num_nodes) if nodes is None else nodes:
        if len(report.findings) >= max_findings:
            break
        extent = index.extents[node]
        if len(extent) <= 1:
            report.nodes_checked += 1
            continue
        depth = min(index.k[node], max_k, graph.num_nodes)
        reference = _paths_up_to(graph, extent[0], depth, max_paths)
        if reference is None:
            report.nodes_skipped += 1
            continue
        report.nodes_checked += 1
        for member in extent[1:]:
            other = _paths_up_to(graph, member, depth, max_paths)
            if other is None:
                report.nodes_skipped += 1
                break
            if other != reference:
                difference = (other ^ reference)
                witness_ids = min(difference, key=len)
                witness = tuple(
                    graph.label_name(label_id) for label_id in witness_ids
                )
                report.findings.append(
                    AuditFinding(
                        index_node=node,
                        label=index.label(node),
                        assigned_k=index.k[node],
                        witness_path=witness,
                    )
                )
                break
    return report
