"""The shared index-graph structure.

:class:`IndexGraph` is used by every summary in this library (label-split,
A(k), 1-index, D(k)).  It keeps:

- per-index-node label ids (every extent is label-homogeneous);
- extents (lists of data-node ids) and the reverse ``node_of`` map;
- parent/child adjacency as sets (updates add and remove edges);
- a per-index-node *local similarity* ``k`` — the bisimilarity level the
  extent is guaranteed to satisfy.  For A(k) it is uniformly ``k``; for
  the 1-index it is :data:`K_UNBOUNDED`; for D(k) it varies per node and
  is what the update/promote/demote algorithms manipulate.

The structure is deliberately mutable: the paper's whole point is that
the D(k)-index is adjusted in place rather than rebuilt.
"""

from __future__ import annotations

import sys
from array import array
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.exceptions import (
    FrozenGraphError,
    IndexInvariantError,
    UnknownNodeError,
)
from repro.graph.datagraph import DataGraph
from repro.partition.blocks import Partition

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.graph.columnar import CSRGraph

#: Local similarity standing in for "bisimilar at every depth" (1-index).
K_UNBOUNDED = sys.maxsize // 4


class IndexGraph:
    """An index graph over a :class:`DataGraph`.

    Build one with :meth:`from_partition`; the baseline constructors in
    sibling modules and the D(k) construction all go through it.

    Attributes:
        graph: the underlying data graph (referenced, not copied).
        label_ids: label id per index node.
        extents: member data nodes per index node.
        node_of: ``node_of[data_node]`` = owning index node.
        children / parents: adjacency sets between index nodes.
        k: assigned local similarity per index node.
    """

    __slots__ = (
        "graph",
        "label_ids",
        "extents",
        "node_of",
        "children",
        "parents",
        "k",
        "_label_index",
        "_version",
        "_frozen",
        "_sealed",
    )

    def __init__(self, graph: DataGraph) -> None:
        self.graph = graph
        self.label_ids: list[int] = []
        self.extents: list[list[int]] = []
        self.node_of: list[int] = []
        self.children: list[set[int]] = []
        self.parents: list[set[int]] = []
        self.k: list[int] = []
        self._label_index: dict[int, set[int]] = {}
        # Frozen-view bookkeeping (mirrors DataGraph.freeze).
        self._version = 0
        self._frozen: "CSRGraph | None" = None
        self._sealed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_partition(
        cls,
        graph: DataGraph,
        partition: Partition,
        k_values: Sequence[int] | int,
    ) -> "IndexGraph":
        """Build an index graph from a data-node partition.

        Args:
            graph: the data graph.
            partition: a label-homogeneous partition of its nodes.
            k_values: assigned local similarity — either one integer for
                every index node or a per-block sequence.

        Raises:
            IndexInvariantError: if some block mixes labels.
        """
        index = cls(graph)
        num_blocks = partition.num_blocks
        if isinstance(k_values, int):
            ks = [k_values] * num_blocks
        else:
            if len(k_values) != num_blocks:
                raise IndexInvariantError(
                    f"{len(k_values)} k values for {num_blocks} blocks"
                )
            ks = list(k_values)

        label_ids = graph.label_ids
        for block, members in enumerate(partition.blocks):
            label = label_ids[members[0]]
            if any(label_ids[m] != label for m in members[1:]):
                raise IndexInvariantError(f"block {block} is not label-homogeneous")
            index._append_node(label, list(members), ks[block])
        index.node_of = list(partition.block_of)

        block_of = partition.block_of
        for src, dst in graph.edges():
            index.add_index_edge(block_of[src], block_of[dst])
        return index

    def _append_node(self, label_id: int, extent: list[int], k: int) -> int:
        self._mutated()
        node = len(self.label_ids)
        self.label_ids.append(label_id)
        self.extents.append(extent)
        self.children.append(set())
        self.parents.append(set())
        self.k.append(k)
        self._label_index.setdefault(label_id, set()).add(node)
        return node

    # ------------------------------------------------------------------
    # Size and lookup
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of index nodes (the paper's "index size" X axis)."""
        return len(self.label_ids)

    @property
    def num_edges(self) -> int:
        """Number of index edges."""
        return sum(len(outs) for outs in self.children)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"IndexGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"data_nodes={self.graph.num_nodes})"
        )

    def label(self, node: int) -> str:
        """Label name of an index node."""
        return self.graph.label_name(self.label_ids[node])

    def nodes_with_label_id(self, label_id: int) -> set[int]:
        """Index nodes whose extents carry ``label_id`` (live view)."""
        return self._label_index.get(label_id, set())

    def nodes_with_label(self, label: str) -> set[int]:
        """Index nodes whose extents carry the label name."""
        if not self.graph.has_label(label):
            return set()
        return self.nodes_with_label_id(self.graph.label_id(label))

    def extent_size(self, node: int) -> int:
        """Number of data nodes summarised by ``node``."""
        return len(self.extents[node])

    def index_node_of(self, data_node: int) -> int:
        """The index node whose extent contains ``data_node``."""
        try:
            return self.node_of[data_node]
        except IndexError:
            raise UnknownNodeError(data_node) from None

    @property
    def root_index_node(self) -> int:
        """The index node containing the data graph's root."""
        return self.node_of[self.graph.root]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_index_edge(self, src: int, dst: int) -> bool:
        """Add an index edge; returns False if it already existed."""
        if dst in self.children[src]:
            return False
        self._mutated()
        self.children[src].add(dst)
        self.parents[dst].add(src)
        return True

    def remove_index_edge(self, src: int, dst: int) -> None:
        """Remove an index edge (must exist)."""
        self._mutated()
        self.children[src].discard(dst)
        self.parents[dst].discard(src)

    def split_node(self, node: int, parts: Sequence[Sequence[int]]) -> list[int]:
        """Split an index node's extent into the given parts.

        ``parts`` must be a partition of ``extents[node]``.  The first
        part keeps the original id; the rest get fresh ids that inherit
        the node's label and assigned ``k``.  All edges incident to the
        parts are recomputed from the data graph.

        Returns:
            The index-node ids of the parts, in order.

        Raises:
            IndexInvariantError: if ``parts`` is not a partition of the
                node's extent.
        """
        old_extent = self.extents[node]
        flattened = [member for part in parts for member in part]
        if sorted(flattened) != sorted(old_extent):
            raise IndexInvariantError("parts do not partition the extent")
        if any(not part for part in parts):
            raise IndexInvariantError("empty part in split")
        if len(parts) == 1:
            return [node]
        self._mutated()

        # Detach old incident edges; they are recomputed below.
        for child in list(self.children[node]):
            self.remove_index_edge(node, child)
        for parent in list(self.parents[node]):
            self.remove_index_edge(parent, node)

        ids = [node]
        self.extents[node] = list(parts[0])
        for part in parts[1:]:
            ids.append(
                self._append_node(self.label_ids[node], list(part), self.k[node])
            )
        for part_id, part in zip(ids, parts):
            for member in part:
                self.node_of[member] = part_id

        data = self.graph
        for part_id, part in zip(ids, parts):
            for member in part:
                for data_child in data.children[member]:
                    self.add_index_edge(part_id, self.node_of[data_child])
                for data_parent in data.parents[member]:
                    self.add_index_edge(self.node_of[data_parent], part_id)
        return ids

    # ------------------------------------------------------------------
    # Invariants (used heavily by the tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify structural consistency; raise on any violation.

        Checks: extents partition the data nodes; extents are
        label-homogeneous; ``node_of`` matches extents; index edges are
        exactly the quotient of the data edges; the label index is
        accurate.  (The D(k) similarity constraint is checked separately
        by :func:`repro.core.dindex.check_dk_constraint` since plain
        A(k)/1-index graphs need not maintain per-node ks.)
        """
        data = self.graph
        seen = [False] * data.num_nodes
        for node, extent in enumerate(self.extents):
            if not extent:
                raise IndexInvariantError(f"index node {node} has empty extent")
            label = self.label_ids[node]
            for member in extent:
                if seen[member]:
                    raise IndexInvariantError(f"data node {member} in two extents")
                seen[member] = True
                if data.label_ids[member] != label:
                    raise IndexInvariantError(
                        f"data node {member} label mismatch in index node {node}"
                    )
                if self.node_of[member] != node:
                    raise IndexInvariantError(f"node_of[{member}] inconsistent")
        if not all(seen):
            missing = seen.index(False)
            raise IndexInvariantError(f"data node {missing} not covered by extents")

        expected_edges: set[tuple[int, int]] = set()
        for src, dst in data.edges():
            expected_edges.add((self.node_of[src], self.node_of[dst]))
        actual_edges = {
            (src, dst) for src in range(self.num_nodes) for dst in self.children[src]
        }
        if not expected_edges <= actual_edges:
            missing_edge = next(iter(expected_edges - actual_edges))
            raise IndexInvariantError(f"missing index edge {missing_edge} (unsafe!)")
        # Extra index edges are a size/precision issue, not a safety one,
        # but none of our algorithms should produce them.
        if actual_edges - expected_edges:
            extra = next(iter(actual_edges - expected_edges))
            raise IndexInvariantError(f"stale index edge {extra}")
        for src, dst in actual_edges:
            if src not in self.parents[dst]:
                raise IndexInvariantError(f"asymmetric adjacency {src}->{dst}")

        for label_id, nodes in self._label_index.items():
            for node in nodes:
                if self.label_ids[node] != label_id:
                    raise IndexInvariantError("label index corrupt")
        for node, label_id in enumerate(self.label_ids):
            if node not in self._label_index.get(label_id, set()):
                raise IndexInvariantError("label index incomplete")

    # ------------------------------------------------------------------
    # Frozen columnar view (mirrors DataGraph.freeze)
    # ------------------------------------------------------------------

    @property
    def mutation_version(self) -> int:
        """Monotone counter bumped by every structural mutation.

        Bumped by :meth:`add_index_edge`, :meth:`remove_index_edge`,
        :meth:`split_node` and node creation.  Non-structural attribute
        writes (adjusting ``k[node]`` during promote/demote) do *not*
        bump it — the snapshot's ``k`` buffer is a copy taken at freeze
        time.
        """
        return self._version

    @property
    def sealed(self) -> bool:
        """True while mutations are forbidden (``freeze(mode="seal")``)."""
        return self._sealed

    def freeze(self, mode: str = "refresh") -> "CSRGraph":
        """Return the columnar CSR snapshot of this index graph.

        Same caching and invalidation contract as
        :meth:`repro.graph.datagraph.DataGraph.freeze`; index snapshots
        additionally carry flat extents (``extent_offsets`` /
        ``extent_targets``) and the assigned-``k`` buffer.  Adjacency
        sets are flattened in sorted order so the snapshot is
        deterministic.

        Raises:
            GraphError: for an unknown mode, matching the data-graph
                contract.
        """
        from repro.graph.columnar import (
            BUFFER_TYPECODE,
            FREEZE_MODES,
            CSRGraph,
            flatten_adjacency,
        )
        from repro.exceptions import GraphError

        if mode not in FREEZE_MODES:
            raise GraphError(
                f"unknown freeze mode {mode!r}; choose from {FREEZE_MODES}"
            )
        if self._frozen is None:
            child_offsets, child_targets = flatten_adjacency(
                self.children, sort=True
            )
            parent_offsets, parent_targets = flatten_adjacency(
                self.parents, sort=True
            )
            extent_offsets, extent_targets = flatten_adjacency(self.extents)
            self._frozen = CSRGraph(
                array(BUFFER_TYPECODE, self.label_ids),
                child_offsets,
                child_targets,
                parent_offsets,
                parent_targets,
                num_labels=self.graph.num_labels,
                source_version=self._version,
                extent_offsets=extent_offsets,
                extent_targets=extent_targets,
                k=array(BUFFER_TYPECODE, self.k),
            )
        if mode == "seal":
            self._sealed = True
        return self._frozen

    def thaw(self) -> None:
        """Allow mutation again after ``freeze(mode="seal")``."""
        self._sealed = False

    def _mutated(self) -> None:
        """Record a structural mutation (or refuse it while sealed)."""
        if self._sealed:
            raise FrozenGraphError(
                "index graph is sealed by freeze(mode='seal'); call "
                "thaw() before mutating"
            )
        self._version += 1
        self._frozen = None

    def to_partition(self) -> Partition:
        """The data-node partition this index graph represents."""
        return Partition(list(self.node_of))

    def extent_result(self, nodes: Iterable[int]) -> set[int]:
        """Union of the extents of the given index nodes."""
        result: set[int] = set()
        for node in nodes:
            result.update(self.extents[node])
        return result
