"""The label-split index graph (0-bisimulation).

"The simplest index graph constructed by label splitting is a D(k)-index
with the local similarity of each index node equal to 0" (Section 4.1).
It is also the A(0)-index and the starting point of every construction
algorithm in this library.
"""

from __future__ import annotations

from repro.graph.datagraph import DataGraph
from repro.indexes.base import IndexGraph
from repro.partition.refinement import label_partition


def build_labelsplit_index(graph: DataGraph) -> IndexGraph:
    """Build the label-split index (one index node per label).

    Every index node's local similarity is 0: extents are only
    guaranteed label-homogeneous.  This needs no refinement rounds —
    :func:`~repro.partition.refinement.label_partition` is one grouping
    pass over the label ids through :meth:`Partition.from_keys`'s
    trusted fast path, so construction is O(n) with no engine choice to
    make.

    Example:
        >>> from repro.graph.builder import graph_from_edges
        >>> g = graph_from_edges(["a", "a", "b"], [(0, 1), (0, 2), (1, 3)])
        >>> idx = build_labelsplit_index(g)
        >>> idx.num_nodes   # ROOT, a, b
        3
    """
    return IndexGraph.from_partition(graph, label_partition(graph), 0)
