"""Versioned JSON persistence for index graphs and D(k)-indexes.

A document store should not rebuild its structural summary on every
restart; this module persists an :class:`~repro.indexes.base.IndexGraph`
(and the :class:`~repro.core.dindex.DKIndex` wrapper with its
requirements) alongside the data graph.

Format::

    {
      "format": "repro-indexgraph",
      "version": 1,
      "graph": { ...repro-datagraph document... },   # optional embed
      "node_of": [0, 1, 1, ...],                     # data node -> block
      "k": [0, 2, ...],                              # per index node
      "requirements": {"title": 2}                   # DKIndex only
    }

Only the partition and the ``k`` values are stored; extents, adjacency
and the label index are cheap to rebuild and storing them would only
add consistency hazards.  The loader re-derives everything through
``IndexGraph.from_partition`` and verifies invariants, so a corrupted
file cannot produce a silently unsound index.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any

from repro.core.dindex import DKIndex, check_dk_constraint
from repro.exceptions import IndexInvariantError, SerializationError
from repro.graph.datagraph import DataGraph
from repro.graph.serialize import graph_from_dict, graph_to_dict
from repro.indexes.base import IndexGraph
from repro.maintenance.store import atomic_write_document, read_document
from repro.partition.blocks import Partition

FORMAT_NAME = "repro-indexgraph"
FORMAT_VERSION = 1


def index_to_dict(
    index: IndexGraph,
    embed_graph: bool = True,
    requirements: dict[str, int] | None = None,
) -> dict[str, Any]:
    """JSON-ready dictionary for an index graph.

    Args:
        index: the index.
        embed_graph: include the data graph in the same document (set
            False when the graph is persisted separately).
        requirements: per-label requirements (for D(k) indexes).
    """
    document: dict[str, Any] = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "node_of": list(index.node_of),
        "k": list(index.k),
    }
    if embed_graph:
        document["graph"] = graph_to_dict(index.graph)
    if requirements is not None:
        document["requirements"] = dict(requirements)
    return document


def index_from_dict(
    data: dict[str, Any],
    graph: DataGraph | None = None,
    validate: bool = True,
) -> tuple[IndexGraph, dict[str, int] | None]:
    """Rebuild ``(index, requirements)`` from :func:`index_to_dict` output.

    Args:
        data: the stored document.
        graph: the data graph, required when the document does not embed
            one (and forbidden to conflict when it does).
        validate: run ``check_invariants`` on the rebuilt index.  Leave
            on everywhere except callers that immediately re-verify the
            result themselves (checkpoint recovery deep-audits every
            ladder rung, invariants included, before it may win).

    Raises:
        SerializationError: on structural problems or graph mismatch.
    """
    if not isinstance(data, dict):
        raise SerializationError("index document must be a JSON object")
    if data.get("format") != FORMAT_NAME:
        raise SerializationError(f"unexpected format marker: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise SerializationError(f"unsupported version: {data.get('version')!r}")

    embedded = data.get("graph")
    if embedded is not None:
        if graph is not None:
            raise SerializationError(
                "document embeds a graph; do not pass one explicitly"
            )
        graph = graph_from_dict(embedded)
    if graph is None:
        raise SerializationError("no data graph embedded and none provided")

    node_of = data.get("node_of")
    k_values = data.get("k")
    if not isinstance(node_of, list) or len(node_of) != graph.num_nodes:
        raise SerializationError("'node_of' must map every data node")
    if not isinstance(k_values, list) or not all(
        isinstance(k, int) and k >= 0 for k in k_values
    ):
        raise SerializationError("'k' must be a list of non-negative ints")

    try:
        partition = Partition(node_of)
        index = IndexGraph.from_partition(graph, partition, k_values)
        if validate:
            index.check_invariants()
    except (IndexInvariantError, ValueError) as error:
        raise SerializationError(f"stored index is inconsistent: {error}") from error

    requirements = data.get("requirements")
    if requirements is not None:
        if not isinstance(requirements, dict) or not all(
            isinstance(name, str) and isinstance(value, int)
            for name, value in requirements.items()
        ):
            raise SerializationError("'requirements' must map labels to ints")
    return index, requirements


def save_index(
    index: IndexGraph,
    target: str | Path | IO[str],
    requirements: dict[str, int] | None = None,
    embed_graph: bool = True,
) -> None:
    """Serialize an index (and optionally its data graph) as JSON.

    Paths are written through the atomic sealed writer of
    :mod:`repro.maintenance.store` (temp + fsync + rename, sha256
    footer): a crash mid-save leaves the previous good file, and any
    later byte flip is detected on load.
    """
    document = index_to_dict(index, embed_graph, requirements)
    if isinstance(target, (str, Path)):
        atomic_write_document(target, document)
    else:
        json.dump(document, target)


def load_index(
    source: str | Path | IO[str],
    graph: DataGraph | None = None,
) -> tuple[IndexGraph, dict[str, int] | None]:
    """Load an index written by :func:`save_index`.

    Sealed files are integrity-checked; unsealed version-1 files from
    before the seal existed load as before.

    Raises:
        SerializationError: on integrity or structural problems.
    """
    if isinstance(source, (str, Path)):
        data: Any = read_document(source)
    else:
        data = json.load(source)
    return index_from_dict(data, graph)


def save_dk_index(dk: DKIndex, target: str | Path | IO[str]) -> None:
    """Persist a :class:`DKIndex` (graph + partition + ks + requirements)."""
    save_index(dk.index, target, requirements=dk.requirements, embed_graph=True)


def load_dk_index(source: str | Path | IO[str]) -> DKIndex:
    """Load a :class:`DKIndex` written by :func:`save_dk_index`.

    The D(k) structural constraint is re-verified on load.

    Raises:
        SerializationError: if the stored ks violate Definition 3.
    """
    index, requirements = load_index(source)
    try:
        check_dk_constraint(index)
    except IndexInvariantError as error:
        raise SerializationError(f"stored D(k) ks are invalid: {error}") from error
    return DKIndex(index.graph, index, requirements or {})
