"""The 1-index (Milo & Suciu — ICDT 1999).

Groups data nodes by *full* bisimilarity: extents agree on every
incoming label path up to the root, so the index is both safe and sound
for path expressions of any length — at the cost of a large index graph
(up to one index node per data node in the worst case).

Implementation note: the paper cites Paige & Tarjan's O(m·log n)
partition-refinement algorithm.  We run signature-hash refinement rounds
to the fixpoint instead — O(d·m) for bisimulation depth d — which is
simpler, produces the identical partition, and is fast in practice
because document-shaped graphs have small d.  The number of rounds is
reported so callers can observe the depth.
"""

from __future__ import annotations

from repro.graph.datagraph import DataGraph
from repro.indexes.base import K_UNBOUNDED, IndexGraph
from repro.partition.paige_tarjan import paige_tarjan_bisim
from repro.partition.refinement import bisim_partition


def build_1index(
    graph: DataGraph,
    method: str = "fixpoint",
    *,
    engine: str = "auto",
    jobs: int | None = None,
) -> IndexGraph:
    """Build the 1-index of ``graph``.

    Every index node's assigned local similarity is
    :data:`~repro.indexes.base.K_UNBOUNDED`, so evaluation never
    validates: the 1-index is sound for all path expressions.

    Args:
        graph: the data graph.
        method: ``"fixpoint"`` (signature-hash rounds, O(d·m) for
            bisimulation depth d — the default, fast on documents) or
            ``"paige-tarjan"`` (the O(m·log n) algorithm the paper
            cites).  Both produce the identical partition.
        engine: refinement engine for the fixpoint method
            (``"worklist"``/``"columnar"``/``"legacy"``; ``"auto"``
            picks worklist unless ``DKINDEX_ENGINE`` says otherwise).
        jobs: worker processes for parallel signature hashing.

    Raises:
        ValueError: for an unknown method name.

    Example:
        >>> from repro.graph.builder import graph_from_edges
        >>> g = graph_from_edges(
        ...     ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
        ... )
        >>> build_1index(g).num_nodes
        5
        >>> build_1index(g, method="paige-tarjan").num_nodes
        5
    """
    if method == "fixpoint":
        partition, _rounds = bisim_partition(graph, engine=engine, jobs=jobs)
    elif method == "paige-tarjan":
        partition = paige_tarjan_bisim(graph)
    else:
        raise ValueError(f"unknown 1-index construction method: {method!r}")
    return IndexGraph.from_partition(graph, partition, K_UNBOUNDED)


def bisimulation_depth(graph: DataGraph) -> int:
    """Number of refinement rounds until the bisimulation fixpoint.

    Useful for sizing experiments: A(k) for k at or beyond this depth
    *is* the 1-index.
    """
    _partition, rounds = bisim_partition(graph)
    return rounds
