"""The A(k)-index (Kaushik, Shenoy, Bohannon, Gudes — ICDE 2002).

Groups data nodes by k-bisimilarity: extents agree on all incoming label
paths of length <= k.  The index is *safe* for every path expression and
*sound* for expressions of length (in edges) <= k; longer queries need
the validation step (:mod:`repro.indexes.validation`).

The A(k)-index is the special case of the D(k)-index with a uniform
local-similarity requirement of ``k`` for every label (Section 4.1 of
the D(k) paper), which the test suite verifies.
"""

from __future__ import annotations

from repro.graph.datagraph import DataGraph
from repro.indexes.base import IndexGraph
from repro.partition.refinement import kbisim_partition


def build_ak_index(
    graph: DataGraph,
    k: int,
    *,
    engine: str = "auto",
    jobs: int | None = None,
) -> IndexGraph:
    """Build the A(k)-index of ``graph``.

    Construction runs ``k`` split rounds from the label-split graph —
    O(k·m) for m data edges, matching the bound cited in Section 4.1.
    The default worklist engine only re-hashes nodes whose parents'
    blocks split in the previous round, which is substantially faster on
    document-shaped graphs (see ``docs/performance.md``).

    Args:
        graph: the data graph.
        k: the uniform local-similarity bound (>= 0).
        engine: refinement engine (``"worklist"``/``"columnar"``/
            ``"legacy"``; the default ``"auto"`` resolves to worklist
            unless ``DKINDEX_ENGINE`` says otherwise).
        jobs: worker processes for parallel signature hashing.

    Example:
        >>> from repro.graph.builder import graph_from_edges
        >>> g = graph_from_edges(
        ...     ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
        ... )
        >>> build_ak_index(g, 0).num_nodes   # by label: ROOT, a, b, x
        4
        >>> build_ak_index(g, 1).num_nodes   # the two x nodes split
        5
    """
    partition = kbisim_partition(graph, k, engine=engine, jobs=jobs)
    return IndexGraph.from_partition(graph, partition, k)
