"""Structural-summary index graphs.

An *index graph* (Section 3) has one node per equivalence class of data
nodes; each index node stores its *extent* (the member data nodes), and
an index edge A→B exists whenever some data edge connects a member of A
to a member of B.  Queries evaluate over the (much smaller) index graph;
results are unions of extents, validated against the data graph when the
index is only approximate for the query's length.

This subpackage provides the shared :class:`~repro.indexes.base.IndexGraph`
structure plus the baseline summaries from the literature:

- label-split graph (0-bisimulation) — :mod:`repro.indexes.labelsplit`;
- A(k)-index (Kaushik et al., ICDE 2002) — :mod:`repro.indexes.akindex`;
- 1-index (Milo & Suciu, ICDT 1999) — :mod:`repro.indexes.oneindex`;
- strong DataGuide (Goldman & Widom, VLDB 1997) —
  :mod:`repro.indexes.dataguide`.

The adaptive D(k)-index lives in :mod:`repro.core`.
"""

from repro.indexes.akindex import build_ak_index
from repro.indexes.base import K_UNBOUNDED, IndexGraph
from repro.indexes.dataguide import build_strong_dataguide
from repro.indexes.diagnostics import audit_similarities
from repro.indexes.evaluation import evaluate_on_index
from repro.indexes.explain import explain
from repro.indexes.fbindex import build_fb_index, evaluate_twig_on_fb
from repro.indexes.labelsplit import build_labelsplit_index
from repro.indexes.metrics import index_metrics, load_precision
from repro.indexes.oneindex import build_1index

# NOTE: repro.indexes.serialize is imported lazily by its users — it
# depends on repro.core (for the DKIndex wrapper), which depends back on
# this package; import it directly where needed.

__all__ = [
    "IndexGraph",
    "K_UNBOUNDED",
    "audit_similarities",
    "build_1index",
    "build_ak_index",
    "build_fb_index",
    "build_labelsplit_index",
    "build_strong_dataguide",
    "evaluate_on_index",
    "evaluate_twig_on_fb",
    "explain",
    "index_metrics",
    "load_precision",
]
