"""The strong DataGuide (Goldman & Widom — VLDB 1997).

The strong DataGuide is the determinization of the data graph viewed as
an automaton over labels: each DataGuide node corresponds to a distinct
*target set* — the set of data nodes reachable from the root by some
label path.  Unlike the bisimulation indexes, a data node may appear in
several extents, and the number of nodes can be exponential in the data
size for non-tree data (which is exactly why the D(k) paper's related
work dismisses it for complex graphs).

It is included as a related-work baseline; a ``max_nodes`` guard keeps
the exponential worst case from running away.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import IndexError_
from repro.graph.datagraph import DataGraph


@dataclass
class DataGuide:
    """A strong DataGuide.

    Attributes:
        graph: the underlying data graph.
        label_ids: label id per DataGuide node (the root node has the
            ROOT label).
        extents: target sets per DataGuide node (may overlap!).
        children: ``children[node]`` maps a label id to the unique child
            DataGuide node reached by that label (determinism).
    """

    graph: DataGraph
    label_ids: list[int] = field(default_factory=list)
    extents: list[list[int]] = field(default_factory=list)
    children: list[dict[int, int]] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return len(self.label_ids)

    @property
    def root(self) -> int:
        return 0

    def _append_node(self, label_id: int, extent: list[int]) -> int:
        """Add a DataGuide node; extent state is owned by this class."""
        node = self.num_nodes
        self.label_ids.append(label_id)
        self.extents.append(extent)
        self.children.append({})
        return node

    def evaluate_label_path(self, labels: list[str]) -> set[int]:
        """Evaluate an *anchored* label path by deterministic descent.

        A path expression with p labels is matched against exactly p
        DataGuide nodes — the property the paper's related-work section
        describes.  Unknown labels yield the empty set.
        """
        if not all(self.graph.has_label(name) for name in labels):
            return set()
        node = self.root
        for name in labels:
            label_id = self.graph.label_id(name)
            next_node = self.children[node].get(label_id)
            if next_node is None:
                return set()
            node = next_node
        return set(self.extents[node])


def build_strong_dataguide(graph: DataGraph, max_nodes: int = 1_000_000) -> DataGuide:
    """Build the strong DataGuide via subset construction from the root.

    Args:
        graph: the data graph.
        max_nodes: abort threshold for the exponential worst case.

    Raises:
        IndexError_: if more than ``max_nodes`` DataGuide nodes arise.

    Example:
        >>> from repro.graph.builder import graph_from_edges
        >>> g = graph_from_edges(
        ...     ["a", "a", "b", "b"], [(0, 1), (0, 2), (1, 3), (2, 4)]
        ... )
        >>> guide = build_strong_dataguide(g)
        >>> guide.num_nodes   # ROOT, {a-nodes}, {b-nodes}
        3
        >>> sorted(guide.evaluate_label_path(["a", "b"]))
        [3, 4]
    """
    guide = DataGuide(graph)
    root_set = frozenset({graph.root})
    table: dict[frozenset[int], int] = {}

    def intern(target_set: frozenset[int], label_id: int) -> int:
        existing = table.get(target_set)
        if existing is not None:
            return existing
        if guide.num_nodes >= max_nodes:
            raise IndexError_(
                f"strong DataGuide exceeded {max_nodes} nodes; "
                "the data graph is too entangled for determinization"
            )
        node = guide._append_node(label_id, sorted(target_set))
        table[target_set] = node
        return node

    intern(root_set, graph.label_ids[graph.root])
    queue = deque([root_set])
    processed: set[frozenset[int]] = {root_set}
    while queue:
        current = queue.popleft()
        current_id = table[current]
        successors: dict[int, set[int]] = {}
        for member in current:
            for child in graph.children[member]:
                successors.setdefault(graph.label_ids[child], set()).add(child)
        for label_id, targets in sorted(successors.items()):
            target_set = frozenset(targets)
            child_id = intern(target_set, label_id)
            guide.children[current_id][label_id] = child_id
            if target_set not in processed:
                processed.add(target_set)
                queue.append(target_set)
    return guide
