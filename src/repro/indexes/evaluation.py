"""Query evaluation over index graphs.

The evaluation protocol (Sections 3, 4.1 and 6.1 of the paper):

1. traverse the *index graph* to find all index nodes matched by the
   path expression (every index node touched counts toward the cost);
2. the answer is the union of matched index nodes' extents — for free
   ("data nodes in the extent of a matched index node are not counted");
3. soundness check: for a label-path query with ``s`` edges, a matched
   terminal index node whose local similarity ``k(n) >= s`` contributes
   its extent verbatim (Theorem 1 plus the D(k) structural constraint);
   otherwise its extent members are *candidates* that go through the
   validation process against the data graph, whose visits are counted.

The same machinery serves A(k) (uniform ``k``), the 1-index
(``K_UNBOUNDED``, never validates) and D(k) (per-node ``k``).
"""

from __future__ import annotations

from typing import Sequence

from repro.indexes.base import IndexGraph
from repro.indexes.validation import (
    validate_label_path_candidates,
    validate_regex_candidates,
)
from repro.paths.cost import CostCounter
from repro.paths.query import LabelPathQuery, Query, RegexQuery


def evaluate_on_index(
    index: IndexGraph,
    query: Query,
    counter: CostCounter | None = None,
    validate: bool = True,
) -> set[int]:
    """Evaluate ``query`` on ``index``; return matching *data* node ids.

    Args:
        index: any :class:`IndexGraph`.
        query: a :class:`LabelPathQuery` or :class:`RegexQuery`.
        counter: optional cost accumulator.
        validate: when False, skip validation and return the (safe but
            possibly unsound) raw index answer — useful for measuring
            the index's approximation error.

    Example:
        >>> from repro.graph.builder import graph_from_edges
        >>> from repro.indexes.akindex import build_ak_index
        >>> from repro.paths.query import make_query
        >>> g = graph_from_edges(
        ...     ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
        ... )
        >>> idx = build_ak_index(g, 2)
        >>> sorted(evaluate_on_index(idx, make_query("a.x")))
        [3]
    """
    counter = counter if counter is not None else CostCounter()
    if isinstance(query, LabelPathQuery):
        return _evaluate_label_path(index, query, counter, validate)
    if isinstance(query, RegexQuery):
        return _evaluate_regex(index, query, counter, validate)
    raise TypeError(f"unsupported query type: {type(query).__name__}")


def match_index_nodes(
    index: IndexGraph,
    query: LabelPathQuery,
    counter: CostCounter | None = None,
) -> set[int]:
    """Index nodes matched by a label-path query (terminal position).

    Exposed separately because the update experiments reason about which
    index nodes a query lands on.
    """
    counter = counter if counter is not None else CostCounter()
    graph = index.graph
    if not all(graph.has_label(name) for name in query.labels):
        return set()
    wanted = [graph.label_id(name) for name in query.labels]
    return _match_positions(index, wanted, query.anchored, counter)


def _match_positions(
    index: IndexGraph,
    wanted: Sequence[int],
    anchored: bool,
    counter: CostCounter,
) -> set[int]:
    """Forward traversal of the index graph along a label-id chain."""
    if anchored:
        counter.visit_index_node()  # the root index node
        root = index.root_index_node
        frontier = {
            child for child in index.children[root] if index.label_ids[child] == wanted[0]
        }
    else:
        frontier = set(index.nodes_with_label_id(wanted[0]))
    counter.visit_index_node(len(frontier))

    for want in wanted[1:]:
        if not frontier:
            return set()
        next_frontier: set[int] = set()
        for node in frontier:
            for child in index.children[node]:
                if index.label_ids[child] == want:
                    next_frontier.add(child)
        counter.visit_index_node(len(next_frontier))
        frontier = next_frontier
    return frontier


def _evaluate_label_path(
    index: IndexGraph,
    query: LabelPathQuery,
    counter: CostCounter,
    validate: bool,
) -> set[int]:
    graph = index.graph
    if not all(graph.has_label(name) for name in query.labels):
        return set()
    wanted = [graph.label_id(name) for name in query.labels]
    terminals = _match_positions(index, wanted, query.anchored, counter)
    if not terminals:
        return set()

    # Soundness threshold: an unanchored query of s edges needs
    # k(terminal) >= s (Theorem 1).  An anchored query additionally pins
    # the path start to the root, which is equivalent to matching the
    # extended label path ROOT.l1...lp (s+1 edges, and ROOT labels only
    # the root node) — hence k(terminal) >= s + 1.
    required = query.num_edges + (1 if query.anchored else 0)
    results: set[int] = set()
    needs_validation: list[int] = []
    for terminal in terminals:
        if index.k[terminal] >= required or not validate:
            results.update(index.extents[terminal])
        else:
            needs_validation.extend(index.extents[terminal])
    if needs_validation:
        verified = validate_label_path_candidates(
            graph,
            (c for c in needs_validation if c not in results),
            wanted,
            query.anchored,
            counter,
        )
        results.update(verified)
    return results


def _evaluate_regex(
    index: IndexGraph,
    query: RegexQuery,
    counter: CostCounter,
    validate: bool,
) -> set[int]:
    graph = index.graph
    nfa = query.nfa.bind({name: i for i, name in enumerate(graph.label_names())})
    start = frozenset({nfa.start})
    label_ids = index.label_ids
    children = index.children

    # Track, per terminal index node, the *longest* accepted word length
    # seen (bounded by num_edges possible in the index); a terminal is
    # sound when k(n) covers every accepted match length, which we can
    # only certify for finite-language expressions.
    max_len = query.max_length
    matched: set[int] = set()
    seen: set[tuple[int, frozenset[int]]] = set()
    stack: list[tuple[int, frozenset[int]]] = []

    if query.anchored:
        counter.visit_index_node()  # the root index node
        start_candidates: Sequence[int] = sorted(
            index.children[index.root_index_node]
        )
    else:
        start_candidates = range(index.num_nodes)

    for node in start_candidates:
        states = nfa.step(start, label_ids[node])
        if states:
            key = (node, states)
            if key not in seen:
                seen.add(key)
                stack.append(key)
                counter.visit_index_node()
                if nfa.is_accepting(states):
                    matched.add(node)

    while stack:
        node, states = stack.pop()
        for child in children[node]:
            next_states = nfa.step(states, label_ids[child])
            if not next_states:
                continue
            key = (child, next_states)
            if key in seen:
                continue
            seen.add(key)
            counter.visit_index_node()
            if nfa.is_accepting(next_states):
                matched.add(child)
            stack.append(key)

    if not matched:
        return set()

    results: set[int] = set()
    needs_validation: list[int] = []
    for terminal in matched:
        # Finite-language expressions are sound on a terminal whose k
        # covers the longest possible match (plus one for the implicit
        # ROOT edge when anchored); unbounded expressions always validate.
        required = None if max_len is None else max_len - 1 + (
            1 if query.anchored else 0
        )
        sound = required is not None and index.k[terminal] >= required
        if sound or not validate:
            results.update(index.extents[terminal])
        else:
            needs_validation.extend(index.extents[terminal])
    if needs_validation:
        verified = validate_regex_candidates(
            graph,
            (c for c in needs_validation if c not in results),
            query.nfa,
            query.anchored,
            counter,
        )
        results.update(verified)
    return results
