"""Mining per-label local-similarity requirements from a query load.

Section 6.1: "we set a label's local similarity requirement to be the
longest length of test path queries less one such that no validation
will be needed for evaluation on it."

For a label-path query of ``p`` labels ending at label ``l``, evaluation
on the index is sound when the terminal index node's local similarity is
at least ``p - 1`` (the number of edges); anchored queries need one more
level for the implicit ROOT edge.  The basic miner below takes the
maximum over the load; the frequency-aware miner (the paper's
future-work direction) lives in :mod:`repro.workload.mining`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.paths.query import LabelPathQuery, Query, RegexQuery


def required_similarity(query: Query) -> tuple[str, int] | None:
    """The ``(target label, required k)`` a query imposes, if statically
    determinable.

    Label-path queries impose ``num_edges`` (plus 1 when anchored) on
    their terminal label.  Finite-language regex queries impose their
    maximum word length minus one on *every* label they mention — a safe
    over-approximation, returned as None here and handled by
    :func:`requirements_from_queries` directly.
    """
    if isinstance(query, LabelPathQuery):
        needed = query.num_edges + (1 if query.anchored else 0)
        return (query.target_label, needed)
    return None


def requirements_from_queries(queries: Iterable[Query]) -> dict[str, int]:
    """Per-label requirements making every query in the load sound.

    Example:
        >>> from repro.paths.query import make_query
        >>> load = [make_query("movie.title"), make_query("a.b.movie.title")]
        >>> requirements_from_queries(load)
        {'title': 3}
    """
    requirements: dict[str, int] = {}

    def bump(label: str, needed: int) -> None:
        if needed > requirements.get(label, -1):
            requirements[label] = needed

    for query in queries:
        simple = required_similarity(query)
        if simple is not None:
            label, needed = simple
            bump(label, needed)
            continue
        if isinstance(query, RegexQuery):
            max_len = query.max_length
            if max_len is None:
                # Unbounded expressions can never be made sound by a
                # finite k; they always validate, so impose nothing.
                continue
            needed = max_len - 1 + (1 if query.anchored else 0)
            for label in set(query.expr.labels()):
                bump(label, needed)
    return requirements


def merge_requirements(
    base: Mapping[str, int], extra: Mapping[str, int]
) -> dict[str, int]:
    """Pointwise maximum of two requirement maps."""
    merged = dict(base)
    for label, value in extra.items():
        if value > merged.get(label, -1):
            merged[label] = value
    return merged
