"""An adaptive tuning policy: the paper's promote/demote loop, automated.

Section 5.3/5.4 prescribe running the promoting and demoting processes
*periodically* as the query load drifts, and the conclusion names query
pattern mining as the enabler.  :class:`AdaptiveTuner` packages that
loop: it watches a sliding window of recent queries, mines coverage
requirements from the window, and decides — with hysteresis, so a few
stray queries don't thrash the index — when to promote (labels whose
required similarity rose) and when to demote (the mined requirements
dropped enough to be worth shrinking for).

This is an extension beyond the paper's evaluated scope (flagged as
future work there), built from the paper's own primitives.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.dindex import DKIndex
from repro.paths.query import Query
from repro.workload.mining import coverage_requirements, requirement_gain
from repro.workload.queryload import QueryLoad


@dataclass(frozen=True)
class TunerConfig:
    """Policy knobs.

    Attributes:
        window: number of recent queries the tuner considers.
        coverage: target fraction of window queries that must be sound
            (the frequency-aware miner's quantile).
        min_queries: don't tune before the window has this many queries.
        promote_threshold: promote as soon as this many labels need a
            higher similarity (promotions are cheap and restore
            soundness, so the default is eager).
        demote_slack: only demote a label when its mined requirement is
            at least this much below the current one (hysteresis: demote
            rebuilds extents, so it should be worth it).
        check_every: consider tuning every N recorded queries.
    """

    window: int = 200
    coverage: float = 0.95
    min_queries: int = 20
    promote_threshold: int = 1
    demote_slack: int = 2
    check_every: int = 25


@dataclass
class TuningAction:
    """What one tuning step did."""

    promoted: dict[str, int] = field(default_factory=dict)
    demoted: dict[str, int] = field(default_factory=dict)
    index_size_before: int = 0
    index_size_after: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.promoted or self.demoted)


class AdaptiveTuner:
    """Keeps a :class:`DKIndex` tuned to a drifting query stream.

    Usage::

        tuner = AdaptiveTuner(dk)
        for query in stream:
            result = dk.evaluate(query)
            action = tuner.observe(query)   # may promote/demote

    The tuner never changes *answers* (the D(k)-index is exact with
    validation regardless); it only moves work between the index and the
    validation step.
    """

    def __init__(self, dk: DKIndex, config: TunerConfig | None = None) -> None:
        self.dk = dk
        self.config = config or TunerConfig()
        self._recent: deque[Query] = deque(maxlen=self.config.window)
        self._since_last_check = 0
        self.actions: list[TuningAction] = []

    def observe(self, query: Query) -> TuningAction | None:
        """Record one executed query; tune if the policy says so.

        Returns:
            The :class:`TuningAction` taken, or None if nothing changed.
        """
        self._recent.append(query)
        self._since_last_check += 1
        if self._since_last_check < self.config.check_every:
            return None
        if len(self._recent) < self.config.min_queries:
            return None
        self._since_last_check = 0
        return self._tune()

    def window_load(self) -> QueryLoad:
        """The current sliding-window query load."""
        return QueryLoad(self._recent)

    def _tune(self) -> TuningAction | None:
        mined = coverage_requirements(self.window_load(), self.config.coverage)
        raise_map, lower_map = requirement_gain(self.dk.requirements, mined)

        # Hysteresis on demotions: only keep the clearly-worth-it drops.
        lower_map = {
            label: value
            for label, value in lower_map.items()
            if self.dk.requirements.get(label, 0) - value >= self.config.demote_slack
        }

        if len(raise_map) < self.config.promote_threshold and not lower_map:
            return None

        action = TuningAction(index_size_before=self.dk.size)
        if raise_map:
            self.dk.promote(raise_map)
            action.promoted = raise_map
        if lower_map:
            target = dict(self.dk.requirements)
            target.update(lower_map)
            self.dk.demote(target)
            action.demoted = lower_map
        action.index_size_after = self.dk.size
        if action.changed:
            self.actions.append(action)
            return action
        return None
