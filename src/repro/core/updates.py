"""Incremental updates — Algorithms 3, 4 and 5, plus the A(k) baseline.

Edge addition on the D(k)-index (Section 5.2) never touches the data
graph's structure beyond recording the new edge: it computes the highest
local similarity the end node can keep (Algorithm 4, a label-path
comparison carried out entirely in the *index* graph) and then lowers
the similarities of nearby index nodes with a breadth-first sweep
(Algorithm 5).  The extents never change — that is why it is fast.

The A(k)-index has no published update algorithm; following Section 6.2
we implement a *propagate* variant of the 1-index update (Kaushik et
al., VLDB 2002): carve the target data node out of its index node, then
re-partition descendant index nodes against the source data up to
distance k-1.  Every signature recomputation touches data-graph nodes,
which is why it is slow — the asymmetry Table 1 measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.broadcast import broadcast_for_graph
from repro.core.construction import (
    build_dk_index,
    reindex_index_graph,
    resolve_requirements,
)
from repro.exceptions import UnknownNodeError, UpdateError
from repro.graph.datagraph import DataGraph
from repro.indexes.base import IndexGraph
from repro.maintenance.faults import fault_point
from repro.partition.blocks import Partition

#: Safety valve for Algorithm 4's label-path frontier; beyond this many
#: distinct label paths the search stops early, which only *under*-states
#: the new similarity (sound, never unsound).
MAX_LABEL_PATHS = 10_000


@dataclass
class EdgeUpdateReport:
    """What an edge-addition update did.

    Attributes:
        source / target: the index nodes U and V of the new edge.
        old_k / new_k: V's local similarity before and after.
        lowered: ``{index node: (old k, new k)}`` for every node the
            BFS sweep lowered (V included).
        index_nodes_touched: nodes examined by the sweep (the paper's
            "touch nodes and edges within distance k_V in the index
            graph" cost).
        new_index_edge: True if the index edge U -> V was new.
    """

    source: int
    target: int
    old_k: int
    new_k: int
    lowered: dict[int, tuple[int, int]] = field(default_factory=dict)
    index_nodes_touched: int = 0
    new_index_edge: bool = False


def _extend_label_paths(
    index: IndexGraph,
    paths: dict[tuple[int, ...], set[int]],
) -> dict[tuple[int, ...], set[int]] | None:
    """Extend every label path one step up through the index graph.

    ``paths`` maps a label path (tuple of label ids, leftmost outermost)
    to the set of index nodes at which matching node paths *start*.
    Returns None when the frontier exceeds :data:`MAX_LABEL_PATHS`.
    """
    extended: dict[tuple[int, ...], set[int]] = {}
    label_ids = index.label_ids
    parents = index.parents
    for path, frontier in paths.items():
        for node in frontier:
            for parent in parents[node]:
                longer = (label_ids[parent],) + path
                bucket = extended.get(longer)
                if bucket is None:
                    if len(extended) >= MAX_LABEL_PATHS:
                        return None
                    extended[longer] = {parent}
                else:
                    bucket.add(parent)
    return extended


def update_local_similarity(index: IndexGraph, source: int, target: int) -> int:
    """Algorithm 4 — the highest local similarity ``target`` may keep.

    Computes the maximal ``k_N`` such that every label path of length
    ``k_N`` entering ``target`` *through the new edge from source*
    already matches ``target`` in the current index graph.  Must be
    called *before* the index edge is inserted ("match V in the original
    I_G").

    The new similarity is bounded by ``min(k_U + 1, k_V)`` — paths
    through ``source`` are only vouched for up to ``source``'s own
    similarity, and an edge addition never raises a similarity.
    """
    upbound = min(index.k[source] + 1, index.k[target])
    if upbound <= 0:
        return 0

    label_ids = index.label_ids
    # Label paths of length 1 (just the label entering `target`).
    new_paths: dict[tuple[int, ...], set[int]] = {
        (label_ids[source],): {source}
    }
    old_paths: dict[tuple[int, ...], set[int]] = {}
    for parent in index.parents[target]:
        old_paths.setdefault((label_ids[parent],), set()).add(parent)

    similarity = 0
    while similarity < upbound:
        if not new_paths:
            # No label path of this length passes through the new edge at
            # all; longer paths vacuously match, so the cap is reachable.
            return upbound
        if not set(new_paths) <= set(old_paths):
            return similarity
        similarity += 1
        if similarity == upbound:
            return similarity
        # Only old paths that coincide with new paths can extend into
        # next-level matches of new paths (suffix extension), so restrict
        # before extending — this is the pseudo-code's
        # "OldLabelPathSet = NewLabelPathSet" read charitably.
        old_paths = {
            path: frontier
            for path, frontier in old_paths.items()
            if path in new_paths
        }
        extended_old = _extend_label_paths(index, old_paths)
        extended_new = _extend_label_paths(index, new_paths)
        if extended_old is None or extended_new is None:
            return similarity  # frontier exploded; keep the sound answer
        old_paths = extended_old
        new_paths = extended_new
    return similarity


def assign_similarity(index: IndexGraph, node: int, value: int) -> None:
    """The authorised write path for assigned local similarities.

    Definition 3's constraint is only maintainable if ``IndexGraph.k``
    is written by the code that re-establishes it afterwards — the
    update algorithms here, the promote/demote machinery that routes
    through this helper, and the maintenance layer's rollback/repair.
    The ``DK107`` lint rule enforces exactly that ownership.
    """
    index.k[node] = value


def _require_endpoint(graph: DataGraph, index: IndexGraph, node: int) -> None:
    """Validate one data-node endpoint of an edge update up front.

    Raises:
        UnknownNodeError: if ``node`` is not a graph node, or the index
            predates it (``node_of`` does not cover it) — either way no
            update algorithm can place it, and failing *before* the
            first write keeps even the legacy non-transactional path
            exception-safe.
    """
    if not graph.has_node(node) or node >= len(index.node_of):
        raise UnknownNodeError(node)


def _simulate_lowering(
    index: IndexGraph,
    start: int,
    start_k: int,
    add_edge: tuple[int, int] | None = None,
    drop_edge: tuple[int, int] | None = None,
) -> tuple[dict[int, tuple[int, int]], int]:
    """Plan Algorithm 5's sweep without touching the index.

    Runs the same breadth-first relaxation as :func:`lower_similarities`
    against an overlay of ``index.k`` in which ``start`` is already
    lowered to ``start_k``, and against the index adjacency as it *will*
    look after the pending update (``add_edge`` / ``drop_edge`` are
    virtual index-edge changes).  The relaxation is monotone, so the
    planned fixpoint equals what the in-place sweep would compute.

    Returns:
        ``(lowered, touched)`` exactly like :func:`lower_similarities`,
        with ``start`` included in ``lowered`` when it drops.
    """
    overlay: dict[int, int] = {}
    lowered: dict[int, tuple[int, int]] = {}
    if start_k < index.k[start]:
        overlay[start] = start_k
        lowered[start] = (index.k[start], start_k)
    touched = 0
    queue = deque([start])
    while queue:
        current = queue.popleft()
        ceiling = overlay.get(current, index.k[current]) + 1
        children = index.children[current]
        if add_edge is not None and current == add_edge[0]:
            children = children | {add_edge[1]}
        if drop_edge is not None and current == drop_edge[0]:
            children = children - {drop_edge[1]}
        for child in children:
            touched += 1
            if overlay.get(child, index.k[child]) > ceiling:
                previous = lowered.get(child, (index.k[child], 0))[0]
                lowered[child] = (previous, ceiling)
                overlay[child] = ceiling
                queue.append(child)
    return lowered, touched


def lower_similarities(index: IndexGraph, start: int) -> tuple[dict[int, tuple[int, int]], int]:
    """Algorithm 5's sweep: re-establish the D(k) constraint below ``start``.

    Breadth-first from ``start``: for an edge W -> X with ``k(W) + 1 <
    k(X)``, lower ``k(X)`` to ``k(W) + 1`` and continue; otherwise stop
    propagating through X.

    Returns:
        ``(lowered, touched)`` — the changed nodes with old/new values,
        and the number of index nodes examined.
    """
    lowered: dict[int, tuple[int, int]] = {}
    touched = 0
    queue = deque([start])
    while queue:
        current = queue.popleft()
        ceiling = index.k[current] + 1
        for child in index.children[current]:
            touched += 1
            if index.k[child] > ceiling:
                previous = lowered.get(child, (index.k[child], 0))[0]
                lowered[child] = (previous, ceiling)
                index.k[child] = ceiling
                queue.append(child)
    return lowered, touched


def dk_add_edge(
    graph: DataGraph,
    index: IndexGraph,
    src_data: int,
    dst_data: int,
) -> EdgeUpdateReport:
    """Algorithm 5 — add a data edge and update the D(k)-index in place.

    Args:
        graph: the data graph (``index.graph``).
        index: the D(k)-index to update.
        src_data / dst_data: endpoints of the new data edge.

    The full plan — Algorithm 4's new similarity and Algorithm 5's
    lowering fixpoint — is computed *before* the first write, so every
    failure mode (unknown endpoints, duplicate edge, a fault injected
    mid-plan) raises while the graph and index are still untouched; the
    writes that follow are plain assignments that cannot fail.

    Raises:
        UnknownNodeError: if either endpoint is not covered by the
            graph and the index.
        UpdateError: if the data edge already exists or the index does
            not belong to ``graph``.
    """
    if index.graph is not graph:
        raise UpdateError("index was built over a different data graph")
    _require_endpoint(graph, index, src_data)
    _require_endpoint(graph, index, dst_data)
    if graph.has_edge(src_data, dst_data):
        raise UpdateError(f"data edge {src_data} -> {dst_data} already exists")

    source = index.node_of[src_data]
    target = index.node_of[dst_data]

    # Algorithm 4 runs against the index *before* the edge appears.
    old_k = index.k[target]
    new_k = update_local_similarity(index, source, target)
    will_add_index_edge = target not in index.children[source]
    lowered, touched = _simulate_lowering(
        index, target, min(new_k, old_k), add_edge=(source, target)
    )
    fault_point("add_edge.planned", index)

    # Writes: nothing below can raise.
    graph.add_edge(src_data, dst_data)
    fault_point("add_edge.graph_mutated", index)
    if will_add_index_edge:
        index.add_index_edge(source, target)
    fault_point("add_edge.index_edge", index)
    for node, (_old, new) in lowered.items():
        assign_similarity(index, node, new)
    fault_point("add_edge.lowered", index)

    return EdgeUpdateReport(
        source=source,
        target=target,
        old_k=old_k,
        new_k=index.k[target],
        lowered=lowered,
        index_nodes_touched=touched + 1,
        new_index_edge=will_add_index_edge,
    )


def enforce_dk_constraint(index: IndexGraph) -> int:
    """Restore Definition 3 by lowering similarities where violated.

    A global version of Algorithm 5's sweep: whenever an index edge has
    ``k(child) > k(parent) + 1``, lower the child (and keep propagating).
    Lowering is always sound — it only sends more queries to validation.

    Returns:
        The number of index nodes whose similarity was lowered.
    """
    queue = deque(range(index.num_nodes))
    lowered: set[int] = set()
    while queue:
        node = queue.popleft()
        ceiling = index.k[node] + 1
        for child in index.children[node]:
            if index.k[child] > ceiling:
                index.k[child] = ceiling
                lowered.add(child)
                queue.append(child)
    return len(lowered)


def dk_add_subgraph(
    graph: DataGraph,
    index: IndexGraph,
    subgraph: DataGraph,
    requirements: Mapping[str, int],
) -> tuple[IndexGraph, list[int]]:
    """Algorithm 3 — insert a document subgraph and update the index.

    Steps (Section 5.1):

    1. graft ``subgraph`` under the data graph's root;
    2. build the D(k)-index ``I_H`` of the subgraph — using the
       broadcast levels of the *combined* graph, honouring the paper's
       precondition that "the index nodes with the same label in the
       original I_G and I_H should have the same local similarity";
    3. place ``I_H`` beside the original index nodes (its root block
       merging with the original root block);
    4. treat the combined index graph as a data graph and compute *its*
       D(k)-index (Theorem 2 guarantees this equals the index built from
       scratch), merging extents;
    5. restore the D(k) constraint by lowering where the insertion
       introduced label adjacencies the original index was never
       broadcast for (a generalisation beyond the paper's same-DTD
       setting; when G and H share a schema this is a no-op and the
       result equals the from-scratch rebuild exactly).

    Returns:
        ``(new_index, mapping)`` where ``mapping`` maps subgraph node ids
        to their ids in the grown data graph.  The input ``index`` object
        is not mutated; callers swap in the returned one.
    """
    if index.graph is not graph:
        raise UpdateError("index was built over a different data graph")

    mapping = graph.graft(subgraph)
    fault_point("add_subgraph.grafted", index)

    # Broadcast over the *combined* graph, then express the levels in
    # the subgraph's own label-id space (names are shared).
    initial = resolve_requirements(graph, requirements)
    levels = broadcast_for_graph(graph, graph.num_labels, initial)
    sub_label_levels = [
        levels[graph.label_id(subgraph.label_name(label_id))]
        for label_id in range(subgraph.num_labels)
    ]
    from repro.partition.refinement import leveled_partition

    sub_node_levels = [
        sub_label_levels[subgraph.label_ids[node]]
        for node in range(subgraph.num_nodes)
    ]
    sub_partition = leveled_partition(subgraph, sub_node_levels)
    sub_block_k = [
        sub_node_levels[members[0]] for members in sub_partition.blocks
    ]

    # Provisional blocks over the grown data graph: original blocks keep
    # their ids; subgraph blocks (except the root block) get fresh ids.
    num_old = index.num_nodes
    block_of = list(index.node_of)
    block_of.extend([0] * (graph.num_nodes - len(block_of)))
    sub_root_block = sub_partition.block_of[subgraph.root]
    fresh: dict[int, int] = {}
    provisional_k = list(index.k)
    for sub_block in range(sub_partition.num_blocks):
        if sub_block == sub_root_block:
            continue
        fresh[sub_block] = num_old + len(fresh)
        provisional_k.append(sub_block_k[sub_block])
    for sub_node in range(1, subgraph.num_nodes):
        sub_block = sub_partition.block_of[sub_node]
        block_of[mapping[sub_node]] = (
            index.node_of[graph.root]
            if sub_block == sub_root_block
            else fresh[sub_block]
        )

    provisional = IndexGraph.from_partition(
        graph, Partition(block_of), provisional_k
    )
    merged = reindex_index_graph(provisional, levels)
    enforce_dk_constraint(merged)
    fault_point("add_subgraph.reindexed", merged)
    return merged, mapping


def dk_add_edges(
    graph: DataGraph,
    index: IndexGraph,
    edges: list[tuple[int, int]],
) -> list[EdgeUpdateReport]:
    """Apply a batch of edge additions, one Algorithm 4+5 pass each.

    A convenience wrapper over :func:`dk_add_edge` that groups the
    inevitable bookkeeping of update streams (the experiments apply 100
    edges at a time).  The whole batch is validated up front — unknown
    endpoints, edges already in the graph, and duplicates *within the
    batch* (including repeated self-loops) all raise before the first
    edge is applied, so a bad batch is a no-op rather than a partial
    application.

    Returns:
        One :class:`EdgeUpdateReport` per edge, in order.

    Raises:
        UnknownNodeError: if any endpoint is unknown.
        UpdateError: if any edge already exists or appears twice in the
            batch.
    """
    if index.graph is not graph:
        raise UpdateError("index was built over a different data graph")
    seen: set[tuple[int, int]] = set()
    for src, dst in edges:
        _require_endpoint(graph, index, src)
        _require_endpoint(graph, index, dst)
        if graph.has_edge(src, dst):
            raise UpdateError(f"data edge {src} -> {dst} already exists")
        if (src, dst) in seen:
            raise UpdateError(f"duplicate edge {src} -> {dst} in batch")
        seen.add((src, dst))
    return [dk_add_edge(graph, index, src, dst) for src, dst in edges]


def dk_remove_edge(
    graph: DataGraph,
    index: IndexGraph,
    src_data: int,
    dst_data: int,
) -> EdgeUpdateReport:
    """Extension: remove a data edge and update the D(k)-index in place.

    The paper evaluates only additive updates but notes that "all other
    update operations on the D(k)-index can be built on these two basic
    cases"; deletion follows the same index-only recipe as Algorithm 5:

    - drop the data edge;
    - drop the index edge U -> V only if no other data edge still
      crosses it (scanning U's extent adjacency — cheap and local);
    - removing an incoming edge changes V's (and its descendants')
      incoming label paths exactly like adding one does, so V's local
      similarity is conservatively lowered to 0 (label homogeneity is
      the only level a changed parent set cannot disturb) and Algorithm
      5's breadth-first sweep restores the structural constraint.

    Soundness is preserved (lowering only sends more queries to
    validation); a later promote recovers the lost similarity.

    Like :func:`dk_add_edge`, the whole plan (index-edge survival scan,
    lowering fixpoint) is computed before the first write.

    Raises:
        UnknownNodeError: if either endpoint is not covered by the
            graph and the index.
        UpdateError: if the data edge does not exist.
    """
    if index.graph is not graph:
        raise UpdateError("index was built over a different data graph")
    _require_endpoint(graph, index, src_data)
    _require_endpoint(graph, index, dst_data)
    if not graph.has_edge(src_data, dst_data):
        raise UpdateError(f"data edge {src_data} -> {dst_data} does not exist")

    source = index.node_of[src_data]
    target = index.node_of[dst_data]
    # Does any *other* data edge still cross the index edge U -> V?
    crossing_remains = any(
        index.node_of[child] == target
        and (member, child) != (src_data, dst_data)
        for member in index.extents[source]
        for child in graph.children[member]
    )
    old_k = index.k[target]
    lowered, touched = _simulate_lowering(
        index,
        target,
        0,
        drop_edge=None if crossing_remains else (source, target),
    )
    fault_point("remove_edge.planned", index)

    # Writes: nothing below can raise.
    graph.remove_edge(src_data, dst_data)
    fault_point("remove_edge.graph_mutated", index)
    if not crossing_remains:
        index.remove_index_edge(source, target)
    for node, (_old, new) in lowered.items():
        assign_similarity(index, node, new)
    fault_point("remove_edge.lowered", index)

    return EdgeUpdateReport(
        source=source,
        target=target,
        old_k=old_k,
        new_k=0,
        lowered=lowered,
        index_nodes_touched=touched + 1,
        new_index_edge=False,
    )


# ----------------------------------------------------------------------
# A(k) propagate-update baseline (Section 6.2)
# ----------------------------------------------------------------------


@dataclass
class PropagateReport:
    """Work done by the A(k) propagate update.

    Attributes:
        data_nodes_touched: data-graph nodes whose parent lists were
            scanned while recomputing signatures — the expensive part.
        index_nodes_split: index nodes whose extents were re-partitioned.
        new_index_nodes: index nodes created by the splits.
    """

    data_nodes_touched: int = 0
    index_nodes_split: int = 0
    new_index_nodes: int = 0


def ak_propagate_add_edge(
    graph: DataGraph,
    index: IndexGraph,
    src_data: int,
    dst_data: int,
    k: int,
) -> PropagateReport:
    """Add a data edge to an A(k)-index via propagate re-partitioning.

    "When a new edge is added to the A(k)-index graph, it creates a new
    index node.  Next, it recursively checks if the newly created index
    node's child index nodes satisfy k local similarity.  If yes, it
    stops; otherwise it partitions the extent of the target index node
    ... The update is propagated to index nodes up to (k-1) distant from
    the first new index node." (Section 6.2)

    Every re-partitioning computes member signatures from the *data
    graph*'s parent lists, which is what makes this costly.

    Raises:
        UpdateError: if the edge already exists.
    """
    if index.graph is not graph:
        raise UpdateError("index was built over a different data graph")
    if graph.has_edge(src_data, dst_data):
        raise UpdateError(f"data edge {src_data} -> {dst_data} already exists")
    if k < 0:
        raise ValueError("k must be non-negative")

    report = PropagateReport()
    graph.add_edge(src_data, dst_data)

    target_block = index.node_of[dst_data]
    if k == 0:
        # A(0) extents are label-only; the index graph gains at most the
        # quotient edge ("the index graph remains unchanged" up to that).
        index.add_index_edge(index.node_of[src_data], target_block)
        return report

    # Carve the end node out of its block: its 1-level parent signature
    # changed, so it can no longer share an extent blindly.
    if index.extent_size(target_block) > 1:
        rest = [m for m in index.extents[target_block] if m != dst_data]
        ids = index.split_node(target_block, [[dst_data], rest])
        report.index_nodes_split += 1
        report.new_index_nodes += len(ids) - 1
        frontier = set(ids)
    else:
        index.add_index_edge(index.node_of[src_data], target_block)
        frontier = {target_block}

    # Propagate: re-partition descendant index nodes by data-level parent
    # signature.  The 1-index propagate "essentially refines all
    # descendant index nodes" — every descendant within distance k-1 is
    # *checked* (its members' signatures recomputed from the data graph)
    # whether or not it ends up splitting, which is what makes the A(k)
    # update expensive for large k.
    for _depth in range(1, k):
        if not frontier:
            break
        children_to_fix: set[int] = set()
        for block in frontier:
            children_to_fix.update(index.children[block])
        next_frontier: set[int] = set()
        for block in sorted(children_to_fix):
            groups: dict[frozenset[int], list[int]] = {}
            for member in index.extents[block]:
                report.data_nodes_touched += 1 + len(graph.parents[member])
                signature = frozenset(
                    index.node_of[parent] for parent in graph.parents[member]
                )
                groups.setdefault(signature, []).append(member)
            if len(groups) > 1:
                parts = [groups[key] for key in sorted(groups, key=sorted)]
                ids = index.split_node(block, parts)
                report.index_nodes_split += 1
                report.new_index_nodes += len(ids) - 1
                next_frontier.update(ids)
            else:
                next_frontier.add(block)
        frontier = next_frontier
    return report
