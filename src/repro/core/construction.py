"""Algorithm 2 — D(k)-index construction (and index re-indexing).

Construction pipeline:

1. label-split the data graph (0-bisimulation);
2. broadcast the query-load requirements over the label graph
   (Algorithm 1) to obtain the *level* each label must be refined to;
3. run leveled partition refinement: in round ``i`` only nodes whose
   label level is at least ``i`` participate — newly created blocks
   inherit their label's level ("set the local similarity requirements
   to newly created index nodes by inheritance");
4. materialise the index graph; each index node's assigned local
   similarity is its label's broadcast level.

:func:`reindex_index_graph` implements the "treat the index graph as a
data graph and index *it*" trick that powers both subgraph addition
(Algorithm 3 / Theorem 2) and demoting (Section 5.4): the current index
is a refinement of the target, so quotient-level refinement reproduces
the target index while only touching index nodes, never the data graph.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.broadcast import broadcast_for_graph
from repro.exceptions import IndexInvariantError
from repro.graph.datagraph import DataGraph
from repro.indexes.base import IndexGraph
from repro.partition.blocks import Partition
from repro.partition.refinement import leveled_partition


def resolve_requirements(
    graph: DataGraph, requirements: Mapping[str, int]
) -> dict[int, int]:
    """Convert ``{label name: k}`` to ``{label id: k}``.

    Labels absent from the graph are ignored: a query load may mention
    labels the current document collection does not contain, and those
    impose no constraint on the index.
    """
    resolved: dict[int, int] = {}
    for name, requirement in requirements.items():
        if requirement < 0:
            raise ValueError(f"negative requirement for label {name!r}")
        if graph.has_label(name):
            resolved[graph.label_id(name)] = requirement
    return resolved


def build_dk_index(
    graph: DataGraph,
    requirements: Mapping[str, int],
    *,
    engine: str = "auto",
    jobs: int | None = None,
) -> tuple[IndexGraph, list[int]]:
    """Build the D(k)-index of ``graph`` for per-label requirements.

    Args:
        graph: the data graph.
        requirements: ``{label name: local similarity requirement}``
            mined from the query load; unmentioned labels default to 0.
        engine: refinement engine (``"worklist"``/``"columnar"``/
            ``"legacy"``; the default ``"auto"`` resolves to worklist
            unless ``DKINDEX_ENGINE`` says otherwise).
        jobs: worker processes for parallel signature hashing.

    Returns:
        ``(index, levels)`` — the index graph, and the broadcast-adjusted
        level per label id (useful for reporting).

    Example:
        >>> from repro.graph.builder import graph_from_edges
        >>> g = graph_from_edges(
        ...     ["a", "b", "x", "x"], [(0, 1), (0, 2), (1, 3), (2, 4)]
        ... )
        >>> index, levels = build_dk_index(g, {"x": 1})
        >>> index.num_nodes   # the two x nodes split; a, b untouched
        5
        >>> index.k[index.node_of[3]]
        1
    """
    initial = resolve_requirements(graph, requirements)
    levels = broadcast_for_graph(graph, graph.num_labels, initial)
    node_levels = [levels[label_id] for label_id in graph.label_ids]
    partition = leveled_partition(graph, node_levels, engine=engine, jobs=jobs)
    k_values = [
        levels[graph.label_ids[members[0]]] for members in partition.blocks
    ]
    index = IndexGraph.from_partition(graph, partition, k_values)
    return index, levels


def reindex_index_graph(
    index: IndexGraph,
    label_levels: Sequence[int],
    *,
    engine: str = "auto",
    jobs: int | None = None,
) -> IndexGraph:
    """Re-index an index graph at (typically lower) per-label levels.

    The current index is treated as a data graph whose "nodes" are index
    nodes (Theorem 2): leveled refinement over the *quotient* groups
    index nodes whose extents may merge.  Each index node participates up
    to ``min(label_levels[label], assigned k)`` — capping at the assigned
    ``k`` keeps the result honest when earlier edge-addition updates have
    lowered similarities below the requested level (an index node only
    *guarantees* homogeneity to its assigned ``k``).

    The merged index node's similarity is the minimum of its members'
    effective levels, and extents are unioned.  The data graph is never
    touched.

    Returns:
        A new :class:`IndexGraph` over the same data graph.
    """
    if len(label_levels) < index.graph.num_labels:
        raise IndexInvariantError(
            "label_levels must cover every label of the data graph"
        )
    node_levels = [
        min(label_levels[index.label_ids[node]], index.k[node])
        for node in range(index.num_nodes)
    ]
    quotient_partition = leveled_partition(
        index, node_levels, engine=engine, jobs=jobs
    )

    # Map data nodes straight to the merged blocks.
    merged_of_index = quotient_partition.block_of
    block_of_data = [0] * index.graph.num_nodes
    for old_node, extent in enumerate(index.extents):
        merged = merged_of_index[old_node]
        for data_node in extent:
            block_of_data[data_node] = merged

    k_values = [
        min(node_levels[member] for member in members)
        for members in quotient_partition.blocks
    ]
    return IndexGraph.from_partition(
        index.graph, Partition(block_of_data), k_values
    )
