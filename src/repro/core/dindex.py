"""The :class:`DKIndex` facade — the library's main entry point.

Ties together the data graph, the index graph, the mined per-label
requirements and every operation of the paper:

>>> from repro.graph.xmlio import parse_xml
>>> from repro.paths.query import make_query
>>> from repro.core.dindex import DKIndex
>>> g = parse_xml("<db><m><t>x</t></m><m><t>y</t></m></db>")
>>> dk = DKIndex.build(g, {"t": 2})
>>> sorted(dk.evaluate(make_query("db.m.t")))
[3, 6]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # runtime imports stay lazy, see DKIndex.explain/.pipeline
    from repro.indexes.explain import Explanation
    from repro.maintenance.pipeline import MaintenanceConfig, UpdatePipeline

from repro.core.construction import build_dk_index
from repro.core.promote import PromoteReport
from repro.core.requirements import requirements_from_queries
from repro.core.updates import EdgeUpdateReport
from repro.exceptions import IndexInvariantError
from repro.graph.datagraph import DataGraph
from repro.indexes.base import IndexGraph
from repro.indexes.evaluation import evaluate_on_index
from repro.paths.cost import CostCounter
from repro.paths.query import Query


def check_dk_constraint(index: IndexGraph) -> None:
    """Verify Definition 3: ``k(n_i) >= k(n_j) - 1`` on every index edge.

    Raises:
        IndexInvariantError: naming the offending edge.
    """
    for src in range(index.num_nodes):
        k_src = index.k[src]
        for dst in index.children[src]:
            if k_src < index.k[dst] - 1:
                raise IndexInvariantError(
                    f"D(k) constraint violated on edge {src} -> {dst}: "
                    f"k({src})={k_src} < k({dst})-1={index.k[dst] - 1}"
                )


@dataclass
class DKIndexStats:
    """Size snapshot of a D(k)-index."""

    index_nodes: int
    index_edges: int
    data_nodes: int
    data_edges: int
    min_k: int
    max_k: int

    def format(self) -> str:
        return (
            f"index nodes: {self.index_nodes}, index edges: {self.index_edges}, "
            f"data nodes: {self.data_nodes}, data edges: {self.data_edges}, "
            f"k range: [{self.min_k}, {self.max_k}]"
        )


class DKIndex:
    """An adaptive D(k)-index over a data graph.

    Create with :meth:`build` (explicit requirements) or
    :meth:`from_query_load` (mine requirements from queries first).

    Attributes:
        graph: the underlying data graph (owned: updates mutate it).
        index: the :class:`IndexGraph`.
        requirements: the per-label requirements the index was built (or
            last promoted/demoted) for.
        maintenance: the :class:`~repro.maintenance.pipeline.MaintenanceConfig`
            for the update pipeline (``None`` means defaults: no journal,
            audit tier from ``DKINDEX_AUDIT``).
    """

    def __init__(
        self,
        graph: DataGraph,
        index: IndexGraph,
        requirements: Mapping[str, int],
        maintenance: "MaintenanceConfig | None" = None,
    ) -> None:
        self.graph = graph
        self.index = index
        self.requirements = dict(requirements)
        self.maintenance = maintenance
        self._pipeline: "UpdatePipeline | None" = None

    @property
    def pipeline(self) -> "UpdatePipeline":
        """The transactional update pipeline (created on first use).

        Every mutating method below routes through it, so by default any
        update is atomic (rolled back bit-identically on exception) and
        audited after commit; configure journaling and the audit tier
        with :attr:`maintenance`.
        """
        if self._pipeline is None:
            from repro.maintenance.pipeline import UpdatePipeline

            self._pipeline = UpdatePipeline(self, self.maintenance)
        return self._pipeline

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: DataGraph,
        requirements: Mapping[str, int],
        *,
        engine: str = "auto",
        jobs: int | None = None,
    ) -> "DKIndex":
        """Build from explicit per-label local-similarity requirements.

        ``engine`` and ``jobs`` select the partition-refinement engine
        and its parallelism (see :mod:`repro.partition.engine`); the
        default is the serial worklist engine.
        """
        index, _levels = build_dk_index(
            graph, requirements, engine=engine, jobs=jobs
        )
        return cls(graph, index, requirements)

    @classmethod
    def from_query_load(cls, graph: DataGraph, queries: Iterable[Query]) -> "DKIndex":
        """Mine requirements from a query load, then build.

        Implements the paper's protocol: each label's requirement is the
        longest query targeting it, less one, "such that no validation
        will be needed".
        """
        requirements = requirements_from_queries(queries)
        return cls.build(graph, requirements)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of index nodes (the paper's index-size metric)."""
        return self.index.num_nodes

    def stats(self) -> DKIndexStats:
        """A size snapshot for reporting."""
        return DKIndexStats(
            index_nodes=self.index.num_nodes,
            index_edges=self.index.num_edges,
            data_nodes=self.graph.num_nodes,
            data_edges=self.graph.num_edges,
            min_k=min(self.index.k, default=0),
            max_k=max(self.index.k, default=0),
        )

    def __repr__(self) -> str:
        return f"DKIndex({self.stats().format()})"

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: Query,
        counter: CostCounter | None = None,
        validate: bool = True,
    ) -> set[int]:
        """Evaluate a path-expression query; returns data-node ids.

        Queries within the index's local similarities are answered from
        the index alone; longer ones transparently validate against the
        data graph (and charge the cost to ``counter``).
        """
        return evaluate_on_index(self.index, query, counter, validate)

    def explain(self, query: Query) -> "Explanation":
        """EXPLAIN the evaluation plan of a query (terminals, soundness,
        validation and a tuning hint); see
        :func:`repro.indexes.explain.explain`."""
        from repro.indexes.explain import explain as _explain

        return _explain(self.index, query)

    # ------------------------------------------------------------------
    # Updates (Section 5)
    # ------------------------------------------------------------------

    def add_edge(self, src_data: int, dst_data: int) -> EdgeUpdateReport:
        """Add a data edge; adjust local similarities (Algorithms 4+5).

        Transactional: on any exception the graph and index are rolled
        back bit-identically (see :attr:`pipeline`).
        """
        return self.pipeline.add_edge(src_data, dst_data)

    def add_edges(self, edges: list[tuple[int, int]]) -> list[EdgeUpdateReport]:
        """Add a batch of data edges atomically (one transaction, one
        journal entry, one audit); a bad batch is a no-op."""
        return self.pipeline.add_edges(edges)

    def remove_edge(self, src_data: int, dst_data: int) -> EdgeUpdateReport:
        """Remove a data edge; conservatively lower similarities."""
        return self.pipeline.remove_edge(src_data, dst_data)

    def add_subgraph(self, subgraph: DataGraph) -> list[int]:
        """Insert a document subgraph under the root (Algorithm 3).

        Returns the node-id mapping from ``subgraph`` into the grown data
        graph.
        """
        return self.pipeline.add_subgraph(subgraph)

    def promote(self, requirements: Mapping[str, int] | None = None) -> PromoteReport:
        """Periodically re-tune: raise similarities back to requirements.

        With no argument, restores the index's standing requirements
        (undoing the erosion caused by edge additions); with an argument,
        raises to the merge of standing and new requirements (a query
        load shift toward longer queries).
        """
        return self.pipeline.promote(requirements)

    def demote(self, requirements: Mapping[str, int]) -> int:
        """Periodically shrink: lower requirements and merge index nodes.

        Returns the number of index nodes removed by the merge.
        """
        return self.pipeline.demote(requirements)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify all structural invariants; raise on violation."""
        self.index.check_invariants()
        check_dk_constraint(self.index)
