"""Promoting (Algorithm 6) and demoting (Section 5.4).

Promoting raises the local similarities of chosen index nodes back up —
typically after a stream of edge additions has eroded them, or when the
query load starts asking longer queries of some label.  Demoting lowers
requirements and *merges* index nodes to shrink the index.

Implementation note on Algorithm 6: the paper's recursive formulation
(promote all parents to ``k-1``, then split the node's extent against
each parent) is exact on acyclic index graphs but under-refines when the
promotion recursion meets a cycle (the memo guard that stops infinite
recursion also skips the intermediate-level splits a cycle needs).  We
implement the equivalent *round-based* form — the same inductive step
the construction algorithm uses, restricted to the nodes that need
promotion: in round ``r``, every node that must reach level >= r and is
only guaranteed below r is split by its members' parent-block signatures
taken at the start of the round.  On DAGs this performs exactly the
splits the paper's recursion performs; on cyclic graphs it converges to
the correct refinement.  The paper's batching advice ("choose first to
promote index nodes with higher new local similarities") is subsumed:
all targets are promoted in one shared sequence of rounds, so common
ancestors are split once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.broadcast import broadcast_for_graph
from repro.core.construction import reindex_index_graph, resolve_requirements
from repro.core.updates import assign_similarity
from repro.exceptions import UpdateError
from repro.graph.datagraph import DataGraph
from repro.indexes.base import IndexGraph
from repro.maintenance.faults import fault_point


@dataclass
class PromoteReport:
    """Work done by a promotion batch.

    Attributes:
        rounds: refinement rounds executed.
        index_nodes_split: nodes whose extents were split.
        new_index_nodes: index nodes created.
        raised: ``{index node: (old k, new k)}`` for surviving node ids
            (split pieces report under their own ids).
    """

    rounds: int = 0
    index_nodes_split: int = 0
    new_index_nodes: int = 0
    raised: dict[int, tuple[int, int]] = field(default_factory=dict)


def _spread_need(index: IndexGraph, targets: Mapping[int, int]) -> dict[int, int]:
    """Propagate promotion targets upwards: parents need one level less.

    This is the broadcast constraint applied to the concrete index graph
    (the recursion structure of Algorithm 6): promoting V to ``k``
    requires each parent at ``k - 1``, and so on.
    """
    need: dict[int, int] = {}
    queue: deque[tuple[int, int]] = deque()
    for node, level in targets.items():
        if level < 0:
            raise ValueError(f"negative promotion target for node {node}")
        if need.get(node, -1) < level:
            need[node] = level
            queue.append((node, level))
    while queue:
        node, level = queue.popleft()
        if need.get(node, -1) > level:
            continue  # superseded by a higher requirement
        parent_level = level - 1
        if parent_level <= 0:
            continue
        for parent in index.parents[node]:
            if need.get(parent, -1) < parent_level:
                need[parent] = parent_level
                queue.append((parent, parent_level))
    return need


def promote_nodes(
    graph: DataGraph,
    index: IndexGraph,
    targets: Mapping[int, int],
) -> PromoteReport:
    """Promote the given index nodes to the given local similarities.

    Args:
        graph: the data graph (``index.graph``).
        index: the D(k)-index, updated in place.
        targets: ``{index node id: desired local similarity}``.

    The extents of split nodes are re-partitioned against the data graph
    (promotion is the *periodic*, data-touching tuning step — Section
    5.3); nodes whose assigned similarity already meets their need are
    never touched, which is the saving over a full rebuild.

    Returns:
        A :class:`PromoteReport`.

    Raises:
        UpdateError: if the index does not belong to ``graph``.
    """
    if index.graph is not graph:
        raise UpdateError("index was built over a different data graph")

    need = _spread_need(index, targets)
    if not need:
        return PromoteReport()
    max_round = max(need.values())
    report = PromoteReport()
    original_k = {node: index.k[node] for node in need}

    for round_number in range(1, max_round + 1):
        # Snapshot the partition at the round start; splits within a
        # round must not see each other (Algorithm 2 splits against the
        # copy X of the previous iteration).
        snapshot = list(index.node_of)
        pending = [
            node
            for node, level in sorted(need.items())
            if level >= round_number and index.k[node] < round_number
        ]
        if not pending:
            continue
        report.rounds = round_number
        for node in pending:
            groups: dict[frozenset[int], list[int]] = {}
            for member in index.extents[node]:
                signature = frozenset(
                    snapshot[parent] for parent in graph.parents[member]
                )
                groups.setdefault(signature, []).append(member)
            if len(groups) > 1:
                parts = [groups[key] for key in sorted(groups, key=sorted)]
                ids = index.split_node(node, parts)
                report.index_nodes_split += 1
                report.new_index_nodes += len(ids) - 1
                fault_point("promote.split", index)
            else:
                ids = [node]
            node_need = need[node]
            node_origin = original_k.get(node, index.k[node])
            for piece in ids:
                assign_similarity(index, piece, round_number)
                need[piece] = node_need
                original_k.setdefault(piece, node_origin)

    for node, level in need.items():
        if node < len(index.k) and index.k[node] >= 1:
            old = original_k.get(node, index.k[node])
            if index.k[node] != old:
                report.raised[node] = (old, index.k[node])
    return report


def promote_requirements(
    graph: DataGraph,
    index: IndexGraph,
    requirements: Mapping[str, int],
) -> PromoteReport:
    """Promote by per-label requirements (the usual periodic tuning call).

    Broadcasts the requirements over the label graph first, then promotes
    every index node whose label's level exceeds its current similarity.
    """
    initial = resolve_requirements(graph, requirements)
    levels = broadcast_for_graph(graph, graph.num_labels, initial)
    targets = {
        node: levels[index.label_ids[node]]
        for node in range(index.num_nodes)
        if index.k[node] < levels[index.label_ids[node]]
    }
    return promote_nodes(graph, index, targets)


def demote_index(
    index: IndexGraph,
    requirements: Mapping[str, int],
) -> IndexGraph:
    """Demote: rebuild a *smaller* index for lowered requirements.

    "Since the current D(k)-index I'_G is actually a refinement of I_G,
    we can just treat I'_G as a data graph and construct the new
    D(k)-index I_G from I'_G" (Section 5.4) — no data-graph access.

    Returns:
        A new, typically coarser :class:`IndexGraph`; the input is left
        untouched so callers can compare sizes before swapping.
    """
    graph = index.graph
    initial = resolve_requirements(graph, requirements)
    levels = broadcast_for_graph(graph, graph.num_labels, initial)
    demoted = reindex_index_graph(index, levels)
    fault_point("demote.reindexed", demoted)
    return demoted
