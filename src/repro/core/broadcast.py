"""Algorithm 1 — the Local Similarity Broadcast Algorithm.

Query-load mining yields a local-similarity *requirement* per label.
Definition 3 additionally constrains the index structure: for any index
edge ``n_i -> n_j``, ``k(n_i) >= k(n_j) - 1`` — a parent must be refined
to (almost) the level of its children, or Theorem 1's soundness argument
breaks.  Since index edges only connect labels adjacent in the
label-split graph, enforcing the constraint at the label level suffices.

The broadcast processes labels from the highest requirement downwards:
a label processed at level ``v`` raises each of its *parent labels* to at
least ``v - 1``.  Each label is processed exactly once — at its final
(maximal) level — so the total work is O(m) in the number of label-graph
edges, as claimed in Section 4.2.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence


class _LabeledAdjacency(Protocol):
    label_ids: Sequence[int]
    parents: Sequence[Sequence[int]]

    @property
    def num_nodes(self) -> int: ...


def label_parent_graph(graph: _LabeledAdjacency, num_labels: int) -> list[set[int]]:
    """Parent adjacency of the label-split graph.

    ``result[child_label]`` is the set of labels appearing as a parent of
    some node carrying ``child_label``.  Works on data graphs and index
    graphs alike.
    """
    parent_labels: list[set[int]] = [set() for _ in range(num_labels)]
    label_ids = graph.label_ids
    parents = graph.parents
    for node in range(graph.num_nodes):
        bucket = parent_labels[label_ids[node]]
        for parent in parents[node]:
            bucket.add(label_ids[parent])
    return parent_labels


def broadcast_levels(
    parent_labels: Sequence[set[int]],
    initial: Mapping[int, int],
) -> list[int]:
    """Run the broadcast; return the adjusted level per label id.

    Args:
        parent_labels: label-level parent adjacency
            (see :func:`label_parent_graph`).
        initial: ``{label_id: requirement}``; absent labels default to 0
            ("the default local similarity requirements of those labels
            that never appear in the query load are set to zero").

    Returns:
        ``levels`` with ``levels[l] >= initial.get(l, 0)`` and
        ``levels[parent] >= levels[child] - 1`` for every label edge.

    Example:
        >>> # c (req 2) under b under a: b must reach 1, a stays 0.
        >>> parent_labels = [set(), {0}, {1}]
        >>> broadcast_levels(parent_labels, {2: 2})
        [0, 1, 2]
    """
    num_labels = len(parent_labels)
    levels = [0] * num_labels
    for label, requirement in initial.items():
        if requirement < 0:
            raise ValueError(f"negative requirement for label {label}: {requirement}")
        if not 0 <= label < num_labels:
            raise ValueError(f"label id out of range: {label}")
        levels[label] = requirement

    max_level = max(levels, default=0)
    if max_level == 0:
        return levels

    buckets: dict[int, set[int]] = {}
    for label, level in enumerate(levels):
        if level > 0:
            buckets.setdefault(level, set()).add(label)

    processed = [False] * num_labels
    for level in range(max_level, 0, -1):
        # Sorted for deterministic processing order.
        for label in sorted(buckets.get(level, ())):
            if processed[label] or levels[label] != level:
                continue  # raised past this bucket, or stale entry
            processed[label] = True
            floor = level - 1
            if floor == 0:
                continue
            for parent in parent_labels[label]:
                if levels[parent] < floor:
                    levels[parent] = floor
                    buckets.setdefault(floor, set()).add(parent)
    return levels


def broadcast_for_graph(
    graph: _LabeledAdjacency,
    num_labels: int,
    initial: Mapping[int, int],
) -> list[int]:
    """Convenience wrapper: build the label graph and broadcast."""
    return broadcast_levels(label_parent_graph(graph, num_labels), initial)
