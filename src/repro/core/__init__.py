"""The D(k)-index — the paper's primary contribution.

Modules:

- :mod:`repro.core.broadcast` — Algorithm 1, the local-similarity
  broadcast over the label-split graph;
- :mod:`repro.core.requirements` — mining per-label local-similarity
  requirements from a query load;
- :mod:`repro.core.construction` — Algorithm 2 (and the
  index-as-data-graph re-indexing used by Algorithm 3 and demoting);
- :mod:`repro.core.dindex` — the :class:`~repro.core.dindex.DKIndex`
  facade tying data graph, index graph and requirements together;
- :mod:`repro.core.updates` — Algorithms 3, 4 and 5 (subgraph and edge
  addition) plus the A(k) propagate-update baseline of Section 6.2;
- :mod:`repro.core.promote` — Algorithm 6 (promoting) and demoting.
"""

from repro.core.broadcast import broadcast_levels, label_parent_graph
from repro.core.construction import build_dk_index, reindex_index_graph
from repro.core.dindex import DKIndex, check_dk_constraint
from repro.core.promote import demote_index, promote_nodes
from repro.core.requirements import requirements_from_queries
from repro.core.updates import (
    EdgeUpdateReport,
    ak_propagate_add_edge,
    dk_add_edge,
    update_local_similarity,
)

__all__ = [
    "DKIndex",
    "EdgeUpdateReport",
    "ak_propagate_add_edge",
    "broadcast_levels",
    "build_dk_index",
    "check_dk_constraint",
    "demote_index",
    "dk_add_edge",
    "label_parent_graph",
    "promote_nodes",
    "reindex_index_graph",
    "requirements_from_queries",
    "update_local_similarity",
]
