"""The core directed, labeled data-graph structure.

The representation is optimised for the partition-refinement and
path-evaluation workloads of this library:

- node identifiers are dense integers ``0 .. num_nodes-1``;
- labels are interned into a string table so that per-node labels are
  plain integers (``label_ids``);
- both forward (``children``) and backward (``parents``) adjacency lists
  are maintained, because bisimulation refinement looks *up* the graph
  while query evaluation walks *down*.

Nodes are never deleted; the paper's update model (Section 5) covers only
additive updates (subgraph addition, edge addition), and all higher-level
structures in this library assume stable node ids.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.exceptions import (
    FrozenGraphError,
    GraphError,
    UnknownLabelError,
    UnknownNodeError,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.graph.columnar import CSRGraph

#: Distinguished label of the unique root node (Section 3 of the paper).
ROOT_LABEL = "ROOT"

#: Distinguished label given to simple (atomic) value nodes.
VALUE_LABEL = "VALUE"


class DataGraph:
    """A directed graph with interned string labels on nodes.

    The graph always contains a single root node with id ``0`` and label
    :data:`ROOT_LABEL`; it is created by the constructor.  All other
    nodes are added with :meth:`add_node` and wired with :meth:`add_edge`.

    Parallel edges are rejected; self-loops are permitted (they occur in
    generic labeled graphs even though XML documents do not produce them).

    Example:
        >>> g = DataGraph()
        >>> movie = g.add_node("movie")
        >>> title = g.add_node("title")
        >>> g.add_edge(g.root, movie)
        >>> g.add_edge(movie, title)
        >>> g.label(title)
        'title'
        >>> sorted(g.children[movie])
        [2]
    """

    __slots__ = (
        "_label_names",
        "_label_table",
        "label_ids",
        "children",
        "parents",
        "_child_sets",
        "_num_edges",
        "_version",
        "_frozen",
        "_sealed",
    )

    def __init__(self) -> None:
        self._label_names: list[str] = []
        self._label_table: dict[str, int] = {}
        #: label id of each node, indexed by node id.
        self.label_ids: list[int] = []
        #: forward adjacency: ``children[u]`` lists all v with an edge u -> v.
        self.children: list[list[int]] = []
        #: backward adjacency: ``parents[v]`` lists all u with an edge u -> v.
        self.parents: list[list[int]] = []
        # Per-node child sets for O(1) duplicate-edge detection.
        self._child_sets: list[set[int]] = []
        self._num_edges = 0
        # Frozen-view bookkeeping: the mutation version stamps every
        # columnar snapshot; mutating drops (or, sealed, refuses) it.
        self._version = 0
        self._frozen: "CSRGraph | None" = None
        self._sealed = False
        self.add_node(ROOT_LABEL)

    # ------------------------------------------------------------------
    # Identity and size
    # ------------------------------------------------------------------

    @property
    def root(self) -> int:
        """Node id of the distinguished root (always ``0``)."""
        return 0

    @property
    def num_nodes(self) -> int:
        """Number of nodes, including the root."""
        return len(self.label_ids)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._num_edges

    @property
    def num_labels(self) -> int:
        """Number of distinct labels interned so far."""
        return len(self._label_names)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"DataGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"labels={self.num_labels})"
        )

    # ------------------------------------------------------------------
    # Label interning
    # ------------------------------------------------------------------

    def intern_label(self, name: str) -> int:
        """Return the integer id for ``name``, creating it if necessary."""
        label_id = self._label_table.get(name)
        if label_id is None:
            label_id = len(self._label_names)
            self._label_table[name] = label_id
            self._label_names.append(name)
        return label_id

    def label_id(self, name: str) -> int:
        """Return the id of an existing label.

        Raises:
            UnknownLabelError: if ``name`` was never interned.
        """
        try:
            return self._label_table[name]
        except KeyError:
            raise UnknownLabelError(name) from None

    def has_label(self, name: str) -> bool:
        """True if a label called ``name`` has been interned."""
        return name in self._label_table

    def label_name(self, label_id: int) -> str:
        """Return the string name of a label id."""
        try:
            return self._label_names[label_id]
        except IndexError:
            raise UnknownLabelError(label_id) from None

    def label(self, node: int) -> str:
        """Return the label *name* of ``node``."""
        self._check_node(node)
        return self._label_names[self.label_ids[node]]

    def label_names(self) -> Sequence[str]:
        """All interned label names, indexed by label id."""
        return tuple(self._label_names)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_node(self, label: str) -> int:
        """Add a node with the given label name; return its id."""
        self._mutated()
        label_id = self.intern_label(label)
        node = len(self.label_ids)
        self.label_ids.append(label_id)
        self.children.append([])
        self.parents.append([])
        self._child_sets.append(set())
        return node

    def add_nodes(self, labels: Iterable[str]) -> list[int]:
        """Add one node per label; return the new ids in order."""
        return [self.add_node(label) for label in labels]

    def add_edge(self, src: int, dst: int) -> None:
        """Add the directed edge ``src -> dst``.

        Raises:
            UnknownNodeError: if either endpoint does not exist.
            GraphError: if the edge already exists.
        """
        self._check_node(src)
        self._check_node(dst)
        if dst in self._child_sets[src]:
            raise GraphError(f"duplicate edge {src} -> {dst}")
        self._mutated()
        self._child_sets[src].add(dst)
        self.children[src].append(dst)
        self.parents[dst].append(src)
        self._num_edges += 1

    def add_edge_if_absent(self, src: int, dst: int) -> bool:
        """Add ``src -> dst`` unless it already exists.

        Returns:
            True if the edge was added, False if it was already present.
        """
        self._check_node(src)
        self._check_node(dst)
        if dst in self._child_sets[src]:
            return False
        self._mutated()
        self._child_sets[src].add(dst)
        self.children[src].append(dst)
        self.parents[dst].append(src)
        self._num_edges += 1
        return True

    def remove_edge(self, src: int, dst: int) -> None:
        """Remove the directed edge ``src -> dst``.

        Nodes are never removed (stable ids are assumed throughout the
        library), but edges may be — the D(k)-index supports edge
        deletion as an extension of the paper's update model.

        Raises:
            UnknownNodeError: if either endpoint does not exist.
            GraphError: if the edge does not exist.
        """
        self._check_node(src)
        self._check_node(dst)
        if dst not in self._child_sets[src]:
            raise GraphError(f"no such edge {src} -> {dst}")
        self._mutated()
        self._child_sets[src].discard(dst)
        self.children[src].remove(dst)
        self.parents[dst].remove(src)
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def has_edge(self, src: int, dst: int) -> bool:
        """True if the directed edge ``src -> dst`` exists."""
        self._check_node(src)
        self._check_node(dst)
        return dst in self._child_sets[src]

    def has_node(self, node: int) -> bool:
        """True if ``node`` is a valid node id."""
        return 0 <= node < len(self.label_ids)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all directed edges as ``(src, dst)`` pairs."""
        for src, outs in enumerate(self.children):
            for dst in outs:
                yield (src, dst)

    def nodes(self) -> range:
        """All node ids (a ``range``, cheap to iterate repeatedly)."""
        return range(len(self.label_ids))

    def nodes_with_label(self, label: str) -> list[int]:
        """All node ids carrying the given label name.

        This is a linear scan; index structures keep their own
        label -> extent maps for repeated lookups.
        """
        if not self.has_label(label):
            return []
        want = self._label_table[label]
        label_ids = self.label_ids
        return [node for node in range(len(label_ids)) if label_ids[node] == want]

    def out_degree(self, node: int) -> int:
        """Number of outgoing edges of ``node``."""
        self._check_node(node)
        return len(self.children[node])

    def in_degree(self, node: int) -> int:
        """Number of incoming edges of ``node``."""
        self._check_node(node)
        return len(self.parents[node])

    # ------------------------------------------------------------------
    # Frozen columnar view
    # ------------------------------------------------------------------

    @property
    def mutation_version(self) -> int:
        """Monotone counter bumped by every structural mutation.

        Columnar snapshots record the version they were taken at; a
        snapshot is *stale* exactly when its ``source_version`` differs
        from the owner's current ``mutation_version``.
        """
        return self._version

    @property
    def sealed(self) -> bool:
        """True while mutations are forbidden (``freeze(mode="seal")``)."""
        return self._sealed

    def freeze(self, mode: str = "refresh") -> "CSRGraph":
        """Return the columnar CSR snapshot of this graph.

        The snapshot is cached: repeated calls without intervening
        mutation return the same object.  The *invalidation contract*
        against the additive-update model is chosen by ``mode``:

        - ``"refresh"`` (default) — a later mutation silently drops the
          cached snapshot; the next ``freeze()`` rebuilds it.  Existing
          snapshot references stay readable but describe the pre-update
          graph (check ``snapshot.source_version`` against
          :attr:`mutation_version` to detect this).
        - ``"seal"`` — additionally forbid mutation: ``add_node`` /
          ``add_edge`` / ``remove_edge`` raise
          :class:`~repro.exceptions.FrozenGraphError` until
          :meth:`thaw` is called.

        Raises:
            GraphError: for an unknown mode.
        """
        from repro.graph.columnar import FREEZE_MODES, csr_from_lists

        if mode not in FREEZE_MODES:
            raise GraphError(
                f"unknown freeze mode {mode!r}; choose from {FREEZE_MODES}"
            )
        if self._frozen is None:
            self._frozen = csr_from_lists(
                self.label_ids,
                self.children,
                self.parents,
                num_labels=self.num_labels,
                source_version=self._version,
            )
        if mode == "seal":
            self._sealed = True
        return self._frozen

    def thaw(self) -> None:
        """Allow mutation again after ``freeze(mode="seal")``."""
        self._sealed = False

    def adopt_frozen_view(self, view: "CSRGraph") -> None:
        """Install ``view`` as this graph's cached frozen snapshot.

        Used by the frozen persistence loader, which materialises the
        adjacency lists *from* a deserialized snapshot — the snapshot is
        current by construction, so rebuilding the offsets on the next
        ``freeze()`` would be pure waste.

        Raises:
            GraphError: if the view's shape does not match this graph.
        """
        if (
            view.num_nodes != self.num_nodes
            or view.num_edges != self.num_edges
        ):
            raise GraphError(
                "frozen view does not match this graph's node/edge counts"
            )
        view.source_version = self._version
        self._frozen = view

    def _mutated(self) -> None:
        """Record a structural mutation (or refuse it while sealed)."""
        if self._sealed:
            raise FrozenGraphError(
                "graph is sealed by freeze(mode='seal'); call thaw() "
                "before mutating"
            )
        self._version += 1
        self._frozen = None

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def copy(self) -> "DataGraph":
        """Return a deep, independent copy of this graph.

        The copy is mutable (never sealed) and does not share the
        original's cached frozen view.
        """
        clone = DataGraph.__new__(DataGraph)
        clone._label_names = list(self._label_names)
        clone._label_table = dict(self._label_table)
        clone.label_ids = list(self.label_ids)
        clone.children = [list(outs) for outs in self.children]
        clone.parents = [list(ins) for ins in self.parents]
        clone._child_sets = [set(s) for s in self._child_sets]
        clone._num_edges = self._num_edges
        clone._version = self._version
        clone._frozen = None
        clone._sealed = False
        return clone

    def graft(self, other: "DataGraph") -> list[int]:
        """Copy every non-root node of ``other`` into this graph.

        Edges of ``other`` between copied nodes are recreated; edges from
        ``other``'s root are re-attached to *this* graph's root.  This is
        the data-level half of the paper's subgraph-addition update
        (Algorithm 3): "a new subgraph H is inserted under the root of
        the original data graph G".

        Returns:
            ``mapping`` such that ``mapping[old_id] = new_id`` for every
            node of ``other`` (the root maps to this graph's root).
        """
        mapping = [0] * other.num_nodes
        for node in range(1, other.num_nodes):
            mapping[node] = self.add_node(other.label(node))
        for src, dst in other.edges():
            if dst == other.root:
                # Edges into the foreign root would re-target our root;
                # a well-formed document subgraph has none, but guard anyway.
                raise GraphError("grafted subgraph has an edge into its root")
            self.add_edge_if_absent(mapping[src], mapping[dst])
        return mapping

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self.label_ids):
            raise UnknownNodeError(node)
