"""Interval (pre/post-order) numbering of the tree skeleton.

Related work [21, 22] of the paper answers ancestor/containment queries
in constant time by numbering tree nodes with ``(start, end)`` intervals
such that u is an ancestor of v iff ``start(u) < start(v) <= end(u)``.
These schemes "were supposed to handle tree data" — reference edges are
outside their scope — which is exactly the limitation the paper cites.

We implement the scheme over a graph's *tree skeleton* (the first-parent
spanning tree from the root).  It serves two purposes here:

- a faithful related-work baseline for the documentation and tests;
- a fast-path oracle: for tree-shaped data (no reference edges) the
  descendant axis of twig queries reduces to an interval check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import GraphError
from repro.graph.datagraph import DataGraph


@dataclass
class TreeNumbering:
    """Pre/post interval numbering of a graph's tree skeleton.

    Attributes:
        start: preorder rank per node (1-based; 0 for unreachable nodes).
        end: highest preorder rank in the node's subtree.
        tree_parent: skeleton parent per node (-1 for the root and
            unreachable nodes).
        complete: True when the skeleton covers every edge (the graph is
            a tree) — only then do interval answers equal full
            reachability.
    """

    start: list[int]
    end: list[int]
    tree_parent: list[int]
    complete: bool

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Constant-time skeleton-ancestor test (strict).

        Note: on non-tree graphs this answers for the *skeleton* only;
        check :attr:`complete` before using it as full reachability.
        """
        if self.start[ancestor] == 0 or self.start[descendant] == 0:
            return False
        return (
            self.start[ancestor] < self.start[descendant] <= self.end[ancestor]
        )

    def depth(self, node: int) -> int:
        """Skeleton depth of ``node`` (root = 0).

        Raises:
            GraphError: for nodes unreachable from the root.
        """
        if self.start[node] == 0:
            raise GraphError(f"node {node} is not in the tree skeleton")
        count = 0
        current = node
        while self.tree_parent[current] != -1:
            current = self.tree_parent[current]
            count += 1
        return count


def number_tree(graph: DataGraph) -> TreeNumbering:
    """Compute the interval numbering of ``graph``'s tree skeleton.

    The skeleton is the DFS spanning tree from the root following each
    node's first discovery; for genuine tree documents (every non-root
    node has exactly one parent) this covers all edges and
    ``complete`` is True.

    Example:
        >>> from repro.graph.builder import graph_from_edges
        >>> g = graph_from_edges(["a", "b", "c"], [(0, 1), (1, 2), (1, 3)])
        >>> numbering = number_tree(g)
        >>> numbering.complete
        True
        >>> numbering.is_ancestor(1, 3)
        True
        >>> numbering.is_ancestor(2, 3)
        False
    """
    size = graph.num_nodes
    start = [0] * size
    end = [0] * size
    tree_parent = [-1] * size
    counter = 0
    tree_edges = 0

    # Iterative DFS; entries carry the discovery parent, and a second
    # visit of the same node (pushed by a later sibling) is skipped, so
    # `tree_parent` records the true first-discovery parent.
    stack: list[tuple[int, int, bool]] = [(graph.root, -1, False)]
    visited = [False] * size
    while stack:
        node, parent, processed = stack.pop()
        if processed:
            end[node] = counter
            continue
        if visited[node]:
            continue
        visited[node] = True
        tree_parent[node] = parent
        counter += 1
        start[node] = counter
        stack.append((node, parent, True))
        for child in reversed(graph.children[node]):
            if not visited[child]:
                stack.append((child, node, False))

    for node in range(size):
        if node != graph.root and tree_parent[node] != -1:
            tree_edges += 1

    reachable = sum(1 for flag in visited if flag)
    complete = (
        reachable == size and graph.num_edges == tree_edges
    )
    return TreeNumbering(
        start=start, end=end, tree_parent=tree_parent, complete=complete
    )


def skeleton_descendants(numbering: TreeNumbering, node: int) -> list[int]:
    """All strict skeleton descendants of ``node`` (by interval scan)."""
    lo, hi = numbering.start[node], numbering.end[node]
    if lo == 0:
        return []
    return [
        other
        for other, s in enumerate(numbering.start)
        if lo < s <= hi
    ]
