"""Graphviz DOT export for data graphs and index graphs.

Renders small graphs for debugging and documentation.  The output is
plain DOT text — no Graphviz dependency is needed to *produce* it, only
to render it (``dot -Tsvg``).

Index graphs render with extent sizes and local similarities in the
node labels, which makes the effect of updates/promote/demote visible
at a glance.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.datagraph import DataGraph
from repro.indexes.base import K_UNBOUNDED, IndexGraph


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def data_graph_to_dot(
    graph: DataGraph,
    name: str = "data",
    highlight: Iterable[int] = (),
    max_nodes: int = 500,
) -> str:
    """Render a data graph as DOT.

    Args:
        graph: the graph.
        name: the DOT graph name.
        highlight: node ids drawn filled (e.g. a query result).
        max_nodes: refuse to render bigger graphs (DOT of a 30k-node
            graph helps nobody).

    Raises:
        ValueError: if the graph exceeds ``max_nodes``.
    """
    if graph.num_nodes > max_nodes:
        raise ValueError(
            f"graph has {graph.num_nodes} nodes; refusing to render more "
            f"than {max_nodes} (pass max_nodes explicitly to override)"
        )
    highlighted = set(highlight)
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=ellipse];"]
    for node in graph.nodes():
        label = f"{graph.label(node)}\\n#{node}"
        style = ' style=filled fillcolor="#ffd37f"' if node in highlighted else ""
        lines.append(f"  n{node} [label={_quote(label)}{style}];")
    for src, dst in graph.edges():
        lines.append(f"  n{src} -> n{dst};")
    lines.append("}")
    return "\n".join(lines)


def index_graph_to_dot(
    index: IndexGraph,
    name: str = "index",
    max_nodes: int = 500,
) -> str:
    """Render an index graph as DOT (label, extent size and k per node).

    Raises:
        ValueError: if the index exceeds ``max_nodes``.
    """
    if index.num_nodes > max_nodes:
        raise ValueError(
            f"index has {index.num_nodes} nodes; refusing to render more "
            f"than {max_nodes}"
        )
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box];"]
    for node in range(index.num_nodes):
        k = index.k[node]
        k_text = "∞" if k >= K_UNBOUNDED else str(k)
        label = (
            f"{index.label(node)}\\n"
            f"|ext|={index.extent_size(node)} k={k_text}"
        )
        lines.append(f"  i{node} [label={_quote(label)}];")
    for src in range(index.num_nodes):
        for dst in sorted(index.children[src]):
            lines.append(f"  i{src} -> i{dst};")
    lines.append("}")
    return "\n".join(lines)
