"""Frozen columnar (CSR) views of data and index graphs.

The mutable structures — :class:`~repro.graph.datagraph.DataGraph` with
its per-node ``list[list[int]]`` adjacency, :class:`IndexGraph` with its
adjacency *sets* and dict-shaped extent bookkeeping — are the right
shape for the paper's additive update model, but every hot refinement
loop pays for their pointer-chasing: one list object per node, one
``PyObject*`` per neighbour, re-allocated signature containers per
round.  Following the flat partition-array representations of Rau et
al. ("Computing k-Bisimulations for Large Graphs") and Blume et al.
("Time and Memory Efficient Parallel Algorithm for Structural Graph
Summaries"), this module provides a *frozen* compressed-sparse-row view:

- ``child_offsets``/``child_targets`` — forward adjacency as two flat
  ``array('q')`` buffers: the children of node ``u`` are
  ``child_targets[child_offsets[u] : child_offsets[u + 1]]``;
- ``parent_offsets``/``parent_targets`` — the same for backward
  adjacency (refinement looks *up* the graph);
- ``label_ids`` — flat per-node label-id buffer;
- for index graphs additionally ``extent_offsets``/``extent_targets``
  (flat extents, in index-node order) and ``k`` (assigned similarity).

Contiguous ``array('q')`` buffers cost 8 bytes per entry, admit
zero-copy ``memoryview`` slicing (the shared-memory worker protocol of
:mod:`repro.partition.columnar` maps them straight into
``multiprocessing.shared_memory`` segments) and are `numpy`-wrappable
via ``numpy.frombuffer`` without copying when the optional ``fast``
extra is installed.

Freezing follows an explicit invalidation contract against the mutable
owner (see :meth:`DataGraph.freeze`): a view records the owner's
mutation version; mutating the owner either *refreshes* (the cached
view is dropped and rebuilt on next ``freeze()``) or *raises*
(``mode="seal"``), never silently serves stale buffers.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable, Protocol, Sequence

from repro.exceptions import GraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.graph.datagraph import DataGraph

#: ``array`` typecode of every CSR buffer: signed 64-bit ("q").
BUFFER_TYPECODE = "q"

#: Freeze modes accepted by ``DataGraph.freeze`` / ``IndexGraph.freeze``.
FREEZE_MODES = ("refresh", "seal")


class CSRBuffers(Protocol):
    """The read surface a refinement engine needs from a CSR snapshot.

    Satisfied structurally by :class:`CSRGraph` (flat in-memory
    ``array('q')`` buffers) and by
    :class:`repro.storage.paged.PagedCSRGraph`, whose buffers are
    lazily paged in from disk through an LRU pool.  Engines written
    against this protocol — the columnar engine and its out-of-core
    ``external`` subclass — never learn which one they got.
    """

    @property
    def label_ids(self) -> Sequence[int]: ...  # noqa: D102 - protocol

    @property
    def child_offsets(self) -> Sequence[int]: ...  # noqa: D102 - protocol

    @property
    def child_targets(self) -> Sequence[int]: ...  # noqa: D102 - protocol

    @property
    def parent_offsets(self) -> Sequence[int]: ...  # noqa: D102 - protocol

    @property
    def parent_targets(self) -> Sequence[int]: ...  # noqa: D102 - protocol

    @property
    def num_nodes(self) -> int: ...  # noqa: D102 - protocol


def flatten_adjacency(
    adjacency: Sequence[Iterable[int]], *, sort: bool = False
) -> tuple[array, array]:
    """Flatten per-node neighbour collections into (offsets, targets).

    ``offsets`` has ``len(adjacency) + 1`` entries; node ``u``'s
    neighbours occupy ``targets[offsets[u] : offsets[u + 1]]``.  With
    ``sort=True`` each node's neighbours are stored ascending — used for
    set-shaped adjacency whose iteration order is not deterministic.
    """
    offsets = array(BUFFER_TYPECODE, [0])
    targets = array(BUFFER_TYPECODE)
    for neighbours in adjacency:
        targets.extend(sorted(neighbours) if sort else neighbours)
        offsets.append(len(targets))
    return offsets, targets


class CSRGraph:
    """An immutable columnar snapshot of a labeled graph.

    Instances are produced by ``DataGraph.freeze()`` and
    ``IndexGraph.freeze()`` (or :func:`csr_from_parent_adjacency` for
    anything satisfying the ``LabeledAdjacency`` protocol) and consumed
    by the columnar refinement engine, the frozen persistence format and
    the shared-memory fork protocol.  All buffers are ``array('q')``;
    treat them as read-only — the owning graph's mutation version is the
    single source of truth for staleness.
    """

    __slots__ = (
        "label_ids",
        "child_offsets",
        "child_targets",
        "parent_offsets",
        "parent_targets",
        "num_labels",
        "source_version",
        "extent_offsets",
        "extent_targets",
        "k",
    )

    def __init__(
        self,
        label_ids: array,
        child_offsets: array,
        child_targets: array,
        parent_offsets: array,
        parent_targets: array,
        *,
        num_labels: int,
        source_version: int = 0,
        extent_offsets: array | None = None,
        extent_targets: array | None = None,
        k: array | None = None,
    ) -> None:
        n = len(label_ids)
        if len(child_offsets) != n + 1 or len(parent_offsets) != n + 1:
            raise GraphError(
                "CSR offset buffers must have num_nodes + 1 entries"
            )
        if len(child_targets) != len(parent_targets):
            raise GraphError(
                "child and parent target buffers disagree on edge count"
            )
        self.label_ids = label_ids
        self.child_offsets = child_offsets
        self.child_targets = child_targets
        self.parent_offsets = parent_offsets
        self.parent_targets = parent_targets
        self.num_labels = num_labels
        self.source_version = source_version
        self.extent_offsets = extent_offsets
        self.extent_targets = extent_targets
        self.k = k

    # ------------------------------------------------------------------
    # Size and access
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return len(self.label_ids)

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the snapshot."""
        return len(self.child_targets)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        kind = "index" if self.extent_offsets is not None else "data"
        return (
            f"CSRGraph({kind}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, labels={self.num_labels})"
        )

    def children(self, node: int) -> array:
        """The children of ``node`` (a copy — slicing an ``array``)."""
        return self.child_targets[
            self.child_offsets[node] : self.child_offsets[node + 1]
        ]

    def parents(self, node: int) -> array:
        """The parents of ``node`` (a copy — slicing an ``array``)."""
        return self.parent_targets[
            self.parent_offsets[node] : self.parent_offsets[node + 1]
        ]

    def out_degree(self, node: int) -> int:
        """Number of children of ``node``."""
        return self.child_offsets[node + 1] - self.child_offsets[node]

    def in_degree(self, node: int) -> int:
        """Number of parents of ``node``."""
        return self.parent_offsets[node + 1] - self.parent_offsets[node]

    def extent(self, node: int) -> array:
        """The extent of index node ``node`` (index snapshots only)."""
        if self.extent_offsets is None or self.extent_targets is None:
            raise GraphError("this CSR snapshot carries no extents")
        return self.extent_targets[
            self.extent_offsets[node] : self.extent_offsets[node + 1]
        ]

    # ------------------------------------------------------------------
    # Validation (used by the frozen persistence loader)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify offset monotonicity and target ranges; raise on error.

        Cheap linear checks so that a deserialized snapshot (whose
        buffers were *not* rebuilt from adjacency) fails loudly instead
        of indexing out of bounds deep inside a refinement round.
        """
        n = self.num_nodes
        for name, offsets, targets in (
            ("child", self.child_offsets, self.child_targets),
            ("parent", self.parent_offsets, self.parent_targets),
        ):
            if offsets[0] != 0 or offsets[n] != len(targets):
                raise GraphError(f"{name} offsets do not span the targets")
            previous = 0
            for value in offsets:
                if value < previous:
                    raise GraphError(f"{name} offsets are not monotone")
                previous = value
            for target in targets:
                if not 0 <= target < n:
                    raise GraphError(f"{name} target out of range: {target}")
        for label_id in self.label_ids:
            if not 0 <= label_id < self.num_labels:
                raise GraphError(f"label id out of range: {label_id}")
        # The two directions must describe the same edge multiset.
        forward = sorted(
            (src, self.child_targets[position])
            for src in range(n)
            for position in range(
                self.child_offsets[src], self.child_offsets[src + 1]
            )
        )
        backward = sorted(
            (self.parent_targets[position], dst)
            for dst in range(n)
            for position in range(
                self.parent_offsets[dst], self.parent_offsets[dst + 1]
            )
        )
        if forward != backward:
            raise GraphError("child and parent CSR views disagree on edges")

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------

    def to_datagraph(self, label_names: Sequence[str]) -> "DataGraph":
        """Materialise a mutable :class:`DataGraph` from this snapshot.

        The produced graph adopts this snapshot as its cached frozen
        view, so ``graph.freeze()`` returns it without rebuilding the
        offsets (the frozen-persistence round-trip guarantee).
        """
        from repro.graph.datagraph import DataGraph, ROOT_LABEL

        if not label_names or label_names[self.label_ids[0]] != ROOT_LABEL:
            raise GraphError("node 0 of a data snapshot must be ROOT")
        graph = DataGraph()
        for name in label_names:
            graph.intern_label(name)
        for label_id in self.label_ids[1:]:
            graph.add_node(label_names[label_id])
        co, ct = self.child_offsets, self.child_targets
        for src in range(self.num_nodes):
            for position in range(co[src], co[src + 1]):
                graph.add_edge(src, ct[position])
        graph.adopt_frozen_view(self)
        return graph


def csr_from_lists(
    label_ids: Sequence[int],
    children: Sequence[Sequence[int]],
    parents: Sequence[Sequence[int]],
    *,
    num_labels: int,
    source_version: int = 0,
    sort: bool = False,
) -> CSRGraph:
    """Build a CSR snapshot from list/set-shaped adjacency."""
    child_offsets, child_targets = flatten_adjacency(children, sort=sort)
    parent_offsets, parent_targets = flatten_adjacency(parents, sort=sort)
    return CSRGraph(
        array(BUFFER_TYPECODE, label_ids),
        child_offsets,
        child_targets,
        parent_offsets,
        parent_targets,
        num_labels=num_labels,
        source_version=source_version,
    )


def csr_from_parent_adjacency(
    label_ids: Sequence[int],
    parents: Sequence[Iterable[int]],
    *,
    num_labels: int | None = None,
    source_version: int = 0,
) -> CSRGraph:
    """CSR snapshot from backward adjacency only (children transposed).

    This is the generic fallback for any ``LabeledAdjacency`` object
    that does not implement ``freeze()`` itself: refinement needs
    parents for signatures and children for dirt propagation, and the
    latter is exactly the transpose of the former.
    """
    n = len(label_ids)
    parent_offsets, parent_targets = flatten_adjacency(parents, sort=True)
    out_degree = [0] * n
    for target in parent_targets:
        out_degree[target] += 1
    child_offsets = array(BUFFER_TYPECODE, [0])
    total = 0
    for degree in out_degree:
        total += degree
        child_offsets.append(total)
    cursor = list(child_offsets[:n])
    child_targets = array(BUFFER_TYPECODE, bytes(8 * total))
    for child in range(n):
        for position in range(parent_offsets[child], parent_offsets[child + 1]):
            parent = parent_targets[position]
            child_targets[cursor[parent]] = child
            cursor[parent] += 1
    labels = (
        (max(label_ids, default=-1) + 1) if num_labels is None else num_labels
    )
    return CSRGraph(
        array(BUFFER_TYPECODE, label_ids),
        child_offsets,
        child_targets,
        parent_offsets,
        parent_targets,
        num_labels=labels,
        source_version=source_version,
    )
