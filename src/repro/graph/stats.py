"""Descriptive statistics over data graphs.

Used by the dataset generators (to check the generated graphs have the
distributional properties the paper relies on — XMark "regular", NASA
"broader, deeper and less regular ... more references") and by the CLI's
``stats`` command.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

from repro.graph.datagraph import DataGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a :class:`DataGraph`.

    Attributes:
        num_nodes: total node count (including ROOT).
        num_edges: total directed edge count.
        num_labels: distinct labels.
        max_depth: maximum BFS depth from the root (tree+reference edges).
        avg_depth: mean BFS depth over reachable nodes.
        num_tree_edges: edges on the BFS spanning forest from the root.
        num_reference_edges: remaining edges (cross/forward/back refs).
        max_out_degree / max_in_degree: fan-out / fan-in extremes.
        label_histogram: ``{label: node count}`` for the top labels.
        unreachable_nodes: nodes not reachable from the root (should be 0
            for document-derived graphs).
    """

    num_nodes: int
    num_edges: int
    num_labels: int
    max_depth: int
    avg_depth: float
    num_tree_edges: int
    num_reference_edges: int
    max_out_degree: int
    max_in_degree: int
    label_histogram: dict[str, int] = field(default_factory=dict)
    unreachable_nodes: int = 0

    def format(self, top_labels: int = 10) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"nodes:            {self.num_nodes}",
            f"edges:            {self.num_edges}",
            f"labels:           {self.num_labels}",
            f"max depth:        {self.max_depth}",
            f"avg depth:        {self.avg_depth:.2f}",
            f"tree edges:       {self.num_tree_edges}",
            f"reference edges:  {self.num_reference_edges}",
            f"max out-degree:   {self.max_out_degree}",
            f"max in-degree:    {self.max_in_degree}",
            f"unreachable:      {self.unreachable_nodes}",
            "top labels:",
        ]
        ranked = sorted(
            self.label_histogram.items(), key=lambda item: (-item[1], item[0])
        )
        for label, count in ranked[:top_labels]:
            lines.append(f"  {label:<24} {count}")
        return "\n".join(lines)


def graph_stats(graph: DataGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph`` in a single BFS pass."""
    depth = [-1] * graph.num_nodes
    depth[graph.root] = 0
    queue = deque([graph.root])
    tree_edges = 0
    while queue:
        node = queue.popleft()
        for child in graph.children[node]:
            if depth[child] == -1:
                depth[child] = depth[node] + 1
                tree_edges += 1
                queue.append(child)

    reachable_depths = [d for d in depth if d >= 0]
    unreachable = graph.num_nodes - len(reachable_depths)
    max_depth = max(reachable_depths) if reachable_depths else 0
    avg_depth = (
        sum(reachable_depths) / len(reachable_depths) if reachable_depths else 0.0
    )

    label_counts: Counter[str] = Counter()
    for node in graph.nodes():
        label_counts[graph.label(node)] += 1

    max_out = max((len(c) for c in graph.children), default=0)
    max_in = max((len(p) for p in graph.parents), default=0)

    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_labels=graph.num_labels,
        max_depth=max_depth,
        avg_depth=avg_depth,
        num_tree_edges=tree_edges,
        num_reference_edges=graph.num_edges - tree_edges,
        max_out_degree=max_out,
        max_in_degree=max_in,
        label_histogram=dict(label_counts),
        unreachable_nodes=unreachable,
    )
