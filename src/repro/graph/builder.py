"""Convenience builder for constructing data graphs declaratively.

:class:`GraphBuilder` wraps :class:`~repro.graph.datagraph.DataGraph`
with a small fluent API used heavily by the tests and the examples:
nodes can be named, trees can be declared from nested dictionaries, and
reference edges can be added by node name.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

from repro.exceptions import GraphError
from repro.graph.datagraph import DataGraph

#: A tree spec is ``{"label": [child_spec, ...]}`` or just ``"label"``.
TreeSpec = Union[str, Mapping[str, Sequence["TreeSpec"]]]


class GraphBuilder:
    """Incrementally build a :class:`DataGraph` with named nodes.

    Example:
        >>> b = GraphBuilder()
        >>> b.node("m1", "movie", parent="root")
        'm1'
        >>> b.node("t1", "title", parent="m1")
        't1'
        >>> g = b.graph
        >>> g.label(b.id_of("t1"))
        'title'
    """

    def __init__(self) -> None:
        self.graph = DataGraph()
        self._names: dict[str, int] = {"root": self.graph.root}

    def id_of(self, name: str) -> int:
        """Return the node id registered under ``name``.

        Raises:
            GraphError: if no node with that name exists.
        """
        try:
            return self._names[name]
        except KeyError:
            raise GraphError(f"unknown node name: {name!r}") from None

    def node(self, name: str, label: str, parent: str | None = None) -> str:
        """Create a node called ``name`` with ``label``.

        If ``parent`` is given, an edge from the parent node is added.
        Returns ``name`` for chaining.

        Raises:
            GraphError: if ``name`` is already taken.
        """
        if name in self._names:
            raise GraphError(f"duplicate node name: {name!r}")
        node = self.graph.add_node(label)
        self._names[name] = node
        if parent is not None:
            self.graph.add_edge(self.id_of(parent), node)
        return name

    def edge(self, src: str, dst: str) -> None:
        """Add an edge between two named nodes."""
        self.graph.add_edge(self.id_of(src), self.id_of(dst))

    def tree(self, spec: TreeSpec, parent: str = "root", prefix: str = "") -> str:
        """Declare a whole subtree from a nested mapping.

        Each node is auto-named ``{prefix}{label}{counter}``; the name of
        the subtree root is returned so reference edges can target it.

        Example:
            >>> b = GraphBuilder()
            >>> root = b.tree({"movie": ["title", {"actor": ["name"]}]})
            >>> sorted(b.graph.label_names())
            ['ROOT', 'actor', 'movie', 'name', 'title']
        """
        if isinstance(spec, str):
            label, children = spec, []
        else:
            if len(spec) != 1:
                raise GraphError("tree spec mapping must have exactly one key")
            label, children = next(iter(spec.items()))
        name = self._fresh_name(prefix + label)
        self.node(name, label, parent=parent)
        for child in children:
            self.tree(child, parent=name, prefix=prefix)
        return name

    def _fresh_name(self, base: str) -> str:
        if base not in self._names:
            return base
        counter = 2
        while f"{base}{counter}" in self._names:
            counter += 1
        return f"{base}{counter}"


def graph_from_edges(
    labels: Sequence[str], edges: Sequence[tuple[int, int]]
) -> DataGraph:
    """Build a graph from parallel label/edge lists.

    ``labels[i]`` is the label of node ``i + 1`` (node 0 is always the
    implicit ROOT).  ``edges`` use those final node ids, so ``(0, 1)``
    connects the root to the first labeled node.  This is the terse format
    used throughout the unit tests and by the property-based generators.

    Example:
        >>> g = graph_from_edges(["a", "b"], [(0, 1), (1, 2)])
        >>> g.label(2)
        'b'
    """
    graph = DataGraph()
    for label in labels:
        graph.add_node(label)
    for src, dst in edges:
        graph.add_edge(src, dst)
    return graph
