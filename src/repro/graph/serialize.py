"""Versioned JSON persistence for data graphs.

The format is deliberately simple and diff-friendly:

.. code-block:: json

    {
      "format": "repro-datagraph",
      "version": 1,
      "labels": ["ROOT", "movie", ...],
      "nodes": [0, 1, 1, ...],            // label id per node
      "edges": [[0, 1], [1, 2], ...]
    }

Node 0 must be the ROOT node.  The loader validates structure so that a
corrupted file fails loudly rather than producing a subtly broken graph.

A second, columnar format (``repro-datagraph-frozen``) persists the CSR
buffers of a frozen graph (see :mod:`repro.graph.columnar`) directly —
base64-encoded native ``array('q')`` bytes plus the producer's byte
order, so a loader on the other endianness byte-swaps on read.  Loading
a frozen document rebuilds the mutable graph *and* re-adopts the stored
snapshot as its cached frozen view: ``loaded.freeze()`` returns the
deserialized buffers without re-flattening any adjacency.
"""

from __future__ import annotations

import base64
import binascii
import io
import json
import sys
from array import array
from pathlib import Path
from typing import IO, Any

from repro.exceptions import GraphError, SerializationError
from repro.graph.columnar import BUFFER_TYPECODE, CSRGraph
from repro.graph.datagraph import ROOT_LABEL, DataGraph

FORMAT_NAME = "repro-datagraph"
FORMAT_VERSION = 1

FROZEN_FORMAT_NAME = "repro-datagraph-frozen"
FROZEN_FORMAT_VERSION = 1

#: Version stamp of the *paged* frozen variant: the same format name,
#: but the CSR buffers live in fixed-size page files referenced by a
#: page-table header instead of inline base64 (see
#: :mod:`repro.storage.paged`, which owns reading and writing it).
FROZEN_PAGED_VERSION = 2

#: The CSR buffers a frozen document must carry, in document order.
_FROZEN_BUFFERS = (
    "label_ids",
    "child_offsets",
    "child_targets",
    "parent_offsets",
    "parent_targets",
)


def graph_to_dict(graph: DataGraph) -> dict[str, Any]:
    """Return the JSON-ready dictionary representation of ``graph``."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "labels": list(graph.label_names()),
        "nodes": list(graph.label_ids),
        "edges": [[src, dst] for src, dst in graph.edges()],
    }


def graph_from_dict(data: dict[str, Any]) -> DataGraph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    Raises:
        SerializationError: on any structural problem.
    """
    if not isinstance(data, dict):
        raise SerializationError("graph document must be a JSON object")
    if data.get("format") != FORMAT_NAME:
        raise SerializationError(f"unexpected format marker: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise SerializationError(f"unsupported version: {data.get('version')!r}")
    labels = data.get("labels")
    nodes = data.get("nodes")
    edges = data.get("edges")
    if not isinstance(labels, list) or not all(isinstance(l, str) for l in labels):
        raise SerializationError("'labels' must be a list of strings")
    if not isinstance(nodes, list) or not all(isinstance(n, int) for n in nodes):
        raise SerializationError("'nodes' must be a list of label ids")
    if not isinstance(edges, list):
        raise SerializationError("'edges' must be a list")
    if not nodes:
        raise SerializationError("graph must contain at least the ROOT node")
    if labels[nodes[0]] != ROOT_LABEL:
        raise SerializationError("node 0 must carry the ROOT label")

    graph = DataGraph()
    if graph.label_ids[0] != 0 or labels[nodes[0]] != ROOT_LABEL:
        raise SerializationError("corrupt ROOT declaration")
    # Intern labels in file order so stored ids remain meaningful.
    for name in labels:
        graph.intern_label(name)
    for label_id in nodes[1:]:
        if not 0 <= label_id < len(labels):
            raise SerializationError(f"label id out of range: {label_id}")
        graph.add_node(labels[label_id])
    for entry in edges:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not all(isinstance(x, int) for x in entry)
        ):
            raise SerializationError(f"malformed edge entry: {entry!r}")
        src, dst = entry
        if not (graph.has_node(src) and graph.has_node(dst)):
            raise SerializationError(f"edge references unknown node: {entry!r}")
        if not graph.add_edge_if_absent(src, dst):
            raise SerializationError(f"duplicate edge in file: {entry!r}")
    return graph


def save_graph(graph: DataGraph, target: str | Path | IO[str]) -> None:
    """Serialize ``graph`` as JSON to a path or text file object.

    Paths are written through the atomic sealed writer of
    :mod:`repro.maintenance.store`: a crash mid-save leaves the
    previous good file, and any later byte flip is detected on load.
    """
    from repro.maintenance.store import atomic_write_document

    document = graph_to_dict(graph)
    if isinstance(target, (str, Path)):
        atomic_write_document(target, document)
    else:
        json.dump(document, target)


def load_graph(source: str | Path | IO[str]) -> DataGraph:
    """Load a graph previously written by :func:`save_graph`.

    Sealed files are integrity-checked; unsealed version-1 files from
    before the seal existed load as before.

    Raises:
        SerializationError: on integrity or structural problems.
    """
    from repro.maintenance.store import read_document

    if isinstance(source, (str, Path)):
        data: Any = read_document(source)
    else:
        data = json.load(source)
    return graph_from_dict(data)


def _encode_buffer(buffer: "array[int]") -> str:
    """Base64 of the buffer's raw native-endian bytes."""
    return base64.b64encode(buffer.tobytes()).decode("ascii")


def buffer_from_bytes(name: str, raw: bytes, byteorder: str) -> "array[int]":
    """Raw int64 bytes in ``byteorder`` -> a *native* ``array('q')``.

    The single decode door for every frozen representation: the inline
    base64 buffers below and the binary page files of
    :mod:`repro.storage.paged` both route through it, so a payload
    stamped with the opposite endianness is byteswapped (never rejected,
    never misread) on every load path.

    Raises:
        SerializationError: for a byte count that is not a whole number
            of 64-bit entries.
    """
    buffer = array(BUFFER_TYPECODE)
    try:
        buffer.frombytes(raw)
    except ValueError as error:
        raise SerializationError(
            f"frozen buffer {name!r} is not a whole number of 64-bit "
            f"entries ({len(raw)} bytes)"
        ) from error
    if byteorder != sys.byteorder:
        buffer.byteswap()
    return buffer


def buffer_to_bytes(buffer: "array[int]", byteorder: str) -> bytes:
    """A native ``array('q')`` -> raw bytes in ``byteorder``.

    The symmetric encode door: a store created on a foreign-endian host
    keeps *all* its payloads in the creation stamp's order, so mixing
    pages written before and after a host migration cannot happen.
    """
    if byteorder != sys.byteorder:
        swapped = array(BUFFER_TYPECODE, buffer)
        swapped.byteswap()
        return swapped.tobytes()
    return buffer.tobytes()


def _decode_buffer(name: str, text: object, byteorder: str) -> "array[int]":
    """Decode one stored buffer back into a native ``array('q')``.

    Raises:
        SerializationError: for malformed base64 or a byte count that is
            not a whole number of 64-bit entries.
    """
    if not isinstance(text, str):
        raise SerializationError(f"frozen buffer {name!r} must be a string")
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as error:
        raise SerializationError(
            f"frozen buffer {name!r} is not valid base64: {error}"
        ) from error
    return buffer_from_bytes(name, raw, byteorder)


def frozen_to_dict(graph: DataGraph) -> dict[str, Any]:
    """The columnar document for ``graph`` (freezes it if needed).

    Buffer bytes are written in the producer's native byte order, which
    is recorded in the document so a foreign-endian loader can swap.
    """
    view = graph.freeze()
    return {
        "format": FROZEN_FORMAT_NAME,
        "version": FROZEN_FORMAT_VERSION,
        "byteorder": sys.byteorder,
        "labels": list(graph.label_names()),
        "num_nodes": view.num_nodes,
        "num_edges": view.num_edges,
        "sealed": graph.sealed,
        "buffers": {
            name: _encode_buffer(getattr(view, name))
            for name in _FROZEN_BUFFERS
        },
    }


def frozen_from_dict(data: dict[str, Any]) -> DataGraph:
    """Rebuild a graph (plus its frozen view) from :func:`frozen_to_dict`.

    The decoded buffers are invariant-checked (offset monotonicity,
    target ranges, forward/backward agreement) before any graph is
    built, then adopted as the result's cached frozen view — the
    offsets are *not* re-derived from adjacency.

    Raises:
        SerializationError: on any structural or integrity problem.
    """
    if not isinstance(data, dict):
        raise SerializationError("frozen document must be a JSON object")
    if data.get("format") != FROZEN_FORMAT_NAME:
        raise SerializationError(
            f"unexpected format marker: {data.get('format')!r}"
        )
    if data.get("version") == FROZEN_PAGED_VERSION:
        raise SerializationError(
            "this is a paged (version-2) frozen manifest whose buffers "
            "live in external page files; open the store directory with "
            "repro.storage.paged.PagedCSRGraph.open instead"
        )
    if data.get("version") != FROZEN_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported frozen version: {data.get('version')!r}"
        )
    byteorder = data.get("byteorder")
    if byteorder not in ("little", "big"):
        raise SerializationError(f"invalid byteorder: {byteorder!r}")
    labels = data.get("labels")
    if not isinstance(labels, list) or not all(
        isinstance(name, str) for name in labels
    ):
        raise SerializationError("'labels' must be a list of strings")
    encoded = data.get("buffers")
    if not isinstance(encoded, dict) or set(encoded) != set(_FROZEN_BUFFERS):
        raise SerializationError(
            f"'buffers' must carry exactly {sorted(_FROZEN_BUFFERS)}"
        )
    buffers = {
        name: _decode_buffer(name, encoded[name], byteorder)
        for name in _FROZEN_BUFFERS
    }
    try:
        view = CSRGraph(
            buffers["label_ids"],
            buffers["child_offsets"],
            buffers["child_targets"],
            buffers["parent_offsets"],
            buffers["parent_targets"],
            num_labels=len(labels),
        )
        view.check_invariants()
        if data.get("num_nodes") != view.num_nodes:
            raise SerializationError("'num_nodes' disagrees with buffers")
        if data.get("num_edges") != view.num_edges:
            raise SerializationError("'num_edges' disagrees with buffers")
        graph = view.to_datagraph(labels)
        # Version-1 files from before the flag default to unsealed.
        if data.get("sealed", False):
            graph.freeze(mode="seal")
        return graph
    except GraphError as error:
        raise SerializationError(f"corrupt frozen buffers: {error}") from error


def save_frozen_graph(graph: DataGraph, target: str | Path | IO[str]) -> None:
    """Serialize ``graph``'s frozen CSR view to a path or file object.

    Paths go through the same atomic sealed writer as
    :func:`save_graph` (crash-safe replace, checksummed footer).
    """
    from repro.maintenance.store import atomic_write_document

    document = frozen_to_dict(graph)
    if isinstance(target, (str, Path)):
        atomic_write_document(target, document)
    else:
        json.dump(document, target)


def load_frozen_graph(source: str | Path | IO[str]) -> DataGraph:
    """Load a graph written by :func:`save_frozen_graph`.

    The result's ``freeze()`` returns the deserialized snapshot without
    rebuilding any CSR offsets.

    Raises:
        SerializationError: on integrity or structural problems.
    """
    from repro.maintenance.store import read_document

    if isinstance(source, (str, Path)):
        data: Any = read_document(source)
    else:
        data = json.load(source)
    return frozen_from_dict(data)


def dumps(graph: DataGraph) -> str:
    """Serialize ``graph`` to a JSON string."""
    buffer = io.StringIO()
    save_graph(graph, buffer)
    return buffer.getvalue()


def loads(text: str) -> DataGraph:
    """Load a graph from a JSON string."""
    return load_graph(io.StringIO(text))
