"""Versioned JSON persistence for data graphs.

The format is deliberately simple and diff-friendly:

.. code-block:: json

    {
      "format": "repro-datagraph",
      "version": 1,
      "labels": ["ROOT", "movie", ...],
      "nodes": [0, 1, 1, ...],            // label id per node
      "edges": [[0, 1], [1, 2], ...]
    }

Node 0 must be the ROOT node.  The loader validates structure so that a
corrupted file fails loudly rather than producing a subtly broken graph.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import IO, Any

from repro.exceptions import SerializationError
from repro.graph.datagraph import ROOT_LABEL, DataGraph

FORMAT_NAME = "repro-datagraph"
FORMAT_VERSION = 1


def graph_to_dict(graph: DataGraph) -> dict[str, Any]:
    """Return the JSON-ready dictionary representation of ``graph``."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "labels": list(graph.label_names()),
        "nodes": list(graph.label_ids),
        "edges": [[src, dst] for src, dst in graph.edges()],
    }


def graph_from_dict(data: dict[str, Any]) -> DataGraph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    Raises:
        SerializationError: on any structural problem.
    """
    if not isinstance(data, dict):
        raise SerializationError("graph document must be a JSON object")
    if data.get("format") != FORMAT_NAME:
        raise SerializationError(f"unexpected format marker: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise SerializationError(f"unsupported version: {data.get('version')!r}")
    labels = data.get("labels")
    nodes = data.get("nodes")
    edges = data.get("edges")
    if not isinstance(labels, list) or not all(isinstance(l, str) for l in labels):
        raise SerializationError("'labels' must be a list of strings")
    if not isinstance(nodes, list) or not all(isinstance(n, int) for n in nodes):
        raise SerializationError("'nodes' must be a list of label ids")
    if not isinstance(edges, list):
        raise SerializationError("'edges' must be a list")
    if not nodes:
        raise SerializationError("graph must contain at least the ROOT node")
    if labels[nodes[0]] != ROOT_LABEL:
        raise SerializationError("node 0 must carry the ROOT label")

    graph = DataGraph()
    if graph.label_ids[0] != 0 or labels[nodes[0]] != ROOT_LABEL:
        raise SerializationError("corrupt ROOT declaration")
    # Intern labels in file order so stored ids remain meaningful.
    for name in labels:
        graph.intern_label(name)
    for label_id in nodes[1:]:
        if not 0 <= label_id < len(labels):
            raise SerializationError(f"label id out of range: {label_id}")
        graph.add_node(labels[label_id])
    for entry in edges:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not all(isinstance(x, int) for x in entry)
        ):
            raise SerializationError(f"malformed edge entry: {entry!r}")
        src, dst = entry
        if not (graph.has_node(src) and graph.has_node(dst)):
            raise SerializationError(f"edge references unknown node: {entry!r}")
        if not graph.add_edge_if_absent(src, dst):
            raise SerializationError(f"duplicate edge in file: {entry!r}")
    return graph


def save_graph(graph: DataGraph, target: str | Path | IO[str]) -> None:
    """Serialize ``graph`` as JSON to a path or text file object.

    Paths are written through the atomic sealed writer of
    :mod:`repro.maintenance.store`: a crash mid-save leaves the
    previous good file, and any later byte flip is detected on load.
    """
    from repro.maintenance.store import atomic_write_document

    document = graph_to_dict(graph)
    if isinstance(target, (str, Path)):
        atomic_write_document(target, document)
    else:
        json.dump(document, target)


def load_graph(source: str | Path | IO[str]) -> DataGraph:
    """Load a graph previously written by :func:`save_graph`.

    Sealed files are integrity-checked; unsealed version-1 files from
    before the seal existed load as before.

    Raises:
        SerializationError: on integrity or structural problems.
    """
    from repro.maintenance.store import read_document

    if isinstance(source, (str, Path)):
        data: Any = read_document(source)
    else:
        data = json.load(source)
    return graph_from_dict(data)


def dumps(graph: DataGraph) -> str:
    """Serialize ``graph`` to a JSON string."""
    buffer = io.StringIO()
    save_graph(graph, buffer)
    return buffer.getvalue()


def loads(text: str) -> DataGraph:
    """Load a graph from a JSON string."""
    return load_graph(io.StringIO(text))
