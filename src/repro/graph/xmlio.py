"""XML ⇄ data-graph interchange.

Implements the modeling conventions of Section 3 of the paper:

- every element becomes a node labeled with its tag;
- element-subelement containment becomes a directed edge;
- attributes become child nodes labeled with the attribute name, whose
  value (if kept) hangs below as a ``VALUE`` node;
- text content becomes a ``VALUE`` child node;
- ``ID`` / ``IDREF`` (and ``IDREFS``) attributes create *reference edges*
  from the referencing element to the referenced element — after which
  tree and reference edges are indistinguishable, exactly as the paper
  treats them.

The parser is the standard library ``xml.etree.ElementTree``; no external
XML dependencies are required.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import IO, Iterable

from repro.exceptions import GraphError
from repro.graph.datagraph import VALUE_LABEL, DataGraph


@dataclass(frozen=True)
class XmlOptions:
    """Tuning knobs for :func:`parse_xml`.

    Attributes:
        id_attributes: attribute names treated as element IDs.
        idref_attributes: attribute names treated as references; their
            (whitespace-split) values must name IDs declared elsewhere in
            the document.
        keep_values: if True (default), text content and non-ID attribute
            values produce ``VALUE`` leaf nodes, mirroring the paper's
            "simple objects given a distinguished label VALUE".
        keep_attributes: if True (default), non-ID/IDREF attributes become
            labeled child nodes.
        strict_refs: if True, dangling IDREFs raise; otherwise they are
            silently dropped (real-world documents are often sloppy).
    """

    id_attributes: frozenset[str] = frozenset({"id"})
    idref_attributes: frozenset[str] = frozenset({"idref", "idrefs"})
    keep_values: bool = True
    keep_attributes: bool = True
    strict_refs: bool = False


@dataclass
class _PendingRef:
    source_node: int
    target_id: str


def parse_xml(text: str, options: XmlOptions | None = None) -> DataGraph:
    """Parse an XML document string into a :class:`DataGraph`.

    The document element is attached below the graph's ROOT node.

    Example:
        >>> g = parse_xml("<movieDB><movie><title>Heat</title></movie></movieDB>")
        >>> sorted(set(g.label_names())) # doctest: +NORMALIZE_WHITESPACE
        ['ROOT', 'VALUE', 'movie', 'movieDB', 'title']
    """
    options = options or XmlOptions()
    element = ET.fromstring(text)
    return _element_to_graph(element, options)


def parse_xml_file(source: str | IO[bytes], options: XmlOptions | None = None) -> DataGraph:
    """Parse an XML document from a path or binary file object."""
    options = options or XmlOptions()
    tree = ET.parse(source)
    return _element_to_graph(tree.getroot(), options)


def _element_to_graph(root_element: ET.Element, options: XmlOptions) -> DataGraph:
    graph = DataGraph()
    ids: dict[str, int] = {}
    pending: list[_PendingRef] = []
    _add_element(graph, graph.root, root_element, options, ids, pending)
    for ref in pending:
        target = ids.get(ref.target_id)
        if target is None:
            if options.strict_refs:
                raise GraphError(f"dangling IDREF: {ref.target_id!r}")
            continue
        graph.add_edge_if_absent(ref.source_node, target)
    return graph


def _add_element(
    graph: DataGraph,
    parent: int,
    element: ET.Element,
    options: XmlOptions,
    ids: dict[str, int],
    pending: list[_PendingRef],
) -> int:
    node = graph.add_node(_local_name(element.tag))
    graph.add_edge(parent, node)
    for attr_name, attr_value in element.attrib.items():
        name = _local_name(attr_name)
        if name in options.id_attributes:
            if attr_value in ids:
                raise GraphError(f"duplicate ID value: {attr_value!r}")
            ids[attr_value] = node
        elif name in options.idref_attributes:
            for token in attr_value.split():
                pending.append(_PendingRef(source_node=node, target_id=token))
        elif options.keep_attributes:
            attr_node = graph.add_node(name)
            graph.add_edge(node, attr_node)
            if options.keep_values:
                value_node = graph.add_node(VALUE_LABEL)
                graph.add_edge(attr_node, value_node)
    if options.keep_values and element.text and element.text.strip():
        value_node = graph.add_node(VALUE_LABEL)
        graph.add_edge(node, value_node)
    for child in element:
        _add_element(graph, node, child, options, ids, pending)
        if options.keep_values and child.tail and child.tail.strip():
            value_node = graph.add_node(VALUE_LABEL)
            graph.add_edge(node, value_node)
    return node


def _local_name(tag: str) -> str:
    # Strip any "{namespace}" prefix ElementTree attaches.
    if tag.startswith("{"):
        return tag.rsplit("}", 1)[1]
    return tag


def graph_to_xml(graph: DataGraph) -> str:
    """Render the *tree skeleton* of a graph as an XML string.

    Only edges forming a spanning tree from the root (first-parent
    containment) are rendered as nesting; every remaining edge is encoded
    via synthesised ``id`` / ``idref`` attributes so that
    ``parse_xml(graph_to_xml(g))`` reproduces an isomorphic graph for
    graphs produced by :func:`parse_xml` with values disabled.

    This is primarily a debugging/interchange aid; the JSON format in
    :mod:`repro.graph.serialize` is the canonical persistence path.
    """
    tree_parent = [-1] * graph.num_nodes
    order: list[int] = []
    seen = [False] * graph.num_nodes
    seen[graph.root] = True
    stack = [graph.root]
    while stack:
        node = stack.pop()
        order.append(node)
        for child in graph.children[node]:
            if not seen[child]:
                seen[child] = True
                tree_parent[child] = node
                stack.append(child)
    if not all(seen):
        unreachable = sum(1 for s in seen if not s)
        raise GraphError(
            f"graph has {unreachable} nodes unreachable from the root; "
            "cannot render as a document"
        )

    extra_edges = [
        (src, dst)
        for src, dst in graph.edges()
        if tree_parent[dst] != src
    ]
    needs_id = {dst for _, dst in extra_edges}

    elements: dict[int, ET.Element] = {}
    root_children: list[ET.Element] = []
    for node in order:
        if node == graph.root:
            continue
        element = ET.Element(graph.label(node))
        if node in needs_id:
            element.set("id", f"n{node}")
        elements[node] = element
        parent = tree_parent[node]
        if parent == graph.root:
            root_children.append(element)
        else:
            elements[parent].append(element)
    for src, dst in extra_edges:
        if src == graph.root:
            continue
        element = elements[src]
        existing = element.get("idrefs")
        token = f"n{dst}"
        element.set("idrefs", f"{existing} {token}" if existing else token)

    if len(root_children) == 1:
        document = root_children[0]
    else:
        document = ET.Element("document")
        document.extend(root_children)
    return ET.tostring(document, encoding="unicode")
