"""Directed labeled data-graph substrate.

This subpackage implements the data model of Section 3 of the paper: XML
and other semi-structured data are modeled as a directed graph whose nodes
carry a label and a unique integer identifier.  A single distinguished
root node carries the label ``ROOT`` and atomic values carry the label
``VALUE``.  Tree (containment) edges and reference (ID/IDREF, XLink) edges
are not distinguished — both are plain directed edges.

Public entry points:

- :class:`~repro.graph.datagraph.DataGraph` — the core structure.
- :class:`~repro.graph.builder.GraphBuilder` — convenient incremental
  construction by label name.
- :func:`~repro.graph.xmlio.parse_xml` /
  :func:`~repro.graph.xmlio.graph_to_xml` — XML interchange.
- :func:`~repro.graph.serialize.save_graph` /
  :func:`~repro.graph.serialize.load_graph` — JSON persistence.
- :func:`~repro.graph.stats.graph_stats` — descriptive statistics.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.datagraph import ROOT_LABEL, VALUE_LABEL, DataGraph
from repro.graph.numbering import TreeNumbering, number_tree
from repro.graph.serialize import load_graph, save_graph
from repro.graph.stats import GraphStats, graph_stats
from repro.graph.visualize import data_graph_to_dot, index_graph_to_dot
from repro.graph.xmlio import graph_to_xml, parse_xml, parse_xml_file

__all__ = [
    "DataGraph",
    "GraphBuilder",
    "GraphStats",
    "ROOT_LABEL",
    "TreeNumbering",
    "VALUE_LABEL",
    "data_graph_to_dot",
    "graph_stats",
    "graph_to_xml",
    "index_graph_to_dot",
    "load_graph",
    "number_tree",
    "parse_xml",
    "parse_xml_file",
    "save_graph",
]
