"""Traversal utilities over data graphs and index graphs.

These helpers are shared by the evaluators, the update algorithms and the
statistics module.  All of them operate on the "duck" adjacency interface
(objects exposing ``children``, ``parents`` and ``num_nodes``), so they
work on :class:`~repro.graph.datagraph.DataGraph` and
:class:`~repro.indexes.base.IndexGraph` alike.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Protocol, Sequence


class Adjacency(Protocol):
    """Structural typing for anything with parent/child adjacency lists."""

    children: Sequence[Sequence[int]]
    parents: Sequence[Sequence[int]]

    @property
    def num_nodes(self) -> int: ...


def bfs_order(graph: Adjacency, start: int) -> list[int]:
    """Nodes reachable from ``start`` (inclusive) in BFS order."""
    seen = [False] * graph.num_nodes
    seen[start] = True
    order = [start]
    queue = deque([start])
    children = graph.children
    while queue:
        node = queue.popleft()
        for child in children[node]:
            if not seen[child]:
                seen[child] = True
                order.append(child)
                queue.append(child)
    return order


def bfs_distances(graph: Adjacency, start: int) -> dict[int, int]:
    """Shortest forward distance (in edges) from ``start`` to each
    reachable node."""
    dist = {start: 0}
    queue = deque([start])
    children = graph.children
    while queue:
        node = queue.popleft()
        base = dist[node]
        for child in children[node]:
            if child not in dist:
                dist[child] = base + 1
                queue.append(child)
    return dist


def reachable_from(graph: Adjacency, starts: Iterable[int]) -> set[int]:
    """Set of nodes reachable from any node in ``starts`` (inclusive)."""
    seen: set[int] = set()
    stack = [s for s in starts]
    children = graph.children
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(children[node])
    return seen


def ancestors_within(graph: Adjacency, node: int, radius: int) -> dict[int, int]:
    """Nodes with a *backward* path of length <= radius to ``node``.

    Returns a ``{ancestor: distance}`` map; ``node`` itself is included
    with distance 0.  Used by the A(k) propagate update and by tests.
    """
    dist = {node: 0}
    queue = deque([node])
    parents = graph.parents
    while queue:
        current = queue.popleft()
        base = dist[current]
        if base == radius:
            continue
        for parent in parents[current]:
            if parent not in dist:
                dist[parent] = base + 1
                queue.append(parent)
    return dist


def descendants_within(graph: Adjacency, node: int, radius: int) -> dict[int, int]:
    """Nodes with a *forward* path of length <= radius from ``node``.

    Returns a ``{descendant: distance}`` map including ``node`` at 0.
    """
    dist = {node: 0}
    queue = deque([node])
    children = graph.children
    while queue:
        current = queue.popleft()
        base = dist[current]
        if base == radius:
            continue
        for child in children[current]:
            if child not in dist:
                dist[child] = base + 1
                queue.append(child)
    return dist


def topological_order(graph: Adjacency) -> list[int] | None:
    """Kahn topological order, or None if the graph has a cycle.

    Reference edges routinely create cycles in XML data graphs, so callers
    must handle the ``None`` case; the tree skeleton produced by the XML
    parser is always acyclic.
    """
    indegree = [len(graph.parents[node]) for node in range(graph.num_nodes)]
    queue = deque(node for node, deg in enumerate(indegree) if deg == 0)
    order: list[int] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for child in graph.children[node]:
            indegree[child] -= 1
            if indegree[child] == 0:
                queue.append(child)
    if len(order) != graph.num_nodes:
        return None
    return order


def iter_label_paths_to(
    graph: Adjacency,
    label_ids: Sequence[int],
    node: int,
    length: int,
    limit: int | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield distinct incoming label paths of exactly ``length`` labels
    ending *at* ``node`` (the path includes ``node``'s own label last).

    A label path here is a tuple of label ids ``(l_1, ..., l_length)``
    such that some node path ``n_1 -> ... -> n_length = node`` matches it.
    ``limit`` bounds the number of *paths yielded* as a safety valve for
    graphs with exponential path sets.
    """
    if length <= 0:
        return
    yielded = 0
    seen: set[tuple[int, ...]] = set()
    # Depth-first over (node, suffix) pairs, building paths right-to-left.
    stack: list[tuple[int, tuple[int, ...]]] = [(node, (label_ids[node],))]
    parents = graph.parents
    while stack:
        current, suffix = stack.pop()
        if len(suffix) == length:
            if suffix not in seen:
                seen.add(suffix)
                yield suffix
                yielded += 1
                if limit is not None and yielded >= limit:
                    return
            continue
        for parent in parents[current]:
            stack.append((parent, (label_ids[parent],) + suffix))


def label_path_exists(
    graph: Adjacency,
    label_ids: Sequence[int],
    node: int,
    path: Sequence[int],
) -> bool:
    """True if the label-id path ``path`` matches ``node``.

    That is, some node path ``n_1 -> ... -> n_p = node`` satisfies
    ``label(n_i) == path[i]`` (Section 3's definition of a label path
    matching a node).  Works backwards from ``node`` with memoisation.
    """
    if not path:
        return False
    if label_ids[node] != path[-1]:
        return False
    memo: dict[tuple[int, int], bool] = {}
    parents = graph.parents

    def match_up(current: int, position: int) -> bool:
        # position: index into path of the label `current` has just matched.
        if position == 0:
            return True
        key = (current, position)
        cached = memo.get(key)
        if cached is not None:
            return cached
        want = path[position - 1]
        result = any(
            label_ids[parent] == want and match_up(parent, position - 1)
            for parent in parents[current]
        )
        memo[key] = result
        return result

    return match_up(node, len(path) - 1)
