"""repro — a reproduction of "D(k)-Index: An Adaptive Structural Summary
for Graph-Structured Data" (Chen, Lim, Ong — SIGMOD 2003).

The D(k)-index is a bisimulation-based structural summary for XML /
semi-structured data that assigns each index node its own local
similarity ``k``, mined from the query load and maintained under data
and workload changes.  This package implements the paper end to end:

- the data model and path-expression language (Section 3) —
  :mod:`repro.graph`, :mod:`repro.paths`;
- the baseline summaries it builds on (1-index, A(k)-index, strong
  DataGuide) — :mod:`repro.indexes`, :mod:`repro.partition`;
- the D(k)-index with construction (Algorithms 1-2), updates
  (Algorithms 3-5) and promote/demote tuning (Algorithm 6, Section
  5.4) — :mod:`repro.core`;
- the experimental apparatus (Section 6): XMark/NASA-style dataset
  generators, the 100-test-path workload protocol and the visited-node
  cost model — :mod:`repro.datasets`, :mod:`repro.workload`,
  :mod:`repro.bench`;
- the in-repo static-analysis framework that enforces the codebase's
  own invariants (extent ownership, cost-counter threading, seeded
  randomness, ...) — :mod:`repro.analysis` and ``dkindex lint``; see
  ``docs/static-analysis.md``.

Quickstart::

    from repro import DKIndex, make_query, parse_xml

    graph = parse_xml(open("movies.xml").read())
    dk = DKIndex.build(graph, {"title": 2})
    titles = dk.evaluate(make_query("//movie.title"))
"""

from repro import analysis
from repro.core.dindex import DKIndex
from repro.core.tuner import AdaptiveTuner, TunerConfig
from repro.engine import Database
from repro.exceptions import ReproError
from repro.graph.datagraph import DataGraph
from repro.graph.xmlio import parse_xml, parse_xml_file
from repro.indexes import (
    build_1index,
    build_ak_index,
    build_fb_index,
    build_labelsplit_index,
    build_strong_dataguide,
)
from repro.paths.query import LabelPathQuery, Query, RegexQuery, make_query
from repro.paths.twig import TwigQuery, parse_twig

__version__ = "1.0.0"

__all__ = [
    "AdaptiveTuner",
    "DKIndex",
    "DataGraph",
    "Database",
    "LabelPathQuery",
    "Query",
    "RegexQuery",
    "ReproError",
    "TunerConfig",
    "TwigQuery",
    "__version__",
    "analysis",
    "build_1index",
    "build_ak_index",
    "build_fb_index",
    "build_labelsplit_index",
    "build_strong_dataguide",
    "make_query",
    "parse_twig",
    "parse_xml",
    "parse_xml_file",
]
