"""Command-line interface: ``python -m repro`` / the ``dkindex`` script.

Commands:

- ``dkindex bench <experiment|all> [--scale S]`` — regenerate the
  paper's tables/figures as text (fig4, fig5, table1, fig6, fig7,
  promote, demote, subgraph, construct).
- ``dkindex bench refine [--scale small,medium,...] [--repeats N]
  [--jobs J] [--out FILE]`` — time the legacy vs worklist vs columnar
  refinement engines on every construction workload across the scale
  axis (with tracemalloc peak memory per cell) and write the
  ``BENCH_refinement.json`` perf trajectory (see docs/performance.md).
- ``dkindex bench update [--scale S] [--edges N] [--out FILE]`` — time
  the Table-1 edge-addition stream through the transactional pipeline
  at every audit tier; writes ``BENCH_updates.json`` (see
  docs/robustness.md).
- ``dkindex bench recovery [--scale S] [--edges N] [--out FILE]`` —
  time checkpoint recovery against an Algorithm-2 rebuild and write
  ``BENCH_recovery.json`` (see docs/robustness.md).
- ``dkindex bench outofcore [--scale S] [--budget-ratio R]
  [--page-bytes B] [--fault-rate F] [--out FILE]`` — page a dataset's
  CSR snapshot to disk, rebuild its bisimulation partition through the
  external engine with the LRU pool capped at a fraction of the
  in-memory footprint, verify partition identity and paged query
  answers, and write ``BENCH_outofcore.json`` (see
  docs/performance.md); ``--fault-rate`` repeats the build with
  transient read faults injected and records the retry overhead.
- ``dkindex audit FILE [--level fast|deep]`` — audit a stored
  D(k)-index; exits 1 on findings.
- ``dkindex chaos [--seed N] [--journal-dir DIR] [--no-durability]
  [--storage]`` — run the fault-injection suite proving
  rollback-or-repair for every update operation, the durability crash
  matrix over the checkpoint store, and the storage crash matrix over
  the paged out-of-core stack (``--storage`` runs only the last);
  exits 1 if any scenario breaks.
- ``dkindex scrub DIR [--no-repair]`` — digest-verify every live page
  of a paged store, quarantine corrupt page files and restore them
  from older generations; exits 1 when a rebuild is required.
- ``dkindex checkpoint DIR [--init FILE] [--retain N]`` — create a
  checkpoint store around a saved index, or roll an existing store
  forward to a fresh generation (recover, snapshot, rotate).
- ``dkindex recover DIR [--out FILE]`` — climb the recovery ladder of a
  checkpoint store, print the recovery report, optionally save the
  recovered index; exits 1 when unrecoverable.
- ``dkindex generate <xmark|nasa> --out FILE [--scale S] [--seed N]`` —
  write a dataset graph as JSON.
- ``dkindex stats FILE`` — print statistics of a stored graph.
- ``dkindex query FILE EXPR [--k K]`` — evaluate a path expression over
  a stored graph through a D(k)-index (uniform requirement ``K`` on the
  expression's labels).
- ``dkindex twig FILE PATTERN`` — evaluate a branching pattern through
  an F&B-index.
- ``dkindex dot FILE [--index] [--max-nodes N]`` — Graphviz DOT export.
- ``dkindex conformance <xmark|nasa> [--scale S] [--seed N]`` — generate
  a dataset and verify it against its own DTD.
- ``dkindex lint [paths...]`` — run the repo's AST invariant linter
  (see ``docs/static-analysis.md``); exits 1 on new findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import DATASET_BUILDERS, ExperimentConfig
from repro.core.dindex import DKIndex
from repro.core.requirements import requirements_from_queries
from repro.exceptions import ReproError
from repro.graph.serialize import load_graph, save_graph
from repro.graph.stats import graph_stats
from repro.paths.cost import CostCounter
from repro.paths.query import make_query


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.experiment == "refine":
        from repro.bench.refine import main_entry

        return main_entry(
            scale=args.scale,
            repeats=args.repeats,
            seed=args.seed,
            jobs=args.jobs,
            datasets=tuple(
                name for name in args.datasets.split(",") if name
            ),
            out=args.out or "BENCH_refinement.json",
        )
    if args.experiment == "update":
        from repro.bench.update import main_entry as update_entry

        return update_entry(
            scale=args.scale,
            repeats=args.repeats,
            seed=args.seed,
            edges=args.edges,
            datasets=tuple(
                name for name in args.datasets.split(",") if name
            ),
            out=args.out or "BENCH_updates.json",
        )
    if args.experiment == "recovery":
        from repro.bench.recovery import main_entry as recovery_entry

        return recovery_entry(
            scale=args.scale,
            repeats=args.repeats,
            seed=args.seed,
            edges=args.edges,
            datasets=tuple(
                name for name in args.datasets.split(",") if name
            ),
            out=args.out or "BENCH_recovery.json",
        )
    if args.experiment == "outofcore":
        from repro.bench.outofcore import main_entry as outofcore_entry

        return outofcore_entry(
            scale=args.scale,
            seed=args.seed,
            budget_ratio=args.budget_ratio,
            page_bytes=args.page_bytes,
            fault_rate=args.fault_rate,
            dataset=args.datasets.split(",")[0].strip() or "xmark",
            out=args.out or "BENCH_outofcore.json",
        )
    # Validate up front: a bad token must be a clean CLI error (exit 1),
    # never a ValueError traceback out of float().  Named scales work
    # for the paper experiments too.
    from repro.bench.outofcore import parse_scale

    _, scale_factor = parse_scale(args.scale)
    config = ExperimentConfig(scale=scale_factor)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, datasets = EXPERIMENTS[name]
        for dataset in datasets:
            result = runner(dataset, config)
            if args.csv:
                print(f"# {result.experiment_id} {dataset}")
                print(result.to_csv())
            else:
                print(result.render())
            print()
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    builder = DATASET_BUILDERS[args.dataset]
    document = builder(args.scale, args.seed)
    save_graph(document.graph, args.out)
    stats = graph_stats(document.graph)
    print(f"wrote {args.out}: {stats.num_nodes} nodes, {stats.num_edges} edges")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.file)
    print(graph_stats(graph).format())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    graph = load_graph(args.file)
    query = make_query(args.expression)
    if args.k is not None:
        requirements = {label: args.k for label in set(query.expr.labels())} \
            if hasattr(query, "expr") else {query.labels[-1]: args.k}
    else:
        requirements = requirements_from_queries([query])
    dk = DKIndex.build(graph, requirements)
    counter = CostCounter()
    result = dk.evaluate(query, counter)
    print(f"index size: {dk.size} nodes")
    print(f"cost: {counter.total} visited "
          f"({counter.index_nodes_visited} index, "
          f"{counter.data_nodes_visited} data)")
    print(f"{len(result)} matches: {sorted(result)[:50]}"
          + (" ..." if len(result) > 50 else ""))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    graph = load_graph(args.file)
    query = make_query(args.expression)
    if args.k is not None and hasattr(query, "labels"):
        requirements = {query.labels[-1]: args.k}
    elif args.k is not None:
        requirements = {label: args.k for label in set(query.expr.labels())}
    else:
        requirements = requirements_from_queries([query])
    dk = DKIndex.build(graph, requirements)
    print(dk.explain(query).format())
    return 0


def _cmd_twig(args: argparse.Namespace) -> int:
    from repro.indexes.fbindex import build_fb_index, evaluate_twig_on_fb
    from repro.paths.twig import parse_twig

    graph = load_graph(args.file)
    query = parse_twig(args.pattern)
    fb = build_fb_index(graph)
    counter = CostCounter()
    result = evaluate_twig_on_fb(fb, query, counter)
    print(f"F&B index: {fb.num_nodes} nodes (data: {graph.num_nodes})")
    print(f"cost: {counter.index_nodes_visited} index nodes visited")
    print(f"{len(result)} matches: {sorted(result)[:50]}"
          + (" ..." if len(result) > 50 else ""))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.graph.visualize import data_graph_to_dot, index_graph_to_dot

    graph = load_graph(args.file)
    if args.index:
        dk = DKIndex.build(graph, {})
        print(index_graph_to_dot(dk.index, max_nodes=args.max_nodes))
    else:
        print(data_graph_to_dot(graph, max_nodes=args.max_nodes))
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.datasets.dblp import DBLP_DTD
    from repro.datasets.dtd import parse_dtd
    from repro.datasets.nasa import NASA_DTD
    from repro.datasets.validate import check_conformance
    from repro.datasets.xmark import XMARK_DTD

    schema = {
        "xmark": (XMARK_DTD, "site"),
        "nasa": (NASA_DTD, "datasets"),
        "dblp": (DBLP_DTD, "dblp"),
    }
    dtd_text, root_element = schema[args.dataset]
    document = DATASET_BUILDERS[args.dataset](args.scale, args.seed)
    report = check_conformance(
        document.graph, parse_dtd(dtd_text), root_element
    )
    print(report.format())
    return 0 if report.ok else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.indexes.serialize import load_dk_index
    from repro.maintenance.audit import run_audit

    dk = load_dk_index(args.file)
    outcome = run_audit(dk.index, args.level)
    print(f"{args.file}: {dk.index.num_nodes} index nodes over "
          f"{dk.graph.num_nodes} data nodes")
    print(outcome.format())
    return 0 if outcome.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.maintenance.chaos import (
        run_chaos_suite,
        run_durability_suite,
        run_storage_suite,
    )

    ok = True
    first = True
    if not args.storage:
        report = run_chaos_suite(seed=args.seed, journal_dir=args.journal_dir)
        print(report.format())
        ok = report.ok
        first = False
        if not args.no_durability:
            work_dir = (
                f"{args.journal_dir}/durability"
                if args.journal_dir is not None
                else None
            )
            durability = run_durability_suite(
                seed=args.seed, work_dir=work_dir
            )
            print()
            print(durability.format())
            ok = ok and durability.ok
    if not first:
        print()
    storage_dir = (
        f"{args.journal_dir}/storage" if args.journal_dir is not None else None
    )
    storage = run_storage_suite(seed=args.seed, work_dir=storage_dir)
    print(storage.format())
    ok = ok and storage.ok
    return 0 if ok else 1


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.maintenance.repair import scrub_store

    report = scrub_store(args.directory, repair=not args.no_repair)
    print(report.format())
    return 0 if report.ok else 1


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.indexes.serialize import load_dk_index
    from repro.maintenance.store import CheckpointStore

    if args.init is not None:
        dk = load_dk_index(args.init)
        store = CheckpointStore.create(args.directory, dk, retain=args.retain)
        print(
            f"created checkpoint store {args.directory} at generation "
            f"{store.current_generation()} from {args.init}"
        )
        return 0
    store = CheckpointStore(args.directory, retain=args.retain)
    report = store.recover()
    if not report.recovered or report.dk is None:
        print(report.format())
        return 1
    info = store.checkpoint(report.dk)
    pruned = (
        f", pruned generation(s) {', '.join(map(str, info.pruned))}"
        if info.pruned
        else ""
    )
    print(
        f"checkpointed {args.directory} at generation {info.generation} "
        f"({report.replayed} journaled operation(s) folded in{pruned})"
    )
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.maintenance.store import CheckpointStore

    report = CheckpointStore(args.directory).recover()
    print(report.format())
    if not report.recovered or report.dk is None:
        return 1
    if args.out is not None:
        from repro.indexes.serialize import save_dk_index

        save_dk_index(report.dk, args.out)
        print(f"saved recovered index to {args.out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import LintEngine, get_rules, load_baseline, write_baseline

    if args.effects_out is not None and not args.deep:
        raise ReproError("--effects-out requires --deep")

    deep_tokens: set[str] = set()
    if args.deep:
        from repro.analysis.flow import deep_rule_tokens

        deep_tokens = deep_rule_tokens()

    rules = get_rules(
        select=args.select, ignore=args.ignore, extra_known=deep_tokens
    )
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name:24} {rule.description}")
        if args.deep:
            from repro.analysis.flow import get_deep_rules

            shallow = _shallow_rule_tokens()
            for deep_rule in get_deep_rules(
                select=args.select, ignore=args.ignore, extra_known=shallow
            ):
                print(
                    f"{deep_rule.rule_id}  {deep_rule.name:24} "
                    f"{deep_rule.description}"
                )
        return 0

    engine = LintEngine(rules)
    report = engine.run(args.paths)

    deep_stats_line: str | None = None
    if args.deep:
        from repro.analysis.flow import get_deep_rules, run_deep, write_effects

        deep_rules = get_deep_rules(
            select=args.select,
            ignore=args.ignore,
            extra_known=_shallow_rule_tokens(),
        )
        deep_report, analysis = run_deep(args.paths, deep_rules)
        report.findings = sorted(report.findings + deep_report.findings)
        report.suppressed += deep_report.suppressed
        deep_stats_line = deep_report.stats.format_line()
        if args.effects_out is not None:
            write_effects(args.effects_out, analysis)
            print(f"wrote effect summaries to {args.effects_out}")

    if args.write_baseline:
        baseline = write_baseline(args.baseline, report.findings)
        print(
            f"wrote {args.baseline}: {len(baseline)} accepted finding(s) "
            f"from {report.files_checked} file(s)"
        )
        return 0

    baseline = load_baseline(args.baseline)
    raw_findings = list(report.findings)
    stale = baseline.stale_entries(raw_findings)
    if args.prune_baseline and stale:
        baseline = baseline.pruned(raw_findings)
        Path(args.baseline).write_text(baseline.to_json(), encoding="utf-8")
        dropped = sum(excess for _, _, _, excess in stale)
        print(f"pruned {dropped} stale entr{'y' if dropped == 1 else 'ies'} from {args.baseline}")
        stale = []
    report.findings, report.baseline_matched = baseline.filter(raw_findings)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
        if stale:
            count = sum(excess for _, _, _, excess in stale)
            print(
                f"baseline: {count} stale entr{'y' if count == 1 else 'ies'} "
                "no longer matched by any finding "
                "(run with --prune-baseline to drop them)"
            )
        if deep_stats_line is not None:
            print(deep_stats_line)
    return 0 if report.ok else 1


def _shallow_rule_tokens() -> set[str]:
    from repro.analysis.rules import all_rules

    return {
        token
        for rule in all_rules()
        for token in (rule.rule_id, rule.name)
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dkindex",
        description="D(k)-Index (SIGMOD 2003) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="run a paper experiment")
    bench.add_argument("experiment",
                       choices=[*EXPERIMENTS, "refine", "update",
                                "recovery", "outofcore", "all"])
    bench.add_argument("--scale", default="1.0",
                       help="dataset scale factor or a named scale "
                       "(small/medium/large); refine takes a "
                       "comma-separated axis like small,medium")
    bench.add_argument("--csv", action="store_true",
                       help="emit CSV series instead of text tables")
    bench.add_argument("--repeats", type=int, default=3,
                       help="(refine/update/recovery) timed runs per cell; "
                       "medians recorded")
    bench.add_argument("--seed", type=int, default=0,
                       help="(refine/update/recovery) dataset generator seed")
    bench.add_argument("--jobs", type=int, default=0,
                       help="(refine) also time the parallel worklist "
                       "and columnar engines with this many worker "
                       "processes")
    bench.add_argument("--edges", type=int, default=100,
                       help="(update) edge additions per timed run; "
                       "(recovery) journaled operations to replay")
    bench.add_argument("--datasets", default="xmark,nasa",
                       help="(refine/update/recovery) comma-separated "
                       "generator names")
    bench.add_argument("--out", default=None,
                       help="(refine/update/recovery/outofcore) report file "
                       "to write (default BENCH_refinement.json / "
                       "BENCH_updates.json / BENCH_recovery.json / "
                       "BENCH_outofcore.json)")
    bench.add_argument("--budget-ratio", type=float, default=0.25,
                       help="(outofcore) LRU pool budget as a fraction of "
                       "the in-memory CSR footprint (default: 0.25)")
    bench.add_argument("--page-bytes", type=int, default=None,
                       help="(outofcore) page size in bytes (default: "
                       "DKINDEX_PAGE_BYTES or 16384)")
    bench.add_argument("--fault-rate", type=float, default=0.0,
                       help="(outofcore) also run the external build with "
                       "transient read faults injected at this rate and "
                       "record the retry/recovery overhead")
    bench.set_defaults(func=_cmd_bench)

    generate = sub.add_parser("generate", help="generate a dataset graph")
    generate.add_argument("dataset", choices=sorted(DATASET_BUILDERS))
    generate.add_argument("--out", required=True)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    stats = sub.add_parser("stats", help="statistics of a stored graph")
    stats.add_argument("file")
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser("query", help="evaluate a path expression")
    query.add_argument("file")
    query.add_argument("expression")
    query.add_argument("--k", type=int, default=None)
    query.set_defaults(func=_cmd_query)

    explain = sub.add_parser("explain", help="EXPLAIN a query's plan")
    explain.add_argument("file")
    explain.add_argument("expression")
    explain.add_argument("--k", type=int, default=None,
                         help="build the index at this similarity instead "
                         "of the query-derived one (shows validation)")
    explain.set_defaults(func=_cmd_explain)

    twig = sub.add_parser("twig", help="evaluate a branching pattern")
    twig.add_argument("file")
    twig.add_argument("pattern")
    twig.set_defaults(func=_cmd_twig)

    dot = sub.add_parser("dot", help="Graphviz DOT export")
    dot.add_argument("file")
    dot.add_argument("--index", action="store_true",
                     help="render the label-split index instead of the data")
    dot.add_argument("--max-nodes", type=int, default=500)
    dot.set_defaults(func=_cmd_dot)

    conformance = sub.add_parser(
        "conformance", help="generate a dataset and check it against its DTD"
    )
    conformance.add_argument("dataset", choices=sorted(DATASET_BUILDERS))
    conformance.add_argument("--scale", type=float, default=0.1)
    conformance.add_argument("--seed", type=int, default=0)
    conformance.set_defaults(func=_cmd_conformance)

    audit = sub.add_parser(
        "audit", help="audit a stored D(k)-index at a chosen tier"
    )
    audit.add_argument("file", help="a store written by Database.save / "
                       "save_dk_index")
    audit.add_argument("--level", choices=["fast", "deep"], default="deep",
                       help="audit tier (default: deep)")
    audit.set_defaults(func=_cmd_audit)

    chaos = sub.add_parser(
        "chaos", help="run the fault-injection chaos suite"
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="determinism anchor, printed in the report")
    chaos.add_argument("--journal-dir", default=None,
                       help="write per-scenario journals into this directory")
    chaos.add_argument("--no-durability", action="store_true",
                       help="skip the checkpoint-store durability crash "
                       "matrix and run only the update-operation suite")
    chaos.add_argument("--storage", action="store_true",
                       help="run only the paged-storage crash matrix "
                       "(fault-injected page I/O, retry, scrub & repair, "
                       "engine degradation)")
    chaos.set_defaults(func=_cmd_chaos)

    scrub = sub.add_parser(
        "scrub",
        help="digest-verify (and repair) every page of a paged store",
    )
    scrub.add_argument("directory", help="a PagedStore/PagedCSRGraph "
                       "directory")
    scrub.add_argument("--no-repair", action="store_true",
                       help="report corruption without restoring pages "
                       "from older generations")
    scrub.set_defaults(func=_cmd_scrub)

    checkpoint = sub.add_parser(
        "checkpoint",
        help="create a checkpoint store, or roll one to a new generation",
    )
    checkpoint.add_argument("directory", help="the checkpoint store directory")
    checkpoint.add_argument("--init", default=None, metavar="FILE",
                            help="initialise a new store from this saved "
                            "index (save_dk_index output) instead of rolling "
                            "an existing store forward")
    checkpoint.add_argument("--retain", type=int, default=2,
                            help="older generations to keep as recovery "
                            "rungs (default: 2)")
    checkpoint.set_defaults(func=_cmd_checkpoint)

    recover = sub.add_parser(
        "recover",
        help="recover a checkpoint store and print the recovery report",
    )
    recover.add_argument("directory", help="the checkpoint store directory")
    recover.add_argument("--out", default=None, metavar="FILE",
                         help="save the recovered index here (save_dk_index "
                         "format)")
    recover.set_defaults(func=_cmd_recover)

    lint = sub.add_parser(
        "lint", help="run the AST invariant linter over the codebase"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="findings as text lines or a JSON report")
    lint.add_argument("--baseline", default="lint-baseline.json",
                      help="baseline file of accepted findings")
    lint.add_argument("--write-baseline", action="store_true",
                      help="accept all current findings into the baseline")
    lint.add_argument("--select", action="append", default=None,
                      metavar="RULE", help="run only these rules (id or name)")
    lint.add_argument("--ignore", action="append", default=None,
                      metavar="RULE", help="skip these rules (id or name)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the (selected) rule catalogue and exit")
    lint.add_argument("--deep", action="store_true",
                      help="also run the interprocedural pass "
                      "(call graph + effect summaries, DK109–DK112)")
    lint.add_argument("--effects-out", default=None, metavar="FILE",
                      help="write the effect-summary artifact "
                      "(analysis-effects.json) here; requires --deep")
    lint.add_argument("--prune-baseline", action="store_true",
                      help="rewrite the baseline file without entries "
                      "no current finding justifies")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
