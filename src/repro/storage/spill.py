"""External merge-sort of positioned payloads for out-of-core rounds.

The external refinement engine (:mod:`repro.partition.external`) hashes
nodes in *node order* (so page reads stay sequential) but must hand the
resulting signature keys back in *batch order* (so the inherited
columnar round logic sees exactly the sequence it would have produced
in memory).  :class:`SpillRuns` is the reorder buffer that makes the
transposition safe at any scale: ``(position, payload)`` records
accumulate in memory until a byte budget is hit, then the sorted batch
is appended to a run file on disk; :meth:`SpillRuns.merged` streams the
union of every run and the in-memory tail back in ascending position
order via a k-way merge.

Run files are append-only framed records (``>QII`` header: position,
payload length, CRC-32 over the packed position/length plus the
payload), never rewritten — crash debris is a temp directory the OS
reclaims, so the atomic-writer discipline of
:mod:`repro.maintenance.store` is deliberately not involved.  The CRC
matters even for scratch data: a silent bit-flip in a run would come
back as a *different signature key* and change the partition without
any error, so every frame is verified as it streams back.
"""

from __future__ import annotations

import heapq
import os
import struct
import tempfile
import zlib
from collections.abc import Iterator
from pathlib import Path
from types import TracebackType

from repro.exceptions import InjectedFaultError, PagedStoreError
from repro.maintenance.faults import fault_point
from repro.storage.paged import PoolStats, _env_int
from repro.storage.retry import RetryPolicy, io_retry, resolve_retry_policy

#: Packed (position, length) prefix the frame CRC is seeded with.
_HEAD = struct.Struct(">QI")

#: Frame header: 64-bit record position, 32-bit payload byte length,
#: 32-bit CRC over the packed position/length and the payload.
_FRAME = struct.Struct(">QII")

#: Default in-memory working-set budget before a run is spilled.
DEFAULT_SPILL_BUDGET = 4 * 1024 * 1024

#: Environment override for the spill budget, sibling knob to
#: ``DKINDEX_POOL_BUDGET`` (the chaos suite shrinks it to force runs).
SPILL_BUDGET_ENV_VAR = "DKINDEX_SPILL_BUDGET"


def resolve_spill_budget(budget_bytes: int | None = None) -> int:
    """Pick the spill budget: argument, ``DKINDEX_SPILL_BUDGET``, default.

    Raises:
        PagedStoreError: for a negative budget.
    """
    if budget_bytes is None:
        budget_bytes = _env_int(SPILL_BUDGET_ENV_VAR, "spill budget")
    if budget_bytes is None:
        budget_bytes = DEFAULT_SPILL_BUDGET
    if budget_bytes < 0:
        raise PagedStoreError(f"spill budget must be >= 0: {budget_bytes}")
    return budget_bytes


def _frame_crc(position: int, length: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(_HEAD.pack(position, length)))


def _read_run(path: Path) -> Iterator[tuple[int, bytes]]:
    """Stream the framed ``(position, payload)`` records of one run file."""
    with open(path, "rb") as handle:
        while True:
            header = handle.read(_FRAME.size)
            if not header:
                return
            if len(header) != _FRAME.size:
                raise PagedStoreError(f"truncated spill frame in {path.name}")
            position, length, crc = _FRAME.unpack(header)
            payload = handle.read(length)
            if len(payload) != length:
                raise PagedStoreError(f"truncated spill payload in {path.name}")
            if _frame_crc(position, length, payload) != crc:
                raise PagedStoreError(
                    f"spill frame CRC mismatch in {path.name} "
                    f"(position {position})"
                )
            yield position, payload


class SpillRuns:
    """Accumulate ``(position, payload)`` records; spill and merge-sort.

    Positions must be unique non-negative integers (batch indices are).
    The temp directory is created lazily on first spill, so a working
    set under budget never touches the filesystem.

    Usage::

        with SpillRuns(budget_bytes=1 << 20) as runs:
            for position, key in produced_out_of_order:
                runs.add(position, key)
            for position, key in runs.merged():
                ...  # ascending position order
    """

    def __init__(
        self,
        budget_bytes: int | None = None,
        directory: str | Path | None = None,
        stats: PoolStats | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.budget_bytes = resolve_spill_budget(budget_bytes)
        self._directory = Path(directory) if directory is not None else None
        self._stats = stats
        self._retry = retry if retry is not None else resolve_retry_policy()
        self._tempdir: tempfile.TemporaryDirectory[str] | None = None
        self._pending: list[tuple[int, bytes]] = []
        self._pending_bytes = 0
        self._run_paths: list[Path] = []
        self._count = 0
        self._spilled_bytes = 0
        self._closed = False

    def __len__(self) -> int:
        return self._count

    @property
    def runs_spilled(self) -> int:
        """Number of sorted runs written to disk so far."""
        return len(self._run_paths)

    @property
    def spilled_bytes(self) -> int:
        """Total payload bytes moved out of memory into run files."""
        return self._spilled_bytes

    def add(self, position: int, payload: bytes) -> None:
        """Record ``payload`` at ``position``; spill if over budget."""
        if self._closed:
            raise PagedStoreError("SpillRuns is closed")
        if position < 0:
            raise PagedStoreError(f"spill position must be >= 0: {position}")
        self._pending.append((position, payload))
        self._pending_bytes += len(payload) + _FRAME.size
        self._count += 1
        if self._pending_bytes > self.budget_bytes:
            self._spill()

    def _run_directory(self) -> Path:
        if self._directory is not None:
            return self._directory
        if self._tempdir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="dkindex-spill-")
        return Path(self._tempdir.name)

    def _spill(self) -> None:
        """Sort the pending batch and append it to a fresh run file."""
        if not self._pending:
            return
        self._pending.sort(key=lambda record: record[0])
        path = self._run_directory() / f"run-{len(self._run_paths):07d}.bin"

        def write_run() -> None:
            # Start clean on every attempt: a retry after a torn or
            # failed write must not leave duplicate frames behind.
            path.unlink(missing_ok=True)
            # Append-only framing: runs are write-once scratch, re-read
            # only by the merge below, discarded with the temp dir.
            with open(path, "ab") as handle:
                for position, payload in self._pending:
                    handle.write(
                        _FRAME.pack(
                            position,
                            len(payload),
                            _frame_crc(position, len(payload), payload),
                        )
                    )
                    handle.write(payload)
            try:
                fault_point("storage.spill_torn_run", path=path)
            except InjectedFaultError:
                os.truncate(path, path.stat().st_size // 2)
                raise

        io_retry(
            write_run,
            what=f"append spill run {path.name}",
            policy=self._retry,
            stats=self._stats,
        )
        self._run_paths.append(path)
        self._spilled_bytes += self._pending_bytes
        self._pending = []
        self._pending_bytes = 0

    def merged(self) -> Iterator[tuple[int, bytes]]:
        """Stream every record in ascending position order.

        The in-memory tail is sorted once and merged against the runs
        with :func:`heapq.merge`, so peak memory stays one record per
        open run plus the tail.
        """
        if self._closed:
            raise PagedStoreError("SpillRuns is closed")
        self._pending.sort(key=lambda record: record[0])
        streams: list[Iterator[tuple[int, bytes]]] = [
            _read_run(path) for path in self._run_paths
        ]
        streams.append(iter(self._pending))
        return heapq.merge(*streams, key=lambda record: record[0])

    def close(self) -> None:
        """Drop the in-memory tail and delete any run files."""
        self._closed = True
        self._pending = []
        self._pending_bytes = 0
        self._run_paths = []
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "SpillRuns":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
