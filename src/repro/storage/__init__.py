"""Out-of-core storage: paged buffers, an LRU pool, external sorting.

The in-memory columnar path (:mod:`repro.graph.columnar`) tops out at
graphs whose flat CSR buffers fit in RAM.  This subpackage removes that
ceiling with the block-structured discipline of I/O-efficient
bisimulation construction (Luo et al., Hellings et al. — see PAPERS.md):

- :class:`~repro.storage.paged.PagedStore` — named ``int64`` buffers
  split into fixed-size pages on disk, each page written through the
  atomic writer of :mod:`repro.maintenance.store` and pinned by a
  sha256 digest in a sealed, generation-numbered manifest.  Mutations
  are copy-on-write: :meth:`~repro.storage.paged.PagedStore.checkpoint`
  publishes a new *manifest* referencing fresh pages for dirty blocks
  and the existing files for everything else — never a full rewrite.
- :class:`~repro.storage.paged.PagedBufferPool` — the LRU buffer pool
  in front of the page files: a byte budget, pin/unpin, dirty-page
  write-back on eviction, and hit/miss/eviction counters.
- :class:`~repro.storage.paged.PagedCSRGraph` — a paged snapshot
  satisfying the :class:`~repro.graph.columnar.CSRBuffers` read surface
  the columnar refinement engine consumes, so ``engine="external"``
  (:mod:`repro.partition.external`) can refine graphs larger than the
  pool budget.
- :class:`~repro.storage.spill.SpillRuns` — sorted run spilling with a
  streaming merge, used by the external engine for per-round
  ``(node, signature)`` working sets that exceed the budget.
"""

from repro.storage.paged import (
    DEFAULT_PAGE_BYTES,
    DEFAULT_POOL_BUDGET,
    PAGE_BYTES_ENV_VAR,
    POOL_BUDGET_ENV_VAR,
    PagedBuffer,
    PagedBufferPool,
    PagedCSRGraph,
    PagedStore,
    PoolStats,
    ScrubPage,
    ScrubReport,
    resolve_page_bytes,
    resolve_pool_budget,
)
from repro.storage.retry import (
    DEFAULT_IO_BACKOFF_MS,
    DEFAULT_IO_RETRIES,
    IO_BACKOFF_MS_ENV_VAR,
    IO_RETRIES_ENV_VAR,
    TRANSIENT_ERRNOS,
    RetryPolicy,
    io_retry,
    resolve_retry_policy,
)
from repro.storage.spill import (
    SPILL_BUDGET_ENV_VAR,
    SpillRuns,
    resolve_spill_budget,
)

__all__ = [
    "DEFAULT_IO_BACKOFF_MS",
    "DEFAULT_IO_RETRIES",
    "DEFAULT_PAGE_BYTES",
    "DEFAULT_POOL_BUDGET",
    "IO_BACKOFF_MS_ENV_VAR",
    "IO_RETRIES_ENV_VAR",
    "PAGE_BYTES_ENV_VAR",
    "POOL_BUDGET_ENV_VAR",
    "SPILL_BUDGET_ENV_VAR",
    "TRANSIENT_ERRNOS",
    "PagedBuffer",
    "PagedBufferPool",
    "PagedCSRGraph",
    "PagedStore",
    "PoolStats",
    "RetryPolicy",
    "ScrubPage",
    "ScrubReport",
    "SpillRuns",
    "io_retry",
    "resolve_page_bytes",
    "resolve_pool_budget",
    "resolve_retry_policy",
    "resolve_spill_budget",
]
