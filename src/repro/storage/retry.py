"""Bounded retry with exponential backoff for transient storage I/O.

Out-of-core refinement turns every page access into real I/O, and real
I/O fails in two very different ways.  *Transient* errors — an ``EIO``
from a flaky block device, an ``EAGAIN``/``EINTR`` under load — succeed
on a later attempt, so dying on the first one throws away a build that
would have finished.  *Persistent* errors — ``ENOSPC``, a missing file
— never heal by waiting, so retrying them only delays the loud failure
the caller needs.  :func:`io_retry` encodes exactly that split: it
re-runs the operation through a bounded number of attempts with
exponential backoff (and seeded jitter, so concurrent builders do not
stampede in lockstep — and so every delay sequence reproduces from its
seed, per the repo's no-global-randomness rule), counts every retry and
give-up into the caller's :class:`~repro.storage.paged.PoolStats`, and
converts whatever finally escapes into a typed
:class:`~repro.exceptions.PagedStoreError`.

Two environment knobs, sibling to ``DKINDEX_PAGE_BYTES``:

============================ ============================== =========
knob                         env                            default
============================ ============================== =========
attempts after the first     ``DKINDEX_IO_RETRIES``         4
base backoff in milliseconds ``DKINDEX_IO_BACKOFF_MS``      1
============================ ============================== =========

The backoff before retry *n* (1-based) is
``backoff_ms * 2**(n-1) * uniform(1, 2)`` milliseconds; a base of 0
disables sleeping entirely (used by the chaos suite, where the fault
is injected and waiting for it to clear is pointless).
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

from repro.exceptions import PagedStoreError

if TYPE_CHECKING:
    from repro.storage.paged import PoolStats

#: Environment overrides for the retry policy.
IO_RETRIES_ENV_VAR = "DKINDEX_IO_RETRIES"
IO_BACKOFF_MS_ENV_VAR = "DKINDEX_IO_BACKOFF_MS"

#: Default bounded attempts after the first failure.
DEFAULT_IO_RETRIES = 4

#: Default base backoff in milliseconds (doubled per attempt).
DEFAULT_IO_BACKOFF_MS = 1.0

#: Errno values worth retrying: the error class that heals by waiting.
#: ``ENOSPC`` is deliberately absent — a full disk does not drain while
#: a page write sleeps, and pretending otherwise hides the condition
#: the degradation policy exists to handle.
TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.EAGAIN, errno.EINTR, errno.EBUSY, errno.ETIMEDOUT}
)

_T = TypeVar("_T")


def _env_number(env_var: str, what: str) -> float | None:
    """Parse an optional non-negative numeric environment override."""
    raw = os.environ.get(env_var)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        raise PagedStoreError(
            f"invalid {what} in {env_var}: {raw!r} (expected a number)"
        ) from None
    if value < 0:
        raise PagedStoreError(f"{what} must be >= 0: {raw!r} ({env_var})")
    return value


@dataclass(frozen=True)
class RetryPolicy:
    """One resolved transient-I/O retry policy.

    Attributes:
        retries: attempts *after* the first (0 disables retrying).
        backoff_ms: base backoff; retry ``n`` sleeps
            ``backoff_ms * 2**(n-1)`` ms, jittered into ``[1x, 2x)``.
        seed: determinism anchor for the jitter.
    """

    retries: int = DEFAULT_IO_RETRIES
    backoff_ms: float = DEFAULT_IO_BACKOFF_MS
    seed: int = 0


def resolve_retry_policy(
    retries: int | None = None,
    backoff_ms: float | None = None,
    seed: int = 0,
) -> RetryPolicy:
    """Pick the policy: arguments, environment knobs, defaults.

    Raises:
        PagedStoreError: negative or non-numeric knob values.
    """
    if retries is None:
        env = _env_number(IO_RETRIES_ENV_VAR, "I/O retry count")
        retries = DEFAULT_IO_RETRIES if env is None else int(env)
    if retries < 0:
        raise PagedStoreError(f"I/O retry count must be >= 0: {retries}")
    if backoff_ms is None:
        env = _env_number(IO_BACKOFF_MS_ENV_VAR, "I/O backoff")
        backoff_ms = DEFAULT_IO_BACKOFF_MS if env is None else env
    if backoff_ms < 0:
        raise PagedStoreError(f"I/O backoff must be >= 0: {backoff_ms}")
    return RetryPolicy(retries=retries, backoff_ms=backoff_ms, seed=seed)


def io_retry(
    operation: Callable[[], _T],
    *,
    what: str,
    policy: RetryPolicy,
    stats: "PoolStats | None" = None,
) -> _T:
    """Run ``operation``, retrying transient :class:`OSError` failures.

    Non-``OSError`` exceptions pass straight through (an injected crash
    must look like a crash).  An ``OSError`` with a transient errno is
    retried up to ``policy.retries`` times with exponential, seeded-
    jitter backoff; exhausting the budget counts one give-up and raises
    a :class:`PagedStoreError` naming the attempts.  A non-transient
    ``OSError`` (``ENOSPC``, ``ENOENT``, ...) is converted to a typed
    :class:`PagedStoreError` immediately — waiting cannot fix it.

    Every successful-after-failure attempt increments ``stats.retries``
    when ``stats`` is given; the counters are how the benchmark's
    fault-rate mode prices recovery overhead.
    """
    jitter: random.Random | None = None
    attempt = 0
    while True:
        try:
            return operation()
        except OSError as error:
            if error.errno not in TRANSIENT_ERRNOS:
                raise PagedStoreError(f"{what}: {error}") from error
            if attempt >= policy.retries:
                if stats is not None:
                    stats.give_ups += 1
                raise PagedStoreError(
                    f"{what}: transient I/O error persisted through "
                    f"{attempt + 1} attempt(s): {error}"
                ) from error
            if jitter is None:
                jitter = random.Random(policy.seed)
            delay_ms = policy.backoff_ms * (2**attempt) * (
                1.0 + jitter.random()
            )
            if delay_ms > 0:
                time.sleep(delay_ms / 1000.0)
            attempt += 1
            if stats is not None:
                stats.retries += 1
