"""Block-structured on-disk buffers behind an LRU pool.

A *paged store* keeps named ``int64`` buffers (the flat CSR columns of
:mod:`repro.graph.columnar`) as fixed-size page files under a
directory, described by a sealed, generation-numbered manifest:

.. code-block:: text

    store/
      CURRENT                 # hint: newest readable generation
      manifest-0000001.json   # sealed page table (format v2 of
      manifest-0000002.json   #   ``repro-datagraph-frozen``)
      pages/
        page-0000000.bin      # raw int64 entries, creation byteorder
        page-0000001.bin

Every page file is written once through
:func:`repro.maintenance.store.atomic_write_bytes` and pinned by a
sha256 digest in the manifest's page table; a flipped bit or truncated
page fails loudly on load.  Mutation is copy-on-write: a dirty page is
written back to a *fresh* physical file (on eviction from the pool or
at :meth:`PagedStore.checkpoint`), and the checkpoint publishes a new
manifest referencing the fresh pages plus the untouched old ones — the
generation step never rewrites unchanged data, mirroring the
manifest-of-immutable-artifacts discipline of
:class:`repro.maintenance.store.CheckpointStore`.  Consecutive
retained generations share page files, so
``PagedStore.open(..., generation=g)`` gives a point-in-time view.

Reads go through :class:`PagedBufferPool` — a byte-budgeted LRU with
pin/unpin, dirty-page write-back and hit/miss/eviction counters — so
the resident working set stays bounded no matter how large the graph
is.  :class:`PagedCSRGraph` glues a store to the
:class:`~repro.graph.columnar.CSRBuffers` surface consumed by the
refinement engines, which is what ``engine="external"`` builds on.
"""

from __future__ import annotations

import hashlib
import os
import sys
from array import array
from collections import OrderedDict
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, replace
from pathlib import Path
from types import TracebackType
from typing import Any, Callable

from repro.exceptions import (
    InjectedFaultError,
    PagedStoreError,
    SerializationError,
)
from repro.graph.columnar import BUFFER_TYPECODE, CSRGraph
from repro.graph.serialize import (
    FROZEN_FORMAT_NAME,
    FROZEN_PAGED_VERSION,
    buffer_from_bytes,
    buffer_to_bytes,
)
from repro.maintenance.faults import fault_point
from repro.maintenance.store import (
    CURRENT_NAME,
    TMP_SUFFIX,
    atomic_write_bytes,
    atomic_write_document,
    fsync_directory,
    read_document,
)
from repro.storage.retry import RetryPolicy, io_retry, resolve_retry_policy

#: Bytes per buffer entry (``array('q')``).
ENTRY_BYTES = 8

#: Default page size; small enough that a few pages fit in a test-sized
#: budget, large enough that sequential sweeps amortise the open+hash.
DEFAULT_PAGE_BYTES = 16384

#: Default LRU pool budget when neither argument nor environment says.
DEFAULT_POOL_BUDGET = 8 * 1024 * 1024

#: Environment overrides, sibling knobs to ``DKINDEX_ENGINE``.
PAGE_BYTES_ENV_VAR = "DKINDEX_PAGE_BYTES"
POOL_BUDGET_ENV_VAR = "DKINDEX_POOL_BUDGET"

#: How many generations *before* the newest a checkpoint retains.
DEFAULT_RETAIN = 2

PAGES_DIRNAME = "pages"
QUARANTINE_DIRNAME = "quarantine"
MANIFEST_PREFIX = "manifest-"
MANIFEST_SUFFIX = ".json"
PAGE_PREFIX = "page-"
PAGE_SUFFIX = ".bin"

CURRENT_FORMAT = "repro-paged-current"
CURRENT_VERSION = 1

#: Buffers every paged CSR snapshot must carry.
CORE_CSR_BUFFERS = (
    "label_ids",
    "child_offsets",
    "child_targets",
    "parent_offsets",
    "parent_targets",
)

#: Optional index-snapshot buffers (flat extents and per-node k).
EXTENT_CSR_BUFFERS = ("extent_offsets", "extent_targets", "k")


def _env_int(env_var: str, what: str) -> int | None:
    """Parse an optional integer environment override."""
    raw = os.environ.get(env_var)
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw, 10)
    except ValueError:
        raise PagedStoreError(
            f"invalid {what} in {env_var}: {raw!r} (expected an integer)"
        ) from None


def resolve_page_bytes(page_bytes: int | None = None) -> int:
    """Pick the page size: argument, ``DKINDEX_PAGE_BYTES``, default.

    Raises:
        PagedStoreError: unless the result is a positive multiple of
            the 8-byte entry size.
    """
    if page_bytes is None:
        page_bytes = _env_int(PAGE_BYTES_ENV_VAR, "page size")
    if page_bytes is None:
        page_bytes = DEFAULT_PAGE_BYTES
    if page_bytes < ENTRY_BYTES or page_bytes % ENTRY_BYTES:
        raise PagedStoreError(
            f"page size must be a positive multiple of {ENTRY_BYTES} "
            f"bytes: {page_bytes}"
        )
    return page_bytes


def resolve_pool_budget(budget_bytes: int | None = None) -> int:
    """Pick the pool budget: argument, ``DKINDEX_POOL_BUDGET``, default.

    A budget of 0 is legal — the pool then holds only the page being
    accessed and evicts it on the next access, the worst honest case
    for the eviction counters.

    Raises:
        PagedStoreError: for a negative budget.
    """
    if budget_bytes is None:
        budget_bytes = _env_int(POOL_BUDGET_ENV_VAR, "pool budget")
    if budget_bytes is None:
        budget_bytes = DEFAULT_POOL_BUDGET
    if budget_bytes < 0:
        raise PagedStoreError(f"pool budget must be >= 0: {budget_bytes}")
    return budget_bytes


# ----------------------------------------------------------------------
# LRU buffer pool
# ----------------------------------------------------------------------


@dataclass
class PoolStats:
    """Counters of one :class:`PagedBufferPool` (cumulative).

    ``retries``/``give_ups`` count the transient-I/O retry policy
    (:mod:`repro.storage.retry`): a retry is one re-attempt after a
    transient ``OSError``, a give-up is one operation that exhausted
    its whole attempt budget.  A fault-free run holds both at zero.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    write_backs: int = 0
    retries: int = 0
    give_ups: int = 0

    @property
    def accesses(self) -> int:
        """Total page lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the pool (1.0 when idle)."""
        total = self.accesses
        return self.hits / total if total else 1.0

    def snapshot(self) -> "PoolStats":
        """An independent copy of the current counters."""
        return replace(self)

    def delta(self, since: "PoolStats") -> "PoolStats":
        """Counter movement between ``since`` and now (for per-phase stats)."""
        return PoolStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            evictions=self.evictions - since.evictions,
            write_backs=self.write_backs - since.write_backs,
            retries=self.retries - since.retries,
            give_ups=self.give_ups - since.give_ups,
        )

    def as_dict(self) -> dict[str, float]:
        """JSON-ready counters plus the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "write_backs": self.write_backs,
            "retries": self.retries,
            "give_ups": self.give_ups,
            "hit_rate": round(self.hit_rate, 6),
        }


#: Logical page address: (buffer name, page index within that buffer).
PageKey = tuple[str, int]


class PagedBufferPool:
    """A byte-budgeted LRU cache of ``array('q')`` pages.

    The pool is storage-agnostic: a ``loader`` callback materialises a
    missing page and an optional ``writer`` callback persists a dirty
    page when it is evicted or flushed (a pool without a writer is
    read-only — evicting a dirty page raises).  Pinned pages are never
    evicted; the pool will exceed its budget rather than drop a pin,
    because a pin means a caller holds a live reference it is about to
    mutate.
    """

    def __init__(
        self,
        budget_bytes: int,
        loader: Callable[[PageKey], "array[int]"],
        writer: Callable[[PageKey, "array[int]"], None] | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if budget_bytes < 0:
            raise PagedStoreError(f"pool budget must be >= 0: {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._loader = loader
        self._writer = writer
        self._retry = retry
        self._pages: "OrderedDict[PageKey, array[int]]" = OrderedDict()
        self._dirty: set[PageKey] = set()
        self._pins: dict[PageKey, int] = {}
        self._cached_bytes = 0
        self.stats = PoolStats()

    # -- introspection -------------------------------------------------

    @property
    def cached_bytes(self) -> int:
        """Bytes currently resident."""
        return self._cached_bytes

    @property
    def cached_pages(self) -> int:
        """Pages currently resident."""
        return len(self._pages)

    @property
    def dirty_pages(self) -> int:
        """Resident pages with unwritten mutations."""
        return len(self._dirty)

    def is_resident(self, key: PageKey) -> bool:
        """Whether ``key`` is cached (does not touch LRU order)."""
        return key in self._pages

    # -- access --------------------------------------------------------

    def get(self, key: PageKey) -> "array[int]":
        """The page at ``key``, loading (and possibly evicting) on miss.

        The returned array stays valid after eviction (the caller holds
        a reference), but mutations to an evicted copy are lost — pin
        the page or go through :meth:`mark_dirty` before releasing it.
        """
        page = self._pages.get(key)
        if page is not None:
            self.stats.hits += 1
            self._pages.move_to_end(key)
            return page
        self.stats.misses += 1
        page = self._loader(key)
        self._pages[key] = page
        self._cached_bytes += len(page) * ENTRY_BYTES
        self._shrink()
        return page

    def pin(self, key: PageKey) -> "array[int]":
        """Fetch ``key`` and protect it from eviction until unpinned."""
        page = self.get(key)
        self._pins[key] = self._pins.get(key, 0) + 1
        return page

    def unpin(self, key: PageKey) -> None:
        """Release one pin on ``key`` (page becomes evictable at zero)."""
        count = self._pins.get(key, 0)
        if count <= 0:
            raise PagedStoreError(f"page {key!r} is not pinned")
        if count == 1:
            del self._pins[key]
            self._shrink()
        else:
            self._pins[key] = count - 1

    def mark_dirty(self, key: PageKey) -> None:
        """Flag a *resident* page as mutated (write back before drop)."""
        if key not in self._pages:
            raise PagedStoreError(
                f"cannot mark non-resident page {key!r} dirty"
            )
        self._dirty.add(key)

    # -- eviction and flushing -----------------------------------------

    def _shrink(self) -> None:
        """Evict LRU unpinned pages until the budget is respected."""
        while self._cached_bytes > self.budget_bytes:
            victim = next(
                (key for key in self._pages if not self._pins.get(key)),
                None,
            )
            if victim is None:
                return  # everything pinned: run over budget, by design
            self._evict(victim)

    def _evict(self, key: PageKey) -> None:
        if key in self._dirty:
            self._write_back(key, self._pages[key])
        page = self._pages.pop(key)
        self._cached_bytes -= len(page) * ENTRY_BYTES
        self.stats.evictions += 1

    def _write_back(self, key: PageKey, page: "array[int]") -> None:
        writer = self._writer
        if writer is None:
            raise PagedStoreError(
                f"read-only pool cannot write back dirty page {key!r}"
            )

        def persist() -> None:
            fault_point("storage.pool_evict_writeback_fail")
            writer(key, page)

        if self._retry is not None:
            io_retry(
                persist,
                what=f"write back dirty page {key!r}",
                policy=self._retry,
                stats=self.stats,
            )
        else:
            persist()
        self._dirty.discard(key)
        self.stats.write_backs += 1

    def flush(self) -> int:
        """Write back every dirty page (keeping them resident).

        Returns the number of pages written.
        """
        written = 0
        for key in sorted(self._dirty):
            self._write_back(key, self._pages[key])
            written += 1
        return written

    def drop(self, discard_dirty: bool = False) -> None:
        """Empty the pool without touching storage.

        Raises:
            PagedStoreError: if dirty pages would be lost and
                ``discard_dirty`` is not set.
        """
        if self._dirty and not discard_dirty:
            raise PagedStoreError(
                f"{len(self._dirty)} dirty page(s) would be discarded; "
                "flush() first or pass discard_dirty=True"
            )
        self._pages.clear()
        self._dirty.clear()
        self._pins.clear()
        self._cached_bytes = 0


# ----------------------------------------------------------------------
# The paged store
# ----------------------------------------------------------------------


def _page_path(pages_dir: Path, physical: int) -> Path:
    return pages_dir / f"{PAGE_PREFIX}{physical:07d}{PAGE_SUFFIX}"


def _manifest_path(directory: Path, generation: int) -> Path:
    return directory / f"{MANIFEST_PREFIX}{generation:07d}{MANIFEST_SUFFIX}"


def _emit_page(
    pages_dir: Path,
    physical: int,
    page: "array[int]",
    byteorder: str,
    *,
    retry: RetryPolicy | None = None,
    stats: PoolStats | None = None,
) -> str:
    """Atomically write one page file; return its sha256 hex digest.

    Transient write failures are retried under ``retry``; the
    ``storage.page_torn_write`` raise mode leaves the destination
    half-written (a torn page, exactly what a crash mid-write produces)
    before re-raising, so the digest check on the next load must catch
    it.
    """
    raw = buffer_to_bytes(page, byteorder)
    digest = hashlib.sha256(raw).hexdigest()
    path = _page_path(pages_dir, physical)

    def persist() -> None:
        fault_point("storage.page_enospc", path=path)
        try:
            fault_point("storage.page_torn_write", path=path)
        except InjectedFaultError:
            path.write_bytes(raw[: len(raw) // 2])
            raise
        atomic_write_bytes(path, raw)

    if retry is not None:
        io_retry(
            persist,
            what=f"write page file {path.name}",
            policy=retry,
            stats=stats,
        )
    else:
        persist()
    fault_point("storage.page_bit_flip", path=path)
    return digest


def _scan_generations(directory: Path) -> list[int]:
    """Manifest generations present on disk, newest first."""
    generations = []
    for entry in directory.iterdir():
        name = entry.name
        if name.startswith(MANIFEST_PREFIX) and name.endswith(MANIFEST_SUFFIX):
            stem = name[len(MANIFEST_PREFIX) : -len(MANIFEST_SUFFIX)]
            if stem.isdigit():
                generations.append(int(stem))
    generations.sort(reverse=True)
    return generations


def _scan_page_ids(pages_dir: Path) -> list[int]:
    """Physical page ids present on disk (orphans included)."""
    ids = []
    if not pages_dir.is_dir():
        return ids
    for entry in pages_dir.iterdir():
        name = entry.name
        if name.startswith(PAGE_PREFIX) and name.endswith(PAGE_SUFFIX):
            stem = name[len(PAGE_PREFIX) : -len(PAGE_SUFFIX)]
            if stem.isdigit():
                ids.append(int(stem))
    return ids


def _sweep_temp_files(directory: Path) -> None:
    """Remove leftover atomic-writer temp files from a crashed writer."""
    for entry in directory.iterdir():
        if entry.name.endswith(TMP_SUFFIX):
            entry.unlink(missing_ok=True)


def _validate_manifest(
    doc: dict[str, Any], source: str
) -> tuple[str, int, int, int, dict[str, Any], dict[str, dict[str, Any]]]:
    """Structurally validate a v2 manifest document.

    Returns ``(byteorder, page_bytes, generation, next_page, meta,
    page_table)`` with the page table normalised to
    ``{name: {"entries": int, "pages": [[physical, digest], ...]}}``.

    Raises:
        PagedStoreError: on any structural problem.
    """
    if doc.get("format") != FROZEN_FORMAT_NAME:
        raise PagedStoreError(
            f"{source}: unexpected format marker {doc.get('format')!r}"
        )
    if doc.get("version") != FROZEN_PAGED_VERSION:
        raise PagedStoreError(
            f"{source}: unsupported manifest version {doc.get('version')!r}"
        )
    byteorder = doc.get("byteorder")
    if byteorder not in ("little", "big"):
        raise PagedStoreError(f"{source}: invalid byteorder {byteorder!r}")
    page_bytes = doc.get("page_bytes")
    if (
        not isinstance(page_bytes, int)
        or page_bytes < ENTRY_BYTES
        or page_bytes % ENTRY_BYTES
    ):
        raise PagedStoreError(f"{source}: invalid page_bytes {page_bytes!r}")
    generation = doc.get("generation")
    if not isinstance(generation, int) or generation < 1:
        raise PagedStoreError(f"{source}: invalid generation {generation!r}")
    next_page = doc.get("next_page")
    if not isinstance(next_page, int) or next_page < 0:
        raise PagedStoreError(f"{source}: invalid next_page {next_page!r}")
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        raise PagedStoreError(f"{source}: 'meta' must be an object")
    raw_table = doc.get("page_table")
    if not isinstance(raw_table, dict) or not raw_table:
        raise PagedStoreError(f"{source}: 'page_table' must be a non-empty object")
    entries_per_page = page_bytes // ENTRY_BYTES
    table: dict[str, dict[str, Any]] = {}
    for name, spec in raw_table.items():
        if not isinstance(name, str) or not name:
            raise PagedStoreError(f"{source}: invalid buffer name {name!r}")
        if not isinstance(spec, dict):
            raise PagedStoreError(f"{source}: buffer {name!r} spec malformed")
        entries = spec.get("entries")
        pages = spec.get("pages")
        if not isinstance(entries, int) or entries < 0:
            raise PagedStoreError(
                f"{source}: buffer {name!r} has invalid entry count"
            )
        if not isinstance(pages, list):
            raise PagedStoreError(
                f"{source}: buffer {name!r} page list malformed"
            )
        expected_pages = (entries + entries_per_page - 1) // entries_per_page
        if len(pages) != expected_pages:
            raise PagedStoreError(
                f"{source}: buffer {name!r} declares {entries} entries but "
                f"{len(pages)} pages (expected {expected_pages})"
            )
        normalised = []
        for item in pages:
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 2
                or not isinstance(item[0], int)
                or item[0] < 0
                or not isinstance(item[1], str)
            ):
                raise PagedStoreError(
                    f"{source}: buffer {name!r} has a malformed page entry"
                )
            normalised.append([item[0], item[1]])
        table[name] = {"entries": entries, "pages": normalised}
    return byteorder, page_bytes, generation, next_page, meta, table


# ----------------------------------------------------------------------
# Scrub & repair
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScrubPage:
    """One non-clean page found by :meth:`PagedStore.scrub`.

    Attributes:
        buffer: the buffer the page belongs to.
        page_index: logical page index within that buffer.
        physical: the physical page-file id the manifest references.
        status: ``"repaired"`` or ``"unrepairable"``.
        detail: what was wrong, and (if repaired) where the replacement
            came from.
    """

    buffer: str
    page_index: int
    physical: int
    status: str
    detail: str


@dataclass
class ScrubReport:
    """Outcome of one :meth:`PagedStore.scrub` pass.

    ``ok`` means every live page is digest-verified *now* — clean from
    the start or repaired from an older generation.  ``not ok`` means
    at least one page is unrepairable: its file sits in quarantine, the
    manifest still references it so every read stays loudly broken, and
    the caller must rebuild from the source graph.  There is no third
    state; scrub never leaves corruption silently readable.
    """

    generation: int
    pages_checked: int
    clean: int
    repaired: list[ScrubPage]
    unrepairable: list[ScrubPage]

    @property
    def ok(self) -> bool:
        """Every live page digest-verifies after this pass."""
        return not self.unrepairable

    @property
    def rebuild_required(self) -> bool:
        """At least one page could not be repaired from any generation."""
        return bool(self.unrepairable)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary."""
        return {
            "generation": self.generation,
            "pages_checked": self.pages_checked,
            "clean": self.clean,
            "repaired": [
                {
                    "buffer": page.buffer,
                    "page_index": page.page_index,
                    "physical": page.physical,
                    "detail": page.detail,
                }
                for page in self.repaired
            ],
            "unrepairable": [
                {
                    "buffer": page.buffer,
                    "page_index": page.page_index,
                    "physical": page.physical,
                    "detail": page.detail,
                }
                for page in self.unrepairable
            ],
            "ok": self.ok,
        }

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"scrub of generation {self.generation}: "
            f"{self.pages_checked} page(s) checked, {self.clean} clean, "
            f"{len(self.repaired)} repaired, "
            f"{len(self.unrepairable)} unrepairable"
        ]
        for page in self.repaired:
            lines.append(
                f"  repaired   {page.buffer}[{page.page_index}] "
                f"(page {page.physical}): {page.detail}"
            )
        for page in self.unrepairable:
            lines.append(
                f"  UNREPAIRED {page.buffer}[{page.page_index}] "
                f"(page {page.physical}): {page.detail}"
            )
        if self.rebuild_required:
            lines.append(
                "  corrupt files quarantined; rebuild from the source "
                "graph is required"
            )
        return "\n".join(lines)


class PagedStore:
    """Named ``int64`` buffers paged to disk under a manifest.

    Construct with :meth:`create` (stream values in, constant memory)
    or :meth:`open` (attach to an existing directory).  Reads and
    writes go through the LRU :attr:`pool`; mutations become durable
    only at :meth:`checkpoint`, which publishes a new manifest
    generation by reference — unchanged pages are shared with prior
    generations, not rewritten.
    """

    def __init__(
        self,
        directory: Path,
        *,
        byteorder: str,
        page_bytes: int,
        generation: int,
        next_page: int,
        meta: dict[str, Any],
        table: dict[str, dict[str, Any]],
        budget_bytes: int,
        retain: int,
        retry: RetryPolicy | None = None,
    ) -> None:
        """Internal: use :meth:`create` or :meth:`open`."""
        self.directory = directory
        self._pages_dir = directory / PAGES_DIRNAME
        self._byteorder = byteorder
        self.page_bytes = page_bytes
        self._entries_per_page = page_bytes // ENTRY_BYTES
        self._generation = generation
        self._next_page = next_page
        self._meta = meta
        self._table = table
        self._retain = retain
        self._closed = False
        self.retry = retry if retry is not None else resolve_retry_policy()
        self.pool = PagedBufferPool(
            budget_bytes, self._load_page, self._store_page, retry=self.retry
        )

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str | Path,
        buffers: Mapping[str, Iterable[int]],
        *,
        page_bytes: int | None = None,
        budget_bytes: int | None = None,
        meta: Mapping[str, Any] | None = None,
        retain: int = DEFAULT_RETAIN,
        retry: RetryPolicy | None = None,
    ) -> "PagedStore":
        """Create a store by streaming ``buffers`` into page files.

        Values are consumed strictly in order one page at a time, so
        building a store never materialises a whole buffer in memory —
        creation itself is out-of-core.  Publishes generation 1.

        Raises:
            PagedStoreError: empty buffer map, or the directory already
                holds a paged store.
        """
        page_bytes = resolve_page_bytes(page_bytes)
        budget = resolve_pool_budget(budget_bytes)
        retry = retry if retry is not None else resolve_retry_policy()
        if not buffers:
            raise PagedStoreError("a paged store needs at least one buffer")
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        if _scan_generations(base):
            raise PagedStoreError(
                f"{base} already holds a paged store; open() it instead"
            )
        pages_dir = base / PAGES_DIRNAME
        pages_dir.mkdir(exist_ok=True)
        byteorder = sys.byteorder
        entries_per_page = page_bytes // ENTRY_BYTES
        next_page = 0
        table: dict[str, dict[str, Any]] = {}
        for name, values in buffers.items():
            if not isinstance(name, str) or not name:
                raise PagedStoreError(f"invalid buffer name: {name!r}")
            entries = 0
            pages: list[list[Any]] = []
            chunk = array(BUFFER_TYPECODE)
            for value in values:
                chunk.append(value)
                if len(chunk) == entries_per_page:
                    digest = _emit_page(
                        pages_dir, next_page, chunk, byteorder, retry=retry
                    )
                    pages.append([next_page, digest])
                    next_page += 1
                    entries += len(chunk)
                    chunk = array(BUFFER_TYPECODE)
            if chunk:
                digest = _emit_page(
                    pages_dir, next_page, chunk, byteorder, retry=retry
                )
                pages.append([next_page, digest])
                next_page += 1
                entries += len(chunk)
            table[name] = {"entries": entries, "pages": pages}
        store = cls(
            base,
            byteorder=byteorder,
            page_bytes=page_bytes,
            generation=0,
            next_page=next_page,
            meta=dict(meta or {}),
            table=table,
            budget_bytes=budget,
            retain=retain,
            retry=retry,
        )
        store.checkpoint()
        return store

    @classmethod
    def open(
        cls,
        directory: str | Path,
        *,
        budget_bytes: int | None = None,
        generation: int | None = None,
        retain: int = DEFAULT_RETAIN,
        retry: RetryPolicy | None = None,
    ) -> "PagedStore":
        """Attach to an existing store directory.

        Scans manifests newest-first and uses the first one that
        unseals and validates (the ``CURRENT`` pointer is a hint, not
        an authority — same recovery posture as
        :class:`~repro.maintenance.store.CheckpointStore`).  Pass
        ``generation`` for a point-in-time view of a retained older
        manifest; opening a pinned generation does not fall back.

        Raises:
            PagedStoreError: missing directory, no readable manifest,
                or a pinned generation that was pruned, never existed,
                or is present but unreadable (the error names the
                pinned generation and the surviving ones).
        """
        budget = resolve_pool_budget(budget_bytes)
        base = Path(directory)
        if not base.is_dir():
            raise PagedStoreError(f"not a paged store directory: {base}")
        _sweep_temp_files(base)
        pages_dir = base / PAGES_DIRNAME
        if pages_dir.is_dir():
            _sweep_temp_files(pages_dir)
        on_disk = _scan_generations(base)
        if not on_disk:
            raise PagedStoreError(f"no manifest found under {base}")
        if generation is not None:
            if generation not in on_disk:
                survivors = ", ".join(str(g) for g in sorted(on_disk))
                raise PagedStoreError(
                    f"generation {generation} is not present under {base} "
                    "(pruned, or never checkpointed); surviving "
                    f"generations: {survivors}"
                )
            candidates = [generation]
        else:
            candidates = on_disk
        failures: list[str] = []
        for candidate in candidates:
            path = _manifest_path(base, candidate)
            try:
                doc = read_document(path)
                byteorder, page_bytes, gen, next_page, meta, table = (
                    _validate_manifest(doc, path.name)
                )
            except SerializationError as error:
                failures.append(str(error))
                continue
            if gen != candidate:
                failures.append(
                    f"{path.name}: generation stamp {gen} disagrees with name"
                )
                continue
            # Fresh physical ids must clear every file on disk, even
            # orphans from a crashed write-back, or COW would collide.
            highest = max(_scan_page_ids(pages_dir), default=-1)
            return cls(
                base,
                byteorder=byteorder,
                page_bytes=page_bytes,
                generation=gen,
                next_page=max(next_page, highest + 1),
                meta=meta,
                table=table,
                budget_bytes=budget,
                retain=retain,
                retry=retry,
            )
        detail = "; ".join(failures)
        if generation is not None:
            survivors = ", ".join(
                str(g) for g in sorted(on_disk) if g != generation
            )
            raise PagedStoreError(
                f"generation {generation} under {base} is present but "
                f"unreadable ({detail}); surviving generations: "
                f"{survivors or 'none'}"
            )
        raise PagedStoreError(f"no readable manifest under {base}: {detail}")

    # -- geometry ------------------------------------------------------

    @property
    def byteorder(self) -> str:
        """Byte order every page was written in (fixed at creation)."""
        return self._byteorder

    @property
    def generation(self) -> int:
        """The manifest generation this store currently reflects."""
        return self._generation

    @property
    def meta(self) -> dict[str, Any]:
        """Application metadata stored alongside the page table."""
        return self._meta

    @property
    def stats(self) -> PoolStats:
        """The pool's cumulative counters."""
        return self.pool.stats

    def buffer_names(self) -> tuple[str, ...]:
        """The named buffers this store holds, in creation order."""
        return tuple(self._table)

    def length(self, name: str) -> int:
        """Entry count of buffer ``name``."""
        return int(self._spec(name)["entries"])

    @property
    def footprint_bytes(self) -> int:
        """Total payload bytes across all buffers (page padding excluded)."""
        return sum(
            int(spec["entries"]) * ENTRY_BYTES for spec in self._table.values()
        )

    @property
    def page_count(self) -> int:
        """Total pages across all buffers in the live table."""
        return sum(len(spec["pages"]) for spec in self._table.values())

    def buffer(self, name: str) -> "PagedBuffer":
        """A sequence view of buffer ``name`` backed by the pool."""
        self._spec(name)
        return PagedBuffer(self, name)

    def _spec(self, name: str) -> dict[str, Any]:
        try:
            return self._table[name]
        except KeyError:
            raise PagedStoreError(
                f"store has no buffer {name!r} "
                f"(have {sorted(self._table)})"
            ) from None

    def _check_open(self) -> None:
        if self._closed:
            raise PagedStoreError(f"paged store {self.directory} is closed")

    # -- page I/O (pool callbacks) -------------------------------------

    def _load_page(self, key: PageKey) -> "array[int]":
        """Pool loader: read, digest-verify and decode one page file."""
        name, index = key
        spec = self._spec(name)
        pages = spec["pages"]
        if not 0 <= index < len(pages):
            raise PagedStoreError(
                f"page index {index} out of range for buffer {name!r}"
            )
        physical, digest = pages[index]
        path = _page_path(self._pages_dir, physical)

        def fetch() -> bytes:
            fault_point("storage.page_read_eio_transient", path=path)
            return path.read_bytes()

        raw = io_retry(
            fetch,
            what=f"cannot read page file {path.name}",
            policy=self.retry,
            stats=self.pool.stats,
        )
        if hashlib.sha256(raw).hexdigest() != digest:
            raise PagedStoreError(
                f"page file {path.name} fails its manifest digest "
                f"(buffer {name!r}, page {index})"
            )
        entries = int(spec["entries"])
        expected = min(
            self._entries_per_page, entries - index * self._entries_per_page
        )
        if len(raw) != expected * ENTRY_BYTES:
            raise PagedStoreError(
                f"page file {path.name} holds {len(raw)} bytes; manifest "
                f"expects {expected * ENTRY_BYTES}"
            )
        return buffer_from_bytes(f"{name}[{index}]", raw, self._byteorder)

    def _store_page(self, key: PageKey, page: "array[int]") -> None:
        """Pool writer: copy-on-write a dirty page to a fresh file."""
        name, index = key
        spec = self._spec(name)
        physical = self._next_page
        self._next_page += 1
        digest = _emit_page(
            self._pages_dir,
            physical,
            page,
            self._byteorder,
            retry=self.retry,
            stats=self.pool.stats,
        )
        spec["pages"][index] = [physical, digest]

    # -- element access ------------------------------------------------

    def _locate(self, name: str, position: int) -> tuple[int, int]:
        entries = self.length(name)
        if position < 0:
            position += entries
        if not 0 <= position < entries:
            raise PagedStoreError(
                f"position {position} out of range for buffer {name!r} "
                f"({entries} entries)"
            )
        return divmod(position, self._entries_per_page)

    def read_element(self, name: str, position: int) -> int:
        """One entry of buffer ``name`` (negative positions count back)."""
        self._check_open()
        page_index, offset = self._locate(name, position)
        return self.pool.get((name, page_index))[offset]

    def write_element(self, name: str, position: int, value: int) -> None:
        """Mutate one entry in place (durable at the next checkpoint)."""
        self._check_open()
        page_index, offset = self._locate(name, position)
        key = (name, page_index)
        page = self.pool.get(key)
        page[offset] = value
        self.pool.mark_dirty(key)

    def read_slice(self, name: str, start: int, stop: int) -> "array[int]":
        """Entries ``start:stop`` of buffer ``name`` as one array.

        Spans page boundaries transparently; pages are visited in
        ascending order so sequential sweeps degrade to one miss per
        page even under a one-page budget.
        """
        self._check_open()
        entries = self.length(name)
        start = max(0, min(start, entries))
        stop = max(start, min(stop, entries))
        out = array(BUFFER_TYPECODE)
        if start == stop:
            return out
        epp = self._entries_per_page
        first_page, first_offset = divmod(start, epp)
        last_page = (stop - 1) // epp
        for page_index in range(first_page, last_page + 1):
            page = self.pool.get((name, page_index))
            lo = first_offset if page_index == first_page else 0
            hi = stop - page_index * epp
            out.extend(page[lo:min(hi, len(page))])
        return out

    def iter_buffer(self, name: str) -> Iterator[int]:
        """Stream every entry of ``name`` page-sequentially."""
        self._check_open()
        spec = self._spec(name)
        for page_index in range(len(spec["pages"])):
            # Snapshot the page reference; later pool traffic may evict
            # it but the yielded values come from this consistent copy.
            page = self.pool.get((name, page_index))
            yield from page

    # -- durability ----------------------------------------------------

    def checkpoint(self) -> int:
        """Publish the current state as a new manifest generation.

        Flushes dirty pages (each to a fresh physical file), writes a
        sealed manifest and the ``CURRENT`` hint, then prunes
        generations older than the retention window and deletes page
        files no retained manifest references.  Cost is proportional to
        the *dirty* set, not the store size.
        """
        self._check_open()
        self.pool.flush()
        self._generation += 1
        document = {
            "format": FROZEN_FORMAT_NAME,
            "version": FROZEN_PAGED_VERSION,
            "byteorder": self._byteorder,
            "page_bytes": self.page_bytes,
            "generation": self._generation,
            "next_page": self._next_page,
            "meta": self._meta,
            "page_table": self._table,
        }
        manifest_path = _manifest_path(self.directory, self._generation)
        atomic_write_document(manifest_path, document)
        fault_point("storage.manifest_corrupt", path=manifest_path)
        atomic_write_document(
            self.directory / CURRENT_NAME,
            {
                "format": CURRENT_FORMAT,
                "version": CURRENT_VERSION,
                "generation": self._generation,
            },
        )
        self._prune()
        return self._generation

    def _prune(self) -> None:
        """Drop manifests beyond retention and any unreferenced pages."""
        keep = _scan_generations(self.directory)[: self._retain + 1]
        referenced: set[int] = set()
        for generation in keep:
            path = _manifest_path(self.directory, generation)
            try:
                doc = read_document(path)
                _, _, _, _, _, table = _validate_manifest(doc, path.name)
            except SerializationError:
                continue  # unreadable but retained: GC nothing of it
            for spec in table.values():
                for physical, _digest in spec["pages"]:
                    referenced.add(physical)
        for generation in _scan_generations(self.directory):
            if generation not in keep:
                _manifest_path(self.directory, generation).unlink(
                    missing_ok=True
                )
        for physical in _scan_page_ids(self._pages_dir):
            if physical not in referenced:
                _page_path(self._pages_dir, physical).unlink(missing_ok=True)
        fsync_directory(self._pages_dir)
        fsync_directory(self.directory)

    # -- scrub & repair ------------------------------------------------

    def _verify_page_file(
        self, physical: int, digest: str, expected_bytes: int
    ) -> str | None:
        """Why the page file fails verification, or ``None`` if clean."""
        path = _page_path(self._pages_dir, physical)

        def fetch() -> bytes:
            fault_point("storage.page_read_eio_transient", path=path)
            return path.read_bytes()

        try:
            raw = io_retry(
                fetch,
                what=f"cannot read page file {path.name}",
                policy=self.retry,
                stats=self.pool.stats,
            )
        except PagedStoreError as error:
            return str(error)
        if hashlib.sha256(raw).hexdigest() != digest:
            return "sha256 digest mismatch against the manifest"
        if len(raw) != expected_bytes:
            return f"holds {len(raw)} bytes; manifest expects {expected_bytes}"
        return None

    def _repair_page(
        self, name: str, page_index: int, physical: int, digest: str,
        expected_bytes: int,
    ) -> str | None:
        """Restore a quarantined page from an older retained generation.

        Copy-on-write means a same-value write-back allocates a *fresh*
        physical file with the *same* digest, so older manifests often
        reference an intact byte-identical twin of the damaged page.
        Scans retained generations newest-first for one whose entry at
        the same logical position carries the same digest under a
        different physical id, verifies the candidate bytes, and writes
        them back to the damaged page's path (the live manifest keeps
        referencing ``physical``, which now verifies again).

        Returns a description of the donor, or ``None`` when no
        generation holds a verified twin.
        """
        for generation in _scan_generations(self.directory):
            if generation >= self._generation:
                continue
            manifest = _manifest_path(self.directory, generation)
            try:
                doc = read_document(manifest)
                _, _, _, _, _, table = _validate_manifest(doc, manifest.name)
            except SerializationError:
                continue
            spec = table.get(name)
            if spec is None or page_index >= len(spec["pages"]):
                continue
            donor_physical, donor_digest = spec["pages"][page_index]
            if donor_digest != digest or donor_physical == physical:
                continue
            donor_path = _page_path(self._pages_dir, donor_physical)
            try:
                raw = donor_path.read_bytes()
            except OSError:
                continue
            if (
                hashlib.sha256(raw).hexdigest() != digest
                or len(raw) != expected_bytes
            ):
                continue
            atomic_write_bytes(_page_path(self._pages_dir, physical), raw)
            return (
                f"restored from generation {generation} "
                f"(donor page {donor_physical})"
            )
        return None

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Digest-verify every live page; quarantine and repair corrupt ones.

        Each page the current manifest references is read back and
        checked against its sha256 digest and expected length.  A
        failing page file is moved to ``quarantine/`` (evidence is
        never destroyed) and, when ``repair`` is set, restored from the
        newest older generation holding a byte-identical twin (see
        :meth:`_repair_page`).  Pages with no donor stay quarantined
        and the report flags a rebuild — the manifest still references
        them, so subsequent reads fail loudly rather than serving
        corrupt data.

        The pool is emptied first so verification reads disk, not
        cache, and emptied again afterwards so repaired bytes are what
        later reads see.

        Raises:
            PagedStoreError: dirty pages are resident — checkpoint (or
                flush) before scrubbing, so the scrub sees exactly the
                durable state it certifies.
        """
        self._check_open()
        if self.pool.dirty_pages:
            raise PagedStoreError(
                f"{self.pool.dirty_pages} dirty page(s) resident; "
                "checkpoint before scrubbing"
            )
        self.pool.drop()
        quarantine_dir = self.directory / QUARANTINE_DIRNAME
        checked = 0
        clean = 0
        repaired: list[ScrubPage] = []
        unrepairable: list[ScrubPage] = []
        for name, spec in self._table.items():
            entries = int(spec["entries"])
            for page_index, (physical, digest) in enumerate(spec["pages"]):
                checked += 1
                expected_entries = min(
                    self._entries_per_page,
                    entries - page_index * self._entries_per_page,
                )
                expected_bytes = expected_entries * ENTRY_BYTES
                problem = self._verify_page_file(
                    physical, digest, expected_bytes
                )
                if problem is None:
                    clean += 1
                    continue
                path = _page_path(self._pages_dir, physical)
                if path.exists():
                    quarantine_dir.mkdir(exist_ok=True)
                    path.replace(quarantine_dir / path.name)
                detail: str | None = None
                if repair:
                    detail = self._repair_page(
                        name, page_index, physical, digest, expected_bytes
                    )
                if detail is not None:
                    repaired.append(
                        ScrubPage(name, page_index, physical, "repaired", detail)
                    )
                else:
                    unrepairable.append(
                        ScrubPage(
                            name, page_index, physical, "unrepairable", problem
                        )
                    )
        self.pool.drop()
        return ScrubReport(
            generation=self._generation,
            pages_checked=checked,
            clean=clean,
            repaired=repaired,
            unrepairable=unrepairable,
        )

    def close(self, discard_dirty: bool = False) -> None:
        """Detach: drop the pool.  Un-checkpointed mutations are lost.

        Raises:
            PagedStoreError: if dirty pages are resident and
                ``discard_dirty`` is not set — call :meth:`checkpoint`
                to keep them.
        """
        if self._closed:
            return
        self.pool.drop(discard_dirty=discard_dirty)
        self._closed = True

    def __enter__(self) -> "PagedStore":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        # Surface the original error, not a dirty-page complaint.
        self.close(discard_dirty=exc is not None or self.pool.dirty_pages == 0)

    def __repr__(self) -> str:
        return (
            f"PagedStore({self.directory}, generation={self._generation}, "
            f"buffers={len(self._table)}, page_bytes={self.page_bytes})"
        )


class PagedBuffer(Sequence[int]):
    """Read/write sequence view of one store buffer.

    Integer indexing and step-1 slicing read through the pool; slices
    come back as ``array('q')`` (matching what slicing a real buffer
    yields).  Item assignment marks the page dirty — durable at the
    store's next :meth:`PagedStore.checkpoint`.
    """

    __slots__ = ("_store", "_name")

    def __init__(self, store: PagedStore, name: str) -> None:
        self._store = store
        self._name = name

    @property
    def name(self) -> str:
        """The buffer's name inside its store."""
        return self._name

    def __len__(self) -> int:
        return self._store.length(self._name)

    def __getitem__(self, index: int | slice) -> Any:
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step == 1:
                return self._store.read_slice(self._name, start, stop)
            return array(
                BUFFER_TYPECODE,
                (
                    self._store.read_element(self._name, position)
                    for position in range(start, stop, step)
                ),
            )
        return self._store.read_element(self._name, index)

    def __setitem__(self, position: int, value: int) -> None:
        self._store.write_element(self._name, position, value)

    def __iter__(self) -> Iterator[int]:
        return self._store.iter_buffer(self._name)

    def __repr__(self) -> str:
        return f"PagedBuffer({self._name!r}, entries={len(self)})"


# ----------------------------------------------------------------------
# Paged CSR snapshots
# ----------------------------------------------------------------------


class PagedCSRGraph:
    """A CSR snapshot whose buffers live in a :class:`PagedStore`.

    Exposes the :class:`~repro.graph.columnar.CSRBuffers` read surface
    (``label_ids``/offsets/targets as :class:`PagedBuffer` sequences,
    ``num_nodes``), so any engine written against that protocol — in
    particular :class:`~repro.partition.columnar.ColumnarEngine` and
    its external subclass — runs unmodified with a bounded resident
    set.  Index snapshots (extents, per-node ``k``) page those buffers
    too.
    """

    def __init__(self, store: PagedStore) -> None:
        """Wrap an attached store (use :meth:`create` / :meth:`open`)."""
        names = set(store.buffer_names())
        missing = [name for name in CORE_CSR_BUFFERS if name not in names]
        if missing:
            raise PagedStoreError(
                f"store lacks CSR buffers: {', '.join(missing)}"
            )
        meta = store.meta
        labels = meta.get("labels")
        if not isinstance(labels, list) or not all(
            isinstance(name, str) for name in labels
        ):
            raise PagedStoreError("store meta lacks a 'labels' string list")
        num_nodes = meta.get("num_nodes")
        if not isinstance(num_nodes, int) or num_nodes < 0:
            raise PagedStoreError("store meta lacks a valid 'num_nodes'")
        if store.length("label_ids") != num_nodes:
            raise PagedStoreError(
                "'num_nodes' disagrees with the label_ids buffer"
            )
        if store.length("child_offsets") != num_nodes + 1:
            raise PagedStoreError("child_offsets must hold num_nodes + 1")
        if store.length("parent_offsets") != num_nodes + 1:
            raise PagedStoreError("parent_offsets must hold num_nodes + 1")
        if store.length("child_targets") != store.length("parent_targets"):
            raise PagedStoreError(
                "child and parent target buffers disagree on edge count"
            )
        self._store = store
        self._labels = list(labels)
        self._num_nodes = num_nodes
        self._sealed = bool(meta.get("sealed", False))
        self.label_ids = store.buffer("label_ids")
        self.child_offsets = store.buffer("child_offsets")
        self.child_targets = store.buffer("child_targets")
        self.parent_offsets = store.buffer("parent_offsets")
        self.parent_targets = store.buffer("parent_targets")
        self._has_extents = "extent_offsets" in names
        self.extent_offsets = (
            store.buffer("extent_offsets") if self._has_extents else None
        )
        self.extent_targets = (
            store.buffer("extent_targets") if self._has_extents else None
        )
        self.k = store.buffer("k") if "k" in names else None

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str | Path,
        graph: Any,
        *,
        labels: Sequence[str] | None = None,
        page_bytes: int | None = None,
        budget_bytes: int | None = None,
        retain: int = DEFAULT_RETAIN,
        retry: RetryPolicy | None = None,
    ) -> "PagedCSRGraph":
        """Page a graph's frozen CSR view out to ``directory``.

        ``graph`` may be a mutable graph with ``freeze()`` (its label
        table and seal state are captured) or a bare
        :class:`~repro.graph.columnar.CSRGraph` — pass ``labels`` then,
        or synthetic names are generated.
        """
        if isinstance(graph, CSRGraph):
            view = graph
            sealed = False
        else:
            view = graph.freeze()
            sealed = bool(getattr(graph, "sealed", False))
        if labels is None:
            names_of = getattr(graph, "label_names", None)
            if callable(names_of):
                labels = list(names_of())
            else:
                labels = [f"label_{i}" for i in range(view.num_labels)]
        else:
            labels = list(labels)
        if len(labels) < view.num_labels:
            raise PagedStoreError(
                f"{len(labels)} label names for {view.num_labels} label ids"
            )
        buffers: dict[str, Iterable[int]] = {
            name: getattr(view, name) for name in CORE_CSR_BUFFERS
        }
        for name in EXTENT_CSR_BUFFERS:
            extra = getattr(view, name)
            if extra is not None:
                buffers[name] = extra
        meta = {
            "labels": labels,
            "num_nodes": view.num_nodes,
            "num_edges": view.num_edges,
            "num_labels": view.num_labels,
            "sealed": sealed,
        }
        store = PagedStore.create(
            directory,
            buffers,
            page_bytes=page_bytes,
            budget_bytes=budget_bytes,
            meta=meta,
            retain=retain,
            retry=retry,
        )
        return cls(store)

    @classmethod
    def open(
        cls,
        directory: str | Path,
        *,
        budget_bytes: int | None = None,
        generation: int | None = None,
        retain: int = DEFAULT_RETAIN,
        retry: RetryPolicy | None = None,
    ) -> "PagedCSRGraph":
        """Attach to a paged CSR snapshot created earlier."""
        return cls(
            PagedStore.open(
                directory,
                budget_bytes=budget_bytes,
                generation=generation,
                retain=retain,
                retry=retry,
            )
        )

    # -- CSRBuffers surface and friends --------------------------------

    @property
    def store(self) -> PagedStore:
        """The underlying paged store."""
        return self._store

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of edges in the snapshot."""
        return self._store.length("child_targets")

    @property
    def num_labels(self) -> int:
        """Size of the label table."""
        return len(self._labels)

    @property
    def sealed(self) -> bool:
        """Whether the source graph was sealed when paged out."""
        return self._sealed

    @property
    def stats(self) -> PoolStats:
        """Pool counters for this snapshot's store."""
        return self._store.stats

    @property
    def footprint_bytes(self) -> int:
        """Bytes the equivalent in-memory CSR buffers would occupy."""
        return self._store.footprint_bytes

    def label_names(self) -> tuple[str, ...]:
        """The label table, in id order."""
        return tuple(self._labels)

    def children(self, node: int) -> "array[int]":
        """The children of ``node`` (reads at most two offset pages)."""
        lo = self._store.read_element("child_offsets", node)
        hi = self._store.read_element("child_offsets", node + 1)
        return self._store.read_slice("child_targets", lo, hi)

    def parents(self, node: int) -> "array[int]":
        """The parents of ``node``."""
        lo = self._store.read_element("parent_offsets", node)
        hi = self._store.read_element("parent_offsets", node + 1)
        return self._store.read_slice("parent_targets", lo, hi)

    def extent(self, node: int) -> "array[int]":
        """The extent of index node ``node`` (index snapshots only)."""
        if not self._has_extents:
            raise PagedStoreError("this paged snapshot carries no extents")
        lo = self._store.read_element("extent_offsets", node)
        hi = self._store.read_element("extent_offsets", node + 1)
        return self._store.read_slice("extent_targets", lo, hi)

    # -- materialisation -----------------------------------------------

    def to_csr(self) -> CSRGraph:
        """Materialise the snapshot as in-memory :class:`CSRGraph`."""
        def whole(name: str) -> "array[int]":
            return self._store.read_slice(name, 0, self._store.length(name))

        return CSRGraph(
            whole("label_ids"),
            whole("child_offsets"),
            whole("child_targets"),
            whole("parent_offsets"),
            whole("parent_targets"),
            num_labels=self.num_labels,
            extent_offsets=whole("extent_offsets") if self._has_extents else None,
            extent_targets=whole("extent_targets") if self._has_extents else None,
            k=whole("k") if self.k is not None else None,
        )

    def to_datagraph(self) -> Any:
        """Materialise a mutable :class:`DataGraph`, restoring the seal."""
        graph = self.to_csr().to_datagraph(self._labels)
        if self._sealed:
            graph.freeze(mode="seal")
        return graph

    # -- lifecycle -----------------------------------------------------

    def checkpoint(self) -> int:
        """Publish mutations as a new store generation."""
        return self._store.checkpoint()

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Digest-verify (and repair) every live page of the store."""
        return self._store.scrub(repair=repair)

    def close(self, discard_dirty: bool = False) -> None:
        """Detach from the store."""
        self._store.close(discard_dirty=discard_dirty)

    def __enter__(self) -> "PagedCSRGraph":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._store.__exit__(exc_type, exc, tb)

    def __repr__(self) -> str:
        kind = "index" if self._has_extents else "data"
        return (
            f"PagedCSRGraph({kind}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, generation={self._store.generation})"
        )
