"""Query workloads: generation, containers and requirement mining.

The paper's experiments (Section 6.1) drive every comparison with "100
test paths with lengths between 2 and 5 ... First, the program randomly
chooses some long query paths; then, from these long paths, many shorter
branching paths are generated."  :mod:`repro.workload.generator`
reproduces that protocol; :class:`~repro.workload.queryload.QueryLoad`
carries the queries (with optional frequencies); and
:mod:`repro.workload.mining` turns a load into per-label
local-similarity requirements — including the frequency-aware miner the
paper lists as future work.
"""

from repro.workload.generator import WorkloadConfig, generate_test_paths
from repro.workload.mining import coverage_requirements, exact_requirements
from repro.workload.queryload import QueryLoad

__all__ = [
    "QueryLoad",
    "WorkloadConfig",
    "coverage_requirements",
    "exact_requirements",
    "generate_test_paths",
]
