"""Random test-path generation (Section 6.1's workload protocol).

    "We randomly generate 100 test paths with lengths between 2 and 5
    for the Xmark and Nasa data.  First, the program randomly chooses
    some long query paths; then, from these long paths, many shorter
    branching paths are generated.  These basically simulate query
    patterns in real XML databases."

Implementation: long paths are forward random walks over the data graph
yielding label paths of the maximum length; branching paths reuse a
random suffix window of a long path's *node* path and then branch to a
random different child, so short queries share structure with long ones
exactly as real workloads derived from a schema do.  All queries are
unanchored (the paper expects "partial matching queries with the
self-or-descendant axis '//'").

Everything is driven by a seeded :class:`random.Random`, so workloads
are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import WorkloadError
from repro.graph.datagraph import ROOT_LABEL, VALUE_LABEL, DataGraph
from repro.paths.query import LabelPathQuery
from repro.workload.queryload import QueryLoad


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the test-path generator.

    Attributes:
        count: number of test paths to produce (paper: 100).
        min_length / max_length: label-path lengths (paper: 2 and 5).
        long_path_fraction: fraction of the load drawn directly as
            maximum-length walks; the rest are shorter branching paths.
        exclude_labels: labels walks never step onto — by default ROOT
            (queries never mention the synthetic root) and VALUE
            (queries target elements, not raw character data).
        max_attempts_factor: give up after ``count * factor`` failed
            sampling attempts (e.g. a graph too small for the requested
            diversity).
    """

    count: int = 100
    min_length: int = 2
    max_length: int = 5
    long_path_fraction: float = 0.3
    exclude_labels: frozenset[str] = frozenset({ROOT_LABEL, VALUE_LABEL})
    max_attempts_factor: int = 200

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise WorkloadError("count must be positive")
        if not 1 <= self.min_length <= self.max_length:
            raise WorkloadError("need 1 <= min_length <= max_length")
        if not 0.0 <= self.long_path_fraction <= 1.0:
            raise WorkloadError("long_path_fraction must be within [0, 1]")


def generate_test_paths(
    graph: DataGraph,
    config: WorkloadConfig | None = None,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> QueryLoad:
    """Generate a query load of random label-path queries over ``graph``.

    Args:
        graph: the data graph to walk.
        config: generator parameters (defaults to the paper's).
        rng: a :class:`random.Random`; if absent one is created from
            ``seed`` (or seed 0).

    Returns:
        A :class:`QueryLoad` whose distinct queries number
        ``config.count`` (fewer only if the graph cannot support that
        much diversity, in which case duplicates raise weights instead).

    Raises:
        WorkloadError: if the graph has no admissible nodes at all.
    """
    config = config or WorkloadConfig()
    if rng is None:
        rng = random.Random(0 if seed is None else seed)

    excluded_ids = {
        graph.label_id(name)
        for name in config.exclude_labels
        if graph.has_label(name)
    }
    admissible = [
        node
        for node in graph.nodes()
        if graph.label_ids[node] not in excluded_ids
    ]
    if not admissible:
        raise WorkloadError("graph has no nodes admissible for queries")

    def walk_from(start: int, length: int) -> list[int] | None:
        """Forward random walk of exactly `length` nodes, or None."""
        path = [start]
        current = start
        while len(path) < length:
            candidates = [
                child
                for child in graph.children[current]
                if graph.label_ids[child] not in excluded_ids
            ]
            if not candidates:
                return None
            current = rng.choice(candidates)
            path.append(current)
        return path

    def labels_of(path: list[int]) -> tuple[str, ...]:
        return tuple(graph.label(node) for node in path)

    long_target = max(1, round(config.count * config.long_path_fraction))
    load = QueryLoad()
    distinct: set[tuple[str, ...]] = set()
    long_node_paths: list[list[int]] = []

    attempts_left = config.count * config.max_attempts_factor

    # Phase 1: long paths (maximum length walks).
    while len(long_node_paths) < long_target and attempts_left > 0:
        attempts_left -= 1
        path = walk_from(rng.choice(admissible), config.max_length)
        if path is None:
            continue
        long_node_paths.append(path)
        labels = labels_of(path)
        if labels not in distinct:
            distinct.add(labels)
            load.add(LabelPathQuery(anchored=False, labels=labels))
        else:
            load.add(LabelPathQuery(anchored=False, labels=labels))

    if not long_node_paths:
        # Degenerate graph (shallower than max_length): fall back to the
        # longest walks available so short graphs still get a workload.
        best = 1
        for node in admissible:
            for length in range(config.max_length, 0, -1):
                path = walk_from(node, length)
                if path is not None:
                    long_node_paths.append(path)
                    best = max(best, length)
                    break
            if len(long_node_paths) >= long_target:
                break
        if not long_node_paths:
            raise WorkloadError("could not sample any walk from the graph")
        for path in long_node_paths[:long_target]:
            labels = labels_of(path)
            distinct.add(labels)
            load.add(LabelPathQuery(anchored=False, labels=labels))

    # Phase 2: shorter branching paths derived from the long ones.
    while load.total_weight < config.count and attempts_left > 0:
        attempts_left -= 1
        base = rng.choice(long_node_paths)
        length = rng.randint(config.min_length, config.max_length)
        # Random suffix window of the base path, then (sometimes) branch
        # off its last node to a different child.
        start = rng.randint(0, max(0, len(base) - length))
        window = base[start : start + length]
        if len(window) < config.min_length:
            continue
        if len(window) < length or rng.random() < 0.5:
            # Try to branch: replace/extend the tail with another child.
            anchor = window[-2] if len(window) >= 2 else window[-1]
            candidates = [
                child
                for child in graph.children[anchor]
                if graph.label_ids[child] not in excluded_ids
                and (len(window) < 2 or child != window[-1])
            ]
            if candidates and len(window) >= 2:
                window = window[:-1] + [rng.choice(candidates)]
        labels = labels_of(window)
        load.add(LabelPathQuery(anchored=False, labels=labels))
        distinct.add(labels)

    return load
