"""Query-pattern mining: from a query load to per-label requirements.

Two miners:

- :func:`exact_requirements` — the paper's experimental protocol: each
  label's requirement is "the longest length of test path queries less
  one such that no validation will be needed" (Section 6.1).
- :func:`coverage_requirements` — the frequency-aware miner the paper's
  conclusion points at as future work ("mine query patterns on query
  loads"): pick, per label, the smallest k that makes at least a target
  fraction of the *weighted* queries targeting that label sound,
  trading rare long queries (which will validate) for a smaller index.
"""

from __future__ import annotations

from repro.exceptions import WorkloadError
from repro.workload.queryload import QueryLoad


def exact_requirements(load: QueryLoad) -> dict[str, int]:
    """Requirements making every label-path query in the load sound.

    Example:
        >>> from repro.paths.query import make_query
        >>> load = QueryLoad([make_query("a.b.t"), make_query("b.t")])
        >>> exact_requirements(load)
        {'t': 2}
    """
    return coverage_requirements(load, coverage=1.0)


def coverage_requirements(load: QueryLoad, coverage: float = 0.95) -> dict[str, int]:
    """Smallest per-label k making >= ``coverage`` of the weighted
    queries on each label sound.

    Args:
        load: the query load (label-path queries only are considered;
            regex queries are ignored, matching the experiments).
        coverage: target weighted fraction in (0, 1].

    Example:
        >>> from repro.paths.query import make_query
        >>> load = QueryLoad()
        >>> for _ in range(99):
        ...     load.add(make_query("b.t"), 1)
        >>> load.add(make_query("a.a.a.a.t"))
        >>> coverage_requirements(load, coverage=0.95)
        {'t': 1}
        >>> coverage_requirements(load, coverage=1.0)
        {'t': 4}
    """
    if not 0.0 < coverage <= 1.0:
        raise WorkloadError(f"coverage must be in (0, 1], got {coverage}")

    requirements: dict[str, int] = {}
    for label, entries in load.by_target_label().items():
        # Weighted distribution of required similarities for this label.
        needs: dict[int, int] = {}
        total = 0
        for query, weight in entries:
            needed = query.num_edges + (1 if query.anchored else 0)
            needs[needed] = needs.get(needed, 0) + weight
            total += weight
        threshold = coverage * total
        covered = 0
        chosen = 0
        for needed in sorted(needs):
            covered += needs[needed]
            chosen = needed
            if covered >= threshold:
                break
        requirements[label] = chosen
    return requirements


def requirement_gain(
    old: dict[str, int], new: dict[str, int]
) -> tuple[dict[str, int], dict[str, int]]:
    """Split a requirement change into promotions and demotions.

    Returns:
        ``(raise_map, lower_map)`` — labels whose requirement grew (with
        the new value) and labels whose requirement shrank.  Useful for
        deciding when to run the promoting/demoting procedures.
    """
    raise_map: dict[str, int] = {}
    lower_map: dict[str, int] = {}
    for label, value in new.items():
        previous = old.get(label, 0)
        if value > previous:
            raise_map[label] = value
        elif value < previous:
            lower_map[label] = value
    for label, previous in old.items():
        if label not in new and previous > 0:
            lower_map[label] = 0
    return raise_map, lower_map
