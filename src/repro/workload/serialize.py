"""JSON persistence for query loads.

A mined query load is an asset: the requirements derived from it shape
the index, and experiments must be replayable.  The format stores each
distinct query as its source text plus its weight:

.. code-block:: json

    {
      "format": "repro-queryload",
      "version": 1,
      "queries": [["//a.b", 3], ["/site.regions", 1], ...]
    }

Twig patterns are stored with a ``twig:`` prefix so the loader knows
which parser to use.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any

from repro.exceptions import SerializationError
from repro.paths.query import Query, make_query
from repro.paths.twig import TwigQuery, parse_twig
from repro.workload.queryload import QueryLoad

FORMAT_NAME = "repro-queryload"
FORMAT_VERSION = 1


def _query_to_text(query: Query | TwigQuery) -> str:
    if isinstance(query, TwigQuery):
        return "twig:" + query.to_text()
    return query.to_text()


def _query_from_text(text: str) -> Query | TwigQuery:
    if text.startswith("twig:"):
        return parse_twig(text[len("twig:"):])
    return make_query(text)


def load_to_dict(load: QueryLoad) -> dict[str, Any]:
    """JSON-ready dictionary for a query load."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "queries": [
            [_query_to_text(query), weight] for query, weight in load.items()
        ],
    }


def load_from_dict(data: dict[str, Any]) -> QueryLoad:
    """Rebuild a query load from :func:`load_to_dict` output.

    Raises:
        SerializationError: on structural problems (a malformed query
        text raises its own :class:`~repro.exceptions.PathSyntaxError`).
    """
    if not isinstance(data, dict):
        raise SerializationError("query-load document must be a JSON object")
    if data.get("format") != FORMAT_NAME:
        raise SerializationError(f"unexpected format marker: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise SerializationError(f"unsupported version: {data.get('version')!r}")
    entries = data.get("queries")
    if not isinstance(entries, list):
        raise SerializationError("'queries' must be a list")
    load = QueryLoad()
    for entry in entries:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not isinstance(entry[0], str)
            or not isinstance(entry[1], int)
        ):
            raise SerializationError(f"malformed query entry: {entry!r}")
        text, weight = entry
        load.add(_query_from_text(text), weight)
    return load


def save_query_load(load: QueryLoad, target: str | Path | IO[str]) -> None:
    """Serialize a query load as JSON to a path or text stream.

    Paths are written through the atomic sealed writer of
    :mod:`repro.maintenance.store` (crash-safe, integrity-checked).
    """
    from repro.maintenance.store import atomic_write_document

    document = load_to_dict(load)
    if isinstance(target, (str, Path)):
        atomic_write_document(target, document)
    else:
        json.dump(document, target)


def load_query_load(source: str | Path | IO[str]) -> QueryLoad:
    """Load a query load written by :func:`save_query_load`.

    Sealed files are integrity-checked; unsealed version-1 files load
    as before.

    Raises:
        SerializationError: on integrity or structural problems.
    """
    from repro.maintenance.store import read_document

    if isinstance(source, (str, Path)):
        data: Any = read_document(source)
    else:
        data = json.load(source)
    return load_from_dict(data)
