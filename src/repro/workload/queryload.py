"""The :class:`QueryLoad` container.

A query load is a weighted multiset of queries — weights model the
frequencies a real system would observe in its query log.  Most of the
paper's machinery only needs iteration, but the adaptive parts (mining,
promote/demote decisions) use the weights.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.exceptions import WorkloadError
from repro.paths.query import LabelPathQuery, Query


class QueryLoad:
    """A weighted collection of queries.

    Example:
        >>> from repro.paths.query import make_query
        >>> load = QueryLoad([make_query("a.b"), make_query("a.b")])
        >>> load.weight(make_query("a.b"))
        2
        >>> load.total_weight
        2
    """

    def __init__(self, queries: Iterable[Query] = ()) -> None:
        self._weights: Counter[Query] = Counter()
        for query in queries:
            self.add(query)

    def add(self, query: Query, weight: int = 1) -> None:
        """Record ``weight`` more observations of ``query``."""
        if weight <= 0:
            raise WorkloadError(f"weight must be positive, got {weight}")
        self._weights[query] += weight

    def weight(self, query: Query) -> int:
        """Observed weight of ``query`` (0 if absent)."""
        return self._weights.get(query, 0)

    @property
    def total_weight(self) -> int:
        """Sum of all weights."""
        return sum(self._weights.values())

    @property
    def num_distinct(self) -> int:
        """Number of distinct queries."""
        return len(self._weights)

    def __len__(self) -> int:
        return self.num_distinct

    def __iter__(self) -> Iterator[Query]:
        """Iterate over distinct queries (insertion order)."""
        return iter(self._weights)

    def items(self) -> Iterator[tuple[Query, int]]:
        """Iterate over ``(query, weight)`` pairs."""
        return iter(self._weights.items())

    def expanded(self) -> Iterator[Query]:
        """Iterate with multiplicity (each query repeated by weight)."""
        for query, weight in self._weights.items():
            for _ in range(weight):
                yield query

    def label_path_queries(self) -> list[LabelPathQuery]:
        """The label-path subset of the load (what the experiments use)."""
        return [q for q in self._weights if isinstance(q, LabelPathQuery)]

    def by_target_label(self) -> dict[str, list[tuple[LabelPathQuery, int]]]:
        """Group label-path queries (with weights) by their target label."""
        groups: dict[str, list[tuple[LabelPathQuery, int]]] = {}
        for query, weight in self._weights.items():
            if isinstance(query, LabelPathQuery):
                groups.setdefault(query.target_label, []).append((query, weight))
        return groups

    def merge(self, other: "QueryLoad") -> "QueryLoad":
        """A new load combining both operands' weights."""
        merged = QueryLoad()
        for query, weight in self.items():
            merged.add(query, weight)
        for query, weight in other.items():
            merged.add(query, weight)
        return merged

    def length_histogram(self) -> Mapping[int, int]:
        """``{query length in labels: total weight}`` for label paths."""
        histogram: Counter[int] = Counter()
        for query, weight in self._weights.items():
            if isinstance(query, LabelPathQuery):
                histogram[query.length] += weight
        return dict(histogram)
