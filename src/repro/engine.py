"""The :class:`Database` facade — everything wired together.

A downstream user who just wants "an indexed XML store" should not have
to compose graphs, indexes, tuners and twig evaluators by hand.
:class:`Database` packages the whole system:

- documents in (XML text or data graphs), incrementally indexed
  (Algorithm 3);
- one `query()` entry point that routes linear path expressions through
  the D(k)-index and branching (twig) patterns through an on-demand
  F&B-index;
- reference edges added/removed through the paper's update algorithms;
- optional self-tuning via :class:`~repro.core.tuner.AdaptiveTuner`;
- persistence (`save` / `load`) and execution statistics.

Example:
    >>> db = Database.from_xml("<db><m><t>x</t></m></db>")
    >>> sorted(db.query("m.t"))
    [3]
    >>> db.statistics.queries
    1
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Mapping

from repro.core.dindex import DKIndex
from repro.core.tuner import AdaptiveTuner, TunerConfig
from repro.exceptions import ReproError
from repro.maintenance.pipeline import MaintenanceConfig
from repro.graph.datagraph import DataGraph
from repro.graph.stats import GraphStats, graph_stats
from repro.graph.xmlio import parse_xml
from repro.indexes.base import IndexGraph
from repro.indexes.explain import Explanation
from repro.indexes.fbindex import build_fb_index, evaluate_twig_on_fb
from repro.paths.cost import CostCounter, CostSummary
from repro.paths.query import Query, make_query
from repro.paths.twig import TwigQuery, parse_twig


@dataclass
class ExecutionStatistics:
    """Running totals the database keeps about its own behaviour."""

    queries: int = 0
    twig_queries: int = 0
    documents_inserted: int = 0
    edges_added: int = 0
    edges_removed: int = 0
    tuning_actions: int = 0
    cost: CostSummary = field(default_factory=CostSummary)

    def format(self) -> str:
        return (
            f"queries: {self.queries} ({self.twig_queries} twig), "
            f"avg cost {self.cost.average_cost:.1f}, "
            f"validated {self.cost.validation_fraction:.0%} | "
            f"documents: {self.documents_inserted}, "
            f"edges +{self.edges_added}/-{self.edges_removed}, "
            f"tunings: {self.tuning_actions}"
        )


class Database:
    """An indexed store for graph-structured documents.

    Args:
        graph: the initial data graph.
        requirements: initial per-label D(k) requirements (default: start
            at the label-split index and let the tuner learn).
        auto_tune: manage the index with an :class:`AdaptiveTuner`.
        tuner_config: policy knobs when ``auto_tune`` is on.
        audit: post-update audit tier (``off``/``fast``/``deep``); the
            default honours ``DKINDEX_AUDIT`` and falls back to ``fast``.
        journal_path: write-ahead journal location; ``None`` disables
            journaling (see :mod:`repro.maintenance.journal`).
    """

    def __init__(
        self,
        graph: DataGraph | None = None,
        requirements: Mapping[str, int] | None = None,
        auto_tune: bool = True,
        tuner_config: TunerConfig | None = None,
        audit: str | None = None,
        journal_path: str | Path | None = None,
    ) -> None:
        self._maintenance = self._maintenance_config(audit, journal_path)
        self._dk = DKIndex.build(graph or DataGraph(), dict(requirements or {}))
        self._dk.maintenance = self._maintenance
        self._tuner = (
            AdaptiveTuner(self._dk, tuner_config) if auto_tune else None
        )
        self._fb = None  # built lazily, invalidated on every mutation
        self.statistics = ExecutionStatistics()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_xml(cls, xml: str, **kwargs: Any) -> "Database":
        """Create a database from one XML document."""
        return cls(graph=parse_xml(xml), **kwargs)

    @staticmethod
    def _maintenance_config(
        audit: str | None, journal_path: str | Path | None
    ) -> MaintenanceConfig | None:
        if audit is None and journal_path is None:
            return None  # pipeline defaults (DKINDEX_AUDIT honoured)
        if audit is None:
            return MaintenanceConfig(journal_path=journal_path)
        return MaintenanceConfig(audit=audit, journal_path=journal_path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def graph(self) -> DataGraph:
        """The underlying data graph (treat as read-only)."""
        return self._dk.graph

    @property
    def index(self) -> DKIndex:
        """The D(k)-index (treat as read-only; use Database methods)."""
        return self._dk

    def graph_statistics(self) -> GraphStats:
        """Descriptive statistics of the stored data."""
        return graph_stats(self._dk.graph)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, expression: str | Query | TwigQuery) -> set[int]:
        """Evaluate a path expression or twig pattern; returns node ids.

        Strings containing ``[`` parse as twig patterns, everything else
        as regular path expressions.  Linear queries run on the
        D(k)-index (with transparent validation); twig queries run on a
        lazily built F&B-index.
        """
        query = self._coerce(expression)
        counter = CostCounter()
        if isinstance(query, TwigQuery):
            result = evaluate_twig_on_fb(self._fb_index(), query, counter)
            self.statistics.twig_queries += 1
        else:
            result = self._dk.evaluate(query, counter)
            if self._tuner is not None and self._tuner.observe(query):
                self.statistics.tuning_actions += 1
        self.statistics.queries += 1
        self.statistics.cost.add(counter)
        return result

    def labels_of(self, nodes: set[int]) -> list[str]:
        """Convenience: the labels of a result set, sorted by node id."""
        return [self._dk.graph.label(node) for node in sorted(nodes)]

    def explain(self, expression: str | Query) -> "Explanation":
        """EXPLAIN a linear query's evaluation plan (does not execute it
        through the statistics, and twig patterns are not supported)."""
        query = self._coerce(expression)
        if isinstance(query, TwigQuery):
            raise ValueError("explain supports linear path expressions only")
        return self._dk.explain(query)

    def _coerce(
        self, expression: str | Query | TwigQuery
    ) -> Query | TwigQuery:
        if isinstance(expression, (Query, TwigQuery)):
            return expression
        if not isinstance(expression, str):
            raise TypeError(f"cannot interpret query: {expression!r}")
        if "[" in expression:
            return parse_twig(expression)
        return make_query(expression)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert_document(self, document: str | DataGraph) -> list[int]:
        """Insert an XML document (or prepared graph) under the root.

        Returns the node-id mapping from the document into the store
        (Algorithm 3 under the hood).
        """
        subgraph = parse_xml(document) if isinstance(document, str) else document
        mapping = self._dk.add_subgraph(subgraph)
        self._fb = None
        self.statistics.documents_inserted += 1
        return mapping

    def add_reference(self, src: int, dst: int) -> None:
        """Add a reference edge between stored nodes (Algorithms 4+5)."""
        self._dk.add_edge(src, dst)
        self._fb = None
        self.statistics.edges_added += 1

    def remove_reference(self, src: int, dst: int) -> None:
        """Remove an edge (the deletion extension of Section 5)."""
        self._dk.remove_edge(src, dst)
        self._fb = None
        self.statistics.edges_removed += 1

    def retune(self, requirements: Mapping[str, int] | None = None) -> None:
        """Force a promote pass (optionally with new requirements)."""
        self._dk.promote(dict(requirements) if requirements else None)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, target: str | Path | IO[str]) -> None:
        """Persist data graph + D(k)-index + requirements as JSON."""
        from repro.indexes.serialize import save_dk_index

        save_dk_index(self._dk, target)

    @classmethod
    def load(cls, source: str | Path | IO[str], **kwargs: Any) -> "Database":
        """Restore a database written by :meth:`save`.

        Raises:
            ReproError: if the stored document is corrupt.
        """
        from repro.indexes.serialize import load_dk_index

        dk = load_dk_index(source)
        database = cls(auto_tune=kwargs.pop("auto_tune", True), **kwargs)
        dk.maintenance = database._maintenance
        database._dk = dk
        if database._tuner is not None:
            database._tuner = AdaptiveTuner(dk, database._tuner.config)
        return database

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Verify every structural invariant; raise on corruption."""
        self._dk.check_invariants()
        if self._fb is not None:
            self._fb.check_invariants()

    def _fb_index(self) -> IndexGraph:
        if self._fb is None:
            self._fb = build_fb_index(self._dk.graph)
        return self._fb

    def __repr__(self) -> str:
        return (
            f"Database(nodes={self.graph.num_nodes}, "
            f"edges={self.graph.num_edges}, index={self._dk.size}, "
            f"queries={self.statistics.queries})"
        )
