"""A DBLP-like bibliography dataset (extension: a third corpus).

The paper evaluates on two datasets; a reproduction gains confidence
from a third with yet another shape.  DBLP-style bibliographies are the
classic "shallow but enormously wide" XML corpus: millions of flat
publication records, a small label vocabulary, and one dominant
reference kind (citations) — the opposite regime from NASA's deep
irregularity.  Useful properties for the index experiments:

- bisimulation saturates at small k (records are shallow), so A(k)
  curves flatten early;
- citation edges between ``cite`` elements and publications are the
  natural ID/IDREF pairs for the update experiments;
- heavy label skew (thousands of ``author`` nodes) stresses the
  label-split base case.
"""

from __future__ import annotations

import random

from repro.datasets.dtd import (
    DTDGeneratorConfig,
    GeneratedDocument,
    RandomDocumentGenerator,
    parse_dtd,
)
from repro.exceptions import DatasetError

#: DBLP dtd subset (element spellings follow the real dblp.dtd).
DBLP_DTD = """
<!ELEMENT dblp (article*, inproceedings*, book*, phdthesis*)>

<!ELEMENT article (author+, title, pages?, year, volume?, journal, ee?,
                   cite*)>
<!ATTLIST article key ID #REQUIRED>
<!ELEMENT inproceedings (author+, title, pages?, year, booktitle,
                         crossref?, ee?, cite*)>
<!ATTLIST inproceedings key ID #REQUIRED>
<!ELEMENT book (author+, title, publisher, year, isbn?, cite*)>
<!ATTLIST book key ID #REQUIRED>
<!ELEMENT phdthesis (author, title, year, school)>
<!ATTLIST phdthesis key ID #REQUIRED>

<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT isbn (#PCDATA)>
<!ELEMENT school (#PCDATA)>
<!ELEMENT ee (#PCDATA)>
<!ELEMENT cite EMPTY>
<!ATTLIST cite ref IDREF #REQUIRED>
<!ELEMENT crossref EMPTY>
<!ATTLIST crossref to IDREF #REQUIRED>
"""

#: Reference targets: citations point at articles; crossrefs at
#: proceedings entries.
DBLP_REF_TARGETS = {
    ("cite", "ref"): "article",
    ("crossref", "to"): "inproceedings",
}


def generate_dblp(
    scale: float = 1.0,
    seed: int = 0,
    keep_values: bool = True,
) -> GeneratedDocument:
    """Generate a DBLP-like data graph.

    Args:
        scale: linear size factor; 1.0 yields roughly 25-35k nodes.
        seed: RNG seed.
        keep_values: include VALUE leaf nodes under text elements.

    Raises:
        DatasetError: on a non-positive scale.

    Example:
        >>> doc = generate_dblp(scale=0.05, seed=1)
        >>> doc.graph.nodes_with_label("article") != []
        True
        >>> ("cite", "article") in doc.reference_pairs
        True
    """
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    rng = random.Random(seed)

    def span(lo: int, hi: int) -> tuple[int, int]:
        low = max(0, round(lo * scale))
        return (low, max(low + 1, round(hi * scale)))

    config = DTDGeneratorConfig(
        max_depth=6,  # bibliographies are shallow
        optional_prob=0.5,
        star_mean=1.2,
        max_repeat=max(6, int(40 * scale)),
        keep_values=keep_values,
        fanout={
            "article": span(500, 650),
            "inproceedings": span(350, 450),
            "book": span(60, 90),
            "phdthesis": span(25, 40),
            "author": (1, 4),
            "cite": (0, 3),
        },
    )
    generator = RandomDocumentGenerator(
        parse_dtd(DBLP_DTD),
        config=config,
        ref_targets=DBLP_REF_TARGETS,
        ref_prob=0.8,
    )
    return generator.generate("dblp", rng)
