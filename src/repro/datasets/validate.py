"""DTD conformance checking for data graphs.

The random generator promises documents that conform to their DTD's
content models (up to explicit depth truncation); this module provides
the independent checker that *verifies* it — each element node's child
label sequence is matched against the content model compiled to a small
NFA (Glushkov-style over the particle tree).

Besides testing the generator, the checker is useful to downstream
users ingesting real XML: run it after :func:`repro.graph.xmlio.parse_xml`
to find schema violations before indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.datasets.dtd import (
    AnyContent,
    ChoiceParticle,
    DTD,
    EmptyContent,
    NameParticle,
    Particle,
    PCDataParticle,
    SeqParticle,
)
from repro.graph.datagraph import VALUE_LABEL, DataGraph

#: Label of text nodes, accepted wherever #PCDATA is allowed.
_VALUE = VALUE_LABEL


@dataclass(frozen=True)
class Violation:
    """One conformance violation.

    Attributes:
        node: the offending element's node id.
        element: its label.
        reason: human-readable description.
    """

    node: int
    element: str
    reason: str

    def __str__(self) -> str:
        return f"node {self.node} <{self.element}>: {self.reason}"


@dataclass
class ConformanceReport:
    """Outcome of a conformance check."""

    checked_elements: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self, limit: int = 20) -> str:
        if self.ok:
            return f"conforms ({self.checked_elements} elements checked)"
        lines = [
            f"{len(self.violations)} violations in "
            f"{self.checked_elements} elements:"
        ]
        lines.extend(f"  {v}" for v in self.violations[:limit])
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)


class _ModelNFA:
    """ε-free NFA over child labels for one content model."""

    def __init__(self, particle: Particle) -> None:
        # States are integers; transitions[state][label] = set of states.
        self.transitions: list[dict[str, set[int]]] = []
        self.epsilon: list[set[int]] = []
        start = self._new_state()
        accept = self._new_state()
        self._build(particle, start, accept)
        self._closures = [self._closure(s) for s in range(len(self.epsilon))]
        self.start_set = frozenset(self._closures[start])
        self.accept = accept

    def _new_state(self) -> int:
        self.transitions.append({})
        self.epsilon.append(set())
        return len(self.transitions) - 1

    def _edge(self, src: int, label: str, dst: int) -> None:
        self.transitions[src].setdefault(label, set()).add(dst)

    def _eps(self, src: int, dst: int) -> None:
        self.epsilon[src].add(dst)

    def _build(self, particle: Particle, entry: int, exit_: int) -> None:
        occurrence = particle.occurrence
        if occurrence:
            inner_entry = self._new_state()
            inner_exit = self._new_state()
            stripped = _without_occurrence(particle)
            self._build(stripped, inner_entry, inner_exit)
            self._eps(entry, inner_entry)
            self._eps(inner_exit, exit_)
            if occurrence in ("?", "*"):
                self._eps(entry, exit_)
            if occurrence in ("*", "+"):
                self._eps(inner_exit, inner_entry)
            return
        if isinstance(particle, (EmptyContent, AnyContent)):
            self._eps(entry, exit_)
            return
        if isinstance(particle, PCDataParticle):
            # #PCDATA: zero or more VALUE children (text may be absent
            # or split into several text nodes).
            self._eps(entry, exit_)
            self._edge(entry, _VALUE, entry)
            return
        if isinstance(particle, NameParticle):
            self._edge(entry, particle.name, exit_)
            return
        if isinstance(particle, SeqParticle):
            current = entry
            for item in particle.items:
                nxt = self._new_state()
                self._build(item, current, nxt)
                current = nxt
            self._eps(current, exit_)
            return
        if isinstance(particle, ChoiceParticle):
            for item in particle.items:
                self._build(item, entry, exit_)
            return
        raise TypeError(f"unknown particle: {particle!r}")

    def _closure(self, state: int) -> set[int]:
        seen = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for nxt in self.epsilon[current]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def matches(self, labels: Sequence[str]) -> bool:
        states = self.start_set
        for label in labels:
            moved: set[int] = set()
            for state in states:
                for target in self.transitions[state].get(label, ()):
                    moved.update(self._closures[target])
            if not moved:
                return False
            states = frozenset(moved)
        return self.accept in states


def _without_occurrence(particle: Particle) -> Particle:
    if isinstance(particle, NameParticle):
        return NameParticle(name=particle.name)
    if isinstance(particle, SeqParticle):
        return SeqParticle(items=particle.items)
    if isinstance(particle, ChoiceParticle):
        return ChoiceParticle(items=particle.items)
    if isinstance(particle, PCDataParticle):
        return PCDataParticle()
    return particle


def _mixed_allows(particle: Particle) -> set[str] | None:
    """For mixed content ``(#PCDATA | a | b)*`` return the allowed set."""
    inner = particle
    if not isinstance(inner, ChoiceParticle):
        return None
    if not any(isinstance(item, PCDataParticle) for item in inner.items):
        return None
    allowed = {_VALUE}
    for item in inner.items:
        if isinstance(item, PCDataParticle):
            continue
        if isinstance(item, NameParticle):
            allowed.add(item.name)
        else:
            # A nested group next to #PCDATA is not the XML mixed-content
            # shape; such models get the generic NFA match, which accepts
            # whatever branch the generator actually expanded.
            return None
    return allowed


def check_conformance(
    graph: DataGraph,
    dtd: DTD,
    root_element: str,
    allow_truncation: bool = True,
    max_violations: int = 1000,
    tree_parent: Sequence[int] | None = None,
) -> ConformanceReport:
    """Check that ``graph`` conforms to ``dtd``.

    Every node whose label is a declared element has its child label
    sequence matched against the compiled content model.  Reference
    edges are part of the paper's data model but not of the document
    structure, so only *tree* children are checked.  The document tree
    is recovered via the **first-parent convention**: both the DTD
    generator and :func:`repro.graph.xmlio.parse_xml` create the
    containment edge at node-creation time, before any reference edge
    can target the node, so ``graph.parents[node][0]`` is the document
    parent.  For graphs from other sources pass ``tree_parent``
    explicitly.  Undeclared labels (e.g. VALUE under a declared parent)
    are checked as part of their parent's model, not on their own.

    Args:
        graph: the data graph (as produced by the generator or xmlio).
        dtd: the schema.
        root_element: expected document element under the graph root.
        allow_truncation: when True, an element with *no* children is
            accepted even if its model requires some — the generator's
            documented depth-cap behaviour.
        max_violations: stop collecting after this many.
        tree_parent: explicit document parent per node (overrides the
            first-parent convention; use -1 for the root).

    Example:
        >>> from repro.datasets.dtd import parse_dtd
        >>> from repro.graph.xmlio import parse_xml, XmlOptions
        >>> dtd = parse_dtd("<!ELEMENT db (m*)><!ELEMENT m (t)>"
        ...                 "<!ELEMENT t (#PCDATA)>")
        >>> g = parse_xml("<db><m><t>x</t></m></db>")
        >>> check_conformance(g, dtd, "db").ok
        True
        >>> bad = parse_xml("<db><t>stray</t></db>")
        >>> check_conformance(bad, dtd, "db").ok
        False
    """
    report = ConformanceReport()
    compiled: dict[str, _ModelNFA] = {}
    mixed: dict[str, set[str] | None] = {}

    def model_for(element: str) -> _ModelNFA:
        nfa = compiled.get(element)
        if nfa is None:
            nfa = _ModelNFA(dtd.element(element).content)
            compiled[element] = nfa
            mixed[element] = _mixed_allows(dtd.element(element).content)
        return nfa

    def add_violation(node: int, element: str, reason: str) -> None:
        if len(report.violations) < max_violations:
            report.violations.append(Violation(node, element, reason))

    # Document tree via the first-parent convention (or the caller's
    # explicit map): reference edges are later entries in parent lists.
    if tree_parent is None:
        parent_of = [
            graph.parents[node][0] if graph.parents[node] else -1
            for node in graph.nodes()
        ]
    else:
        parent_of = list(tree_parent)

    document_elements = [
        child
        for child in graph.children[graph.root]
        if parent_of[child] == graph.root
    ]
    if len(document_elements) != 1 or graph.label(
        document_elements[0]
    ) != root_element:
        found = [graph.label(c) for c in document_elements]
        add_violation(
            graph.root, "ROOT",
            f"expected a single <{root_element}> document element, found {found}",
        )

    for node in graph.nodes():
        label = graph.label(node)
        if label not in dtd.elements:
            continue
        report.checked_elements += 1
        # xmlio materialises non-ID attributes as labeled child nodes;
        # they are schema-sanctioned but outside the content model.
        attribute_names = {attr.name for attr in dtd.element(label).attributes}
        tree_children = [
            child
            for child in graph.children[node]
            if parent_of[child] == node
            and graph.label(child) not in attribute_names
        ]
        child_labels = [graph.label(child) for child in tree_children]
        nfa = model_for(label)
        mixed_allowed = mixed[label]
        if mixed_allowed is not None:
            stray = [l for l in child_labels if l not in mixed_allowed]
            if stray:
                add_violation(
                    node, label, f"mixed content disallows children {stray}"
                )
            continue
        if nfa.matches(child_labels):
            continue
        if allow_truncation and not child_labels:
            continue
        add_violation(
            node, label,
            f"children {child_labels} do not match the content model",
        )
    return report
